//! Mutation property tests for the independent validator: starting from a
//! schedule the scheduler produced (and the validator accepted), each
//! mutation corrupts one aspect — an operation's issue cycle, a route's
//! meeting register file, or the write stub carrying a communication —
//! and the validator must reject the corrupted schedule with the matching
//! violation kind. This checks the validator actually *re-derives* the
//! constraints rather than trusting the scheduler's bookkeeping.

mod common;

use common::{random_kernel_with_ops, TOY_OPS};
use csched::core::validate::{validate, ValidationError};
use csched::core::{schedule_kernel, CommId, Schedule, SchedulerConfig};
use csched::ir::Kernel;
use csched::machine::{toy, Architecture, RfId};
use proptest::prelude::*;

/// Schedules a random toy-machine kernel, asserting the baseline is valid.
fn valid_schedule(arch: &Architecture, seed: u64, ops: usize) -> (Kernel, Schedule) {
    let kernel = random_kernel_with_ops(seed, ops, TOY_OPS);
    let schedule = schedule_kernel(arch, &kernel, SchedulerConfig::default())
        .unwrap_or_else(|e| panic!("seed {seed}: toy kernels must schedule: {e}"));
    validate(arch, &kernel, &schedule).expect("baseline schedule must validate");
    (kernel, schedule)
}

/// A same-block, distance-0 communication between kernel operations whose
/// producer can be pushed past the end of its block to break timing.
fn same_block_comm(schedule: &Schedule) -> Option<CommId> {
    let u = schedule.universe();
    u.comm_ids().find(|&cid| {
        let c = u.comm(cid);
        c.distance == 0
            && u.op(c.producer).kernel_op.is_some()
            && u.op(c.consumer).kernel_op.is_some()
            && u.op(c.producer).block == u.op(c.consumer).block
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    /// Moving a producer past the end of its block must surface as a
    /// timing violation on one of its communications.
    #[test]
    fn moved_op_is_rejected_as_timing_violation(seed in 1u64..u64::MAX, ops in 3usize..10) {
        let arch = toy::motivating_example();
        let (kernel, mut schedule) = valid_schedule(&arch, seed, ops);
        let Some(cid) = same_block_comm(&schedule) else {
            // Degenerate kernel with no same-block value flow; nothing to
            // corrupt in this case.
            return Ok(());
        };
        let c = schedule.universe().comm(cid).clone();
        let block = schedule.universe().op(c.producer).block;
        let push = schedule.block_len(block) + 8;
        schedule.corrupt_placement_for_tests(c.producer, push);
        let errors = validate(&arch, &kernel, &schedule)
            .expect_err("moved producer must invalidate the schedule");
        prop_assert!(
            errors.iter().any(|e| matches!(
                e,
                ValidationError::TimingViolated { from, .. } if *from == c.producer
            )),
            "seed {}: expected TimingViolated from {}, got {:?}",
            seed, c.producer, errors
        );
    }

    /// Redirecting a route's read stub into a different register file than
    /// its write stub must surface as a malformed route.
    #[test]
    fn clobbered_route_is_rejected_as_malformed(seed in 1u64..u64::MAX, ops in 3usize..10) {
        let arch = toy::motivating_example();
        let (kernel, mut schedule) = valid_schedule(&arch, seed, ops);
        // Find a directly-routed communication and send its read stub to
        // some other register file.
        let u = schedule.universe();
        let direct: Vec<CommId> = u.comm_ids().collect();
        let mut clobbered = None;
        for cid in direct {
            let legs = schedule.transport(cid);
            let Some(&(leg, route)) = legs.first() else { continue };
            let wrong_rf = RfId::from_raw((route.wstub.rf.index() + 1) % arch.num_rfs());
            if wrong_rf == route.wstub.rf {
                continue;
            }
            if schedule.corrupt_route_for_tests(leg, wrong_rf) {
                clobbered = Some(leg);
                break;
            }
        }
        let Some(leg) = clobbered else { return Ok(()); };
        let errors = validate(&arch, &kernel, &schedule)
            .expect_err("clobbered route must invalidate the schedule");
        prop_assert!(
            errors.iter().any(|e| matches!(
                e,
                ValidationError::MalformedRoute { comm, .. } if *comm == leg
            )),
            "seed {}: expected MalformedRoute on {}, got {:?}",
            seed, leg, errors
        );
    }

    /// Forcing two communications from different producers onto the same
    /// write stub (same bus, port, and cycle) must surface as a resource
    /// conflict when the validator replays the schedule's claims.
    #[test]
    fn double_booked_bus_is_rejected_as_resource_conflict(
        seed in 1u64..u64::MAX,
        ops in 4usize..12,
    ) {
        let arch = toy::motivating_example();
        let (kernel, mut schedule) = valid_schedule(&arch, seed, ops);
        let Some(_victim) = schedule.double_book_bus_for_tests(&kernel) else {
            // No two direct routes complete on the same table cycle in
            // this schedule; nothing to double-book.
            return Ok(());
        };
        let errors = validate(&arch, &kernel, &schedule)
            .expect_err("double-booked write stub must invalidate the schedule");
        prop_assert!(
            errors.iter().any(|e| matches!(
                e,
                ValidationError::ResourceConflict { what } if what.contains("write stub")
            )),
            "seed {}: expected a write-stub ResourceConflict, got {:?}",
            seed, errors
        );
    }
}

/// The mutations must fire on at least some inputs: a deterministic sweep
/// proving the proptest cases above are not vacuously passing via their
/// `None` escapes.
#[test]
fn mutations_are_reachable() {
    let arch = toy::motivating_example();
    let (mut moved, mut clobbered, mut double_booked) = (0usize, 0usize, 0usize);
    for seed in 1..40u64 {
        let (kernel, schedule) = valid_schedule(&arch, seed, 6);
        if same_block_comm(&schedule).is_some() {
            moved += 1;
        }
        if schedule
            .universe()
            .comm_ids()
            .next()
            .is_some_and(|c| !schedule.transport(c).is_empty())
        {
            clobbered += 1;
        }
        let mut s = schedule.clone();
        if s.double_book_bus_for_tests(&kernel).is_some() {
            double_booked += 1;
        }
    }
    assert!(
        moved > 20,
        "same-block comms found in only {moved}/39 schedules"
    );
    assert!(
        clobbered > 20,
        "direct routes found in only {clobbered}/39 schedules"
    );
    assert!(
        double_booked > 5,
        "double-bookable stub pairs found in only {double_booked}/39 schedules"
    );
}
