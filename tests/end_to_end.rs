//! End-to-end integration: every Table 1 kernel schedules on the central
//! register file machine, passes independent validation, and the cycle
//! simulator reproduces the scalar reference output exactly.
//!
//! (The full 10 × 4 grid incl. the clustered and distributed machines runs
//! in release mode via `cargo run --release -p csched-eval --bin
//! paper-report`; debug-mode integration keeps to the fast baseline plus
//! spot checks so `cargo test` stays snappy.)

mod common;

use csched::core::{regalloc, schedule_kernel, validate, SchedulerConfig};
use csched::machine::imagine;

#[test]
fn all_kernels_end_to_end_on_central() {
    let arch = imagine::central();
    for w in csched::kernels::all() {
        let schedule = schedule_kernel(&arch, &w.kernel, SchedulerConfig::default())
            .unwrap_or_else(|e| panic!("{}: {e}", w.kernel.name()));
        validate::validate(&arch, &w.kernel, &schedule)
            .unwrap_or_else(|e| panic!("{}: {e:?}", w.kernel.name()));
        // No copies ever needed on a central register file.
        assert_eq!(schedule.num_copies(), 0, "{}", w.kernel.name());

        let mut mem = w.memory();
        csched::sim::execute(&w.kernel, &schedule, &mut mem, w.trip)
            .unwrap_or_else(|e| panic!("{}: {e}", w.kernel.name()));
        w.verify(&mem).unwrap_or_else(|e| panic!("{e}"));

        // Register demand is well-formed and fits the central file.
        let pressure = regalloc::analyze(&arch, &w.kernel, &schedule);
        assert!(pressure.total_required() > 0, "{}", w.kernel.name());
        assert!(
            pressure.fits(),
            "{}: demand {} exceeds central capacity",
            w.kernel.name(),
            pressure.max_required()
        );
    }
}

#[test]
fn spot_check_distributed_machine() {
    let arch = imagine::distributed();
    for name in ["FFT", "Merge", "Block Warp"] {
        let w = csched::kernels::by_name(name).expect("known kernel");
        let schedule = schedule_kernel(&arch, &w.kernel, SchedulerConfig::default())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        validate::validate(&arch, &w.kernel, &schedule).unwrap_or_else(|e| panic!("{name}: {e:?}"));
        let mut mem = w.memory();
        csched::sim::execute(&w.kernel, &schedule, &mut mem, w.trip)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        w.verify(&mem).unwrap_or_else(|e| panic!("{e}"));
    }
}

#[test]
fn spot_check_clustered_machine() {
    let arch = imagine::clustered(4);
    for name in ["DCT", "Sort", "Merge"] {
        let w = csched::kernels::by_name(name).expect("known kernel");
        let schedule = schedule_kernel(&arch, &w.kernel, SchedulerConfig::default())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        validate::validate(&arch, &w.kernel, &schedule).unwrap_or_else(|e| panic!("{name}: {e:?}"));
        let mut mem = w.memory();
        csched::sim::execute(&w.kernel, &schedule, &mut mem, w.trip)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        w.verify(&mem).unwrap_or_else(|e| panic!("{e}"));
    }
}

#[test]
fn unrolled_kernels_schedule_everywhere() {
    // The unroller's output must remain schedulable (it stresses operand
    // counts and memory ordering).
    let arch = imagine::central();
    for name in ["FFT-U4", "Block Warp-U2"] {
        let w = csched::kernels::by_name(name).expect("known kernel");
        let schedule = schedule_kernel(&arch, &w.kernel, SchedulerConfig::default())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(schedule.ii().is_some());
    }
}
