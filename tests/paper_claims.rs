//! Assertions tying the reproduction to the paper's §5 claims and §2
//! motivating example, at integration-test scale.
//!
//! The quantitative Figure 28/29 claims over the full grid run in release
//! mode (`paper-report` binary; see EXPERIMENTS.md); here we pin the
//! *qualitative* relationships on fast-to-schedule kernels so regressions
//! surface in `cargo test`.

use csched::core::{schedule_kernel, SchedulerConfig};
use csched::machine::{cost, imagine};

fn ii(arch: &csched::machine::Architecture, name: &str) -> u32 {
    let w = csched::kernels::by_name(name).expect("known kernel");
    schedule_kernel(arch, &w.kernel, SchedulerConfig::default())
        .unwrap_or_else(|e| panic!("{name} on {}: {e}", arch.name()))
        .ii()
        .expect("loop kernels")
}

#[test]
fn central_is_never_beaten() {
    // The paper: the central register file is the performance upper bound
    // (same unit mix and latencies everywhere).
    for name in ["FFT", "Merge", "Block Warp"] {
        let central = ii(&imagine::central(), name);
        for arch in [
            imagine::clustered(2),
            imagine::clustered(4),
            imagine::distributed(),
        ] {
            assert!(
                ii(&arch, name) >= central,
                "{name}: {} beat central",
                arch.name()
            );
        }
    }
}

#[test]
fn recurrence_bound_kernels_hit_parity_everywhere() {
    // Merge's II is recurrence-limited (load → compare → index update), so
    // every organisation achieves the same II — one of the paper's "seven
    // out of ten kernels have the same performance" parity cases.
    let central = ii(&imagine::central(), "Merge");
    assert_eq!(ii(&imagine::distributed(), "Merge"), central);
    assert_eq!(ii(&imagine::clustered(2), "Merge"), central);
}

#[test]
fn clustered_machines_pay_for_copies() {
    // Inter-cluster communications require copy operations with non-zero
    // latency and limited copy-unit bandwidth (§1): some kernel must pay.
    let arch = imagine::clustered(4);
    let mut total_copies = 0;
    for name in ["FFT", "Block Warp"] {
        let w = csched::kernels::by_name(name).unwrap();
        let s = schedule_kernel(&arch, &w.kernel, SchedulerConfig::default()).unwrap();
        total_copies += s.num_copies();
    }
    assert!(total_copies > 0, "clustered schedules should need copies");
}

#[test]
fn no_cross_block_backtracking_on_distributed() {
    // §5: "Communication scheduling does not require backtracking to
    // schedule any of the evaluation kernels on the distributed register
    // file architecture."
    let arch = imagine::distributed();
    for name in ["FFT", "Merge", "Block Warp"] {
        let w = csched::kernels::by_name(name).unwrap();
        let s = schedule_kernel(&arch, &w.kernel, SchedulerConfig::default()).unwrap();
        assert!(!s.stats().backtracked, "{name} needed §4.5 backtracking");
    }
}

#[test]
fn cost_model_matches_headline_bands() {
    // §1/§8: distributed ≈ 9% area / 6% power / 37% delay of central;
    // ≈ 56% area / 50% power of clustered(4). Generous bands — the model
    // is a re-derivation of [15], not a copy of its numbers.
    let p = cost::CostParams::default();
    let central = cost::estimate(&imagine::central(), &p);
    let clustered = cost::estimate(&imagine::clustered(4), &p);
    let dist = cost::estimate(&imagine::distributed(), &p);

    let (a, pw, d) = cost::normalized(&dist, &central).unwrap();
    assert!((0.04..=0.16).contains(&a), "area vs central {a:.3}");
    assert!((0.02..=0.12).contains(&pw), "power vs central {pw:.3}");
    assert!((0.20..=0.55).contains(&d), "delay vs central {d:.3}");

    let (a2, pw2, _) = cost::normalized(&dist, &clustered).unwrap();
    assert!((0.30..=0.80).contains(&a2), "area vs clustered {a2:.3}");
    assert!((0.20..=0.75).contains(&pw2), "power vs clustered {pw2:.3}");
}

#[test]
fn scaling_projection_favours_distributed() {
    // §8: the distributed advantage grows with unit count (12% area / 9%
    // power of clustered(4) at 48 units).
    let p = cost::CostParams::default();
    let ratios: Vec<f64> = [1usize, 4]
        .iter()
        .map(|&s| {
            let c = cost::estimate(&imagine::clustered_scaled(4, s), &p);
            let d = cost::estimate(&imagine::distributed_scaled(s), &p);
            d.area() / c.area()
        })
        .collect();
    assert!(
        ratios[1] < 0.5 * ratios[0],
        "advantage should widen: {ratios:?}"
    );
}

#[test]
fn motivating_example_needs_communication_scheduling() {
    // On the Figure 5 machine, disabling the smart parts (cost heuristic,
    // closing-first ordering) must still produce a *correct* schedule —
    // communication scheduling itself is what guarantees correctness.
    let arch = csched::machine::toy::motivating_example();
    let mut kb = csched::ir::KernelBuilder::new("fig4");
    use csched::machine::Opcode;
    let mem = kb.region("mem", true);
    let b = kb.straight_block("b");
    let a = kb.load(b, mem, 0i64.into(), 0i64.into());
    let bv = kb.push(b, Opcode::IAdd, [1i64.into(), 2i64.into()]);
    let cv = kb.push(b, Opcode::IAdd, [3i64.into(), 4i64.into()]);
    let s4 = kb.push(b, Opcode::IAdd, [a.into(), bv.into()]);
    let s5 = kb.push(b, Opcode::IAdd, [a.into(), cv.into()]);
    kb.store(b, mem, 10i64.into(), 0i64.into(), s4.into());
    kb.store(b, mem, 11i64.into(), 0i64.into(), s5.into());
    let kernel = kb.build().unwrap();

    for config in [
        SchedulerConfig::default(),
        SchedulerConfig::without_comm_cost(),
        SchedulerConfig::without_closing_first(),
        SchedulerConfig::cycle_order(),
    ] {
        let s = schedule_kernel(&arch, &kernel, config).expect("all variants schedule");
        csched::core::validate::validate(&arch, &kernel, &s).expect("and validate");
    }
}
