//! Property-based integration tests: random integer kernels scheduled on
//! shared-interconnect machines must always validate cleanly and execute
//! identically to the reference interpreter.
//!
//! The random generator lives in `tests/common`; proptest drives the seeds
//! and sizes. The toy Figure 5 machine and a down-scaled distributed
//! machine keep the scheduling cost per case small.

mod common;

use common::{differential_check, random_kernel, random_kernel_with_ops, TOY_OPS};
use csched::machine::{imagine, toy, ArchBuilder, Architecture, FuClass, Opcode};
use proptest::prelude::*;

/// A small distributed-style machine (2 ALUs, 1 MUL, 1 LS over 4 shared
/// buses with per-input register files) so property tests run fast.
fn mini_distributed() -> Architecture {
    let mut b = ArchBuilder::new("mini-distributed");
    let caps = |ops: &[Opcode]| {
        ops.iter()
            .map(|&o| csched::machine::default_capability(o))
            .collect::<Vec<_>>()
    };
    use Opcode::*;
    let alu_ops = [IAdd, ISub, IMin, IMax, And, Or, Xor, Select, Copy];
    let units = vec![
        b.functional_unit("ALU0", FuClass::Alu, 3, true, caps(&alu_ops)),
        b.functional_unit("ALU1", FuClass::Alu, 3, true, caps(&alu_ops)),
        b.functional_unit("MUL0", FuClass::Mul, 2, true, caps(&[IMul, Copy])),
        b.functional_unit("LS0", FuClass::Ls, 3, true, caps(&[Load, Store])),
    ];
    let buses: Vec<_> = (0..4).map(|i| b.bus(format!("GB{i}"))).collect();
    for &fu in &units {
        for &bus in &buses {
            b.connect_output(fu, bus);
        }
    }
    let inputs = [3usize, 3, 2, 3];
    for (&fu, &n) in units.iter().zip(&inputs) {
        for slot in 0..n {
            let rf = b.register_file(format!("RF_{}_{slot}", fu.index()), 16);
            let wp = b.write_port(rf);
            for &bus in &buses {
                b.connect_bus_to_write_port(bus, wp);
            }
            b.dedicated_read(rf, fu, slot);
        }
    }
    b.build().expect("mini machine is well-formed")
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    /// Random kernels schedule, validate and simulate correctly on the
    /// Figure 5 toy machine.
    #[test]
    fn random_kernels_on_toy_machine(seed in 1u64..u64::MAX, ops in 2usize..10) {
        // The toy machine only executes adds and subtracts.
        let kernel = random_kernel_with_ops(seed, ops, TOY_OPS);
        differential_check(&toy::motivating_example(), &kernel, 5, seed);
    }

    /// Random kernels schedule, validate and simulate correctly on a small
    /// distributed register file machine (shared buses, shared ports).
    #[test]
    fn random_kernels_on_mini_distributed(seed in 1u64..u64::MAX, ops in 2usize..16) {
        let kernel = random_kernel(seed, ops);
        differential_check(&mini_distributed(), &kernel, 5, seed);
    }
}

/// A fixed batch on the full Imagine machines (fewer cases: they are big).
#[test]
fn random_kernels_on_imagine_variants() {
    for seed in [3u64, 17, 91] {
        let kernel = random_kernel(seed, 8);
        for arch in [
            imagine::central(),
            imagine::clustered(4),
            imagine::distributed(),
        ] {
            differential_check(&arch, &kernel, 4, seed);
        }
    }
}

/// The mini machine itself is copy-connected (sanity for the generator).
#[test]
fn mini_distributed_is_copy_connected() {
    let arch = mini_distributed();
    assert!(arch.copy_connectivity().is_copy_connected());
    assert_eq!(arch.num_rfs(), 11);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Random kernels on randomly generated distributed-style machines:
    /// always schedulable, always valid, always semantically exact.
    #[test]
    fn random_kernels_on_random_distributed(seed in 1u64..u64::MAX, ops in 2usize..12) {
        let arch = common::random_distributed_arch(seed);
        prop_assert!(arch.copy_connectivity().is_copy_connected());
        let kernel = random_kernel(seed ^ 0xABCD, ops);
        differential_check(&arch, &kernel, 4, seed);
    }

    /// Random kernels on randomly generated two-cluster machines, where
    /// cross-cluster communications force copy insertion.
    #[test]
    fn random_kernels_on_random_clustered(seed in 1u64..u64::MAX, ops in 2usize..12) {
        let arch = common::random_clustered_arch(seed);
        prop_assert!(arch.copy_connectivity().is_copy_connected());
        let kernel = random_kernel(seed ^ 0x1234, ops);
        differential_check(&arch, &kernel, 4, seed);
    }
}
