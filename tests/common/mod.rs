//! Shared helpers for the integration tests: a random kernel generator
//! (for property tests) and a differential runner that schedules,
//! validates, simulates and cross-checks a kernel on an architecture.
//!
//! Each test target compiles this module separately, so items unused by a
//! particular target are expected.
#![allow(dead_code)]

use csched::core::{schedule_kernel, validate, SchedulerConfig};
use csched::ir::{interp, Kernel, KernelBuilder, Memory, Operand, ValueId, Word};
use csched::machine::{Architecture, Opcode};

/// Deterministic xorshift generator for reproducible random programs.
pub struct Rng(pub u64);

impl Rng {
    pub fn next(&mut self) -> u64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        self.0 = self.0.wrapping_mul(0x2545F4914F6CDD1D);
        self.0
    }

    pub fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Integer opcodes safe for random programs (no division, no floats — the
/// interpreter and simulator must agree bit-for-bit and never trap).
pub const RANDOM_OPS: &[Opcode] = &[
    Opcode::IAdd,
    Opcode::ISub,
    Opcode::IMin,
    Opcode::IMax,
    Opcode::And,
    Opcode::Or,
    Opcode::Xor,
    Opcode::IMul,
];

/// The subset of [`RANDOM_OPS`] the Figure 5 toy machine can execute.
pub const TOY_OPS: &[Opcode] = &[Opcode::IAdd, Opcode::ISub];

/// Builds a random streaming kernel over the full integer opcode palette.
pub fn random_kernel(seed: u64, loop_ops: usize) -> Kernel {
    random_kernel_with_ops(seed, loop_ops, RANDOM_OPS)
}

/// Builds a random streaming kernel: a preamble computing a few constants,
/// then a loop that loads from an input stream, applies a random integer
/// DAG drawn from `palette`, and stores one or more results.
pub fn random_kernel_with_ops(seed: u64, loop_ops: usize, palette: &[Opcode]) -> Kernel {
    let mut rng = Rng(seed | 1);
    let mut kb = KernelBuilder::new(format!("random-{seed:x}"));
    let input = kb.region("in", true);
    let output = kb.region("out", true);

    // Preamble: two derived constants.
    let pre = kb.straight_block("pre");
    let c0 = kb.push(
        pre,
        Opcode::IAdd,
        [(rng.below(100) as i64).into(), 1i64.into()],
    );
    let c1 = kb.push(pre, palette[0], [c0.into(), (rng.below(64) as i64).into()]);

    let lp = kb.loop_block("body");
    let i = kb.loop_var(lp, 0i64.into());
    let acc = kb.loop_var(lp, c1.into());

    let mut pool: Vec<ValueId> = vec![i, acc, c0, c1];
    let x = kb.load(lp, input, i.into(), 0i64.into());
    pool.push(x);
    let mut last = x;
    for k in 0..loop_ops {
        let op = palette[rng.below(palette.len())];
        let a = pool[rng.below(pool.len())];
        let bv: Operand = if rng.below(4) == 0 {
            (rng.below(32) as i64).into()
        } else {
            pool[rng.below(pool.len())].into()
        };
        let v = kb.push(lp, op, [a.into(), bv]);
        pool.push(v);
        last = v;
        // Occasionally store an intermediate value.
        if rng.below(5) == 0 {
            kb.store(
                lp,
                output,
                i.into(),
                (1000 + k as i64 * 16).into(),
                v.into(),
            );
        }
    }
    kb.store(lp, output, i.into(), 5000i64.into(), last.into());
    // Keep the accumulator recurrence tame: fold the last value in.
    let acc1 = kb.push(lp, palette[0], [acc.into(), last.into()]);
    kb.store(lp, output, i.into(), 6000i64.into(), acc1.into());
    let i1 = kb.push(lp, Opcode::IAdd, [i.into(), 1i64.into()]);
    kb.set_update(i, i1.into());
    kb.set_update(acc, acc1.into());
    kb.build().expect("random kernels are structurally valid")
}

/// Schedules `kernel` on `arch`, validates it independently, executes it on
/// the cycle simulator, and checks the memory image against the reference
/// interpreter. Panics with context on any divergence.
pub fn differential_check(arch: &Architecture, kernel: &Kernel, trip: u64, seed: u64) {
    let schedule = schedule_kernel(arch, kernel, SchedulerConfig::default())
        .unwrap_or_else(|e| panic!("[seed {seed:#x}] {} on {}: {e}", kernel.name(), arch.name()));
    validate::validate(arch, kernel, &schedule).unwrap_or_else(|errors| {
        panic!(
            "[seed {seed:#x}] {} on {}: invalid schedule: {errors:?}",
            kernel.name(),
            arch.name()
        )
    });

    let mut sim_mem = seeded_memory(trip);
    csched::sim::execute(kernel, &schedule, &mut sim_mem, trip)
        .unwrap_or_else(|e| panic!("[seed {seed:#x}] simulation failed: {e}"));

    let mut ref_mem = seeded_memory(trip);
    interp::run(kernel, &mut ref_mem, trip)
        .unwrap_or_else(|e| panic!("[seed {seed:#x}] interpreter failed: {e}"));

    assert_eq!(
        sim_mem.main,
        ref_mem.main,
        "[seed {seed:#x}] {} on {}: simulator and interpreter disagree",
        kernel.name(),
        arch.name()
    );
}

/// Input memory used by the random kernels.
pub fn seeded_memory(trip: u64) -> Memory {
    let mut mem = Memory::new();
    mem.write_block(0, (0..trip as i64).map(|v| Word::I(v * 31 - 7)));
    mem
}

/// Re-exports of the library's architecture generators (kept here so the
/// integration tests read naturally).
pub fn random_distributed_arch(seed: u64) -> Architecture {
    csched::machine::gen::random_distributed(seed)
}

pub fn random_clustered_arch(seed: u64) -> Architecture {
    csched::machine::gen::random_clustered(seed)
}
