//! Fault-injection acceptance suite: the scheduler's panic-free contract
//! on degraded Imagine machines.
//!
//! For **every** single-resource fault of `imagine::distributed()` and
//! `imagine::clustered(4)` — each functional unit, bus, and register-file
//! port individually failed — and a set of representative kernels,
//! `schedule_kernel` must either produce a schedule that passes
//! independent validation *on the degraded machine* or return a typed
//! `SchedError`. It must never panic, and never return a schedule that
//! validation rejects.
//!
//! The kernels cover a straight-line block, a software-pipelined loop, a
//! load/store + multiply mix, and randomly perturbed variants from the
//! shared generator, so the campaign exercises list scheduling, modulo
//! scheduling, and the copy-insertion machinery under degradation.

mod common;

use csched::core::faultinject::{breaking_faults, single_fault_campaign, FaultVerdict};
use csched::core::{SchedError, SchedulerConfig};
use csched::ir::{Kernel, KernelBuilder};
use csched::machine::{imagine, Architecture, Opcode};

/// A straight-line block: integer DAG with reuse, no loop.
fn straight_line() -> Kernel {
    let mut kb = KernelBuilder::new("straight");
    let b = kb.straight_block("b");
    let a = kb.push(b, Opcode::IAdd, [3i64.into(), 4i64.into()]);
    let s = kb.push(b, Opcode::ISub, [a.into(), 1i64.into()]);
    let m = kb.push(b, Opcode::IMax, [a.into(), s.into()]);
    kb.push(b, Opcode::Xor, [m.into(), s.into()]);
    kb.build().expect("valid kernel")
}

/// A small software-pipelined loop: out[i] = in[i] * 3.
fn scale_loop() -> Kernel {
    let mut kb = KernelBuilder::new("scale");
    let input = kb.region("in", true);
    let output = kb.region("out", true);
    let lp = kb.loop_block("body");
    let i = kb.loop_var(lp, 0i64.into());
    let x = kb.load(lp, input, i.into(), 0i64.into());
    let y = kb.push(lp, Opcode::IMul, [x.into(), 3i64.into()]);
    kb.store(lp, output, i.into(), 0i64.into(), y.into());
    let i1 = kb.push(lp, Opcode::IAdd, [i.into(), 1i64.into()]);
    kb.set_update(i, i1.into());
    kb.build().expect("valid kernel")
}

/// A loop mixing loads, stores, multiply and min/max — wider FU demand.
fn mixed_loop() -> Kernel {
    let mut kb = KernelBuilder::new("mixed");
    let input = kb.region("in", true);
    let output = kb.region("out", true);
    let lp = kb.loop_block("body");
    let i = kb.loop_var(lp, 0i64.into());
    let x = kb.load(lp, input, i.into(), 0i64.into());
    let sq = kb.push(lp, Opcode::IMul, [x.into(), x.into()]);
    let lo = kb.push(lp, Opcode::IMin, [sq.into(), 255i64.into()]);
    let hi = kb.push(lp, Opcode::IMax, [lo.into(), 0i64.into()]);
    kb.store(lp, output, i.into(), 0i64.into(), hi.into());
    let i1 = kb.push(lp, Opcode::IAdd, [i.into(), 1i64.into()]);
    kb.set_update(i, i1.into());
    kb.build().expect("valid kernel")
}

/// A reduced-budget configuration: the campaign cares about the
/// panic-free contract, not schedule quality, so bound the search tightly
/// to keep ~1300 (fault × kernel) scheduling runs fast.
fn campaign_config() -> SchedulerConfig {
    SchedulerConfig {
        max_ii: 24,
        max_attempts_per_ii: 2_000,
        search_budget: 96,
        ..SchedulerConfig::default()
    }
}

/// Runs the full single-fault campaign on `arch` and asserts the contract
/// held for every (fault, kernel) pair.
fn assert_campaign_holds(arch: &Architecture, kernels: &[(&str, &Kernel)]) {
    let entries = single_fault_campaign(arch, kernels, &campaign_config());
    assert_eq!(
        entries.len(),
        arch.single_resource_faults().len() * kernels.len(),
        "campaign must cover every fault × kernel pair"
    );
    let mut scheduled = 0usize;
    let mut rejected = 0usize;
    for e in &entries {
        assert!(
            e.verdict.contract_held(),
            "contract broken on {}: kernel {} fault {}: {:?}",
            arch.name(),
            e.kernel,
            e.fault_desc,
            e.verdict
        );
        match e.verdict {
            FaultVerdict::Scheduled { .. } => scheduled += 1,
            FaultVerdict::Rejected(_) => rejected += 1,
            // Unbudgeted campaigns never time out, and contract_held()
            // above already rules out Invalid.
            FaultVerdict::TimedOut { .. } | FaultVerdict::Invalid(_) => unreachable!(),
        }
    }
    // The campaign must be informative: most single faults are tolerable
    // (the machines have redundant units and buses), and at least some
    // faults on a shared-interconnect machine must actually bite.
    assert!(
        scheduled > rejected,
        "{}: expected most single faults tolerable, got {scheduled} scheduled vs {rejected} rejected",
        arch.name()
    );
}

#[test]
fn every_single_fault_on_distributed_holds_the_contract() {
    let arch = imagine::distributed();
    let (straight, scale, mixed) = (straight_line(), scale_loop(), mixed_loop());
    assert_campaign_holds(
        &arch,
        &[
            ("straight", &straight),
            ("scale", &scale),
            ("mixed", &mixed),
        ],
    );
}

#[test]
fn every_single_fault_on_clustered_holds_the_contract() {
    let arch = imagine::clustered(4);
    let (straight, scale, mixed) = (straight_line(), scale_loop(), mixed_loop());
    assert_campaign_holds(
        &arch,
        &[
            ("straight", &straight),
            ("scale", &scale),
            ("mixed", &mixed),
        ],
    );
}

/// Perturbed kernels from the shared random generator: different seeds
/// give differently-shaped dependence DAGs, so the degraded machines are
/// exercised beyond the hand-written kernels.
#[test]
fn perturbed_kernels_hold_the_contract_on_degraded_machines() {
    let arch = imagine::distributed();
    let k1 = common::random_kernel(0x5eed_0001, 5);
    let k2 = common::random_kernel(0xfa17_ed01, 7);
    assert_campaign_holds(&arch, &[("perturbed-a", &k1), ("perturbed-b", &k2)]);
}

/// Faults that provably break the machine (copy connectivity lost, or an
/// opcode with no remaining capable unit) must be reported as the
/// corresponding machine-level typed errors — and the campaign verdicts
/// for those faults must be rejections, not schedules.
#[test]
fn breaking_faults_are_typed_machine_errors() {
    let arch = imagine::distributed();
    let kernel = mixed_loop();
    let broken = breaking_faults(&arch, &kernel);
    // Killing e.g. the only unit class for multiplies must break something.
    assert!(
        !broken.is_empty(),
        "some single fault must break the distributed machine for this kernel"
    );
    for (fault, err) in &broken {
        assert!(
            matches!(
                err,
                SchedError::NotCopyConnected { .. } | SchedError::NoCapableUnit { .. }
            ),
            "fault {} produced unexpected error {err:?}",
            fault.describe(&arch)
        );
        // The error's rendering names machine resources, not opaque IDs.
        let msg = err.to_string();
        assert!(!msg.is_empty());
    }
}
