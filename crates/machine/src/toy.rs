//! The motivating-example machine of the paper (Figure 5).
//!
//! Three functional units — `ADD0`, `LS` (load/store), `ADD1` — and three
//! register files connected by two shared buses:
//!
//! - `BUS0` is driven by either `ADD0`'s or `LS`'s output ("either output
//!   can drive shared bus") and reaches `RF0`'s write port and the shared
//!   write port of the center register file `RFC`.
//! - `BUS1` is driven by `ADD1`'s or `LS`'s output (`LS`'s "output can
//!   drive either or both buses") and reaches `RF1`'s write port and
//!   `RFC`'s shared write port ("either bus can drive the shared port").
//! - `RF0` feeds `ADD0`'s inputs, `RF1` feeds `ADD1`'s inputs, and `RFC`
//!   feeds `LS`'s inputs, all through dedicated read ports.
//!
//! Scheduling the five-operation fragment of Figure 4 onto this machine
//! reproduces the paper's Figures 6–7 and 13–24: a conventional scheduler
//! produces an incorrect schedule because operations 1 and 2 contend for
//! `BUS0`, while communication scheduling stages `a` through `RFC` and
//! inserts one copy operation (executed on `LS`) to complete the route to
//! `ADD0`.

use crate::arch::{ArchBuilder, Architecture, FuClass};
use crate::op::{Capability, Opcode};

/// Builds the Figure 5 machine.
///
/// All operations on this machine have unit latency, matching the paper's
/// footnote ("for illustrative purposes, all operations have unit
/// latency").
///
/// # Examples
///
/// ```
/// let arch = csched_machine::toy::motivating_example();
/// assert_eq!(arch.num_fus(), 3);
/// assert_eq!(arch.num_rfs(), 3);
/// assert!(arch.copy_connectivity().is_copy_connected());
/// ```
pub fn motivating_example() -> Architecture {
    let unit = |op: Opcode| Capability::new(op, 1);
    let mut b = ArchBuilder::new("toy-fig5");

    let rf0 = b.register_file("RF0", 8);
    let rfc = b.register_file("RFC", 8);
    let rf1 = b.register_file("RF1", 8);

    let add0 = b.functional_unit(
        "ADD0",
        FuClass::Alu,
        2,
        true,
        [unit(Opcode::IAdd), unit(Opcode::ISub), unit(Opcode::Copy)],
    );
    let ls = b.functional_unit(
        "LS",
        FuClass::Ls,
        3,
        true,
        [unit(Opcode::Load), unit(Opcode::Store), unit(Opcode::Copy)],
    );
    let add1 = b.functional_unit(
        "ADD1",
        FuClass::Alu,
        2,
        true,
        [unit(Opcode::IAdd), unit(Opcode::ISub), unit(Opcode::Copy)],
    );

    let bus0 = b.bus("BUS0");
    let bus1 = b.bus("BUS1");

    // Write side: ADD0 -> BUS0; ADD1 -> BUS1; LS -> either or both buses.
    b.connect_output(add0, bus0);
    b.connect_output(add1, bus1);
    b.connect_output(ls, bus0);
    b.connect_output(ls, bus1);
    b.set_output_fanout(ls, 2);

    // BUS0 -> RF0 and RFC; BUS1 -> RF1 and RFC (RFC has one shared port).
    let wp0 = b.write_port(rf0);
    let wpc = b.write_port(rfc);
    let wp1 = b.write_port(rf1);
    b.connect_bus_to_write_port(bus0, wp0);
    b.connect_bus_to_write_port(bus0, wpc);
    b.connect_bus_to_write_port(bus1, wp1);
    b.connect_bus_to_write_port(bus1, wpc);

    // Read side: dedicated ports.
    b.dedicated_read(rf0, add0, 0);
    b.dedicated_read(rf0, add0, 1);
    b.dedicated_read(rfc, ls, 0);
    b.dedicated_read(rfc, ls, 1);
    b.dedicated_read(rfc, ls, 2);
    b.dedicated_read(rf1, add1, 0);
    b.dedicated_read(rf1, add1, 1);

    b.build().expect("toy machine is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::RfId;

    #[test]
    fn shape_matches_figure5() {
        let a = motivating_example();
        assert_eq!(a.num_fus(), 3);
        assert_eq!(a.num_rfs(), 3);
        // 2 shared buses + 7 dedicated read wires.
        assert_eq!(a.num_buses(), 9);
        assert_eq!(a.num_write_ports(), 3);
        assert_eq!(a.num_read_ports(), 7);
    }

    #[test]
    fn write_stub_sets_match_figure15() {
        let a = motivating_example();
        let add0 = a.fu_by_name("ADD0").unwrap();
        let ls = a.fu_by_name("LS").unwrap();
        let add1 = a.fu_by_name("ADD1").unwrap();
        // ADD0 can write RF0 or RFC (via BUS0): 2 stubs.
        assert_eq!(a.write_stubs(add0).len(), 2);
        // LS drives both buses: 4 stubs (RF0, RFC via BUS0; RF1, RFC via BUS1).
        assert_eq!(a.write_stubs(ls).len(), 4);
        assert_eq!(a.write_stubs(add1).len(), 2);
        let rfc = a.rf_by_name("RFC").unwrap();
        assert!(a.writable_rfs(ls).contains(&rfc));
    }

    #[test]
    fn read_sides_are_dedicated() {
        let a = motivating_example();
        let add0 = a.fu_by_name("ADD0").unwrap();
        assert_eq!(a.read_stubs(add0, 0).len(), 1);
        assert_eq!(a.read_stubs(add0, 0)[0].rf, RfId::from_raw(0));
    }

    #[test]
    fn copy_connected_with_expected_distances() {
        let a = motivating_example();
        let c = a.copy_connectivity();
        assert!(c.is_copy_connected(), "violations: {:?}", c.violations());
        let rf0 = a.rf_by_name("RF0").unwrap();
        let rfc = a.rf_by_name("RFC").unwrap();
        let rf1 = a.rf_by_name("RF1").unwrap();
        // LS reads RFC and writes anywhere: RFC -> RF0/RF1 in one copy.
        assert_eq!(c.copy_distance(rfc, rf0), Some(1));
        assert_eq!(c.copy_distance(rfc, rf1), Some(1));
        // ADD0 reads RF0, writes RF0/RFC: RF0 -> RFC in one copy.
        assert_eq!(c.copy_distance(rf0, rfc), Some(1));
        // RF0 -> RF1 needs two copies (through RFC).
        assert_eq!(c.copy_distance(rf0, rf1), Some(2));
    }

    #[test]
    fn ls_fanout_is_two() {
        let a = motivating_example();
        let ls = a.fu_by_name("LS").unwrap();
        assert_eq!(a.fu(ls).output_fanout(), 2);
        assert_eq!(a.output_buses(ls).len(), 2);
        let add0 = a.fu_by_name("ADD0").unwrap();
        assert_eq!(a.fu(add0).output_fanout(), 1);
    }
}
