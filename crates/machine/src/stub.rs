//! Write and read stubs — the two halves of a communication route
//! (paper §3, Fig 12).
//!
//! A *write stub* is the interconnect used to move a result from a
//! functional unit's output into a register file: the output itself, one
//! bus, and one register-file write port. A *read stub* is the interconnect
//! used to move an operand from a register file into a functional-unit
//! input: one read port, one bus, and the input. If both stubs access the
//! same register file they form a *route*; otherwise communication
//! scheduling inserts copy operations to connect them.

use crate::ids::{BusId, FuId, InputRef, ReadPortId, RfId, WritePortId};
use crate::resource::Resource;

/// A write stub: `(functional-unit output, bus, register-file write port)`.
///
/// The stub is allocated on the cycle the writing operation *completes*
/// (paper §4.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct WriteStub {
    /// Unit whose output drives the bus.
    pub fu: FuId,
    /// Bus carrying the value.
    pub bus: BusId,
    /// Register file being written (the file `port` belongs to).
    pub rf: RfId,
    /// Write port receiving the value.
    pub port: WritePortId,
}

impl WriteStub {
    /// The resources the stub occupies on its cycle, in a fixed order:
    /// output, bus, write port.
    pub fn resources(&self) -> [Resource; 3] {
        [
            Resource::FuOutput(self.fu),
            Resource::Bus(self.bus),
            Resource::WritePort(self.port),
        ]
    }
}

/// A read stub: `(register-file read port, bus, functional-unit input)`.
///
/// The stub is allocated on the cycle the reading operation *issues*
/// (paper §4.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ReadStub {
    /// Register file being read (the file `port` belongs to).
    pub rf: RfId,
    /// Read port producing the value.
    pub port: ReadPortId,
    /// Bus carrying the value.
    pub bus: BusId,
    /// Unit whose input receives the value.
    pub fu: FuId,
    /// Input slot (operand position) receiving the value.
    pub slot: u8,
}

impl ReadStub {
    /// The input this stub feeds.
    pub fn input(&self) -> InputRef {
        InputRef {
            fu: self.fu,
            slot: self.slot,
        }
    }

    /// The resources the stub occupies on its cycle, in a fixed order:
    /// read port, bus, input.
    pub fn resources(&self) -> [Resource; 3] {
        [
            Resource::ReadPort(self.port),
            Resource::Bus(self.bus),
            Resource::FuInput(self.input()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_stub_resources() {
        let s = WriteStub {
            fu: FuId::from_raw(1),
            bus: BusId::from_raw(2),
            rf: RfId::from_raw(3),
            port: WritePortId::from_raw(4),
        };
        let r = s.resources();
        assert_eq!(r[0], Resource::FuOutput(FuId::from_raw(1)));
        assert_eq!(r[1], Resource::Bus(BusId::from_raw(2)));
        assert_eq!(r[2], Resource::WritePort(WritePortId::from_raw(4)));
    }

    #[test]
    fn read_stub_resources() {
        let s = ReadStub {
            rf: RfId::from_raw(0),
            port: ReadPortId::from_raw(5),
            bus: BusId::from_raw(6),
            fu: FuId::from_raw(7),
            slot: 2,
        };
        let r = s.resources();
        assert_eq!(r[0], Resource::ReadPort(ReadPortId::from_raw(5)));
        assert_eq!(r[1], Resource::Bus(BusId::from_raw(6)));
        assert_eq!(r[2], Resource::FuInput(InputRef::new(FuId::from_raw(7), 2)));
        assert_eq!(s.input().slot(), 2);
    }
}
