//! Dense, typed identifiers for the components of an [`Architecture`].
//!
//! Every component of a machine description (functional units, register
//! files, buses, ports) is stored in a dense vector and referred to by a
//! small index newtype. The newtypes prevent mixing up, say, a bus index and
//! a register-file index at compile time ([C-NEWTYPE]).
//!
//! [`Architecture`]: crate::Architecture

use core::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// Creates an id from a raw index.
            ///
            /// Ids are normally produced by [`ArchBuilder`]; this
            /// constructor exists for tests and for tools that serialize
            /// machine descriptions.
            ///
            /// [`ArchBuilder`]: crate::ArchBuilder
            pub fn from_raw(index: usize) -> Self {
                Self(index as u32)
            }

            /// Returns the raw dense index of this id.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifies a functional unit within an architecture.
    FuId,
    "fu"
);
id_type!(
    /// Identifies a register file within an architecture.
    RfId,
    "rf"
);
id_type!(
    /// Identifies a bus within an architecture.
    ///
    /// Dedicated point-to-point wires are modelled as buses with a single
    /// driver and a single receiver, so all data movement is uniformly
    /// "through a bus".
    BusId,
    "bus"
);
id_type!(
    /// Identifies a register-file *write* port, globally within an
    /// architecture (not per register file).
    WritePortId,
    "wp"
);
id_type!(
    /// Identifies a register-file *read* port, globally within an
    /// architecture (not per register file).
    ReadPortId,
    "rp"
);

/// Identifies one operand input of a functional unit.
///
/// Operand `slot` of an operation scheduled on functional unit `fu` is read
/// through input `slot` of that unit.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InputRef {
    /// The functional unit owning the input.
    pub fu: FuId,
    /// The input slot (operand position).
    pub slot: u8,
}

impl InputRef {
    /// Creates a reference to input `slot` of `fu`.
    pub fn new(fu: FuId, slot: usize) -> Self {
        InputRef {
            fu,
            slot: slot as u8,
        }
    }

    /// The input slot as a `usize`.
    pub fn slot(self) -> usize {
        self.slot as usize
    }
}

impl fmt::Debug for InputRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.in{}", self.fu, self.slot)
    }
}

impl fmt::Display for InputRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.in{}", self.fu, self.slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_round_trip() {
        let fu = FuId::from_raw(3);
        assert_eq!(fu.index(), 3);
        assert_eq!(format!("{fu}"), "fu3");
        assert_eq!(format!("{fu:?}"), "fu3");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(BusId::from_raw(1) < BusId::from_raw(2));
        assert_eq!(RfId::from_raw(5), RfId::from_raw(5));
    }

    #[test]
    fn input_ref_display() {
        let input = InputRef::new(FuId::from_raw(2), 1);
        assert_eq!(format!("{input}"), "fu2.in1");
        assert_eq!(input.slot(), 1);
    }
}
