//! Copy-connectivity analysis (paper Appendix A).
//!
//! An architecture is *copy-connected* when, for any producer/consumer pair
//! of operations, the producer can write its result into *some* register
//! file from which zero or more copy operations can move it into *some*
//! register file the consumer's operand input can read. Communication
//! scheduling is guaranteed to complete only on copy-connected
//! architectures, so [`CopyConnectivity::is_copy_connected`] is checked by
//! the scheduler's public entry points.
//!
//! The analysis also exposes the minimum number of copy operations needed
//! between any pair of register files, which the paper's communication-cost
//! heuristic (eq 1) uses to estimate `requiredCopies`.

use crate::arch::Architecture;
use crate::ids::{FuId, RfId};
use crate::op::Opcode;

/// Result of analysing an architecture's copy connectivity.
///
/// # Examples
///
/// ```
/// use csched_machine::imagine;
///
/// let arch = imagine::clustered(4);
/// let conn = arch.copy_connectivity();
/// assert!(conn.is_copy_connected());
/// ```
#[derive(Clone, Debug)]
pub struct CopyConnectivity {
    num_rfs: usize,
    /// `dist[a * num_rfs + b]` = minimum copies to move a value from
    /// register file `a` to register file `b`; `u32::MAX` if unreachable.
    dist: Vec<u32>,
    /// Whether every producer-output/consumer-input pair is connected.
    copy_connected: bool,
    /// Pairs that break connectivity (producer unit, consumer unit, slot).
    violations: Vec<(FuId, FuId, usize)>,
}

const UNREACHABLE: u32 = u32::MAX;

impl CopyConnectivity {
    /// Analyses `arch`. Called by [`Architecture::copy_connectivity`].
    pub(crate) fn analyze(arch: &Architecture) -> Self {
        let n = arch.num_rfs();
        let mut dist = vec![UNREACHABLE; n * n];
        for rf in 0..n {
            dist[rf * n + rf] = 0;
        }
        // One-copy edges: register file A -> B if some copy-capable unit can
        // read its single operand (slot 0) from A and write its result to B.
        for fu in arch.fu_ids() {
            if !arch.fu(fu).can_execute(Opcode::Copy) {
                continue;
            }
            let sources = arch.readable_rfs(fu, 0);
            let sinks = arch.writable_rfs(fu);
            for &a in &sources {
                for &b in &sinks {
                    if a != b {
                        let cell = &mut dist[a.index() * n + b.index()];
                        *cell = (*cell).min(1);
                    }
                }
            }
        }
        // Floyd–Warshall for minimum copy counts.
        for k in 0..n {
            for i in 0..n {
                let dik = dist[i * n + k];
                if dik == UNREACHABLE {
                    continue;
                }
                for j in 0..n {
                    let dkj = dist[k * n + j];
                    if dkj == UNREACHABLE {
                        continue;
                    }
                    let through = dik + dkj;
                    if through < dist[i * n + j] {
                        dist[i * n + j] = through;
                    }
                }
            }
        }

        // Appendix A check: for every unit that can produce a result and
        // every consumer input used by some capability, a finite-copy path
        // must exist from some writable RF to some readable RF.
        let mut copy_connected = true;
        let mut violations = Vec::new();
        // Hoist the per-consumer readable lists out of the producer loop:
        // `readable_rfs` allocates, and the check visits every
        // (producer, consumer, slot) triple.
        let consumer_slots: Vec<(FuId, usize, Vec<RfId>)> = arch
            .fu_ids()
            .flat_map(|consumer| {
                let cu = arch.fu(consumer);
                (0..cu.num_inputs())
                    .filter(|&slot| {
                        cu.capabilities()
                            .iter()
                            .any(|c| c.opcode.num_operands() > slot)
                    })
                    .map(move |slot| (consumer, slot, arch.readable_rfs(consumer, slot)))
            })
            .collect();
        for producer in arch.fu_ids() {
            let produces = arch
                .fu(producer)
                .capabilities()
                .iter()
                .any(|c| c.opcode.has_result());
            if !produces {
                continue;
            }
            let writable = arch.writable_rfs(producer);
            for (consumer, slot, readable) in &consumer_slots {
                let reachable = writable.iter().any(|&a| {
                    readable
                        .iter()
                        .any(|&b| dist[a.index() * n + b.index()] != UNREACHABLE)
                });
                if !reachable {
                    copy_connected = false;
                    violations.push((producer, *consumer, *slot));
                }
            }
        }

        CopyConnectivity {
            num_rfs: n,
            dist,
            copy_connected,
            violations,
        }
    }

    /// Whether the architecture satisfies the Appendix A constraint for all
    /// producer/consumer pairs.
    pub fn is_copy_connected(&self) -> bool {
        self.copy_connected
    }

    /// The `(producer, consumer, operand slot)` triples that violate copy
    /// connectivity (empty when [`Self::is_copy_connected`] is true).
    pub fn violations(&self) -> &[(FuId, FuId, usize)] {
        &self.violations
    }

    /// Minimum number of copy operations needed to move a value already in
    /// register file `from` into register file `to` (0 when `from == to`),
    /// or `None` when impossible.
    pub fn copy_distance(&self, from: RfId, to: RfId) -> Option<u32> {
        let d = self.dist[from.index() * self.num_rfs + to.index()];
        (d != UNREACHABLE).then_some(d)
    }

    /// Minimum copies needed for *any* communication from `producer`'s
    /// output to `consumer`'s input `slot`, over all stub choices.
    ///
    /// Returns `None` if no route exists at all (only possible on
    /// non-copy-connected machines).
    pub fn min_route_copies(
        &self,
        arch: &Architecture,
        producer: FuId,
        consumer: FuId,
        slot: usize,
    ) -> Option<u32> {
        // `read_stubs` is only defined for slots the consumer actually has;
        // a nonexistent operand slot can never be routed to.
        if slot >= arch.fu(consumer).num_inputs() {
            return None;
        }
        let mut best: Option<u32> = None;
        for ws in arch.write_stubs(producer) {
            for rs in arch.read_stubs(consumer, slot) {
                if let Some(d) = self.copy_distance(ws.rf, rs.rf) {
                    best = Some(best.map_or(d, |b: u32| b.min(d)));
                    if best == Some(0) {
                        return best;
                    }
                }
            }
        }
        best
    }
}

impl Architecture {
    /// Runs (and caches nothing; callers should hold on to the result) the
    /// copy-connectivity analysis of Appendix A.
    pub fn copy_connectivity(&self) -> CopyConnectivity {
        CopyConnectivity::analyze(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{ArchBuilder, FuClass};
    use crate::op::{default_capability, Opcode};

    /// Two ALUs with private RFs and a copy unit bridging rf0 -> rf1 only.
    fn one_way_bridge() -> Architecture {
        let mut b = ArchBuilder::new("bridge");
        let rf0 = b.register_file("RF0", 8);
        let rf1 = b.register_file("RF1", 8);
        let a0 = b.functional_unit(
            "A0",
            FuClass::Alu,
            2,
            true,
            [default_capability(Opcode::IAdd)],
        );
        let a1 = b.functional_unit(
            "A1",
            FuClass::Alu,
            2,
            true,
            [default_capability(Opcode::IAdd)],
        );
        let cp = b.functional_unit(
            "CP",
            FuClass::CopyUnit,
            1,
            true,
            [default_capability(Opcode::Copy)],
        );
        b.dedicated_write(a0, rf0);
        b.dedicated_write(a1, rf1);
        for s in 0..2 {
            b.dedicated_read(rf0, a0, s);
            b.dedicated_read(rf1, a1, s);
        }
        // copy unit reads rf0, writes rf1
        b.dedicated_read(rf0, cp, 0);
        b.dedicated_write(cp, rf1);
        b.build().unwrap()
    }

    #[test]
    fn bridge_distances() {
        let arch = one_way_bridge();
        let c = arch.copy_connectivity();
        let rf0 = RfId::from_raw(0);
        let rf1 = RfId::from_raw(1);
        assert_eq!(c.copy_distance(rf0, rf0), Some(0));
        assert_eq!(c.copy_distance(rf0, rf1), Some(1));
        assert_eq!(c.copy_distance(rf1, rf0), None);
    }

    #[test]
    fn one_way_bridge_is_not_copy_connected() {
        // A1's result can never reach A0's inputs (no rf1 -> rf0 path).
        let arch = one_way_bridge();
        let c = arch.copy_connectivity();
        assert!(!c.is_copy_connected());
        let a0 = arch.fu_by_name("A0").unwrap();
        let a1 = arch.fu_by_name("A1").unwrap();
        assert!(c.violations().iter().any(|&(p, q, _)| p == a1 && q == a0));
        // But A0 -> A1 is fine (through one copy).
        assert_eq!(c.min_route_copies(&arch, a0, a1, 0), Some(1));
        assert_eq!(c.min_route_copies(&arch, a1, a0, 0), None);
    }

    #[test]
    fn two_way_bridge_is_copy_connected() {
        let mut b = ArchBuilder::new("bridge2");
        let rf0 = b.register_file("RF0", 8);
        let rf1 = b.register_file("RF1", 8);
        let a0 = b.functional_unit(
            "A0",
            FuClass::Alu,
            2,
            true,
            [default_capability(Opcode::IAdd)],
        );
        let a1 = b.functional_unit(
            "A1",
            FuClass::Alu,
            2,
            true,
            [default_capability(Opcode::IAdd)],
        );
        let cp0 = b.functional_unit(
            "CP0",
            FuClass::CopyUnit,
            1,
            true,
            [default_capability(Opcode::Copy)],
        );
        let cp1 = b.functional_unit(
            "CP1",
            FuClass::CopyUnit,
            1,
            true,
            [default_capability(Opcode::Copy)],
        );
        b.dedicated_write(a0, rf0);
        b.dedicated_write(a1, rf1);
        for s in 0..2 {
            b.dedicated_read(rf0, a0, s);
            b.dedicated_read(rf1, a1, s);
        }
        b.dedicated_read(rf0, cp0, 0);
        b.dedicated_write(cp0, rf1);
        b.dedicated_read(rf1, cp1, 0);
        b.dedicated_write(cp1, rf0);
        let arch = b.build().unwrap();
        let c = arch.copy_connectivity();
        assert!(c.is_copy_connected(), "violations: {:?}", c.violations());
        assert_eq!(c.copy_distance(rf1, rf0), Some(1));
        let a0 = arch.fu_by_name("A0").unwrap();
        let a1 = arch.fu_by_name("A1").unwrap();
        // Same unit: zero copies (write to own RF, read back).
        assert_eq!(c.min_route_copies(&arch, a0, a0, 0), Some(0));
        assert_eq!(c.min_route_copies(&arch, a1, a0, 1), Some(1));
    }

    #[test]
    fn single_rf_trivially_connected() {
        let mut b = ArchBuilder::new("single");
        let rf = b.register_file("RF", 8);
        let a = b.functional_unit(
            "A",
            FuClass::Alu,
            2,
            true,
            [default_capability(Opcode::IAdd)],
        );
        b.dedicated_write(a, rf);
        b.dedicated_read(rf, a, 0);
        b.dedicated_read(rf, a, 1);
        let arch = b.build().unwrap();
        let c = arch.copy_connectivity();
        assert!(c.is_copy_connected());
        assert_eq!(
            c.min_route_copies(&arch, FuId::from_raw(0), FuId::from_raw(0), 1),
            Some(0)
        );
    }
}
