//! Architecture descriptions: functional units, register files, buses and
//! the connectivity between them.
//!
//! The model is deliberately uniform: *every* transfer of a value goes
//! functional-unit output → bus → register-file write port on the producing
//! side, and register-file read port → bus → functional-unit input on the
//! consuming side. Architectures with dedicated wires (the central and
//! clustered register files of the paper) are expressed with
//! single-driver/single-receiver buses, so the scheduler needs no special
//! cases.

use std::collections::HashMap;
use std::fmt;

use crate::ids::{BusId, FuId, InputRef, ReadPortId, RfId, WritePortId};
use crate::op::{Capability, Opcode};
use crate::stub::{ReadStub, WriteStub};

/// Broad classification of a functional unit, used for display, for cost
/// accounting, and by architecture builders.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FuClass {
    /// General ALU (the paper's adders).
    Alu,
    /// Multiplier.
    Mul,
    /// Divider / square-root unit.
    Div,
    /// Permutation unit.
    Pu,
    /// Scratchpad unit.
    Sp,
    /// Load/store unit.
    Ls,
    /// Dedicated inter-cluster copy unit (clustered architectures only).
    CopyUnit,
}

impl fmt::Display for FuClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FuClass::Alu => "alu",
            FuClass::Mul => "mul",
            FuClass::Div => "div",
            FuClass::Pu => "pu",
            FuClass::Sp => "sp",
            FuClass::Ls => "ls",
            FuClass::CopyUnit => "copy",
        };
        f.write_str(s)
    }
}

/// A functional unit: a named execution resource with input slots, an
/// optional output, and a set of opcode capabilities.
#[derive(Clone, Debug)]
pub struct FunctionalUnit {
    pub(crate) name: String,
    pub(crate) class: FuClass,
    pub(crate) caps: Vec<Capability>,
    pub(crate) num_inputs: usize,
    pub(crate) has_output: bool,
    /// Maximum number of buses the output may drive simultaneously on one
    /// cycle (always with the same value). The Imagine distributed machine
    /// uses 1; the motivating example's ADD1 "can drive either or both
    /// buses" (2).
    pub(crate) output_fanout: usize,
}

impl FunctionalUnit {
    /// The unit's display name (e.g. `"ADD0"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The unit's class.
    pub fn class(&self) -> FuClass {
        self.class
    }

    /// The unit's capability list.
    pub fn capabilities(&self) -> &[Capability] {
        &self.caps
    }

    /// Returns the capability for `op`, if the unit can execute it.
    pub fn capability(&self, op: Opcode) -> Option<Capability> {
        self.caps.iter().copied().find(|c| c.opcode == op)
    }

    /// Whether the unit can execute `op`.
    pub fn can_execute(&self, op: Opcode) -> bool {
        self.capability(op).is_some()
    }

    /// Number of operand input slots.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Whether the unit has a result output.
    pub fn has_output(&self) -> bool {
        self.has_output
    }

    /// Maximum simultaneous buses the output can drive.
    pub fn output_fanout(&self) -> usize {
        self.output_fanout
    }
}

/// A register file: named storage with a capacity and read/write ports.
#[derive(Clone, Debug)]
pub struct RegisterFile {
    pub(crate) name: String,
    pub(crate) capacity: usize,
    pub(crate) read_ports: Vec<ReadPortId>,
    pub(crate) write_ports: Vec<WritePortId>,
}

impl RegisterFile {
    /// The register file's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of registers (words) the file holds. Used by the register
    /// pressure post-pass and the simulator; the scheduler itself follows
    /// the paper in assuming registers are plentiful (§7).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The file's read ports.
    pub fn read_ports(&self) -> &[ReadPortId] {
        &self.read_ports
    }

    /// The file's write ports.
    pub fn write_ports(&self) -> &[WritePortId] {
        &self.write_ports
    }
}

/// A bus: carries one value per cycle from one driver to one or more
/// receivers.
#[derive(Clone, Debug)]
pub struct Bus {
    pub(crate) name: String,
}

impl Bus {
    /// The bus's display name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// Errors produced when validating an architecture description.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ArchError {
    /// A functional unit has a capability producing results but no output.
    OutputlessProducer {
        /// The offending unit.
        fu: FuId,
        /// The capability that needs an output.
        opcode: Opcode,
    },
    /// A functional unit has a capability with more operands than the unit
    /// has input slots.
    NotEnoughInputs {
        /// The offending unit.
        fu: FuId,
        /// The capability that needs more inputs.
        opcode: Opcode,
    },
    /// A unit with an output has no path to any register file.
    UnreachableOutput {
        /// The offending unit.
        fu: FuId,
    },
    /// A unit input used by some capability cannot read from any register
    /// file.
    UnreachableInput {
        /// The offending input.
        input: InputRef,
    },
    /// The architecture has no functional units.
    Empty,
    /// `output_fanout` is zero for a unit with an output.
    ZeroFanout {
        /// The offending unit.
        fu: FuId,
    },
}

impl fmt::Display for ArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchError::OutputlessProducer { fu, opcode } => {
                write!(f, "unit {fu} executes {opcode} but has no output")
            }
            ArchError::NotEnoughInputs { fu, opcode } => {
                write!(f, "unit {fu} executes {opcode} but has too few inputs")
            }
            ArchError::UnreachableOutput { fu } => {
                write!(f, "output of unit {fu} cannot reach any register file")
            }
            ArchError::UnreachableInput { input } => {
                write!(f, "input {input} cannot read from any register file")
            }
            ArchError::Empty => write!(f, "architecture has no functional units"),
            ArchError::ZeroFanout { fu } => {
                write!(f, "unit {fu} has an output with zero fanout")
            }
        }
    }
}

impl std::error::Error for ArchError {}

/// A complete, validated machine description.
///
/// Construct one with [`ArchBuilder`] or use the pre-built Imagine variants
/// in [`crate::imagine`] and the toy machine in [`crate::toy`].
///
/// # Examples
///
/// ```
/// use csched_machine::imagine;
///
/// let arch = imagine::distributed();
/// assert_eq!(arch.num_rfs(), 43); // one register file per FU input
/// assert!(arch.copy_connectivity().is_copy_connected());
/// ```
#[derive(Clone)]
pub struct Architecture {
    pub(crate) name: String,
    pub(crate) fus: Vec<FunctionalUnit>,
    pub(crate) rfs: Vec<RegisterFile>,
    pub(crate) buses: Vec<Bus>,
    /// Register file owning each write port (indexed by `WritePortId`).
    pub(crate) wport_rf: Vec<RfId>,
    /// Register file owning each read port (indexed by `ReadPortId`).
    pub(crate) rport_rf: Vec<RfId>,
    /// Buses each functional unit output can drive.
    pub(crate) output_buses: Vec<Vec<BusId>>,
    /// Write ports each bus can drive.
    pub(crate) bus_wports: Vec<Vec<WritePortId>>,
    /// Buses each read port can drive.
    pub(crate) rport_buses: Vec<Vec<BusId>>,
    /// Inputs each bus can feed, per bus.
    pub(crate) bus_inputs: Vec<Vec<InputRef>>,
    /// Precomputed write stubs per functional unit.
    pub(crate) write_stubs: Vec<Vec<WriteStub>>,
    /// Precomputed read stubs per (fu, slot), indexed by input offset.
    pub(crate) read_stubs: Vec<Vec<ReadStub>>,
    /// Offset of (fu, slot 0) into flattened input-indexed arrays.
    pub(crate) input_offsets: Vec<usize>,
    /// Total number of inputs across all units.
    pub(crate) total_inputs: usize,
}

impl fmt::Debug for Architecture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Architecture")
            .field("name", &self.name)
            .field("fus", &self.fus.len())
            .field("rfs", &self.rfs.len())
            .field("buses", &self.buses.len())
            .finish()
    }
}

impl Architecture {
    /// The architecture's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of functional units.
    pub fn num_fus(&self) -> usize {
        self.fus.len()
    }

    /// Number of register files.
    pub fn num_rfs(&self) -> usize {
        self.rfs.len()
    }

    /// Number of buses.
    pub fn num_buses(&self) -> usize {
        self.buses.len()
    }

    /// Total number of write ports across all register files.
    pub fn num_write_ports(&self) -> usize {
        self.wport_rf.len()
    }

    /// Total number of read ports across all register files.
    pub fn num_read_ports(&self) -> usize {
        self.rport_rf.len()
    }

    /// Total number of functional-unit input slots.
    pub fn num_inputs(&self) -> usize {
        self.total_inputs
    }

    /// The functional unit `fu`.
    ///
    /// # Panics
    ///
    /// Panics if `fu` is out of range.
    pub fn fu(&self, fu: FuId) -> &FunctionalUnit {
        &self.fus[fu.index()]
    }

    /// The register file `rf`.
    ///
    /// # Panics
    ///
    /// Panics if `rf` is out of range.
    pub fn rf(&self, rf: RfId) -> &RegisterFile {
        &self.rfs[rf.index()]
    }

    /// The bus `bus`.
    ///
    /// # Panics
    ///
    /// Panics if `bus` is out of range.
    pub fn bus(&self, bus: BusId) -> &Bus {
        &self.buses[bus.index()]
    }

    /// Iterates over all functional unit ids.
    pub fn fu_ids(&self) -> impl Iterator<Item = FuId> + '_ {
        (0..self.fus.len()).map(FuId::from_raw)
    }

    /// Iterates over all register file ids.
    pub fn rf_ids(&self) -> impl Iterator<Item = RfId> + '_ {
        (0..self.rfs.len()).map(RfId::from_raw)
    }

    /// Iterates over all bus ids.
    pub fn bus_ids(&self) -> impl Iterator<Item = BusId> + '_ {
        (0..self.buses.len()).map(BusId::from_raw)
    }

    /// The register file a write port belongs to.
    pub fn write_port_rf(&self, port: WritePortId) -> RfId {
        self.wport_rf[port.index()]
    }

    /// The register file a read port belongs to.
    pub fn read_port_rf(&self, port: ReadPortId) -> RfId {
        self.rport_rf[port.index()]
    }

    /// Buses the output of `fu` can drive.
    pub fn output_buses(&self, fu: FuId) -> &[BusId] {
        &self.output_buses[fu.index()]
    }

    /// Write ports `bus` can drive.
    pub fn bus_write_ports(&self, bus: BusId) -> &[WritePortId] {
        &self.bus_wports[bus.index()]
    }

    /// Buses read port `port` can drive.
    pub fn read_port_buses(&self, port: ReadPortId) -> &[BusId] {
        &self.rport_buses[port.index()]
    }

    /// Inputs `bus` can feed.
    pub fn bus_inputs(&self, bus: BusId) -> &[InputRef] {
        &self.bus_inputs[bus.index()]
    }

    /// Dense index of an input reference, for per-input tables.
    pub fn input_index(&self, input: InputRef) -> usize {
        self.input_offsets[input.fu.index()] + input.slot()
    }

    /// All valid write stubs for results produced on `fu` (paper Fig 15):
    /// every `(output, bus, write port)` path from the unit's output.
    pub fn write_stubs(&self, fu: FuId) -> &[WriteStub] {
        &self.write_stubs[fu.index()]
    }

    /// All valid read stubs for operand `slot` of operations on `fu` (paper
    /// Fig 16): every `(read port, bus, input)` path into the input.
    pub fn read_stubs(&self, fu: FuId, slot: usize) -> &[ReadStub] {
        &self.read_stubs[self.input_index(InputRef::new(fu, slot))]
    }

    /// Register files the output of `fu` can write directly (through one
    /// write stub).
    pub fn writable_rfs(&self, fu: FuId) -> Vec<RfId> {
        let mut rfs: Vec<RfId> = self.write_stubs(fu).iter().map(|s| s.rf).collect();
        rfs.sort_unstable();
        rfs.dedup();
        rfs
    }

    /// Register files input `slot` of `fu` can read directly.
    pub fn readable_rfs(&self, fu: FuId, slot: usize) -> Vec<RfId> {
        let mut rfs: Vec<RfId> = self.read_stubs(fu, slot).iter().map(|s| s.rf).collect();
        rfs.sort_unstable();
        rfs.dedup();
        rfs
    }

    /// Functional units able to execute `op`.
    pub fn fus_for(&self, op: Opcode) -> Vec<FuId> {
        self.fu_ids()
            .filter(|&fu| self.fu(fu).can_execute(op))
            .collect()
    }

    /// Looks up a functional unit by name.
    pub fn fu_by_name(&self, name: &str) -> Option<FuId> {
        self.fu_ids().find(|&fu| self.fu(fu).name() == name)
    }

    /// Looks up a register file by name.
    pub fn rf_by_name(&self, name: &str) -> Option<RfId> {
        self.rf_ids().find(|&rf| self.rf(rf).name() == name)
    }

    /// Looks up a bus by name.
    pub fn bus_by_name(&self, name: &str) -> Option<BusId> {
        self.bus_ids().find(|&b| self.bus(b).name() == name)
    }

    /// A multi-line human-readable summary of the machine.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{}: {} FUs, {} RFs, {} buses, {} read ports, {} write ports",
            self.name,
            self.num_fus(),
            self.num_rfs(),
            self.num_buses(),
            self.num_read_ports(),
            self.num_write_ports()
        );
        for fu in self.fu_ids() {
            let u = self.fu(fu);
            let _ = writeln!(
                s,
                "  {} {} ({}): {} inputs, {} write stubs",
                fu,
                u.name(),
                u.class(),
                u.num_inputs(),
                self.write_stubs(fu).len()
            );
        }
        for rf in self.rf_ids() {
            let r = self.rf(rf);
            let _ = writeln!(
                s,
                "  {} {}: {} regs, {}r/{}w ports",
                rf,
                r.name(),
                r.capacity(),
                r.read_ports().len(),
                r.write_ports().len()
            );
        }
        s
    }

    /// A stable 64-bit content hash of the machine's *structure*: unit
    /// classes, capabilities (opcode, latency, issue interval), input
    /// counts, output fanout, register-file capacities and port counts,
    /// and the full output/bus/port/input connectivity — everything the
    /// scheduler and the cost model observe. Names are deliberately
    /// excluded, so two differently-named but structurally identical
    /// machines fingerprint identically; design-space exploration uses
    /// this for candidate dedup and for crash-consistent journal keys.
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a over a tagged byte stream.
        struct Fnv(u64);
        impl Fnv {
            fn eat(&mut self, bytes: &[u8]) {
                for &b in bytes {
                    self.0 ^= u64::from(b);
                    self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
                }
            }
            fn num(&mut self, n: usize) {
                let mut bytes = [0u8; 9];
                bytes[..8].copy_from_slice(&(n as u64).to_le_bytes());
                bytes[8] = 0xfe; // field separator
                self.eat(&bytes);
            }
        }
        let mut h = Fnv(0xcbf2_9ce4_8422_2325);
        h.num(self.num_fus());
        for fu in self.fu_ids() {
            let u = self.fu(fu);
            h.eat(u.class().to_string().as_bytes());
            h.num(u.num_inputs());
            h.num(usize::from(u.has_output()));
            h.num(u.output_fanout());
            h.num(u.capabilities().len());
            for cap in u.capabilities() {
                h.eat(cap.opcode.mnemonic().as_bytes());
                h.num(cap.latency as usize);
                h.num(cap.issue_interval as usize);
            }
            h.num(self.output_buses(fu).len());
            for bus in self.output_buses(fu) {
                h.num(bus.index());
            }
        }
        h.num(self.num_rfs());
        for rf in self.rf_ids() {
            let r = self.rf(rf);
            h.num(r.capacity());
            h.num(r.read_ports().len());
            for &rp in r.read_ports() {
                h.num(rp.index());
            }
            h.num(r.write_ports().len());
            for &wp in r.write_ports() {
                h.num(wp.index());
            }
        }
        h.num(self.num_buses());
        for bus in self.bus_ids() {
            h.num(self.bus_write_ports(bus).len());
            for &wp in self.bus_write_ports(bus) {
                h.num(wp.index());
            }
            h.num(self.bus_inputs(bus).len());
            for input in self.bus_inputs(bus) {
                h.num(input.fu.index());
                h.num(usize::from(input.slot));
            }
        }
        h.num(self.num_read_ports());
        for rp in 0..self.num_read_ports() {
            let rp = crate::ids::ReadPortId::from_raw(rp);
            h.num(self.read_port_rf(rp).index());
            h.num(self.read_port_buses(rp).len());
            for bus in self.read_port_buses(rp) {
                h.num(bus.index());
            }
        }
        h.0
    }
}

/// Incrementally constructs and validates an [`Architecture`].
///
/// # Examples
///
/// ```
/// use csched_machine::{ArchBuilder, FuClass, Opcode, default_capability};
///
/// let mut b = ArchBuilder::new("tiny");
/// let rf = b.register_file("RF", 16);
/// let alu = b.functional_unit("ALU", FuClass::Alu, 2, true,
///     [Opcode::IAdd, Opcode::Copy].iter().map(|&op| default_capability(op)));
/// b.dedicated_write(alu, rf);
/// b.dedicated_read(rf, alu, 0);
/// b.dedicated_read(rf, alu, 1);
/// let arch = b.build()?;
/// assert_eq!(arch.num_fus(), 1);
/// # Ok::<(), csched_machine::ArchError>(())
/// ```
#[derive(Debug)]
pub struct ArchBuilder {
    name: String,
    fus: Vec<FunctionalUnit>,
    rfs: Vec<RegisterFile>,
    buses: Vec<Bus>,
    wport_rf: Vec<RfId>,
    rport_rf: Vec<RfId>,
    output_buses: Vec<Vec<BusId>>,
    bus_wports: Vec<Vec<WritePortId>>,
    rport_buses: Vec<Vec<BusId>>,
    bus_inputs: Vec<Vec<InputRef>>,
}

impl ArchBuilder {
    /// Starts a new architecture description.
    pub fn new(name: impl Into<String>) -> Self {
        ArchBuilder {
            name: name.into(),
            fus: Vec::new(),
            rfs: Vec::new(),
            buses: Vec::new(),
            wport_rf: Vec::new(),
            rport_rf: Vec::new(),
            output_buses: Vec::new(),
            bus_wports: Vec::new(),
            rport_buses: Vec::new(),
            bus_inputs: Vec::new(),
        }
    }

    /// Adds a functional unit and returns its id.
    pub fn functional_unit(
        &mut self,
        name: impl Into<String>,
        class: FuClass,
        num_inputs: usize,
        has_output: bool,
        caps: impl IntoIterator<Item = Capability>,
    ) -> FuId {
        let id = FuId::from_raw(self.fus.len());
        self.fus.push(FunctionalUnit {
            name: name.into(),
            class,
            caps: caps.into_iter().collect(),
            num_inputs,
            has_output,
            output_fanout: 1,
        });
        self.output_buses.push(Vec::new());
        id
    }

    /// Sets how many buses the unit's output may drive on one cycle.
    pub fn set_output_fanout(&mut self, fu: FuId, fanout: usize) {
        self.fus[fu.index()].output_fanout = fanout;
    }

    /// Adds a register file with `capacity` registers and returns its id.
    /// Ports are added separately with [`ArchBuilder::write_port`] and
    /// [`ArchBuilder::read_port`].
    pub fn register_file(&mut self, name: impl Into<String>, capacity: usize) -> RfId {
        let id = RfId::from_raw(self.rfs.len());
        self.rfs.push(RegisterFile {
            name: name.into(),
            capacity,
            read_ports: Vec::new(),
            write_ports: Vec::new(),
        });
        id
    }

    /// Adds a bus and returns its id.
    pub fn bus(&mut self, name: impl Into<String>) -> BusId {
        let id = BusId::from_raw(self.buses.len());
        self.buses.push(Bus { name: name.into() });
        self.bus_wports.push(Vec::new());
        self.bus_inputs.push(Vec::new());
        id
    }

    /// Adds a write port to `rf` and returns its id.
    pub fn write_port(&mut self, rf: RfId) -> WritePortId {
        let id = WritePortId::from_raw(self.wport_rf.len());
        self.wport_rf.push(rf);
        self.rfs[rf.index()].write_ports.push(id);
        id
    }

    /// Adds a read port to `rf` and returns its id.
    pub fn read_port(&mut self, rf: RfId) -> ReadPortId {
        let id = ReadPortId::from_raw(self.rport_rf.len());
        self.rport_rf.push(rf);
        self.rfs[rf.index()].read_ports.push(id);
        self.rport_buses.push(Vec::new());
        id
    }

    /// Allows the output of `fu` to drive `bus`.
    pub fn connect_output(&mut self, fu: FuId, bus: BusId) {
        let list = &mut self.output_buses[fu.index()];
        if !list.contains(&bus) {
            list.push(bus);
        }
    }

    /// Allows `bus` to drive write port `port`.
    pub fn connect_bus_to_write_port(&mut self, bus: BusId, port: WritePortId) {
        let list = &mut self.bus_wports[bus.index()];
        if !list.contains(&port) {
            list.push(port);
        }
    }

    /// Allows read port `port` to drive `bus`.
    pub fn connect_read_port_to_bus(&mut self, port: ReadPortId, bus: BusId) {
        let list = &mut self.rport_buses[port.index()];
        if !list.contains(&bus) {
            list.push(bus);
        }
    }

    /// Allows `bus` to feed input `slot` of `fu`.
    pub fn connect_bus_to_input(&mut self, bus: BusId, fu: FuId, slot: usize) {
        let input = InputRef::new(fu, slot);
        let list = &mut self.bus_inputs[bus.index()];
        if !list.contains(&input) {
            list.push(input);
        }
    }

    /// Convenience: gives `fu` a dedicated path (private bus and write port)
    /// into `rf`, as in central and clustered register files.
    pub fn dedicated_write(&mut self, fu: FuId, rf: RfId) -> (BusId, WritePortId) {
        let bus = self.bus(format!(
            "{}->{}_w",
            self.fus[fu.index()].name,
            self.rfs[rf.index()].name
        ));
        let port = self.write_port(rf);
        self.connect_output(fu, bus);
        self.connect_bus_to_write_port(bus, port);
        (bus, port)
    }

    /// Convenience: gives input `slot` of `fu` a dedicated path (private read
    /// port and bus) from `rf`.
    pub fn dedicated_read(&mut self, rf: RfId, fu: FuId, slot: usize) -> (ReadPortId, BusId) {
        let port = self.read_port(rf);
        let bus = self.bus(format!(
            "{}->{}.in{}_r",
            self.rfs[rf.index()].name,
            self.fus[fu.index()].name,
            slot
        ));
        self.connect_read_port_to_bus(port, bus);
        self.connect_bus_to_input(bus, fu, slot);
        (port, bus)
    }

    /// Validates the description and builds the final [`Architecture`].
    ///
    /// # Errors
    ///
    /// Returns an [`ArchError`] if a unit's capabilities are inconsistent
    /// with its inputs/output, or if a used input or output has no path to
    /// any register file.
    pub fn build(self) -> Result<Architecture, ArchError> {
        if self.fus.is_empty() {
            return Err(ArchError::Empty);
        }
        // Per-fu structural validation.
        for (i, fu) in self.fus.iter().enumerate() {
            let id = FuId::from_raw(i);
            for cap in &fu.caps {
                if cap.opcode.has_result() && !fu.has_output {
                    return Err(ArchError::OutputlessProducer {
                        fu: id,
                        opcode: cap.opcode,
                    });
                }
                if cap.opcode.num_operands() > fu.num_inputs {
                    return Err(ArchError::NotEnoughInputs {
                        fu: id,
                        opcode: cap.opcode,
                    });
                }
            }
            if fu.has_output && fu.output_fanout == 0 {
                return Err(ArchError::ZeroFanout { fu: id });
            }
        }

        // Input offsets.
        let mut input_offsets = Vec::with_capacity(self.fus.len());
        let mut total_inputs = 0usize;
        for fu in &self.fus {
            input_offsets.push(total_inputs);
            total_inputs += fu.num_inputs;
        }

        // Precompute write stubs per fu.
        let mut write_stubs: Vec<Vec<WriteStub>> = Vec::with_capacity(self.fus.len());
        for (i, fu) in self.fus.iter().enumerate() {
            let id = FuId::from_raw(i);
            let mut stubs = Vec::new();
            if fu.has_output {
                for &bus in &self.output_buses[i] {
                    for &port in &self.bus_wports[bus.index()] {
                        stubs.push(WriteStub {
                            fu: id,
                            bus,
                            rf: self.wport_rf[port.index()],
                            port,
                        });
                    }
                }
            }
            // A producer must be able to reach some register file.
            let produces = fu.caps.iter().any(|c| c.opcode.has_result());
            if produces && stubs.is_empty() {
                return Err(ArchError::UnreachableOutput { fu: id });
            }
            write_stubs.push(stubs);
        }

        // Precompute read stubs per input, via reverse maps.
        let mut input_buses: Vec<Vec<BusId>> = vec![Vec::new(); total_inputs];
        for (b, inputs) in self.bus_inputs.iter().enumerate() {
            for input in inputs {
                let idx = input_offsets[input.fu.index()] + input.slot();
                input_buses[idx].push(BusId::from_raw(b));
            }
        }
        let mut bus_rports: Vec<Vec<ReadPortId>> = vec![Vec::new(); self.buses.len()];
        for (p, buses) in self.rport_buses.iter().enumerate() {
            for &bus in buses {
                bus_rports[bus.index()].push(ReadPortId::from_raw(p));
            }
        }
        let mut read_stubs: Vec<Vec<ReadStub>> = vec![Vec::new(); total_inputs];
        for (i, fu) in self.fus.iter().enumerate() {
            for slot in 0..fu.num_inputs {
                let input = InputRef::new(FuId::from_raw(i), slot);
                let idx = input_offsets[i] + slot;
                let mut stubs = Vec::new();
                for &bus in &input_buses[idx] {
                    for &port in &bus_rports[bus.index()] {
                        stubs.push(ReadStub {
                            rf: self.rport_rf[port.index()],
                            port,
                            bus,
                            fu: input.fu,
                            slot: input.slot,
                        });
                    }
                }
                // An input used by some capability must be readable.
                let used = fu.caps.iter().any(|c| c.opcode.num_operands() > slot);
                if used && stubs.is_empty() {
                    return Err(ArchError::UnreachableInput { input });
                }
                read_stubs[idx] = stubs;
            }
        }

        // Check that fu names are unique (helps debugging; not an error the
        // scheduler cares about, so only a debug assertion here).
        debug_assert_eq!(
            {
                let mut names: Vec<&str> = self.fus.iter().map(|f| f.name.as_str()).collect();
                names.sort_unstable();
                names.dedup();
                names.len()
            },
            self.fus.len(),
            "functional unit names should be unique"
        );

        Ok(Architecture {
            name: self.name,
            fus: self.fus,
            rfs: self.rfs,
            buses: self.buses,
            wport_rf: self.wport_rf,
            rport_rf: self.rport_rf,
            output_buses: self.output_buses,
            bus_wports: self.bus_wports,
            rport_buses: self.rport_buses,
            bus_inputs: self.bus_inputs,
            write_stubs,
            read_stubs,
            input_offsets,
            total_inputs,
        })
    }
}

/// Per-class counts of the units in an architecture, used in reports.
pub fn class_histogram(arch: &Architecture) -> HashMap<FuClass, usize> {
    let mut h = HashMap::new();
    for fu in arch.fu_ids() {
        *h.entry(arch.fu(fu).class()).or_insert(0) += 1;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::default_capability;

    fn tiny() -> Architecture {
        let mut b = ArchBuilder::new("tiny");
        let rf = b.register_file("RF", 8);
        let alu = b.functional_unit(
            "ALU",
            FuClass::Alu,
            2,
            true,
            [Opcode::IAdd, Opcode::Copy].map(default_capability),
        );
        b.dedicated_write(alu, rf);
        b.dedicated_read(rf, alu, 0);
        b.dedicated_read(rf, alu, 1);
        b.build().expect("tiny machine is valid")
    }

    #[test]
    fn tiny_machine_shape() {
        let a = tiny();
        assert_eq!(a.num_fus(), 1);
        assert_eq!(a.num_rfs(), 1);
        assert_eq!(a.num_buses(), 3); // 1 write + 2 read wires
        assert_eq!(a.num_write_ports(), 1);
        assert_eq!(a.num_read_ports(), 2);
        assert_eq!(a.num_inputs(), 2);
    }

    #[test]
    fn stub_enumeration() {
        let a = tiny();
        let fu = FuId::from_raw(0);
        assert_eq!(a.write_stubs(fu).len(), 1);
        assert_eq!(a.read_stubs(fu, 0).len(), 1);
        assert_eq!(a.read_stubs(fu, 1).len(), 1);
        let ws = a.write_stubs(fu)[0];
        assert_eq!(ws.rf, RfId::from_raw(0));
        let rs = a.read_stubs(fu, 1)[0];
        assert_eq!(rs.slot, 1);
        assert_ne!(a.read_stubs(fu, 0)[0].port, rs.port);
    }

    #[test]
    fn writable_and_readable_rfs() {
        let a = tiny();
        let fu = FuId::from_raw(0);
        assert_eq!(a.writable_rfs(fu), vec![RfId::from_raw(0)]);
        assert_eq!(a.readable_rfs(fu, 0), vec![RfId::from_raw(0)]);
    }

    #[test]
    fn rejects_outputless_producer() {
        let mut b = ArchBuilder::new("bad");
        let _rf = b.register_file("RF", 8);
        b.functional_unit(
            "ALU",
            FuClass::Alu,
            2,
            false,
            [default_capability(Opcode::IAdd)],
        );
        match b.build() {
            Err(ArchError::OutputlessProducer { opcode, .. }) => {
                assert_eq!(opcode, Opcode::IAdd)
            }
            other => panic!("expected OutputlessProducer, got {other:?}"),
        }
    }

    #[test]
    fn rejects_not_enough_inputs() {
        let mut b = ArchBuilder::new("bad");
        let rf = b.register_file("RF", 8);
        let alu = b.functional_unit(
            "ALU",
            FuClass::Alu,
            1,
            true,
            [default_capability(Opcode::IAdd)],
        );
        b.dedicated_write(alu, rf);
        b.dedicated_read(rf, alu, 0);
        assert!(matches!(b.build(), Err(ArchError::NotEnoughInputs { .. })));
    }

    #[test]
    fn rejects_unreachable_output() {
        let mut b = ArchBuilder::new("bad");
        let rf = b.register_file("RF", 8);
        let alu = b.functional_unit(
            "ALU",
            FuClass::Alu,
            2,
            true,
            [default_capability(Opcode::IAdd)],
        );
        b.dedicated_read(rf, alu, 0);
        b.dedicated_read(rf, alu, 1);
        assert!(matches!(
            b.build(),
            Err(ArchError::UnreachableOutput { .. })
        ));
    }

    #[test]
    fn rejects_unreachable_input() {
        let mut b = ArchBuilder::new("bad");
        let rf = b.register_file("RF", 8);
        let alu = b.functional_unit(
            "ALU",
            FuClass::Alu,
            2,
            true,
            [default_capability(Opcode::IAdd)],
        );
        b.dedicated_write(alu, rf);
        b.dedicated_read(rf, alu, 0);
        assert!(matches!(b.build(), Err(ArchError::UnreachableInput { .. })));
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(
            ArchBuilder::new("empty").build().unwrap_err(),
            ArchError::Empty
        );
    }

    #[test]
    fn shared_bus_fanout() {
        // One ALU whose output drives a shared bus reaching two RFs.
        let mut b = ArchBuilder::new("fanout");
        let rf0 = b.register_file("RF0", 8);
        let rf1 = b.register_file("RF1", 8);
        let alu = b.functional_unit(
            "ALU",
            FuClass::Alu,
            2,
            true,
            [default_capability(Opcode::IAdd)],
        );
        let bus = b.bus("SHARED");
        b.connect_output(alu, bus);
        let wp0 = b.write_port(rf0);
        let wp1 = b.write_port(rf1);
        b.connect_bus_to_write_port(bus, wp0);
        b.connect_bus_to_write_port(bus, wp1);
        b.dedicated_read(rf0, alu, 0);
        b.dedicated_read(rf1, alu, 1);
        let a = b.build().unwrap();
        assert_eq!(a.write_stubs(alu).len(), 2);
        assert_eq!(a.writable_rfs(alu), vec![rf0, rf1]);
    }

    #[test]
    fn lookup_by_name() {
        let a = tiny();
        assert_eq!(a.fu_by_name("ALU"), Some(FuId::from_raw(0)));
        assert_eq!(a.rf_by_name("RF"), Some(RfId::from_raw(0)));
        assert_eq!(a.fu_by_name("NOPE"), None);
    }

    #[test]
    fn summary_mentions_name() {
        let a = tiny();
        assert!(a.summary().contains("tiny"));
    }

    #[test]
    fn error_display_nonempty() {
        let e = ArchError::Empty;
        assert!(!e.to_string().is_empty());
    }

    #[test]
    fn fingerprint_is_stable_and_name_blind() {
        use crate::imagine;
        // Deterministic across rebuilds of the same structure.
        assert_eq!(
            imagine::distributed().fingerprint(),
            imagine::distributed().fingerprint()
        );
        // The four organisations are structurally distinct.
        let fps: std::collections::HashSet<u64> = imagine::all_variants()
            .iter()
            .map(|a| a.fingerprint())
            .collect();
        assert_eq!(fps.len(), 4);
        // Renaming everything leaves the fingerprint unchanged.
        let mk = |name: &str, fu: &str, rf: &str| {
            let mut b = ArchBuilder::new(name);
            let r = b.register_file(rf, 8);
            let alu = b.functional_unit(
                fu,
                FuClass::Alu,
                2,
                true,
                [Opcode::IAdd, Opcode::Copy]
                    .iter()
                    .map(|&op| crate::op::default_capability(op)),
            );
            b.dedicated_write(alu, r);
            b.dedicated_read(r, alu, 0);
            b.dedicated_read(r, alu, 1);
            b.build().unwrap()
        };
        assert_eq!(
            mk("a", "ALU", "RF").fingerprint(),
            mk("b", "ADDER", "FILE").fingerprint()
        );
        // A structural difference (capacity) changes it.
        let mut b = ArchBuilder::new("c");
        let r = b.register_file("RF", 16);
        let alu = b.functional_unit(
            "ALU",
            FuClass::Alu,
            2,
            true,
            [Opcode::IAdd, Opcode::Copy]
                .iter()
                .map(|&op| crate::op::default_capability(op)),
        );
        b.dedicated_write(alu, r);
        b.dedicated_read(r, alu, 0);
        b.dedicated_read(r, alu, 1);
        assert_ne!(
            b.build().unwrap().fingerprint(),
            mk("a", "ALU", "RF").fingerprint()
        );
    }
}
