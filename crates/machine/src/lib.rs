//! # csched-machine — shared-interconnect VLIW machine descriptions
//!
//! Machine model for the communication-scheduling reproduction (Mattson et
//! al., *Communication Scheduling*, ASPLOS 2000): functional units,
//! register files, buses, ports and the connectivity between them, plus
//! the copy-connectedness analysis of the paper's Appendix A and the
//! register-file VLSI cost model of its Figures 25–27.
//!
//! The model is deliberately uniform — every value transfer is
//! output → bus → write port on the producing side and
//! read port → bus → input on the consuming side — so architectures
//! ranging from a central register file to Imagine's distributed register
//! files are all described the same way and scheduled by the same
//! algorithm.
//!
//! ## Quick start
//!
//! ```
//! use csched_machine::{imagine, toy};
//!
//! // The four Imagine variants evaluated in the paper:
//! let central = imagine::central();
//! let clustered = imagine::clustered(4);
//! let distributed = imagine::distributed();
//! assert!(distributed.copy_connectivity().is_copy_connected());
//!
//! // The motivating-example machine of Figure 5:
//! let toy = toy::motivating_example();
//! assert_eq!(toy.num_fus(), 3);
//!
//! // Stub enumeration (Figures 15-16): all interconnect paths from the
//! // load/store unit's output.
//! let ls = toy.fu_by_name("LS").unwrap();
//! assert_eq!(toy.write_stubs(ls).len(), 4);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod arch;
pub mod connect;
pub mod cost;
pub mod fault;
pub mod gen;
mod ids;
pub mod imagine;
mod op;
mod resource;
mod stub;
pub mod text;
pub mod toy;

pub use arch::{
    class_histogram, ArchBuilder, ArchError, Architecture, Bus, FuClass, FunctionalUnit,
    RegisterFile,
};
pub use connect::CopyConnectivity;
pub use fault::FaultSpec;
pub use ids::{BusId, FuId, InputRef, ReadPortId, RfId, WritePortId};
pub use op::{default_capability, default_issue_interval, default_latency, Capability, Opcode};
pub use resource::{Resource, ResourceMap};
pub use stub::{ReadStub, WriteStub};
