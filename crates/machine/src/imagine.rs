//! The four register-file organisations of the Imagine stream processor
//! evaluated in the paper (Figures 25–27), plus scaled variants for the
//! §8 projection to larger machines.
//!
//! All variants share the same mix of functional units and the same
//! operation latencies (a requirement of the paper's normalisation): per
//! scale unit, six adders (ALUs), three multipliers, one divider, one
//! permutation unit, one scratchpad and four load/store units.
//!
//! - [`central`]: one register file; every FU input has a dedicated read
//!   port and every FU output a dedicated write port (Figure 25).
//! - [`clustered`]: FUs partitioned into 2 or 4 clusters, one register file
//!   per cluster with dedicated ports; a copy unit per cluster drives a
//!   global bus into dedicated copy ports of the other clusters' register
//!   files (Figure 26).
//! - [`distributed`]: one small register file per FU input with a single
//!   read port; all FU outputs share ten global buses, any of which can
//!   drive the single shared write port of any register file (Figure 27).
//!   Every FU except the scratchpad implements `copy`.

use crate::arch::{ArchBuilder, Architecture, FuClass};
use crate::ids::{FuId, RfId};
use crate::op::{default_capability, Capability, Opcode};

/// Number of global buses per scale unit in the distributed organisation
/// ("each functional unit output can drive any one of ten global buses").
pub const DISTRIBUTED_BUSES_PER_SCALE: usize = 10;

/// Registers in the central register file at scale 1.
pub const CENTRAL_CAPACITY: usize = 256;

/// Registers in each distributed (per-input) register file.
pub const DISTRIBUTED_RF_CAPACITY: usize = 16;

fn alu_opcodes() -> Vec<Opcode> {
    use Opcode::*;
    vec![
        IAdd, ISub, INeg, IAbs, IMin, IMax, And, Or, Xor, Not, Shl, Shr, Sra, ICmpEq, ICmpLt,
        ICmpLe, Select, ItoF, FtoI, FAdd, FSub, FNeg, FAbs, FMin, FMax, FCmpEq, FCmpLt, FCmpLe,
    ]
}

fn caps_for(class: FuClass, with_copy: bool) -> Vec<Capability> {
    use Opcode::*;
    let mut ops: Vec<Opcode> = match class {
        FuClass::Alu => alu_opcodes(),
        FuClass::Mul => vec![IMul, FMul],
        FuClass::Div => vec![IDiv, IRem, FDiv, FSqrt],
        FuClass::Pu => vec![Permute],
        FuClass::Sp => vec![SpRead, SpWrite],
        FuClass::Ls => vec![Load, Store],
        FuClass::CopyUnit => vec![],
    };
    if with_copy || class == FuClass::CopyUnit {
        ops.push(Copy);
    }
    ops.into_iter().map(default_capability).collect()
}

fn inputs_for(class: FuClass) -> usize {
    match class {
        FuClass::Alu => 3,              // third input used by select
        FuClass::Ls | FuClass::Sp => 3, // base, offset, store value
        FuClass::CopyUnit => 1,
        _ => 2,
    }
}

/// The functional-unit mix at a given scale (scale 1 = the paper's 16-unit
/// machine with 12 arithmetic units).
///
/// Returns `(name, class)` pairs in a fixed layout order; this order is the
/// linear placement used by the cost model.
pub fn unit_mix(scale: usize) -> Vec<(String, FuClass)> {
    assert!(scale >= 1, "scale must be at least 1");
    let mut units = Vec::new();
    for s in 0..scale {
        let tag = |base: &str, i: usize| {
            if scale == 1 {
                format!("{base}{i}")
            } else {
                format!("{base}{}", s * 100 + i)
            }
        };
        for i in 0..6 {
            units.push((tag("ADD", i), FuClass::Alu));
        }
        for i in 0..3 {
            units.push((tag("MUL", i), FuClass::Mul));
        }
        units.push((tag("DIV", 0), FuClass::Div));
        units.push((tag("PU", 0), FuClass::Pu));
        units.push((tag("SP", 0), FuClass::Sp));
        for i in 0..4 {
            units.push((tag("LS", i), FuClass::Ls));
        }
    }
    units
}

/// Builds the central register file architecture (Figure 25) at scale 1.
pub fn central() -> Architecture {
    central_scaled(1)
}

/// Builds the central register file architecture at an arbitrary scale.
pub fn central_scaled(scale: usize) -> Architecture {
    let mut b = ArchBuilder::new(if scale == 1 {
        "imagine-central".to_string()
    } else {
        format!("imagine-central-x{scale}")
    });
    let rf = b.register_file("CRF", CENTRAL_CAPACITY * scale);
    for (name, class) in unit_mix(scale) {
        let fu = b.functional_unit(name, class, inputs_for(class), true, caps_for(class, false));
        b.dedicated_write(fu, rf);
        for slot in 0..inputs_for(class) {
            b.dedicated_read(rf, fu, slot);
        }
    }
    b.build().expect("central architecture is well-formed")
}

/// Builds the clustered register file architecture (Figure 26) with
/// `clusters` clusters (the paper evaluates 2 and 4) at scale 1.
///
/// # Panics
///
/// Panics if `clusters` is zero or greater than the number of units.
pub fn clustered(clusters: usize) -> Architecture {
    clustered_scaled(clusters, 1)
}

/// Cluster assignment used by [`clustered_scaled`]: unit `i` (in
/// [`unit_mix`] order) belongs to cluster `assignments[i]`.
///
/// At scale 1 with four clusters this reproduces Figure 26's division:
/// `[ADD0 ADD1 MUL0 LS0] [ADD2 MUL1 DIV0 LS1] [ADD3 ADD4 MUL2 LS2]
/// [ADD5 PU SP LS3]`, and the two-cluster division merges adjacent pairs.
/// Other scales balance each unit class round-robin across clusters.
pub fn cluster_assignment(clusters: usize, scale: usize) -> Vec<usize> {
    let mix = unit_mix(scale);
    if scale == 1 && (clusters == 2 || clusters == 4) {
        // Figure 26 layout: indexes into unit_mix(1):
        // 0..6 ADD, 6..9 MUL, 9 DIV, 10 PU, 11 SP, 12..16 LS.
        let four = [
            0usize, 0, 1, 2, 2, 3, // ADD0..ADD5
            0, 1, 2, // MUL0..MUL2
            1, // DIV
            3, // PU
            3, // SP
            0, 1, 2, 3, // LS0..LS3
        ];
        return if clusters == 4 {
            four.to_vec()
        } else {
            four.iter().map(|&c| c / 2).collect()
        };
    }
    // General balanced assignment: round-robin per class.
    let mut next_per_class: std::collections::HashMap<FuClass, usize> =
        std::collections::HashMap::new();
    mix.iter()
        .map(|&(_, class)| {
            let n = next_per_class.entry(class).or_insert(0);
            let c = *n % clusters;
            *n += 1;
            c
        })
        .collect()
}

/// Builds the clustered register file architecture at an arbitrary scale.
///
/// # Panics
///
/// Panics if `clusters` is zero or exceeds the unit count.
pub fn clustered_scaled(clusters: usize, scale: usize) -> Architecture {
    let mix = unit_mix(scale);
    assert!(clusters >= 1 && clusters <= mix.len(), "bad cluster count");
    let assignment = cluster_assignment(clusters, scale);
    let mut b = ArchBuilder::new(if scale == 1 {
        format!("imagine-clustered-{clusters}")
    } else {
        format!("imagine-clustered-{clusters}-x{scale}")
    });

    let per_cluster_capacity = (CENTRAL_CAPACITY * scale / clusters).max(16);
    let rfs: Vec<RfId> = (0..clusters)
        .map(|c| b.register_file(format!("RF{c}"), per_cluster_capacity))
        .collect();

    // Standard units: dedicated ports to their cluster register file.
    for (i, (name, class)) in mix.iter().enumerate() {
        let rf = rfs[assignment[i]];
        let fu = b.functional_unit(
            name.clone(),
            *class,
            inputs_for(*class),
            true,
            caps_for(*class, false),
        );
        b.dedicated_write(fu, rf);
        for slot in 0..inputs_for(*class) {
            b.dedicated_read(rf, fu, slot);
        }
    }

    // One copy unit per cluster: reads its own register file, drives a
    // global bus into a dedicated copy write port of every other cluster's
    // register file.
    for c in 0..clusters {
        let cp = b.functional_unit(
            format!("CP{c}"),
            FuClass::CopyUnit,
            1,
            true,
            caps_for(FuClass::CopyUnit, true),
        );
        b.dedicated_read(rfs[c], cp, 0);
        let gbus = b.bus(format!("GB{c}"));
        b.connect_output(cp, gbus);
        for (other, &rf) in rfs.iter().enumerate() {
            if other != c {
                let wp = b.write_port(rf);
                b.connect_bus_to_write_port(gbus, wp);
            }
        }
    }

    b.build().expect("clustered architecture is well-formed")
}

/// Builds the distributed register file architecture (Figure 27) at scale 1.
pub fn distributed() -> Architecture {
    distributed_scaled(1)
}

/// Builds the distributed register file architecture at an arbitrary scale.
pub fn distributed_scaled(scale: usize) -> Architecture {
    let mut b = ArchBuilder::new(if scale == 1 {
        "imagine-distributed".to_string()
    } else {
        format!("imagine-distributed-x{scale}")
    });

    // Global buses shared by all outputs.
    let buses: Vec<_> = (0..DISTRIBUTED_BUSES_PER_SCALE * scale)
        .map(|i| b.bus(format!("GB{i}")))
        .collect();

    let mut fus: Vec<(FuId, FuClass)> = Vec::new();
    for (name, class) in unit_mix(scale) {
        // Every unit except the scratchpad implements copy.
        let with_copy = !matches!(class, FuClass::Sp | FuClass::Ls);
        let fu = b.functional_unit(
            name,
            class,
            inputs_for(class),
            true,
            caps_for(class, with_copy),
        );
        // Output can drive any one of the global buses.
        for &bus in &buses {
            b.connect_output(fu, bus);
        }
        fus.push((fu, class));
    }

    // One register file per input, with its single write port reachable
    // from every global bus and a dedicated read path to the input.
    for &(fu, class) in &fus {
        for slot in 0..inputs_for(class) {
            let rf = b.register_file(
                format!("RF_{}_{}", fu.index(), slot),
                DISTRIBUTED_RF_CAPACITY,
            );
            let wp = b.write_port(rf);
            for &bus in &buses {
                b.connect_bus_to_write_port(bus, wp);
            }
            b.dedicated_read(rf, fu, slot);
        }
    }

    b.build().expect("distributed architecture is well-formed")
}

/// All four paper configurations, in presentation order (central,
/// clustered-2, clustered-4, distributed). Used by the evaluation harness.
pub fn all_variants() -> Vec<Architecture> {
    vec![central(), clustered(2), clustered(4), distributed()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_mix_counts() {
        let mix = unit_mix(1);
        assert_eq!(mix.len(), 16);
        let count = |c: FuClass| mix.iter().filter(|&&(_, x)| x == c).count();
        assert_eq!(count(FuClass::Alu), 6);
        assert_eq!(count(FuClass::Mul), 3);
        assert_eq!(count(FuClass::Div), 1);
        assert_eq!(count(FuClass::Pu), 1);
        assert_eq!(count(FuClass::Sp), 1);
        assert_eq!(count(FuClass::Ls), 4);
        assert_eq!(unit_mix(4).len(), 64);
    }

    #[test]
    fn central_shape() {
        let a = central();
        assert_eq!(a.num_fus(), 16);
        assert_eq!(a.num_rfs(), 1);
        // 6*3 + 3*2 + 2 + 2 + 3 + 4*3 = 43 inputs / read ports
        assert_eq!(a.num_read_ports(), 43);
        assert_eq!(a.num_write_ports(), 16);
        assert!(a.copy_connectivity().is_copy_connected());
    }

    #[test]
    fn central_routes_never_need_copies() {
        let a = central();
        let c = a.copy_connectivity();
        for p in a.fu_ids() {
            for q in a.fu_ids() {
                for slot in 0..a.fu(q).num_inputs() {
                    assert_eq!(c.min_route_copies(&a, p, q, slot), Some(0));
                }
            }
        }
    }

    #[test]
    fn clustered_shape() {
        for k in [2usize, 4] {
            let a = clustered(k);
            assert_eq!(a.num_fus(), 16 + k, "16 units + {k} copy units");
            assert_eq!(a.num_rfs(), k);
            assert!(
                a.copy_connectivity().is_copy_connected(),
                "clustered({k}) must be copy-connected"
            );
        }
    }

    #[test]
    fn clustered_cross_cluster_needs_one_copy() {
        let a = clustered(4);
        let c = a.copy_connectivity();
        let add0 = a.fu_by_name("ADD0").unwrap(); // cluster 0
        let add5 = a.fu_by_name("ADD5").unwrap(); // cluster 3
        assert_eq!(c.min_route_copies(&a, add0, add5, 0), Some(1));
        let add1 = a.fu_by_name("ADD1").unwrap(); // cluster 0
        assert_eq!(c.min_route_copies(&a, add0, add1, 0), Some(0));
    }

    #[test]
    fn figure26_cluster_division() {
        let assignment = cluster_assignment(4, 1);
        let mix = unit_mix(1);
        let cluster_of = |name: &str| {
            let idx = mix.iter().position(|(n, _)| n == name).unwrap();
            assignment[idx]
        };
        assert_eq!(cluster_of("ADD0"), 0);
        assert_eq!(cluster_of("DIV0"), 1);
        assert_eq!(cluster_of("PU0"), 3);
        assert_eq!(cluster_of("SP0"), 3);
        // Each cluster gets exactly one load/store unit.
        for (i, ls) in ["LS0", "LS1", "LS2", "LS3"].iter().enumerate() {
            assert_eq!(cluster_of(ls), i);
        }
        // Two-cluster division merges adjacent pairs.
        let two = cluster_assignment(2, 1);
        for (a4, a2) in assignment.iter().zip(&two) {
            assert_eq!(a4 / 2, *a2);
        }
    }

    #[test]
    fn distributed_shape() {
        let a = distributed();
        assert_eq!(a.num_fus(), 16);
        assert_eq!(a.num_rfs(), 43); // one per input
        assert_eq!(a.num_buses(), 10 + 43); // 10 global + 43 dedicated read wires
        assert_eq!(a.num_write_ports(), 43);
        assert!(a.copy_connectivity().is_copy_connected());
    }

    #[test]
    fn distributed_every_output_reaches_every_rf() {
        let a = distributed();
        for fu in a.fu_ids() {
            assert_eq!(
                a.writable_rfs(fu).len(),
                a.num_rfs(),
                "{} should reach every register file",
                a.fu(fu).name()
            );
            // 10 buses x 43 write ports = 430 write stubs per unit.
            assert_eq!(a.write_stubs(fu).len(), 430);
        }
    }

    #[test]
    fn distributed_copy_capability_placement() {
        let a = distributed();
        use crate::arch::FuClass::*;
        for fu in a.fu_ids() {
            let has_copy = a.fu(fu).can_execute(Opcode::Copy);
            match a.fu(fu).class() {
                Alu | Mul | Div | Pu => assert!(has_copy, "{}", a.fu(fu).name()),
                Sp | Ls | CopyUnit => assert!(!has_copy, "{}", a.fu(fu).name()),
            }
        }
    }

    #[test]
    fn scaled_variants_are_copy_connected() {
        assert!(central_scaled(2).copy_connectivity().is_copy_connected());
        assert!(clustered_scaled(4, 4)
            .copy_connectivity()
            .is_copy_connected());
        assert!(distributed_scaled(4)
            .copy_connectivity()
            .is_copy_connected());
        assert_eq!(distributed_scaled(4).num_fus(), 64);
    }

    #[test]
    fn all_variants_produces_four() {
        let v = all_variants();
        assert_eq!(v.len(), 4);
        assert_eq!(v[0].name(), "imagine-central");
        assert_eq!(v[3].name(), "imagine-distributed");
    }

    #[test]
    fn same_unit_mix_everywhere() {
        // Paper: the mix of functional units is the same for all
        // architectures (copy units aside).
        let names = |a: &Architecture| -> Vec<String> {
            a.fu_ids()
                .map(|f| a.fu(f).name().to_string())
                .filter(|n| !n.starts_with("CP"))
                .collect()
        };
        let c = names(&central());
        assert_eq!(names(&clustered(2)), c);
        assert_eq!(names(&clustered(4)), c);
        assert_eq!(names(&distributed()), c);
    }
}
