//! The operation set understood by the machine model and the scheduler.
//!
//! The opcode set covers the needs of the ten media kernels evaluated in the
//! paper (Table 1): integer and floating-point arithmetic, comparisons and
//! selects (for if-converted control flow), memory access through the
//! load/store units, the Imagine permutation and scratchpad units, and the
//! `Copy` operation that communication scheduling inserts to move values
//! between register files.

use core::fmt;

/// A machine operation kind.
///
/// Operand arity and result presence are intrinsic to the opcode (see
/// [`Opcode::num_operands`] and [`Opcode::has_result`]); latency is a
/// property of the functional unit capability executing it (see
/// [`Capability`]).
///
/// [`Capability`]: crate::Capability
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Opcode {
    // --- integer arithmetic (ALU class) ---
    /// Integer addition.
    IAdd,
    /// Integer subtraction.
    ISub,
    /// Integer negation.
    INeg,
    /// Integer absolute value.
    IAbs,
    /// Integer minimum.
    IMin,
    /// Integer maximum.
    IMax,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive-or.
    Xor,
    /// Bitwise complement.
    Not,
    /// Logical shift left.
    Shl,
    /// Logical shift right.
    Shr,
    /// Arithmetic shift right.
    Sra,
    /// Integer equality comparison; result is 0 or 1.
    ICmpEq,
    /// Integer signed less-than; result is 0 or 1.
    ICmpLt,
    /// Integer signed less-or-equal; result is 0 or 1.
    ICmpLe,
    /// Ternary select: `cond != 0 ? a : b` (three operands).
    Select,
    /// Integer to float conversion.
    ItoF,
    /// Float to integer conversion (truncating).
    FtoI,

    // --- integer multiply / divide ---
    /// Integer multiplication.
    IMul,
    /// Integer division (trapping on divide-by-zero is modelled as a
    /// simulator error).
    IDiv,
    /// Integer remainder.
    IRem,

    // --- floating point ---
    /// Floating-point addition.
    FAdd,
    /// Floating-point subtraction.
    FSub,
    /// Floating-point negation.
    FNeg,
    /// Floating-point absolute value.
    FAbs,
    /// Floating-point minimum.
    FMin,
    /// Floating-point maximum.
    FMax,
    /// Floating-point multiplication.
    FMul,
    /// Floating-point division.
    FDiv,
    /// Floating-point square root.
    FSqrt,
    /// Floating-point equality comparison; result is integer 0 or 1.
    FCmpEq,
    /// Floating-point less-than; result is integer 0 or 1.
    FCmpLt,
    /// Floating-point less-or-equal; result is integer 0 or 1.
    FCmpLe,

    // --- memory (load/store units) ---
    /// Load a word from memory: `result = mem[base + offset]`
    /// (base, offset), the offset usually an immediate — address
    /// arithmetic folds into the access as on real VLIW load/store units.
    Load,
    /// Store a word to memory: `mem[base + offset] = value`
    /// (base, offset, value); no result.
    Store,

    // --- special units ---
    /// Permutation-unit operation: `result = permute(value, control)`.
    ///
    /// The model treats it as a rotate of `value` by `control` bits, which
    /// is enough to exercise a dedicated unit with its own connectivity.
    Permute,
    /// Scratchpad read: `result = scratch[base + offset]`.
    SpRead,
    /// Scratchpad write: `scratch[base + offset] = value`; no result.
    SpWrite,

    // --- interconnect ---
    /// Register-file-to-register-file copy, inserted by communication
    /// scheduling to connect a write stub to a read stub (paper §4.3 step 5).
    Copy,
}

impl Opcode {
    /// All opcodes, for exhaustive iteration in tests and capability tables.
    pub const ALL: &'static [Opcode] = &[
        Opcode::IAdd,
        Opcode::ISub,
        Opcode::INeg,
        Opcode::IAbs,
        Opcode::IMin,
        Opcode::IMax,
        Opcode::And,
        Opcode::Or,
        Opcode::Xor,
        Opcode::Not,
        Opcode::Shl,
        Opcode::Shr,
        Opcode::Sra,
        Opcode::ICmpEq,
        Opcode::ICmpLt,
        Opcode::ICmpLe,
        Opcode::Select,
        Opcode::ItoF,
        Opcode::FtoI,
        Opcode::IMul,
        Opcode::IDiv,
        Opcode::IRem,
        Opcode::FAdd,
        Opcode::FSub,
        Opcode::FNeg,
        Opcode::FAbs,
        Opcode::FMin,
        Opcode::FMax,
        Opcode::FMul,
        Opcode::FDiv,
        Opcode::FSqrt,
        Opcode::FCmpEq,
        Opcode::FCmpLt,
        Opcode::FCmpLe,
        Opcode::Load,
        Opcode::Store,
        Opcode::Permute,
        Opcode::SpRead,
        Opcode::SpWrite,
        Opcode::Copy,
    ];

    /// Number of operands the opcode consumes.
    pub fn num_operands(self) -> usize {
        use Opcode::*;
        match self {
            INeg | IAbs | Not | ItoF | FtoI | FNeg | FAbs | FSqrt | Copy => 1,
            Select | Store | SpWrite => 3,
            IAdd | ISub | IMin | IMax | And | Or | Xor | Shl | Shr | Sra | ICmpEq | ICmpLt
            | ICmpLe | IMul | IDiv | IRem | FAdd | FSub | FMin | FMax | FMul | FDiv | FCmpEq
            | FCmpLt | FCmpLe | Load | SpRead | Permute => 2,
        }
    }

    /// Whether the opcode produces a result value.
    pub fn has_result(self) -> bool {
        !matches!(self, Opcode::Store | Opcode::SpWrite)
    }

    /// Whether the opcode accesses main memory (used for memory-dependence
    /// edges in the dependence graph).
    pub fn is_memory(self) -> bool {
        matches!(self, Opcode::Load | Opcode::Store)
    }

    /// Whether the opcode accesses the scratchpad (scratchpad accesses are
    /// ordered among themselves, like memory accesses).
    pub fn is_scratchpad(self) -> bool {
        matches!(self, Opcode::SpRead | Opcode::SpWrite)
    }

    /// Whether the opcode's result is a pure function of its operands
    /// (no memory or scratchpad side channel).
    pub fn is_pure(self) -> bool {
        !self.is_memory() && !self.is_scratchpad()
    }

    /// Whether swapping the first two operands preserves semantics.
    pub fn is_commutative(self) -> bool {
        use Opcode::*;
        matches!(
            self,
            IAdd | IMin
                | IMax
                | And
                | Or
                | Xor
                | ICmpEq
                | IMul
                | FAdd
                | FMin
                | FMax
                | FMul
                | FCmpEq
        )
    }

    /// A short lower-case mnemonic, stable across releases; used by the IR
    /// printer and the kernel language.
    pub fn mnemonic(self) -> &'static str {
        use Opcode::*;
        match self {
            IAdd => "iadd",
            ISub => "isub",
            INeg => "ineg",
            IAbs => "iabs",
            IMin => "imin",
            IMax => "imax",
            And => "and",
            Or => "or",
            Xor => "xor",
            Not => "not",
            Shl => "shl",
            Shr => "shr",
            Sra => "sra",
            ICmpEq => "icmpeq",
            ICmpLt => "icmplt",
            ICmpLe => "icmple",
            Select => "select",
            ItoF => "itof",
            FtoI => "ftoi",
            IMul => "imul",
            IDiv => "idiv",
            IRem => "irem",
            FAdd => "fadd",
            FSub => "fsub",
            FNeg => "fneg",
            FAbs => "fabs",
            FMin => "fmin",
            FMax => "fmax",
            FMul => "fmul",
            FDiv => "fdiv",
            FSqrt => "fsqrt",
            FCmpEq => "fcmpeq",
            FCmpLt => "fcmplt",
            FCmpLe => "fcmple",
            Load => "load",
            Store => "store",
            Permute => "permute",
            SpRead => "spread",
            SpWrite => "spwrite",
            Copy => "copy",
        }
    }

    /// Parses a mnemonic produced by [`Opcode::mnemonic`].
    pub fn from_mnemonic(s: &str) -> Option<Opcode> {
        Opcode::ALL.iter().copied().find(|op| op.mnemonic() == s)
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// One operation a functional unit can perform, with its timing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Capability {
    /// The operation this capability executes.
    pub opcode: Opcode,
    /// Cycles from issue to result availability. An operation issued on
    /// cycle `c` completes on cycle `c + latency - 1`; its result can first
    /// be read by an operation issuing on cycle `c + latency`.
    pub latency: u32,
    /// Minimum cycles between successive issues of this opcode on the unit
    /// (1 = fully pipelined). Unpipelined dividers use a value > 1.
    pub issue_interval: u32,
}

impl Capability {
    /// A fully-pipelined capability with the given latency.
    ///
    /// # Panics
    ///
    /// Panics if `latency` is zero; results are available at the earliest
    /// one cycle after issue.
    pub fn new(opcode: Opcode, latency: u32) -> Self {
        assert!(latency >= 1, "latency must be at least 1");
        Capability {
            opcode,
            latency,
            issue_interval: 1,
        }
    }

    /// Sets the issue interval (for partially pipelined units).
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn with_issue_interval(mut self, interval: u32) -> Self {
        assert!(interval >= 1, "issue interval must be at least 1");
        self.issue_interval = interval;
        self
    }
}

/// The default latency table used by all four Imagine variants.
///
/// The paper keeps "the mix of functional units and operation latency
/// (including register file access time) the same for all architectures" so
/// speedups normalised to the central architecture factor the absolute
/// values out. These latencies are representative of a late-1990s media
/// processor.
pub fn default_latency(op: Opcode) -> u32 {
    use Opcode::*;
    match op {
        IAdd | ISub | INeg | IAbs | IMin | IMax | And | Or | Xor | Not | Shl | Shr | Sra
        | ICmpEq | ICmpLt | ICmpLe | Select | ItoF | FtoI => 1,
        IMul => 2,
        IDiv | IRem | FDiv | FSqrt => 8,
        FAdd | FSub | FNeg | FAbs | FMin | FMax | FCmpEq | FCmpLt | FCmpLe => 2,
        FMul => 4,
        Load => 4,
        Store => 1,
        Permute => 1,
        SpRead => 2,
        SpWrite => 1,
        Copy => 1,
    }
}

/// Issue interval for the default machine configurations: the divider is
/// partially pipelined (one divide every 4 cycles), everything else is fully
/// pipelined.
pub fn default_issue_interval(op: Opcode) -> u32 {
    use Opcode::*;
    match op {
        IDiv | IRem | FDiv | FSqrt => 4,
        _ => 1,
    }
}

/// Builds a [`Capability`] with the default timing for `op`.
pub fn default_capability(op: Opcode) -> Capability {
    Capability::new(op, default_latency(op)).with_issue_interval(default_issue_interval(op))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_semantics() {
        assert_eq!(Opcode::Select.num_operands(), 3);
        assert_eq!(Opcode::Copy.num_operands(), 1);
        assert_eq!(Opcode::Store.num_operands(), 3);
        assert_eq!(Opcode::FMul.num_operands(), 2);
        assert_eq!(Opcode::Load.num_operands(), 2);
    }

    #[test]
    fn stores_have_no_result() {
        assert!(!Opcode::Store.has_result());
        assert!(!Opcode::SpWrite.has_result());
        assert!(Opcode::Load.has_result());
        assert!(Opcode::Copy.has_result());
    }

    #[test]
    fn memory_classification() {
        assert!(Opcode::Load.is_memory());
        assert!(Opcode::Store.is_memory());
        assert!(!Opcode::SpRead.is_memory());
        assert!(Opcode::SpRead.is_scratchpad());
        assert!(Opcode::IAdd.is_pure());
        assert!(!Opcode::Load.is_pure());
    }

    #[test]
    fn mnemonics_round_trip() {
        for &op in Opcode::ALL {
            assert_eq!(Opcode::from_mnemonic(op.mnemonic()), Some(op));
        }
        assert_eq!(Opcode::from_mnemonic("bogus"), None);
    }

    #[test]
    fn mnemonics_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for &op in Opcode::ALL {
            assert!(seen.insert(op.mnemonic()), "duplicate: {}", op.mnemonic());
        }
    }

    #[test]
    fn default_latencies_are_positive() {
        for &op in Opcode::ALL {
            assert!(default_latency(op) >= 1);
            assert!(default_issue_interval(op) >= 1);
        }
    }

    #[test]
    #[should_panic(expected = "latency")]
    fn zero_latency_rejected() {
        let _ = Capability::new(Opcode::IAdd, 0);
    }

    #[test]
    fn commutativity_spot_checks() {
        assert!(Opcode::IAdd.is_commutative());
        assert!(!Opcode::ISub.is_commutative());
        assert!(!Opcode::Shl.is_commutative());
        assert!(Opcode::FMul.is_commutative());
    }
}
