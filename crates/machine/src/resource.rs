//! Cycle-allocatable hardware resources and their dense indexing.
//!
//! The scheduler's resource tables are dense arrays indexed by
//! `(cycle, resource index)`. [`ResourceMap`] assigns each resource of an
//! architecture a stable dense index.

use crate::arch::Architecture;
use crate::ids::{BusId, FuId, InputRef, ReadPortId, WritePortId};

/// One hardware resource that can be occupied on a given cycle.
///
/// - `FuIssue` — the unit's issue slot (one operation may issue per cycle;
///   partially pipelined capabilities occupy it for `issue_interval` cycles).
/// - `FuOutput` — the unit's result output (one result per cycle, possibly
///   driving several buses).
/// - `Bus` — one value per cycle, broadcast to any number of its write
///   ports or inputs.
/// - `WritePort` / `ReadPort` — one access per cycle.
/// - `FuInput` — one operand per cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Resource {
    /// Issue slot of a functional unit.
    FuIssue(FuId),
    /// Result output of a functional unit.
    FuOutput(FuId),
    /// A shared or dedicated bus.
    Bus(BusId),
    /// A register-file write port.
    WritePort(WritePortId),
    /// A register-file read port.
    ReadPort(ReadPortId),
    /// An operand input of a functional unit.
    FuInput(InputRef),
}

/// Maps [`Resource`]s of one architecture to dense indices `0..len()`.
#[derive(Clone, Debug)]
pub struct ResourceMap {
    num_fus: usize,
    num_buses: usize,
    num_wports: usize,
    num_rports: usize,
    input_offsets: Vec<usize>,
    total: usize,
}

impl ResourceMap {
    /// Builds the map for `arch`.
    pub fn new(arch: &Architecture) -> Self {
        ResourceMap {
            num_fus: arch.num_fus(),
            num_buses: arch.num_buses(),
            num_wports: arch.num_write_ports(),
            num_rports: arch.num_read_ports(),
            input_offsets: arch.input_offsets.clone(),
            total: 2 * arch.num_fus()
                + arch.num_buses()
                + arch.num_write_ports()
                + arch.num_read_ports()
                + arch.num_inputs(),
        }
    }

    /// Total number of resources.
    pub fn len(&self) -> usize {
        self.total
    }

    /// Whether the architecture has no resources (never true for a valid
    /// architecture).
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Dense index of `r`.
    pub fn index(&self, r: Resource) -> usize {
        match r {
            Resource::FuIssue(fu) => fu.index(),
            Resource::FuOutput(fu) => self.num_fus + fu.index(),
            Resource::Bus(b) => 2 * self.num_fus + b.index(),
            Resource::WritePort(p) => 2 * self.num_fus + self.num_buses + p.index(),
            Resource::ReadPort(p) => {
                2 * self.num_fus + self.num_buses + self.num_wports + p.index()
            }
            Resource::FuInput(input) => {
                2 * self.num_fus
                    + self.num_buses
                    + self.num_wports
                    + self.num_rports
                    + self.input_offsets[input.fu.index()]
                    + input.slot()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{ArchBuilder, FuClass};
    use crate::op::{default_capability, Opcode};

    fn sample() -> Architecture {
        let mut b = ArchBuilder::new("sample");
        let rf = b.register_file("RF", 8);
        let a0 = b.functional_unit(
            "A0",
            FuClass::Alu,
            2,
            true,
            [default_capability(Opcode::IAdd)],
        );
        let a1 = b.functional_unit(
            "A1",
            FuClass::Alu,
            3,
            true,
            [default_capability(Opcode::Select)],
        );
        for fu in [a0, a1] {
            b.dedicated_write(fu, rf);
        }
        for slot in 0..2 {
            b.dedicated_read(rf, a0, slot);
        }
        for slot in 0..3 {
            b.dedicated_read(rf, a1, slot);
        }
        b.build().unwrap()
    }

    #[test]
    fn indices_are_dense_and_unique() {
        let arch = sample();
        let map = ResourceMap::new(&arch);
        let mut seen = vec![false; map.len()];
        let mut mark = |r: Resource| {
            let i = map.index(r);
            assert!(i < map.len(), "{r:?} out of range");
            assert!(!seen[i], "{r:?} collides");
            seen[i] = true;
        };
        for fu in arch.fu_ids() {
            mark(Resource::FuIssue(fu));
            mark(Resource::FuOutput(fu));
            for slot in 0..arch.fu(fu).num_inputs() {
                mark(Resource::FuInput(InputRef::new(fu, slot)));
            }
        }
        for bus in arch.bus_ids() {
            mark(Resource::Bus(bus));
        }
        for p in 0..arch.num_write_ports() {
            mark(Resource::WritePort(WritePortId::from_raw(p)));
        }
        for p in 0..arch.num_read_ports() {
            mark(Resource::ReadPort(ReadPortId::from_raw(p)));
        }
        assert!(seen.iter().all(|&s| s), "all indices covered");
    }

    #[test]
    fn len_counts_everything() {
        let arch = sample();
        let map = ResourceMap::new(&arch);
        // 2 fus * 2 (issue+output) + buses + wports + rports + 5 inputs
        assert_eq!(
            map.len(),
            4 + arch.num_buses() + arch.num_write_ports() + arch.num_read_ports() + 5
        );
        assert!(!map.is_empty());
    }
}
