//! Resource faults and degraded-machine construction.
//!
//! A production scheduler must keep working when a machine loses part of
//! its datapath — a burnt-out functional unit, a stuck bus, a failed
//! register-file port. [`Architecture::with_faults`] builds a *degraded*
//! copy of a machine with the failed resources masked out of every stub
//! table and connectivity list, so the unmodified scheduling algorithm
//! simply never sees them. Whether the degraded machine is still usable is
//! then answered by the ordinary checks: the Appendix A copy-connectivity
//! analysis and the per-opcode capable-unit check.
//!
//! Masking *cascades*: a unit whose output can no longer reach any
//! register file, or one of whose used inputs can no longer be fed, is
//! disabled entirely (its capabilities are cleared) — it could never
//! execute an operation to completion, and removing it keeps the
//! connectivity analysis honest.
//!
//! Identifiers are stable across masking: the degraded machine has the
//! same component vectors as the original, so `FuId`/`BusId`/port ids (and
//! schedules produced on the degraded machine) can be reported and
//! validated against either description.

use std::collections::HashSet;
use std::fmt;

use crate::arch::Architecture;
use crate::ids::{BusId, FuId, ReadPortId, WritePortId};

/// One failed hardware resource.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultSpec {
    /// A functional unit is offline: it executes nothing, drives no bus,
    /// and its inputs accept nothing.
    Fu(FuId),
    /// A bus is dead: no write or read stub may use it.
    Bus(BusId),
    /// A register-file read port is stuck: no read stub may use it.
    ReadPort(ReadPortId),
    /// A register-file write port is stuck: no write stub may use it.
    WritePort(WritePortId),
}

impl FaultSpec {
    /// Human-readable description, resolving names via `arch` (which must
    /// be the architecture — original or degraded — the ids refer to).
    pub fn describe(&self, arch: &Architecture) -> String {
        match *self {
            FaultSpec::Fu(fu) => format!("unit {} offline", arch.fu(fu).name()),
            FaultSpec::Bus(bus) => format!("bus {} dead", arch.bus(bus).name()),
            FaultSpec::ReadPort(port) => format!(
                "read port {port} of {} stuck",
                arch.rf(arch.read_port_rf(port)).name()
            ),
            FaultSpec::WritePort(port) => format!(
                "write port {port} of {} stuck",
                arch.rf(arch.write_port_rf(port)).name()
            ),
        }
    }
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FaultSpec::Fu(fu) => write!(f, "fault({fu})"),
            FaultSpec::Bus(bus) => write!(f, "fault({bus})"),
            FaultSpec::ReadPort(port) => write!(f, "fault({port})"),
            FaultSpec::WritePort(port) => write!(f, "fault({port})"),
        }
    }
}

impl Architecture {
    /// Every single-resource fault this machine can suffer: each unit,
    /// bus, read port, and write port in turn. The fault-injection harness
    /// iterates this list.
    pub fn single_resource_faults(&self) -> Vec<FaultSpec> {
        let mut faults = Vec::new();
        faults.extend(self.fu_ids().map(FaultSpec::Fu));
        faults.extend(self.bus_ids().map(FaultSpec::Bus));
        faults.extend(
            (0..self.num_read_ports()).map(|i| FaultSpec::ReadPort(ReadPortId::from_raw(i))),
        );
        faults.extend(
            (0..self.num_write_ports()).map(|i| FaultSpec::WritePort(WritePortId::from_raw(i))),
        );
        faults
    }

    /// Builds a degraded copy of this machine with `faults` masked out.
    ///
    /// Faulty resources are removed from the precomputed write/read stub
    /// tables and the connectivity lists; units left unable to write their
    /// result anywhere, or to feed one of their used inputs, are disabled
    /// entirely (capabilities cleared). The returned machine always
    /// constructs — whether it can still run a kernel is reported by
    /// [`Architecture::copy_connectivity`] and the scheduler's own
    /// capable-unit check, as typed errors rather than panics.
    ///
    /// Component ids are unchanged, so faults, schedules and validation
    /// reports are directly comparable between the original and degraded
    /// descriptions.
    pub fn with_faults(&self, faults: &[FaultSpec]) -> Architecture {
        let mut dead_fus: HashSet<FuId> = HashSet::new();
        let mut dead_buses: HashSet<BusId> = HashSet::new();
        let mut dead_rports: HashSet<ReadPortId> = HashSet::new();
        let mut dead_wports: HashSet<WritePortId> = HashSet::new();
        for &f in faults {
            match f {
                FaultSpec::Fu(fu) => {
                    dead_fus.insert(fu);
                }
                FaultSpec::Bus(bus) => {
                    dead_buses.insert(bus);
                }
                FaultSpec::ReadPort(port) => {
                    dead_rports.insert(port);
                }
                FaultSpec::WritePort(port) => {
                    dead_wports.insert(port);
                }
            }
        }

        let mut arch = self.clone();
        if !faults.is_empty() {
            arch.name = format!("{}+{}flt", arch.name, faults.len());
        }

        // Mask the precomputed stub tables.
        for (fu_idx, stubs) in arch.write_stubs.iter_mut().enumerate() {
            let fu = FuId::from_raw(fu_idx);
            stubs.retain(|s| {
                !dead_fus.contains(&fu)
                    && !dead_buses.contains(&s.bus)
                    && !dead_wports.contains(&s.port)
            });
        }
        for stubs in arch.read_stubs.iter_mut() {
            stubs.retain(|s| {
                !dead_fus.contains(&s.fu)
                    && !dead_buses.contains(&s.bus)
                    && !dead_rports.contains(&s.port)
            });
        }

        // Mask the connectivity lists the stub tables were derived from, so
        // per-component queries agree with the stub view.
        for (fu_idx, buses) in arch.output_buses.iter_mut().enumerate() {
            if dead_fus.contains(&FuId::from_raw(fu_idx)) {
                buses.clear();
            } else {
                buses.retain(|b| !dead_buses.contains(b));
            }
        }
        for (bus_idx, wports) in arch.bus_wports.iter_mut().enumerate() {
            if dead_buses.contains(&BusId::from_raw(bus_idx)) {
                wports.clear();
            } else {
                wports.retain(|p| !dead_wports.contains(p));
            }
        }
        for (rport_idx, buses) in arch.rport_buses.iter_mut().enumerate() {
            if dead_rports.contains(&ReadPortId::from_raw(rport_idx)) {
                buses.clear();
            } else {
                buses.retain(|b| !dead_buses.contains(b));
            }
        }
        for (bus_idx, inputs) in arch.bus_inputs.iter_mut().enumerate() {
            if dead_buses.contains(&BusId::from_raw(bus_idx)) {
                inputs.clear();
            } else {
                inputs.retain(|i| !dead_fus.contains(&i.fu));
            }
        }

        // Disable faulted units, then cascade: a unit that can no longer
        // write its result, or feed a used input slot, executes nothing.
        for &fu in &dead_fus {
            arch.fus[fu.index()].caps.clear();
        }
        for fu_idx in 0..arch.fus.len() {
            let fu = FuId::from_raw(fu_idx);
            if arch.fus[fu_idx].caps.is_empty() {
                continue;
            }
            let produces = arch.fus[fu_idx].caps.iter().any(|c| c.opcode.has_result());
            let output_cut = produces && arch.write_stubs[fu_idx].is_empty();
            let input_cut = (0..arch.fus[fu_idx].num_inputs).any(|slot| {
                let used = arch.fus[fu_idx]
                    .caps
                    .iter()
                    .any(|c| c.opcode.num_operands() > slot);
                used && arch.read_stubs(fu, slot).is_empty()
            });
            if output_cut || input_cut {
                arch.fus[fu_idx].caps.clear();
            }
        }
        arch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imagine;
    use crate::op::Opcode;

    #[test]
    fn no_faults_is_identity_but_for_nothing() {
        let arch = imagine::distributed();
        let degraded = arch.with_faults(&[]);
        assert_eq!(degraded.name(), arch.name());
        assert_eq!(degraded.num_fus(), arch.num_fus());
        for fu in arch.fu_ids() {
            assert_eq!(degraded.write_stubs(fu).len(), arch.write_stubs(fu).len());
        }
    }

    #[test]
    fn fu_fault_disables_the_unit() {
        let arch = imagine::distributed();
        let fu = arch.fu_ids().next().unwrap();
        let degraded = arch.with_faults(&[FaultSpec::Fu(fu)]);
        assert!(degraded.fu(fu).capabilities().is_empty());
        assert!(degraded.write_stubs(fu).is_empty());
        assert!(degraded.output_buses(fu).is_empty());
        // Ids and component counts are stable.
        assert_eq!(degraded.num_fus(), arch.num_fus());
        assert_eq!(degraded.num_buses(), arch.num_buses());
    }

    #[test]
    fn bus_fault_removes_stubs_on_that_bus() {
        let arch = imagine::distributed();
        let bus = arch.bus_ids().next().unwrap();
        let degraded = arch.with_faults(&[FaultSpec::Bus(bus)]);
        for fu in degraded.fu_ids() {
            assert!(degraded.write_stubs(fu).iter().all(|s| s.bus != bus));
            for slot in 0..degraded.fu(fu).num_inputs() {
                assert!(degraded.read_stubs(fu, slot).iter().all(|s| s.bus != bus));
            }
        }
    }

    #[test]
    fn output_cut_cascades_to_disable() {
        // Kill every bus a unit's output drives: the unit must be disabled
        // even though only buses were named in the fault list.
        let arch = imagine::distributed();
        let fu = arch
            .fu_ids()
            .find(|&f| arch.fu(f).has_output() && !arch.output_buses(f).is_empty())
            .unwrap();
        let faults: Vec<FaultSpec> = arch
            .output_buses(fu)
            .iter()
            .map(|&b| FaultSpec::Bus(b))
            .collect();
        let degraded = arch.with_faults(&faults);
        assert!(degraded.fu(fu).capabilities().is_empty());
    }

    #[test]
    fn copy_unit_fault_can_break_connectivity() {
        // Two private-RF ALUs bridged by two copy units; killing the
        // bridge must surface as a connectivity violation on the degraded
        // machine, not as a panic anywhere downstream.
        use crate::arch::{ArchBuilder, FuClass};
        use crate::op::default_capability;
        let mut b = ArchBuilder::new("bridge2");
        let rf0 = b.register_file("RF0", 8);
        let rf1 = b.register_file("RF1", 8);
        let a0 = b.functional_unit(
            "A0",
            FuClass::Alu,
            2,
            true,
            [default_capability(Opcode::IAdd)],
        );
        let a1 = b.functional_unit(
            "A1",
            FuClass::Alu,
            2,
            true,
            [default_capability(Opcode::IAdd)],
        );
        let cp0 = b.functional_unit(
            "CP0",
            FuClass::CopyUnit,
            1,
            true,
            [default_capability(Opcode::Copy)],
        );
        let cp1 = b.functional_unit(
            "CP1",
            FuClass::CopyUnit,
            1,
            true,
            [default_capability(Opcode::Copy)],
        );
        b.dedicated_write(a0, rf0);
        b.dedicated_write(a1, rf1);
        for s in 0..2 {
            b.dedicated_read(rf0, a0, s);
            b.dedicated_read(rf1, a1, s);
        }
        b.dedicated_read(rf0, cp0, 0);
        b.dedicated_write(cp0, rf1);
        b.dedicated_read(rf1, cp1, 0);
        b.dedicated_write(cp1, rf0);
        let arch = b.build().unwrap();
        assert!(arch.copy_connectivity().is_copy_connected());

        let degraded = arch.with_faults(&[FaultSpec::Fu(cp0), FaultSpec::Fu(cp1)]);
        let conn = degraded.copy_connectivity();
        assert!(!conn.is_copy_connected());
        assert!(!conn.violations().is_empty());
    }

    #[test]
    fn single_resource_faults_enumerates_everything() {
        let arch = imagine::clustered(4);
        let faults = arch.single_resource_faults();
        assert_eq!(
            faults.len(),
            arch.num_fus() + arch.num_buses() + arch.num_read_ports() + arch.num_write_ports()
        );
        // Descriptions resolve names without panicking.
        for f in &faults {
            assert!(!f.describe(&arch).is_empty());
        }
    }
}
