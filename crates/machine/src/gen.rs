//! Deterministic random architecture generation, for property testing and
//! design-space sampling.
//!
//! Two random families are provided, both copy-connected by construction:
//!
//! - [`random_distributed`]: per-input register files over a random number
//!   of shared global buses (every output reaches every file directly);
//! - [`random_clustered`]: two cluster register files with dedicated ports
//!   and copy units bridging both directions (cross-cluster communications
//!   force copy insertion).
//!
//! On top of the random families, [`DesignSpace`] and [`DesignPoint`]
//! parameterise a *systematic* family for design-space exploration: a
//! cross product of register-file organisation (shared files vs.
//! per-input files), ALU count, shared-bus count, register-file capacity
//! and write-port count, every point of which covers the full opcode set
//! of the Table 1 kernel suite. Points enumerate in a stable order,
//! sample reproducibly, and mutate into neighbouring points for local
//! search.
//!
//! Generation is seeded and reproducible; the same seed always yields the
//! same machine.

use crate::arch::{ArchBuilder, ArchError, Architecture, FuClass};
use crate::ids::FuId;
use crate::op::{default_capability, Capability, Opcode};

/// Small deterministic generator (xorshift64*) so machine generation does
/// not depend on external crates.
#[derive(Clone, Debug)]
pub struct Rng(u64);

impl Rng {
    /// Creates a generator from a seed.
    ///
    /// The seed is passed through a splitmix64 finalizer (the same mixer
    /// as `csched_core::faultinject::ChaosRng`) so that nearby seeds
    /// diverge immediately. The previous `seed | 1` mapping aliased every
    /// even seed `2k` onto `2k + 1`, silently halving the generated
    /// population; the finalizer is a bijection, so distinct seeds now
    /// yield distinct states (0 is remapped because xorshift64* requires
    /// a non-zero state).
    pub fn new(seed: u64) -> Self {
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Rng(if z == 0 { 0x9E37_79B9_7F4A_7C15 } else { z })
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        self.0 = self.0.wrapping_mul(0x2545F4914F6CDD1D);
        self.0
    }

    /// Uniform value in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range");
        (self.next_u64() % n as u64) as usize
    }
}

/// Integer opcodes every generated ALU supports (no division or floating
/// point, so differential tests never trap and are bit-exact).
pub const GEN_ALU_OPS: &[Opcode] = &[
    Opcode::IAdd,
    Opcode::ISub,
    Opcode::IMin,
    Opcode::IMax,
    Opcode::And,
    Opcode::Or,
    Opcode::Xor,
    Opcode::ICmpEq,
    Opcode::ICmpLt,
    Opcode::ICmpLe,
    Opcode::Select,
];

fn caps(ops: &[Opcode]) -> Vec<Capability> {
    ops.iter().map(|&o| default_capability(o)).collect()
}

/// Generates a distributed-style machine: 1–3 ALUs, one multiplier and one
/// load/store unit, per-input register files, 1–4 shared global buses.
pub fn random_distributed(seed: u64) -> Architecture {
    let mut rng = Rng::new(seed.rotate_left(17));
    let alus = 1 + rng.below(3);
    let buses = 1 + rng.below(4);
    let mut b = ArchBuilder::new(format!("gen-dist-{seed:x}"));
    let mut alu_ops: Vec<Opcode> = GEN_ALU_OPS.to_vec();
    alu_ops.push(Opcode::Copy);

    let mut units: Vec<(FuId, usize)> = Vec::new();
    for i in 0..alus {
        units.push((
            b.functional_unit(format!("ALU{i}"), FuClass::Alu, 3, true, caps(&alu_ops)),
            3,
        ));
    }
    units.push((
        b.functional_unit(
            "MUL",
            FuClass::Mul,
            2,
            true,
            caps(&[Opcode::IMul, Opcode::Copy]),
        ),
        2,
    ));
    units.push((
        b.functional_unit(
            "LS",
            FuClass::Ls,
            3,
            true,
            caps(&[Opcode::Load, Opcode::Store]),
        ),
        3,
    ));
    let bus_ids: Vec<_> = (0..buses).map(|i| b.bus(format!("GB{i}"))).collect();
    for &(fu, _) in &units {
        for &bus in &bus_ids {
            b.connect_output(fu, bus);
        }
        if buses > 1 && rng.below(3) == 0 {
            b.set_output_fanout(fu, 2);
        }
    }
    for &(fu, inputs) in &units {
        for slot in 0..inputs {
            let rf = b.register_file(format!("RF_{}_{slot}", fu.index()), 16);
            let wp = b.write_port(rf);
            for &bus in &bus_ids {
                b.connect_bus_to_write_port(bus, wp);
            }
            b.dedicated_read(rf, fu, slot);
        }
    }
    b.build().expect("generated machines are well-formed")
}

/// Generates a two-cluster machine with copy units bridging both
/// directions.
pub fn random_clustered(seed: u64) -> Architecture {
    let mut rng = Rng::new(seed.rotate_left(29));
    let mut b = ArchBuilder::new(format!("gen-clus-{seed:x}"));

    let rf0 = b.register_file("RF0", 32);
    let rf1 = b.register_file("RF1", 32);
    let rfs = [rf0, rf1];

    let assign = |b: &mut ArchBuilder, fu, cluster: usize, inputs: usize| {
        b.dedicated_write(fu, rfs[cluster]);
        for slot in 0..inputs {
            b.dedicated_read(rfs[cluster], fu, slot);
        }
    };
    let alus = 1 + rng.below(2);
    for i in 0..=alus {
        let fu = b.functional_unit(format!("ALU{i}"), FuClass::Alu, 3, true, caps(GEN_ALU_OPS));
        assign(&mut b, fu, i % 2, 3);
    }
    let mul = b.functional_unit("MUL", FuClass::Mul, 2, true, caps(&[Opcode::IMul]));
    assign(&mut b, mul, rng.below(2), 2);
    let ls = b.functional_unit(
        "LS",
        FuClass::Ls,
        3,
        true,
        caps(&[Opcode::Load, Opcode::Store]),
    );
    assign(&mut b, ls, rng.below(2), 3);

    for (from, to) in [(0usize, 1usize), (1, 0)] {
        let cp = b.functional_unit(
            format!("CP{from}"),
            FuClass::CopyUnit,
            1,
            true,
            caps(&[Opcode::Copy]),
        );
        b.dedicated_read(rfs[from], cp, 0);
        b.dedicated_write(cp, rfs[to]);
    }
    b.build().expect("generated machines are well-formed")
}

/// A parameterised design space for systematic architecture search.
///
/// Every axis is inclusive; `rf_capacities` is an explicit (ordered) list
/// because realistic register-file sizes are not contiguous. `clusters ==
/// 0` denotes the distributed organisation (one small file per functional
/// unit input); `clusters >= 1` builds that many shared register files
/// with functional units assigned round-robin. The space is the cross
/// product of all five axes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DesignSpace {
    /// Shared register files (0 = per-input distributed organisation).
    pub clusters: (usize, usize),
    /// General ALU count (every point also gets one MUL, DIV and LS unit).
    pub alus: (usize, usize),
    /// Shared global writeback buses.
    pub buses: (usize, usize),
    /// Allowed registers-per-file values, in ascending order.
    pub rf_capacities: Vec<usize>,
    /// Write ports per register file (each fed by every global bus).
    pub write_ports: (usize, usize),
}

impl Default for DesignSpace {
    /// A 270-point space spanning the paper's organisational spectrum:
    /// distributed (0) through 1–4 shared files, 1–3 ALUs, 1–3 buses,
    /// three file sizes and 1–2 write ports.
    fn default() -> Self {
        DesignSpace {
            clusters: (0, 4),
            alus: (1, 3),
            buses: (1, 3),
            rf_capacities: vec![8, 16, 32],
            write_ports: (1, 2),
        }
    }
}

fn axis_len(range: (usize, usize)) -> usize {
    range.1.saturating_sub(range.0).saturating_add(1)
}

impl DesignSpace {
    /// Number of points in the space.
    pub fn size(&self) -> usize {
        axis_len(self.clusters)
            * axis_len(self.alus)
            * axis_len(self.buses)
            * self.rf_capacities.len()
            * axis_len(self.write_ports)
    }

    /// Whether `point` lies inside the space.
    pub fn contains(&self, point: &DesignPoint) -> bool {
        (self.clusters.0..=self.clusters.1).contains(&point.clusters)
            && (self.alus.0..=self.alus.1).contains(&point.alus)
            && (self.buses.0..=self.buses.1).contains(&point.buses)
            && self.rf_capacities.contains(&point.rf_capacity)
            && (self.write_ports.0..=self.write_ports.1).contains(&point.write_ports)
    }

    /// Every point of the space, in a stable lexicographic order
    /// (clusters, ALUs, buses, capacity, write ports).
    pub fn enumerate(&self) -> Vec<DesignPoint> {
        let mut points = Vec::with_capacity(self.size());
        for clusters in self.clusters.0..=self.clusters.1 {
            for alus in self.alus.0..=self.alus.1 {
                for buses in self.buses.0..=self.buses.1 {
                    for &rf_capacity in &self.rf_capacities {
                        for write_ports in self.write_ports.0..=self.write_ports.1 {
                            points.push(DesignPoint {
                                clusters,
                                alus,
                                buses,
                                rf_capacity,
                                write_ports,
                            });
                        }
                    }
                }
            }
        }
        points
    }

    /// Draws one uniform point (each axis drawn independently).
    ///
    /// Returns `None` when the space is empty (`rf_capacities` empty or an
    /// inverted range).
    pub fn sample(&self, rng: &mut Rng) -> Option<DesignPoint> {
        if self.rf_capacities.is_empty()
            || self.clusters.0 > self.clusters.1
            || self.alus.0 > self.alus.1
            || self.buses.0 > self.buses.1
            || self.write_ports.0 > self.write_ports.1
        {
            return None;
        }
        let draw = |rng: &mut Rng, range: (usize, usize)| range.0 + rng.below(axis_len(range));
        Some(DesignPoint {
            clusters: draw(rng, self.clusters),
            alus: draw(rng, self.alus),
            buses: draw(rng, self.buses),
            rf_capacity: self.rf_capacities[rng.below(self.rf_capacities.len())],
            write_ports: draw(rng, self.write_ports),
        })
    }
}

/// One concrete point of a [`DesignSpace`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DesignPoint {
    /// Shared register files (0 = per-input distributed organisation).
    pub clusters: usize,
    /// General ALU count.
    pub alus: usize,
    /// Shared global writeback buses.
    pub buses: usize,
    /// Registers per file.
    pub rf_capacity: usize,
    /// Write ports per register file.
    pub write_ports: usize,
}

impl DesignPoint {
    /// Compact stable label, used as the generated machine's name suffix
    /// (e.g. `c2-a3-b2-r16-w1`; `c0` is the distributed organisation).
    pub fn label(&self) -> String {
        format!(
            "c{}-a{}-b{}-r{}-w{}",
            self.clusters, self.alus, self.buses, self.rf_capacity, self.write_ports
        )
    }

    /// The neighbouring points reachable by moving exactly one axis one
    /// step (capacity moves along `space.rf_capacities`), clipped to the
    /// space. Order is stable: axis by axis, down first, then up.
    pub fn neighbours(&self, space: &DesignSpace) -> Vec<DesignPoint> {
        let mut out = Vec::new();
        let mut push = |p: DesignPoint| {
            if space.contains(&p) && p != *self {
                out.push(p);
            }
        };
        for delta in [-1isize, 1] {
            let step = |v: usize| v.checked_add_signed(delta);
            if let Some(clusters) = step(self.clusters) {
                push(DesignPoint { clusters, ..*self });
            }
            if let Some(alus) = step(self.alus) {
                push(DesignPoint { alus, ..*self });
            }
            if let Some(buses) = step(self.buses) {
                push(DesignPoint { buses, ..*self });
            }
            if let Some(idx) = space
                .rf_capacities
                .iter()
                .position(|&c| c == self.rf_capacity)
                .and_then(|i| i.checked_add_signed(delta))
            {
                if let Some(&rf_capacity) = space.rf_capacities.get(idx) {
                    push(DesignPoint {
                        rf_capacity,
                        ..*self
                    });
                }
            }
            if let Some(write_ports) = step(self.write_ports) {
                push(DesignPoint {
                    write_ports,
                    ..*self
                });
            }
        }
        out
    }

    /// Builds the architecture for this point.
    ///
    /// Unit mix: `alus` general ALUs (full integer + floating-point
    /// repertoire, `copy`-capable), one multiplier (`imul`/`fmul`/`copy`),
    /// one divider (`fdiv` and friends, `copy`) and one load/store unit —
    /// together covering every opcode the Table 1 kernels use. All
    /// outputs drive all `buses` global buses. With `clusters == 0` every
    /// input gets its own file (the distributed organisation); otherwise
    /// units are assigned round-robin to `clusters` shared files and read
    /// only their own file, while any bus can reach any file's write
    /// ports — so every point is copy-connected by construction.
    ///
    /// # Errors
    ///
    /// Returns the builder's [`ArchError`] if the point describes a
    /// malformed machine (e.g. zero buses or zero write ports).
    pub fn build(&self) -> Result<Architecture, ArchError> {
        let mut b = ArchBuilder::new(format!("dse-{}", self.label()));

        use Opcode::*;
        let alu_ops: Vec<Opcode> = vec![
            IAdd, ISub, INeg, IAbs, IMin, IMax, And, Or, Xor, Not, Shl, Shr, Sra, ICmpEq, ICmpLt,
            ICmpLe, Select, ItoF, FtoI, FAdd, FSub, FNeg, FAbs, FMin, FMax, FCmpEq, FCmpLt, FCmpLe,
            Copy,
        ];

        let mut units: Vec<(FuId, usize)> = Vec::new();
        for i in 0..self.alus {
            let fu = b.functional_unit(format!("ALU{i}"), FuClass::Alu, 3, true, caps(&alu_ops));
            units.push((fu, 3));
        }
        let mul = b.functional_unit("MUL", FuClass::Mul, 2, true, caps(&[IMul, FMul, Copy]));
        units.push((mul, 2));
        let div = b.functional_unit(
            "DIV",
            FuClass::Div,
            2,
            true,
            caps(&[IDiv, IRem, FDiv, FSqrt, Copy]),
        );
        units.push((div, 2));
        let ls = b.functional_unit("LS", FuClass::Ls, 3, true, caps(&[Load, Store]));
        units.push((ls, 3));

        let bus_ids: Vec<_> = (0..self.buses).map(|i| b.bus(format!("GB{i}"))).collect();
        for &(fu, _) in &units {
            for &bus in &bus_ids {
                b.connect_output(fu, bus);
            }
        }

        if self.clusters == 0 {
            // Distributed: one small file per input, write ports fed by
            // every bus, dedicated read path.
            for &(fu, inputs) in &units {
                for slot in 0..inputs {
                    let rf = b.register_file(format!("RF_{}_{slot}", fu.index()), self.rf_capacity);
                    for _ in 0..self.write_ports {
                        let wp = b.write_port(rf);
                        for &bus in &bus_ids {
                            b.connect_bus_to_write_port(bus, wp);
                        }
                    }
                    b.dedicated_read(rf, fu, slot);
                }
            }
        } else {
            // Shared files: units round-robin across clusters, reads stay
            // inside the cluster, writes reach any file over the buses.
            let rfs: Vec<_> = (0..self.clusters)
                .map(|c| b.register_file(format!("RF{c}"), self.rf_capacity))
                .collect();
            for &rf in &rfs {
                for _ in 0..self.write_ports {
                    let wp = b.write_port(rf);
                    for &bus in &bus_ids {
                        b.connect_bus_to_write_port(bus, wp);
                    }
                }
            }
            for (i, &(fu, inputs)) in units.iter().enumerate() {
                let rf = rfs[i % self.clusters];
                for slot in 0..inputs {
                    b.dedicated_read(rf, fu, slot);
                }
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in [1u64, 42, 0xDEAD] {
            let a = random_distributed(seed);
            let b = random_distributed(seed);
            assert_eq!(a.num_fus(), b.num_fus());
            assert_eq!(a.num_rfs(), b.num_rfs());
            assert_eq!(a.num_buses(), b.num_buses());
            assert_eq!(a.name(), b.name());
        }
    }

    #[test]
    fn all_generated_machines_are_copy_connected() {
        for seed in 0..50u64 {
            let d = random_distributed(seed);
            assert!(
                d.copy_connectivity().is_copy_connected(),
                "distributed seed {seed}"
            );
            let c = random_clustered(seed);
            assert!(
                c.copy_connectivity().is_copy_connected(),
                "clustered seed {seed}"
            );
        }
    }

    #[test]
    fn clustered_machines_need_copies_across_clusters() {
        let arch = random_clustered(7);
        let conn = arch.copy_connectivity();
        let rf0 = arch.rf_by_name("RF0").unwrap();
        let rf1 = arch.rf_by_name("RF1").unwrap();
        assert_eq!(conn.copy_distance(rf0, rf1), Some(1));
        assert_eq!(conn.copy_distance(rf1, rf0), Some(1));
    }

    #[test]
    fn generated_machines_round_trip_through_text() {
        for seed in [3u64, 9, 27] {
            let arch = random_distributed(seed);
            let text = crate::text::print(&arch);
            let parsed = crate::text::parse(&text).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert_eq!(parsed.num_fus(), arch.num_fus());
            assert_eq!(parsed.num_rfs(), arch.num_rfs());
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn rng_rejects_empty_range() {
        Rng::new(1).below(0);
    }

    #[test]
    fn distinct_seeds_have_distinct_streams() {
        // Regression for the `seed | 1` aliasing bug: seeds 2k and 2k+1
        // used to produce identical generators. The splitmix64 finalizer
        // is a bijection and xorshift64*'s state update is invertible, so
        // distinct seeds must yield distinct first outputs.
        let mut firsts: Vec<u64> = (0..256u64).map(|s| Rng::new(s).next_u64()).collect();
        firsts.sort_unstable();
        firsts.dedup();
        assert_eq!(firsts.len(), 256, "seed aliasing detected");
    }

    #[test]
    fn adjacent_seeds_generate_distinct_machines() {
        // With the old mapping, random_distributed(2k) == random_distributed(2k+1)
        // structurally for every k. Now the pairs must diverge somewhere.
        let distinct_pairs = (0..16u64)
            .filter(|&k| {
                random_distributed(2 * k).fingerprint()
                    != random_distributed(2 * k + 1).fingerprint()
            })
            .count();
        assert!(
            distinct_pairs >= 8,
            "even/odd seed pairs still alias: only {distinct_pairs}/16 distinct"
        );
    }

    #[test]
    fn design_space_enumerates_its_size_in_stable_order() {
        let space = DesignSpace::default();
        let points = space.enumerate();
        assert_eq!(points.len(), space.size());
        assert_eq!(points.len(), 5 * 3 * 3 * 3 * 2);
        // Stable lexicographic order, all points in-space and distinct.
        let mut seen = std::collections::HashSet::new();
        for p in &points {
            assert!(space.contains(p));
            assert!(seen.insert(*p), "duplicate point {p:?}");
        }
        assert_eq!(points[0].label(), "c0-a1-b1-r8-w1");
        assert_eq!(points.last().unwrap().label(), "c4-a3-b3-r32-w2");
    }

    #[test]
    fn sampling_is_seeded_and_in_space() {
        let space = DesignSpace::default();
        let mut a = Rng::new(9);
        let mut b = Rng::new(9);
        for _ in 0..50 {
            let pa = space.sample(&mut a).unwrap();
            let pb = space.sample(&mut b).unwrap();
            assert_eq!(pa, pb);
            assert!(space.contains(&pa));
        }
        let empty = DesignSpace {
            rf_capacities: vec![],
            ..space
        };
        assert!(empty.sample(&mut a).is_none());
    }

    #[test]
    fn neighbours_move_one_axis_and_stay_in_space() {
        let space = DesignSpace::default();
        let p = DesignPoint {
            clusters: 2,
            alus: 2,
            buses: 2,
            rf_capacity: 16,
            write_ports: 1,
        };
        let ns = p.neighbours(&space);
        // Interior point except write_ports at the lower edge: 2*4 + 1.
        assert_eq!(ns.len(), 9);
        for n in &ns {
            assert!(space.contains(n), "{n:?}");
            let moved = [
                n.clusters != p.clusters,
                n.alus != p.alus,
                n.buses != p.buses,
                n.rf_capacity != p.rf_capacity,
                n.write_ports != p.write_ports,
            ]
            .iter()
            .filter(|&&m| m)
            .count();
            assert_eq!(moved, 1, "{n:?} moved more than one axis");
        }
        // Corner point: only upward moves remain.
        let corner = DesignPoint {
            clusters: 0,
            alus: 1,
            buses: 1,
            rf_capacity: 8,
            write_ports: 1,
        };
        assert_eq!(corner.neighbours(&space).len(), 5);
    }

    #[test]
    fn every_design_point_builds_copy_connected() {
        for p in DesignSpace::default().enumerate() {
            let arch = p.build().unwrap_or_else(|e| panic!("{p:?}: {e}"));
            assert!(
                arch.copy_connectivity().is_copy_connected(),
                "{p:?} not copy-connected"
            );
            assert_eq!(arch.num_fus(), p.alus + 3);
            assert!(arch.num_buses() >= p.buses);
            if p.clusters > 0 {
                assert_eq!(arch.num_rfs(), p.clusters);
            } else {
                assert_eq!(arch.num_rfs(), arch.num_inputs());
            }
        }
    }

    #[test]
    fn fingerprints_separate_design_points() {
        let space = DesignSpace::default();
        let mut fps = std::collections::HashSet::new();
        for p in space.enumerate() {
            let arch = p.build().unwrap();
            assert!(
                fps.insert(arch.fingerprint()),
                "fingerprint collision at {p:?}"
            );
        }
    }
}
