//! Deterministic random architecture generation, for property testing and
//! design-space sampling.
//!
//! Two families are provided, both copy-connected by construction:
//!
//! - [`random_distributed`]: per-input register files over a random number
//!   of shared global buses (every output reaches every file directly);
//! - [`random_clustered`]: two cluster register files with dedicated ports
//!   and copy units bridging both directions (cross-cluster communications
//!   force copy insertion).
//!
//! Generation is seeded and reproducible; the same seed always yields the
//! same machine.

use crate::arch::{ArchBuilder, Architecture, FuClass};
use crate::ids::FuId;
use crate::op::{default_capability, Capability, Opcode};

/// Small deterministic generator (xorshift64*) so machine generation does
/// not depend on external crates.
#[derive(Clone, Debug)]
pub struct Rng(u64);

impl Rng {
    /// Creates a generator from a seed (0 is mapped to a fixed non-zero
    /// state).
    pub fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        self.0 = self.0.wrapping_mul(0x2545F4914F6CDD1D);
        self.0
    }

    /// Uniform value in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range");
        (self.next_u64() % n as u64) as usize
    }
}

/// Integer opcodes every generated ALU supports (no division or floating
/// point, so differential tests never trap and are bit-exact).
pub const GEN_ALU_OPS: &[Opcode] = &[
    Opcode::IAdd,
    Opcode::ISub,
    Opcode::IMin,
    Opcode::IMax,
    Opcode::And,
    Opcode::Or,
    Opcode::Xor,
    Opcode::ICmpEq,
    Opcode::ICmpLt,
    Opcode::ICmpLe,
    Opcode::Select,
];

fn caps(ops: &[Opcode]) -> Vec<Capability> {
    ops.iter().map(|&o| default_capability(o)).collect()
}

/// Generates a distributed-style machine: 1–3 ALUs, one multiplier and one
/// load/store unit, per-input register files, 1–4 shared global buses.
pub fn random_distributed(seed: u64) -> Architecture {
    let mut rng = Rng::new(seed.rotate_left(17));
    let alus = 1 + rng.below(3);
    let buses = 1 + rng.below(4);
    let mut b = ArchBuilder::new(format!("gen-dist-{seed:x}"));
    let mut alu_ops: Vec<Opcode> = GEN_ALU_OPS.to_vec();
    alu_ops.push(Opcode::Copy);

    let mut units: Vec<(FuId, usize)> = Vec::new();
    for i in 0..alus {
        units.push((
            b.functional_unit(format!("ALU{i}"), FuClass::Alu, 3, true, caps(&alu_ops)),
            3,
        ));
    }
    units.push((
        b.functional_unit(
            "MUL",
            FuClass::Mul,
            2,
            true,
            caps(&[Opcode::IMul, Opcode::Copy]),
        ),
        2,
    ));
    units.push((
        b.functional_unit(
            "LS",
            FuClass::Ls,
            3,
            true,
            caps(&[Opcode::Load, Opcode::Store]),
        ),
        3,
    ));
    let bus_ids: Vec<_> = (0..buses).map(|i| b.bus(format!("GB{i}"))).collect();
    for &(fu, _) in &units {
        for &bus in &bus_ids {
            b.connect_output(fu, bus);
        }
        if buses > 1 && rng.below(3) == 0 {
            b.set_output_fanout(fu, 2);
        }
    }
    for &(fu, inputs) in &units {
        for slot in 0..inputs {
            let rf = b.register_file(format!("RF_{}_{slot}", fu.index()), 16);
            let wp = b.write_port(rf);
            for &bus in &bus_ids {
                b.connect_bus_to_write_port(bus, wp);
            }
            b.dedicated_read(rf, fu, slot);
        }
    }
    b.build().expect("generated machines are well-formed")
}

/// Generates a two-cluster machine with copy units bridging both
/// directions.
pub fn random_clustered(seed: u64) -> Architecture {
    let mut rng = Rng::new(seed.rotate_left(29));
    let mut b = ArchBuilder::new(format!("gen-clus-{seed:x}"));

    let rf0 = b.register_file("RF0", 32);
    let rf1 = b.register_file("RF1", 32);
    let rfs = [rf0, rf1];

    let assign = |b: &mut ArchBuilder, fu, cluster: usize, inputs: usize| {
        b.dedicated_write(fu, rfs[cluster]);
        for slot in 0..inputs {
            b.dedicated_read(rfs[cluster], fu, slot);
        }
    };
    let alus = 1 + rng.below(2);
    for i in 0..=alus {
        let fu = b.functional_unit(format!("ALU{i}"), FuClass::Alu, 3, true, caps(GEN_ALU_OPS));
        assign(&mut b, fu, i % 2, 3);
    }
    let mul = b.functional_unit("MUL", FuClass::Mul, 2, true, caps(&[Opcode::IMul]));
    assign(&mut b, mul, rng.below(2), 2);
    let ls = b.functional_unit(
        "LS",
        FuClass::Ls,
        3,
        true,
        caps(&[Opcode::Load, Opcode::Store]),
    );
    assign(&mut b, ls, rng.below(2), 3);

    for (from, to) in [(0usize, 1usize), (1, 0)] {
        let cp = b.functional_unit(
            format!("CP{from}"),
            FuClass::CopyUnit,
            1,
            true,
            caps(&[Opcode::Copy]),
        );
        b.dedicated_read(rfs[from], cp, 0);
        b.dedicated_write(cp, rfs[to]);
    }
    b.build().expect("generated machines are well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in [1u64, 42, 0xDEAD] {
            let a = random_distributed(seed);
            let b = random_distributed(seed);
            assert_eq!(a.num_fus(), b.num_fus());
            assert_eq!(a.num_rfs(), b.num_rfs());
            assert_eq!(a.num_buses(), b.num_buses());
            assert_eq!(a.name(), b.name());
        }
    }

    #[test]
    fn all_generated_machines_are_copy_connected() {
        for seed in 0..50u64 {
            let d = random_distributed(seed);
            assert!(
                d.copy_connectivity().is_copy_connected(),
                "distributed seed {seed}"
            );
            let c = random_clustered(seed);
            assert!(
                c.copy_connectivity().is_copy_connected(),
                "clustered seed {seed}"
            );
        }
    }

    #[test]
    fn clustered_machines_need_copies_across_clusters() {
        let arch = random_clustered(7);
        let conn = arch.copy_connectivity();
        let rf0 = arch.rf_by_name("RF0").unwrap();
        let rf1 = arch.rf_by_name("RF1").unwrap();
        assert_eq!(conn.copy_distance(rf0, rf1), Some(1));
        assert_eq!(conn.copy_distance(rf1, rf0), Some(1));
    }

    #[test]
    fn generated_machines_round_trip_through_text() {
        for seed in [3u64, 9, 27] {
            let arch = random_distributed(seed);
            let text = crate::text::print(&arch);
            let parsed = crate::text::parse(&text).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert_eq!(parsed.num_fus(), arch.num_fus());
            assert_eq!(parsed.num_rfs(), arch.num_rfs());
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn rng_rejects_empty_range() {
        Rng::new(1).below(0);
    }
}
