//! VLSI area / power / delay model for register file organisations
//! (paper Figures 25–27; method of Rixner et al., "Register organization
//! for media processing", HPCA 2000 — the paper's reference \[15\]).
//!
//! The model follows the standard port-proportional register-file grid
//! model:
//!
//! - each storage cell grows linearly in *both* dimensions with the number
//!   of ports (one wordline and one bitline track per port), so a register
//!   file with `p` ports, `R` registers and `b` bits per word has array
//!   area `R·b·(c₀ + p·π)²`;
//! - interconnect outside the register files is modelled by placing the
//!   functional units on a line, placing each register file at the
//!   centroid of the units it feeds, and charging every bus its physical
//!   span;
//! - access delay is a fixed component plus a term proportional to the
//!   square root of the array area (optimally buffered word/bit lines)
//!   plus the wire delay of the longest bus attached to the file;
//! - per-access energy is proportional to the switched wordline + bitline
//!   length, and every port and bus is charged as active every cycle
//!   (peak-rate kernels, as in the paper).
//!
//! With the default parameters this reproduces the paper's asymptotics —
//! central register files grow as N³ in area and power and N^1.5 in delay,
//! distributed ones as N² / N² / N — and lands near the paper's reported
//! ratios for the 12-arithmetic-unit Imagine configuration (distributed ≈
//! 9 % of central area, 6 % of power, 37 % of delay; ≈ 56 % / 50 % of
//! clustered area/power). The calibration is recorded in `EXPERIMENTS.md`.

use crate::arch::Architecture;
use crate::ids::RfId;

/// Technology / layout parameters of the cost model. Units are arbitrary
/// but consistent (think λ for lengths, λ² for areas).
#[derive(Clone, Debug, PartialEq)]
pub struct CostParams {
    /// Word width in bits.
    pub bits: f64,
    /// Base storage cell dimension (no ports).
    pub cell_base: f64,
    /// Extra cell dimension per port (wordline/bitline track pitch).
    pub port_pitch: f64,
    /// Fixed per-register-file overhead area (decoders, sense amps,
    /// precharge). This is what keeps many tiny register files from being
    /// unrealistically free.
    pub rf_fixed_area: f64,
    /// Additional periphery area per port per register (decoder slice).
    pub periphery_per_port: f64,
    /// Datapath width occupied by one functional unit (placement pitch).
    pub fu_span: f64,
    /// Global wire pitch (per bit of a bus).
    pub wire_pitch: f64,
    /// Energy per unit of switched register-file wire (wordline+bitline)
    /// per access.
    pub e_cell: f64,
    /// Energy per unit length per bit of bus toggled per cycle.
    pub e_wire: f64,
    /// Fixed component of access delay.
    pub t_fixed: f64,
    /// Delay per square root of array area.
    pub t_array: f64,
    /// Delay per unit of bus length.
    pub t_wire: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            bits: 32.0,
            cell_base: 16.0,
            port_pitch: 4.0,
            rf_fixed_area: 4.0e5,
            periphery_per_port: 120.0,
            fu_span: 400.0,
            wire_pitch: 8.0,
            e_cell: 1.0,
            e_wire: 0.1,
            t_fixed: 1500.0,
            t_array: 0.28,
            t_wire: 0.25,
        }
    }
}

/// Cost of one register file.
#[derive(Clone, Debug, PartialEq)]
pub struct RfCost {
    /// The register file.
    pub rf: RfId,
    /// Total ports (read + write).
    pub ports: usize,
    /// Area (array + periphery + fixed overhead).
    pub area: f64,
    /// Peak power (all ports active each cycle).
    pub power: f64,
    /// Access delay including attached bus wires.
    pub delay: f64,
}

/// Aggregate cost of a machine's register file organisation.
#[derive(Clone, Debug, PartialEq)]
pub struct CostReport {
    /// Architecture name the report was computed for.
    pub arch: String,
    /// Total register-file area.
    pub rf_area: f64,
    /// Total bus wiring area.
    pub wire_area: f64,
    /// Total register-file peak power.
    pub rf_power: f64,
    /// Total bus switching power.
    pub wire_power: f64,
    /// Worst-case register-file access delay (the cycle-limiting file).
    pub delay: f64,
    /// Per-register-file detail.
    pub per_rf: Vec<RfCost>,
}

impl CostReport {
    /// Total area (register files + wiring).
    pub fn area(&self) -> f64 {
        self.rf_area + self.wire_area
    }

    /// Total peak power.
    pub fn power(&self) -> f64 {
        self.rf_power + self.wire_power
    }
}

/// Computes the linear placement of functional units and register files.
///
/// Functional unit `i` sits at `i · fu_span`; each register file sits at
/// the centroid of the units that read from it (or, if none read from it,
/// the units that write to it).
fn placements(arch: &Architecture, params: &CostParams) -> (Vec<f64>, Vec<f64>) {
    let fu_pos: Vec<f64> = (0..arch.num_fus())
        .map(|i| i as f64 * params.fu_span)
        .collect();

    let mut rf_pos = vec![0.0f64; arch.num_rfs()];
    for rf in arch.rf_ids() {
        let mut connected: Vec<f64> = Vec::new();
        // Units reading from this file (through read ports and their buses).
        for &rp in arch.rf(rf).read_ports() {
            for &bus in arch.read_port_buses(rp) {
                for input in arch.bus_inputs(bus) {
                    connected.push(fu_pos[input.fu.index()]);
                }
            }
        }
        if connected.is_empty() {
            // Fall back to writers.
            for fu in arch.fu_ids() {
                if arch.write_stubs(fu).iter().any(|s| s.rf == rf) {
                    connected.push(fu_pos[fu.index()]);
                }
            }
        }
        rf_pos[rf.index()] = if connected.is_empty() {
            0.0
        } else {
            connected.iter().sum::<f64>() / connected.len() as f64
        };
    }
    (fu_pos, rf_pos)
}

/// Physical span of each bus: distance between the leftmost and rightmost
/// endpoint (driving outputs, fed inputs, and connected register files).
fn bus_lengths(arch: &Architecture, fu_pos: &[f64], rf_pos: &[f64]) -> Vec<f64> {
    let mut lengths = vec![0.0f64; arch.num_buses()];
    for bus in arch.bus_ids() {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        let mut touch = |p: f64| {
            lo = lo.min(p);
            hi = hi.max(p);
        };
        for fu in arch.fu_ids() {
            if arch.output_buses(fu).contains(&bus) {
                touch(fu_pos[fu.index()]);
            }
        }
        for &wp in arch.bus_write_ports(bus) {
            touch(rf_pos[arch.write_port_rf(wp).index()]);
        }
        for input in arch.bus_inputs(bus) {
            touch(fu_pos[input.fu.index()]);
        }
        for rp in 0..arch.num_read_ports() {
            let rp = crate::ids::ReadPortId::from_raw(rp);
            if arch.read_port_buses(rp).contains(&bus) {
                touch(rf_pos[arch.read_port_rf(rp).index()]);
            }
        }
        if lo.is_finite() && hi.is_finite() {
            lengths[bus.index()] = hi - lo;
        }
    }
    lengths
}

/// Estimates the register-file organisation cost of `arch`.
///
/// # Examples
///
/// ```
/// use csched_machine::{cost, imagine};
///
/// let central = cost::estimate(&imagine::central(), &cost::CostParams::default());
/// let dist = cost::estimate(&imagine::distributed(), &cost::CostParams::default());
/// assert!(dist.area() < central.area());
/// assert!(dist.delay < central.delay);
/// ```
pub fn estimate(arch: &Architecture, params: &CostParams) -> CostReport {
    let (fu_pos, rf_pos) = placements(arch, params);
    let lengths = bus_lengths(arch, &fu_pos, &rf_pos);

    let mut per_rf = Vec::with_capacity(arch.num_rfs());
    let mut rf_area = 0.0;
    let mut rf_power = 0.0;
    let mut delay: f64 = 0.0;

    for rf in arch.rf_ids() {
        let file = arch.rf(rf);
        let ports = file.read_ports().len() + file.write_ports().len();
        let p = ports as f64;
        let regs = file.capacity() as f64;

        let cell = params.cell_base + p * params.port_pitch;
        let array_area = regs * params.bits * cell * cell;
        let periphery = p * (regs + params.bits) * params.periphery_per_port;
        let area = array_area + periphery + params.rf_fixed_area;

        // Switched wire per access: one wordline (cell width × bits) and
        // one bitline (cell height × registers).
        let access_wire = cell * params.bits + cell * regs;
        let power = p * params.e_cell * access_wire;

        // Longest bus attached to any of this file's ports.
        let mut max_bus = 0.0f64;
        for &wp in file.write_ports() {
            for bus in arch.bus_ids() {
                if arch.bus_write_ports(bus).contains(&wp) {
                    max_bus = max_bus.max(lengths[bus.index()]);
                }
            }
        }
        for &rp in file.read_ports() {
            for &bus in arch.read_port_buses(rp) {
                max_bus = max_bus.max(lengths[bus.index()]);
            }
        }
        let t = params.t_fixed + params.t_array * array_area.sqrt() + params.t_wire * max_bus;

        rf_area += area;
        rf_power += power;
        delay = delay.max(t);
        per_rf.push(RfCost {
            rf,
            ports,
            area,
            power,
            delay: t,
        });
    }

    let wire_area: f64 = lengths
        .iter()
        .map(|&l| l * params.bits * params.wire_pitch)
        .sum();
    let wire_power: f64 = lengths
        .iter()
        .map(|&l| l * params.bits * params.e_wire)
        .sum();

    CostReport {
        arch: arch.name().to_string(),
        rf_area,
        wire_area,
        rf_power,
        wire_power,
        delay,
        per_rf,
    }
}

/// Typed errors from cost normalisation.
///
/// Dividing by a degenerate baseline used to produce silent `inf`/`NaN`
/// ratios (and an empty architecture list panicked on `reports[0]`
/// upstream); both conditions now surface as values.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum CostError {
    /// No architectures were given, so there is no baseline to normalise
    /// against.
    EmptyArchList,
    /// The named baseline quantity is zero or non-finite, so ratios would
    /// be `inf`/`NaN`. Carries the baseline architecture name.
    ZeroBaseline {
        /// Which quantity was degenerate (`"area"`, `"power"`, `"delay"`).
        quantity: &'static str,
        /// The baseline architecture's name.
        arch: String,
    },
}

impl std::fmt::Display for CostError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CostError::EmptyArchList => {
                write!(f, "no architectures to normalise (empty list)")
            }
            CostError::ZeroBaseline { quantity, arch } => {
                write!(
                    f,
                    "baseline {arch} has zero/non-finite {quantity}; ratios undefined"
                )
            }
        }
    }
}

impl std::error::Error for CostError {}

/// The normalised `(area, power, delay)` triple of `report` relative to
/// `baseline` (the paper normalises to the central organisation).
///
/// # Errors
///
/// Returns [`CostError::ZeroBaseline`] when any baseline quantity is zero
/// or non-finite, instead of producing `inf`/`NaN` ratios.
pub fn normalized(
    report: &CostReport,
    baseline: &CostReport,
) -> Result<(f64, f64, f64), CostError> {
    for (quantity, value) in [
        ("area", baseline.area()),
        ("power", baseline.power()),
        ("delay", baseline.delay),
    ] {
        if !(value.is_finite() && value > 0.0) {
            return Err(CostError::ZeroBaseline {
                quantity,
                arch: baseline.arch.clone(),
            });
        }
    }
    Ok((
        report.area() / baseline.area(),
        report.power() / baseline.power(),
        report.delay / baseline.delay,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imagine;

    #[test]
    fn central_dominates_everything() {
        let p = CostParams::default();
        let central = estimate(&imagine::central(), &p);
        let c2 = estimate(&imagine::clustered(2), &p);
        let c4 = estimate(&imagine::clustered(4), &p);
        let dist = estimate(&imagine::distributed(), &p);
        for r in [&c2, &c4, &dist] {
            assert!(r.area() < central.area(), "{}", r.arch);
            assert!(r.power() < central.power(), "{}", r.arch);
            assert!(r.delay < central.delay, "{}", r.arch);
        }
        // More, smaller register files keep shrinking cost (Figures 25-27).
        assert!(dist.area() < c4.area());
        assert!(c4.area() < c2.area());
        assert!(dist.power() < c4.power());
    }

    #[test]
    fn paper_ratio_bands_hold() {
        // Paper §1/§8: distributed = 9% area, 6% power, 37% delay of
        // central; 56% area, 50% power of clustered(4). Our model is a
        // re-derivation, so assert generous bands around those targets.
        let p = CostParams::default();
        let central = estimate(&imagine::central(), &p);
        let c4 = estimate(&imagine::clustered(4), &p);
        let dist = estimate(&imagine::distributed(), &p);

        let (a, pw, d) = normalized(&dist, &central).unwrap();
        assert!((0.04..=0.16).contains(&a), "area ratio vs central: {a:.3}");
        assert!(
            (0.02..=0.12).contains(&pw),
            "power ratio vs central: {pw:.3}"
        );
        assert!((0.2..=0.55).contains(&d), "delay ratio vs central: {d:.3}");

        let (a2, pw2, _) = normalized(&dist, &c4).unwrap();
        assert!(
            (0.3..=0.8).contains(&a2),
            "area ratio vs clustered: {a2:.3}"
        );
        assert!(
            (0.25..=0.75).contains(&pw2),
            "power ratio vs clustered: {pw2:.3}"
        );
    }

    #[test]
    fn central_asymptotics() {
        // Area and power grow ~N^3, delay ~N^1.5 (paper §1). Compare scale
        // 1 vs 4 (N quadruples): area ratio should be near 64, allowing a
        // wide band because of fixed overheads and wiring terms.
        let p = CostParams::default();
        let a1 = estimate(&imagine::central_scaled(1), &p);
        let a4 = estimate(&imagine::central_scaled(4), &p);
        let area_ratio = a4.area() / a1.area();
        let power_ratio = a4.power() / a1.power();
        let delay_ratio = a4.delay / a1.delay;
        assert!(
            (25.0..=100.0).contains(&area_ratio),
            "central area scaling: {area_ratio:.1}"
        );
        assert!(
            (25.0..=100.0).contains(&power_ratio),
            "central power scaling: {power_ratio:.1}"
        );
        assert!(
            (4.0..=12.0).contains(&delay_ratio),
            "central delay scaling: {delay_ratio:.1}"
        );
    }

    #[test]
    fn distributed_asymptotics() {
        // Distributed grows ~N^2 in area/power, ~N in delay.
        let p = CostParams::default();
        let d1 = estimate(&imagine::distributed_scaled(1), &p);
        let d4 = estimate(&imagine::distributed_scaled(4), &p);
        let area_ratio = d4.area() / d1.area();
        let delay_ratio = d4.delay / d1.delay;
        assert!(
            (6.0..=24.0).contains(&area_ratio),
            "distributed area scaling: {area_ratio:.1}"
        );
        assert!(
            (1.5..=6.0).contains(&delay_ratio),
            "distributed delay scaling: {delay_ratio:.1}"
        );
        // The gap to central widens with N (the paper's §8 argument).
        let c1 = estimate(&imagine::central_scaled(1), &p);
        let c4 = estimate(&imagine::central_scaled(4), &p);
        assert!(d4.area() / c4.area() < d1.area() / c1.area());
    }

    #[test]
    fn report_fields_consistent() {
        let p = CostParams::default();
        let r = estimate(&imagine::clustered(4), &p);
        assert_eq!(r.per_rf.len(), 4);
        let sum: f64 = r.per_rf.iter().map(|x| x.area).sum();
        assert!((sum - r.rf_area).abs() < 1e-6);
        assert!(r.area() >= r.rf_area);
        assert!(r.power() >= r.rf_power);
        assert!(r.delay > 0.0);
        assert_eq!(r.arch, "imagine-clustered-4");
    }

    #[test]
    fn degenerate_baseline_is_a_typed_error_not_inf() {
        let p = CostParams::default();
        let dist = estimate(&imagine::distributed(), &p);
        let mut zero = dist.clone();
        zero.rf_area = 0.0;
        zero.wire_area = 0.0;
        match normalized(&dist, &zero) {
            Err(CostError::ZeroBaseline { quantity, arch }) => {
                assert_eq!(quantity, "area");
                assert_eq!(arch, "imagine-distributed");
            }
            other => panic!("expected ZeroBaseline, got {other:?}"),
        }
        let mut nan = dist.clone();
        nan.delay = f64::NAN;
        assert!(matches!(
            normalized(&dist, &nan),
            Err(CostError::ZeroBaseline {
                quantity: "delay",
                ..
            })
        ));
        assert!(!CostError::EmptyArchList.to_string().is_empty());
    }

    #[test]
    fn toy_machine_costs_are_finite() {
        let r = estimate(&crate::toy::motivating_example(), &CostParams::default());
        assert!(r.area().is_finite() && r.area() > 0.0);
        assert!(r.power().is_finite() && r.power() > 0.0);
        assert!(r.delay.is_finite() && r.delay > 0.0);
    }
}
