//! Textual architecture format: a printer and parser for machine
//! descriptions.
//!
//! The paper argues that communication scheduling "can be used to explore
//! novel register file architectures without implementing a custom
//! compiler for each architecture" (§8); this format completes that story
//! by letting architectures live in plain-text files:
//!
//! ```text
//! machine "tiny" {
//!   rf RF0 capacity 16 rports 2 wports 1
//!   bus GB0
//!   fu ALU0 class alu inputs 2 fanout 1 {
//!     op iadd latency 1
//!     op copy latency 1
//!   }
//!   drive ALU0 -> GB0          ; output onto a bus
//!   tap GB0 -> RF0[0]          ; bus into a write port
//!   feed RF0[0] -> ALU0.0      ; read port to an input (wire created)
//!   feed RF0[1] -> ALU0.1
//! }
//! ```
//!
//! `drive`/`tap` wire the write side explicitly over named buses; `feed`
//! creates a dedicated read wire from a register-file read port to a
//! functional-unit input (shared read buses can be expressed with
//! `rfeed <rf>[<port>] -> <bus>` plus `sink <bus> -> <fu>.<slot>`).

use std::collections::HashMap;

use crate::arch::{ArchBuilder, Architecture, FuClass};
use crate::ids::{BusId, FuId, ReadPortId, RfId, WritePortId};
use crate::op::{Capability, Opcode};

/// Prints `arch` in the textual format; [`parse`] reads it back.
pub fn print(arch: &Architecture) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "machine {:?} {{", arch.name());
    for rf in arch.rf_ids() {
        let file = arch.rf(rf);
        let _ = writeln!(
            out,
            "  rf {} capacity {} rports {} wports {}",
            file.name(),
            file.capacity(),
            file.read_ports().len(),
            file.write_ports().len()
        );
    }
    for bus in arch.bus_ids() {
        let _ = writeln!(out, "  bus {}", arch.bus(bus).name());
    }
    for fu in arch.fu_ids() {
        let unit = arch.fu(fu);
        let _ = write!(
            out,
            "  fu {} class {} inputs {}",
            unit.name(),
            unit.class(),
            unit.num_inputs()
        );
        if unit.has_output() {
            let _ = write!(out, " fanout {}", unit.output_fanout());
        } else {
            let _ = write!(out, " no-output");
        }
        let _ = writeln!(out, " {{");
        for cap in unit.capabilities() {
            let _ = write!(
                out,
                "    op {} latency {}",
                cap.opcode.mnemonic(),
                cap.latency
            );
            if cap.issue_interval != 1 {
                let _ = write!(out, " interval {}", cap.issue_interval);
            }
            let _ = writeln!(out);
        }
        let _ = writeln!(out, "  }}");
    }
    // Write side.
    for fu in arch.fu_ids() {
        for &bus in arch.output_buses(fu) {
            let _ = writeln!(
                out,
                "  drive {} -> {}",
                arch.fu(fu).name(),
                arch.bus(bus).name()
            );
        }
    }
    for bus in arch.bus_ids() {
        for &wp in arch.bus_write_ports(bus) {
            let rf = arch.write_port_rf(wp);
            let index = arch
                .rf(rf)
                .write_ports()
                .iter()
                .position(|&p| p == wp)
                .expect("port belongs to its file");
            let _ = writeln!(
                out,
                "  tap {} -> {}[{}]",
                arch.bus(bus).name(),
                arch.rf(rf).name(),
                index
            );
        }
    }
    // Read side: emit `rfeed`/`sink` pairs (fully general).
    for rp_raw in 0..arch.num_read_ports() {
        let rp = ReadPortId::from_raw(rp_raw);
        let rf = arch.read_port_rf(rp);
        let index = arch
            .rf(rf)
            .read_ports()
            .iter()
            .position(|&p| p == rp)
            .expect("port belongs to its file");
        for &bus in arch.read_port_buses(rp) {
            let _ = writeln!(
                out,
                "  rfeed {}[{}] -> {}",
                arch.rf(rf).name(),
                index,
                arch.bus(bus).name()
            );
        }
    }
    for bus in arch.bus_ids() {
        for input in arch.bus_inputs(bus) {
            let _ = writeln!(
                out,
                "  sink {} -> {}.{}",
                arch.bus(bus).name(),
                arch.fu(input.fu).name(),
                input.slot()
            );
        }
    }
    let _ = writeln!(out, "}}");
    out
}

/// A parse failure with its 1-based line.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses the textual format produced by [`print()`].
///
/// # Errors
///
/// Returns a [`ParseError`] for syntax errors and unknown names, or for a
/// description the [`ArchBuilder`] rejects (e.g. unreachable inputs).
pub fn parse(text: &str) -> Result<Architecture, ParseError> {
    let err = |line: usize, message: String| ParseError { line, message };
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| {
            let l = match l.find(';') {
                Some(p) => &l[..p],
                None => l,
            };
            (i + 1, l.trim())
        })
        .filter(|(_, l)| !l.is_empty());

    let (hline, header) = lines.next().ok_or_else(|| err(0, "empty input".into()))?;
    let name = header
        .strip_prefix("machine")
        .map(str::trim)
        .and_then(|r| r.strip_suffix('{'))
        .map(str::trim)
        .and_then(|q| q.strip_prefix('"')?.strip_suffix('"'))
        .ok_or_else(|| err(hline, "expected `machine \"name\" {`".into()))?;

    let mut b = ArchBuilder::new(name);
    let mut rfs: HashMap<String, RfId> = HashMap::new();
    let mut rf_wports: HashMap<String, Vec<WritePortId>> = HashMap::new();
    let mut rf_rports: HashMap<String, Vec<ReadPortId>> = HashMap::new();
    let mut buses: HashMap<String, BusId> = HashMap::new();
    let mut fus: HashMap<String, FuId> = HashMap::new();

    while let Some((line, l)) = lines.next() {
        if l == "}" {
            return b
                .build()
                .map_err(|e| err(line, format!("invalid machine: {e}")));
        }
        let words: Vec<&str> = l.split_whitespace().collect();
        match words.first().copied() {
            Some("rf") => {
                // rf NAME capacity N rports R wports W
                let get = |key: &str| -> Result<usize, ParseError> {
                    let pos = words
                        .iter()
                        .position(|&w| w == key)
                        .ok_or_else(|| err(line, format!("missing `{key}`")))?;
                    words
                        .get(pos + 1)
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| err(line, format!("bad `{key}` value")))
                };
                let rname = words
                    .get(1)
                    .ok_or_else(|| err(line, "missing rf name".into()))?;
                let rf = b.register_file(*rname, get("capacity")?);
                let wports = (0..get("wports")?).map(|_| b.write_port(rf)).collect();
                let rports = (0..get("rports")?).map(|_| b.read_port(rf)).collect();
                rfs.insert(rname.to_string(), rf);
                rf_wports.insert(rname.to_string(), wports);
                rf_rports.insert(rname.to_string(), rports);
            }
            Some("bus") => {
                let bname = words
                    .get(1)
                    .ok_or_else(|| err(line, "missing bus name".into()))?;
                buses.insert(bname.to_string(), b.bus(*bname));
            }
            Some("fu") => {
                // fu NAME class C inputs N [fanout K | no-output] {
                let fname = words
                    .get(1)
                    .ok_or_else(|| err(line, "missing fu name".into()))?;
                let class = match words
                    .iter()
                    .position(|&w| w == "class")
                    .and_then(|p| words.get(p + 1))
                {
                    Some(&"alu") => FuClass::Alu,
                    Some(&"mul") => FuClass::Mul,
                    Some(&"div") => FuClass::Div,
                    Some(&"pu") => FuClass::Pu,
                    Some(&"sp") => FuClass::Sp,
                    Some(&"ls") => FuClass::Ls,
                    Some(&"copy") => FuClass::CopyUnit,
                    other => return Err(err(line, format!("bad class {other:?}"))),
                };
                let inputs: usize = words
                    .iter()
                    .position(|&w| w == "inputs")
                    .and_then(|p| words.get(p + 1))
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| err(line, "missing `inputs <n>`".into()))?;
                let has_output = !words.contains(&"no-output");
                let fanout: usize = words
                    .iter()
                    .position(|&w| w == "fanout")
                    .and_then(|p| words.get(p + 1))
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(1);
                if !l.ends_with('{') {
                    return Err(err(line, "expected `{` after fu header".into()));
                }
                // Capability lines until `}`.
                let mut caps: Vec<Capability> = Vec::new();
                for (cline, cl) in lines.by_ref() {
                    if cl == "}" {
                        break;
                    }
                    let cw: Vec<&str> = cl.split_whitespace().collect();
                    if cw.first() != Some(&"op") {
                        return Err(err(cline, format!("expected `op ...`, got `{cl}`")));
                    }
                    let opcode = cw
                        .get(1)
                        .and_then(|m| Opcode::from_mnemonic(m))
                        .ok_or_else(|| err(cline, "unknown opcode mnemonic".into()))?;
                    let latency: u32 = cw
                        .iter()
                        .position(|&w| w == "latency")
                        .and_then(|p| cw.get(p + 1))
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| err(cline, "missing `latency <n>`".into()))?;
                    let interval: u32 = cw
                        .iter()
                        .position(|&w| w == "interval")
                        .and_then(|p| cw.get(p + 1))
                        .and_then(|v| v.parse().ok())
                        .unwrap_or(1);
                    caps.push(Capability::new(opcode, latency).with_issue_interval(interval));
                }
                let fu = b.functional_unit(*fname, class, inputs, has_output, caps);
                b.set_output_fanout(fu, fanout);
                fus.insert(fname.to_string(), fu);
            }
            Some("drive") => {
                // drive FU -> BUS
                let (fu, bus) = arrow(&words, line)?;
                let fu = *fus
                    .get(fu)
                    .ok_or_else(|| err(line, format!("unknown fu `{fu}`")))?;
                let bus = *buses
                    .get(bus)
                    .ok_or_else(|| err(line, format!("unknown bus `{bus}`")))?;
                b.connect_output(fu, bus);
            }
            Some("tap") => {
                // tap BUS -> RF[i]
                let (bus, port) = arrow(&words, line)?;
                let bus = *buses
                    .get(bus)
                    .ok_or_else(|| err(line, format!("unknown bus `{bus}`")))?;
                let (rf, index) = indexed(port, line)?;
                let wp = rf_wports
                    .get(rf)
                    .and_then(|v| v.get(index))
                    .copied()
                    .ok_or_else(|| err(line, format!("unknown write port `{port}`")))?;
                b.connect_bus_to_write_port(bus, wp);
            }
            Some("rfeed") => {
                // rfeed RF[i] -> BUS
                let (port, bus) = arrow(&words, line)?;
                let (rf, index) = indexed(port, line)?;
                let rp = rf_rports
                    .get(rf)
                    .and_then(|v| v.get(index))
                    .copied()
                    .ok_or_else(|| err(line, format!("unknown read port `{port}`")))?;
                let bus = *buses
                    .get(bus)
                    .ok_or_else(|| err(line, format!("unknown bus `{bus}`")))?;
                b.connect_read_port_to_bus(rp, bus);
            }
            Some("sink") => {
                // sink BUS -> FU.slot
                let (bus, input) = arrow(&words, line)?;
                let bus = *buses
                    .get(bus)
                    .ok_or_else(|| err(line, format!("unknown bus `{bus}`")))?;
                let (fu, slot) = dotted(input, line)?;
                let fu = *fus
                    .get(fu)
                    .ok_or_else(|| err(line, format!("unknown fu `{fu}`")))?;
                b.connect_bus_to_input(bus, fu, slot);
            }
            Some("feed") => {
                // feed RF[i] -> FU.slot : dedicated read wire.
                let (port, input) = arrow(&words, line)?;
                let (rfname, index) = indexed(port, line)?;
                let rp = rf_rports
                    .get(rfname)
                    .and_then(|v| v.get(index))
                    .copied()
                    .ok_or_else(|| err(line, format!("unknown read port `{port}`")))?;
                let (funame, slot) = dotted(input, line)?;
                let fu = *fus
                    .get(funame)
                    .ok_or_else(|| err(line, format!("unknown fu `{funame}`")))?;
                let wire = b.bus(format!("{rfname}[{index}]->{funame}.{slot}"));
                b.connect_read_port_to_bus(rp, wire);
                b.connect_bus_to_input(wire, fu, slot);
            }
            other => return Err(err(line, format!("unknown directive {other:?}"))),
        }
    }
    Err(err(0, "unexpected end of input (missing `}`)".into()))
}

fn arrow<'a>(words: &[&'a str], line: usize) -> Result<(&'a str, &'a str), ParseError> {
    let pos = words.iter().position(|&w| w == "->").ok_or(ParseError {
        line,
        message: "expected `->`".into(),
    })?;
    match (words.get(pos - 1), words.get(pos + 1)) {
        (Some(&a), Some(&b)) => Ok((a, b)),
        _ => Err(ParseError {
            line,
            message: "expected `<a> -> <b>`".into(),
        }),
    }
}

fn indexed(token: &str, line: usize) -> Result<(&str, usize), ParseError> {
    let open = token.find('[').ok_or(ParseError {
        line,
        message: format!("expected `name[index]`, got `{token}`"),
    })?;
    let index = token[open + 1..]
        .strip_suffix(']')
        .and_then(|v| v.parse().ok())
        .ok_or(ParseError {
            line,
            message: format!("bad index in `{token}`"),
        })?;
    Ok((&token[..open], index))
}

fn dotted(token: &str, line: usize) -> Result<(&str, usize), ParseError> {
    let dot = token.rfind('.').ok_or(ParseError {
        line,
        message: format!("expected `fu.slot`, got `{token}`"),
    })?;
    let slot = token[dot + 1..].parse().map_err(|_| ParseError {
        line,
        message: format!("bad slot in `{token}`"),
    })?;
    Ok((&token[..dot], slot))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{imagine, toy};

    fn structurally_equal(a: &Architecture, b: &Architecture) -> bool {
        // Same component counts and same stub sets per unit/input.
        if a.num_fus() != b.num_fus()
            || a.num_rfs() != b.num_rfs()
            || a.num_buses() != b.num_buses()
        {
            return false;
        }
        for fu in a.fu_ids() {
            if a.write_stubs(fu).len() != b.write_stubs(fu).len() {
                return false;
            }
            for slot in 0..a.fu(fu).num_inputs() {
                if a.read_stubs(fu, slot).len() != b.read_stubs(fu, slot).len() {
                    return false;
                }
            }
        }
        true
    }

    #[test]
    fn toy_round_trips() {
        let arch = toy::motivating_example();
        let text = print(&arch);
        let parsed = parse(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert!(
            structurally_equal(&arch, &parsed),
            "round trip changed the machine"
        );
        // And the round-tripped machine behaves identically for analysis.
        assert!(parsed.copy_connectivity().is_copy_connected());
        assert_eq!(print(&parsed), text, "printing is a fixpoint");
    }

    #[test]
    fn imagine_variants_round_trip() {
        for arch in [
            imagine::central(),
            imagine::clustered(4),
            imagine::distributed(),
        ] {
            let text = print(&arch);
            let parsed = parse(&text).unwrap_or_else(|e| panic!("{}: {e}", arch.name()));
            assert!(structurally_equal(&arch, &parsed), "{}", arch.name());
            assert_eq!(
                parsed.copy_connectivity().is_copy_connected(),
                arch.copy_connectivity().is_copy_connected()
            );
        }
    }

    #[test]
    fn hand_written_machine_parses() {
        let text = r#"
machine "pocket" {
  rf R capacity 8 rports 2 wports 1
  bus B
  fu A class alu inputs 2 fanout 1 {
    op iadd latency 1
    op copy latency 1
  }
  drive A -> B
  tap B -> R[0]
  feed R[0] -> A.0
  feed R[1] -> A.1
}
"#;
        let arch = parse(text).unwrap();
        assert_eq!(arch.num_fus(), 1);
        assert_eq!(arch.num_rfs(), 1);
        assert!(arch.copy_connectivity().is_copy_connected());
        let fu = arch.fu_by_name("A").unwrap();
        assert_eq!(arch.write_stubs(fu).len(), 1);
    }

    #[test]
    fn errors_have_lines() {
        let e = parse("machine \"x\" {\n  bogus line here\n}\n").unwrap_err();
        assert_eq!(e.line, 2);
        let e2 = parse("machine \"x\" {\n  drive NOPE -> B\n}\n").unwrap_err();
        assert!(e2.message.contains("NOPE"));
    }

    #[test]
    fn partially_pipelined_capability_round_trips() {
        let arch = imagine::central();
        let text = print(&arch);
        assert!(
            text.contains("interval 4"),
            "divider interval survives printing"
        );
        let parsed = parse(&text).unwrap();
        let div = parsed.fu_by_name("DIV0").unwrap();
        let cap = parsed.fu(div).capability(Opcode::FDiv).unwrap();
        assert_eq!(cap.issue_interval, 4);
    }
}
