//! Property tests for the textual kernel format: randomly generated
//! kernels always round-trip (print → parse → print is a fixpoint) and
//! keep their interpreter semantics.

use csched_ir::{interp, text, Kernel, KernelBuilder, Memory, Operand, ValueId, Word};
use csched_machine::Opcode;
use proptest::prelude::*;

const OPS: &[Opcode] = &[
    Opcode::IAdd,
    Opcode::ISub,
    Opcode::IMin,
    Opcode::IMax,
    Opcode::And,
    Opcode::Xor,
    Opcode::Shl,
    Opcode::IMul,
    Opcode::ICmpLe,
];

/// Builds a deterministic random kernel from a recipe of (op index,
/// operand picks), including loads, stores and two loop variables.
fn build(recipe: &[(u8, u8, u8)], float_tail: bool) -> Kernel {
    let mut kb = KernelBuilder::new("prop");
    kb.description("property-generated kernel");
    let input = kb.region("in", true);
    let output = kb.region("out", true);
    let pre = kb.straight_block("pre");
    let c = kb.push(pre, Opcode::IAdd, [7i64.into(), 5i64.into()]);
    let lp = kb.loop_block("body");
    let i = kb.loop_var(lp, 0i64.into());
    let acc = kb.loop_var(lp, c.into());
    let x = kb.load(lp, input, i.into(), 0i64.into());
    let mut pool: Vec<ValueId> = vec![i, acc, c, x];
    for &(op, a, b) in recipe {
        let opcode = OPS[op as usize % OPS.len()];
        let lhs = pool[a as usize % pool.len()];
        let rhs: Operand = if b % 3 == 0 {
            (b as i64).into()
        } else {
            pool[b as usize % pool.len()].into()
        };
        let v = kb.push(lp, opcode, [lhs.into(), rhs]);
        pool.push(v);
    }
    let last = *pool.last().expect("nonempty");
    if float_tail {
        let f = kb.push(lp, Opcode::ItoF, [last.into()]);
        let g = kb.push(lp, Opcode::FMul, [f.into(), 0.25f64.into()]);
        let h = kb.push(lp, Opcode::FtoI, [g.into()]);
        kb.store(lp, output, i.into(), 500i64.into(), h.into());
    }
    kb.store(lp, output, i.into(), 900i64.into(), last.into());
    let acc1 = kb.push(lp, Opcode::Xor, [acc.into(), last.into()]);
    let i1 = kb.push(lp, Opcode::IAdd, [i.into(), 1i64.into()]);
    kb.set_update(acc, acc1.into());
    kb.set_update(i, i1.into());
    kb.build().expect("generated kernels are valid")
}

fn run_outputs(k: &Kernel, trip: u64) -> Vec<(i64, Word)> {
    let mut mem = Memory::new();
    mem.write_block(0, (0..trip as i64).map(|v| Word::I(v * 13 - 5)));
    interp::run(k, &mut mem, trip).expect("interprets");
    let mut out: Vec<(i64, Word)> = mem.main.into_iter().collect();
    out.sort_by_key(|&(a, _)| a);
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn random_kernels_round_trip(
        recipe in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..12),
        float_tail in any::<bool>(),
    ) {
        let kernel = build(&recipe, float_tail);
        let printed = text::print(&kernel);
        let reparsed = text::parse(&printed)
            .unwrap_or_else(|e| panic!("{e}\n{printed}"));
        prop_assert_eq!(reparsed.num_ops(), kernel.num_ops());
        prop_assert_eq!(text::print(&reparsed), printed.clone(), "print is a fixpoint");
        let sem = |k: &Kernel| {
            let a = run_outputs(k, 5);
            let b = run_outputs(k, 5);
            assert_eq!(a, b);
            a
        };
        prop_assert_eq!(sem(&reparsed), sem(&kernel), "semantics preserved");
    }
}
