//! Loop unrolling (used to build the paper's `FFT-U4` and
//! `Block Warp-U2` kernel variants from their base kernels).
//!
//! Unrolling by a factor `u` duplicates the loop body `u` times, threading
//! loop-variable values through the copies; the unrolled kernel executes
//! `trip / u` iterations to do the work the original did in `trip`.

use std::collections::HashMap;

use crate::kernel::{Kernel, KernelBuilder, KernelError, Operand, ValueId};

/// Unrolls the kernel's loop block by `factor`.
///
/// The returned kernel is semantically equivalent when run for
/// `trip / factor` iterations (callers must arrange for the original trip
/// count to be divisible by `factor`, as the paper's unrolled kernels do).
/// Kernels without a loop block are returned unchanged (modulo a name
/// suffix).
///
/// # Errors
///
/// Propagates [`KernelError`] from rebuilding the kernel (cannot occur for
/// kernels that passed validation, but the signature keeps the invariant
/// checkable).
///
/// # Panics
///
/// Panics if `factor` is zero.
///
/// # Examples
///
/// ```
/// use csched_ir::{KernelBuilder, unroll};
/// use csched_machine::Opcode;
///
/// let mut kb = KernelBuilder::new("inc");
/// let lp = kb.loop_block("body");
/// let i = kb.loop_var(lp, 0i64.into());
/// let i1 = kb.push(lp, Opcode::IAdd, [i.into(), 1i64.into()]);
/// kb.set_update(i, i1.into());
/// let k = kb.build()?;
/// let k4 = unroll(&k, 4)?;
/// assert_eq!(k4.loop_ops().len(), 4);
/// # Ok::<(), csched_ir::KernelError>(())
/// ```
pub fn unroll(kernel: &Kernel, factor: usize) -> Result<Kernel, KernelError> {
    assert!(factor >= 1, "unroll factor must be at least 1");
    let mut kb = KernelBuilder::new(format!("{}-u{}", kernel.name(), factor));
    kb.description(format!(
        "{} (inner loop unrolled {} times)",
        kernel.description(),
        factor
    ));

    // Regions are copied one-to-one.
    let regions: Vec<_> = kernel
        .regions()
        .iter()
        .map(|r| kb.region(r.name(), r.iteration_disjoint()))
        .collect();

    // Old value -> new operand, for values defined in straight-line blocks.
    let mut global_map: HashMap<ValueId, Operand> = HashMap::new();

    // Straight-line blocks copy verbatim.
    for block_id in kernel.block_ids() {
        let block = kernel.block(block_id);
        if block.is_loop() {
            continue;
        }
        let nb = kb.straight_block(block.name());
        for &op_id in block.ops() {
            let op = kernel.op(op_id);
            let operands: Vec<Operand> = op
                .operands()
                .iter()
                .map(|&o| map_operand(o, &global_map))
                .collect();
            let result = push_any(&mut kb, nb, op, operands, &regions);
            if let (Some(old), Some(new)) = (op.result(), result) {
                global_map.insert(old, Operand::Value(new));
                if let Some(name) = kernel.value_name(old) {
                    kb.name_value(new, name);
                }
            }
        }
    }

    let Some(loop_id) = kernel.loop_block() else {
        return kb.build();
    };
    let loop_block = kernel.block(loop_id);
    let nb = kb.loop_block(loop_block.name());

    // New loop variables mirror the old ones.
    let new_vars: Vec<ValueId> = loop_block
        .loop_vars()
        .iter()
        .map(|lv| {
            let init = map_operand(lv.init(), &global_map);
            let v = kb.loop_var(nb, init);
            if let Some(name) = kernel.value_name(lv.value()) {
                kb.name_value(v, name);
            }
            v
        })
        .collect();

    // state[i] = operand holding loop var i's value at the start of the
    // current body copy.
    let mut state: Vec<Operand> = new_vars.iter().map(|&v| Operand::Value(v)).collect();
    let var_index: HashMap<ValueId, usize> = loop_block
        .loop_vars()
        .iter()
        .enumerate()
        .map(|(i, lv)| (lv.value(), i))
        .collect();

    for copy in 0..factor {
        // Old loop-defined value -> new operand, local to this copy.
        let mut local_map: HashMap<ValueId, Operand> = HashMap::new();
        let resolve = |operand: Operand,
                       local_map: &HashMap<ValueId, Operand>,
                       state: &[Operand]|
         -> Operand {
            match operand.as_value() {
                None => operand,
                Some(v) => {
                    if let Some(&i) = var_index.get(&v) {
                        state[i]
                    } else if let Some(&m) = local_map.get(&v) {
                        m
                    } else {
                        // straight-line value
                        *global_map.get(&v).unwrap_or(&operand)
                    }
                }
            }
        };
        for &op_id in loop_block.ops() {
            let op = kernel.op(op_id);
            let operands: Vec<Operand> = op
                .operands()
                .iter()
                .map(|&o| resolve(o, &local_map, &state))
                .collect();
            let result = push_any(&mut kb, nb, op, operands, &regions);
            if let (Some(old), Some(new)) = (op.result(), result) {
                local_map.insert(old, Operand::Value(new));
                if let Some(name) = kernel.value_name(old) {
                    kb.name_value(new, format!("{name}.u{copy}"));
                }
            }
        }
        // Simultaneous loop-variable update at the end of the copy.
        let next: Vec<Operand> = loop_block
            .loop_vars()
            .iter()
            .map(|lv| resolve(lv.update(), &local_map, &state))
            .collect();
        state = next;
    }

    for (&var, &update) in new_vars.iter().zip(state.iter()) {
        kb.set_update(var, update);
    }
    kb.build()
}

fn map_operand(operand: Operand, map: &HashMap<ValueId, Operand>) -> Operand {
    match operand.as_value() {
        Some(v) => *map.get(&v).unwrap_or(&operand),
        None => operand,
    }
}

fn push_any(
    kb: &mut KernelBuilder,
    block: crate::kernel::BlockId,
    op: &crate::kernel::Operation,
    operands: Vec<Operand>,
    regions: &[crate::kernel::RegionId],
) -> Option<ValueId> {
    if let Some(region) = op.region() {
        kb.push_mem(block, op.opcode(), operands, regions[region.index()])
            .1
    } else {
        Some(kb.push(block, op.opcode(), operands))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{run, Memory};
    use crate::value::Word;
    use csched_machine::Opcode;

    /// out[i] = in[i] + running-sum(in[0..=i]) — exercises loads, stores,
    /// an induction variable and an accumulator recurrence.
    fn base_kernel() -> Kernel {
        let mut kb = KernelBuilder::new("scan");
        let input = kb.region("in", true);
        let output = kb.region("out", true);
        let pre = kb.straight_block("pre");
        let zero = kb.push(pre, Opcode::IAdd, [Operand::from(0i64), 0i64.into()]);
        let lp = kb.loop_block("body");
        let i = kb.loop_var(lp, 0i64.into());
        let acc = kb.loop_var(lp, zero.into());
        let x = kb.load(lp, input, i.into(), 0i64.into());
        let acc1 = kb.push(lp, Opcode::IAdd, [acc.into(), x.into()]);
        let y = kb.push(lp, Opcode::IAdd, [x.into(), acc1.into()]);
        kb.store(lp, output, i.into(), 1000i64.into(), y.into());
        let i1 = kb.push(lp, Opcode::IAdd, [i.into(), 1i64.into()]);
        kb.set_update(i, i1.into());
        kb.set_update(acc, acc1.into());
        kb.build().unwrap()
    }

    fn run_with_inputs(kernel: &Kernel, trip: u64) -> Vec<Word> {
        let mut mem = Memory::new();
        mem.write_block(0, (0..16).map(|v| Word::I(v * 3 + 1)));
        run(kernel, &mut mem, trip).unwrap();
        mem.read_block(1000, 16)
    }

    #[test]
    fn unroll_preserves_semantics() {
        let base = base_kernel();
        let expected = run_with_inputs(&base, 16);
        for factor in [1usize, 2, 4, 8] {
            let unrolled = unroll(&base, factor).unwrap();
            let got = run_with_inputs(&unrolled, 16 / factor as u64);
            assert_eq!(got, expected, "factor {factor}");
        }
    }

    #[test]
    fn unroll_multiplies_loop_ops() {
        let base = base_kernel();
        let u4 = unroll(&base, 4).unwrap();
        assert_eq!(u4.loop_ops().len(), base.loop_ops().len() * 4);
        // Loop variable count is unchanged.
        let lb = u4.loop_block().unwrap();
        assert_eq!(u4.block(lb).loop_vars().len(), 2);
        assert!(u4.name().ends_with("-u4"));
    }

    #[test]
    fn unroll_of_delayed_value() {
        // a delays b by one iteration through an explicit copy operation
        // (the IR forbids chaining one loop variable's update to another).
        let mut kb = KernelBuilder::new("delay");
        let out = kb.region("out", true);
        let lp = kb.loop_block("body");
        let a = kb.loop_var(lp, 100i64.into());
        let b = kb.loop_var(lp, 0i64.into());
        let i = kb.loop_var(lp, 0i64.into());
        kb.store(lp, out, i.into(), 0i64.into(), a.into());
        let b_now = kb.push(lp, Opcode::IAdd, [b.into(), 0i64.into()]);
        let b1 = kb.push(lp, Opcode::IAdd, [b.into(), 1i64.into()]);
        let i1 = kb.push(lp, Opcode::IAdd, [i.into(), 1i64.into()]);
        kb.set_update(a, b_now.into());
        kb.set_update(b, b1.into());
        kb.set_update(i, i1.into());
        let base = kb.build().unwrap();

        let run_out = |k: &Kernel, trip: u64| {
            let mut mem = Memory::new();
            run(k, &mut mem, trip).unwrap();
            mem.read_block(0, 8)
        };
        let expected = run_out(&base, 8);
        let u2 = unroll(&base, 2).unwrap();
        assert_eq!(run_out(&u2, 4), expected);
    }

    #[test]
    fn unroll_factor_one_is_identity_semantics() {
        let base = base_kernel();
        let u1 = unroll(&base, 1).unwrap();
        assert_eq!(u1.loop_ops().len(), base.loop_ops().len());
        assert_eq!(run_with_inputs(&u1, 16), run_with_inputs(&base, 16));
    }
}
