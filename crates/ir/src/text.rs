//! Textual kernel format: a printer and parser for the IR.
//!
//! The paper's kernels were "written in a limited subset of C" and
//! compiled by the Imagine kernel compiler; this module provides the
//! equivalent front-end surface for this reproduction — a small, stable
//! textual language that round-trips through the IR, so kernels can be
//! stored in files, diffed, and written by hand:
//!
//! ```text
//! kernel "double" {
//!   region in disjoint
//!   region out disjoint
//!   loop body {
//!     var i = init 0 update i1
//!     x = load in [i + 0]
//!     y = imul x, 2
//!     store out [i + 100], y
//!     i1 = iadd i, 1
//!   }
//! }
//! ```
//!
//! Regions are `disjoint` (iterations never alias) or `aliasing`. Loop
//! variables declare their init operand and name their update value, which
//! may be defined later in the body. Memory operands use the
//! `[base + offset]` addressing of the machine's load/store units.

use std::collections::HashMap;
use std::fmt::Write as _;

use csched_machine::Opcode;

use crate::kernel::{BlockId, Kernel, KernelBuilder, KernelError, Operand, RegionId, ValueId};
use crate::value::Imm;

/// Prints `kernel` in the textual format; [`parse`] reads it back.
pub fn print(kernel: &Kernel) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "kernel {:?} {{", kernel.name());
    if !kernel.description().is_empty() {
        let _ = writeln!(out, "  description {:?}", kernel.description());
    }
    for region in kernel.regions() {
        let _ = writeln!(
            out,
            "  region {} {}",
            region.name(),
            if region.iteration_disjoint() {
                "disjoint"
            } else {
                "aliasing"
            }
        );
    }
    let vname = |v: ValueId| format!("v{}", v.index());
    let oname = |o: Operand| match o {
        Operand::Value(v) => vname(v),
        Operand::Imm(Imm::Int(i)) => format!("{i}"),
        Operand::Imm(Imm::Float(f)) => {
            let s = format!("{f}");
            if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
                s
            } else {
                format!("{s}.0")
            }
        }
    };
    // A validated kernel always has results on pure/load ops and regions
    // on memory ops; print defensively anyway so a hand-assembled kernel
    // still renders (as `v?` / `?`) instead of panicking.
    let result_of = |op: &crate::kernel::Operation| match op.result() {
        Some(v) => vname(v),
        None => "v?".to_string(),
    };
    let region_of = |op: &crate::kernel::Operation| match op.region() {
        Some(r) => kernel.region(r).name(),
        None => "?",
    };
    for block_id in kernel.block_ids() {
        let block = kernel.block(block_id);
        let _ = writeln!(
            out,
            "  {} {} {{",
            if block.is_loop() { "loop" } else { "block" },
            block.name()
        );
        for lv in block.loop_vars() {
            let _ = writeln!(
                out,
                "    var {} = init {} update {}",
                vname(lv.value()),
                oname(lv.init()),
                oname(lv.update())
            );
        }
        for &op_id in block.ops() {
            let op = kernel.op(op_id);
            let operands = op.operands();
            match op.opcode() {
                Opcode::Load | Opcode::SpRead => {
                    let _ = writeln!(
                        out,
                        "    {} = {} {} [{} + {}]",
                        result_of(op),
                        op.opcode().mnemonic(),
                        region_of(op),
                        oname(operands[0]),
                        oname(operands[1]),
                    );
                }
                Opcode::Store | Opcode::SpWrite => {
                    let _ = writeln!(
                        out,
                        "    {} {} [{} + {}], {}",
                        op.opcode().mnemonic(),
                        region_of(op),
                        oname(operands[0]),
                        oname(operands[1]),
                        oname(operands[2]),
                    );
                }
                opcode => {
                    let args: Vec<String> = operands.iter().map(|&o| oname(o)).collect();
                    let _ = writeln!(
                        out,
                        "    {} = {} {}",
                        result_of(op),
                        opcode.mnemonic(),
                        args.join(", ")
                    );
                }
            }
        }
        let _ = writeln!(out, "  }}");
    }
    let _ = writeln!(out, "}}");
    out
}

/// A parse failure with a source span: 1-based line and column plus the
/// offending source line, rendered caret-style by [`Display`].
///
/// `line == 0` marks errors with no source location (empty input, or a
/// kernel-validation failure after parsing succeeded).
///
/// [`Display`]: std::fmt::Display
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// 1-based line the error was detected on (0 when unlocated).
    pub line: usize,
    /// 1-based column of the offending token (0 when unlocated).
    pub column: usize,
    /// The source line the error occurred on, comment included.
    pub snippet: String,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            return write!(f, "{}", self.message);
        }
        write!(f, "line {}:{}: {}", self.line, self.column, self.message)?;
        if !self.snippet.is_empty() {
            write!(
                f,
                "\n  | {}\n  | {caret:>width$}",
                self.snippet,
                caret = '^',
                width = self.column.max(1)
            )?;
        }
        Ok(())
    }
}

impl std::error::Error for ParseError {}

impl From<KernelError> for ParseError {
    fn from(e: KernelError) -> Self {
        ParseError {
            line: 0,
            column: 0,
            snippet: String::new(),
            message: format!("kernel validation failed: {e}"),
        }
    }
}

/// Parses the textual format produced by [`print()`].
///
/// # Errors
///
/// Returns a [`ParseError`] with the offending line for syntax errors,
/// unknown mnemonics/regions/names, and kernel validation failures.
pub fn parse(text: &str) -> Result<Kernel, ParseError> {
    Parser::new(text).parse()
}

struct Parser<'a> {
    /// Every source line, untrimmed, for error snippets (index = line - 1).
    raw: Vec<&'a str>,
    /// Non-empty lines after comment stripping, with 1-based numbers.
    lines: Vec<(usize, &'a str)>,
    pos: usize,
}

struct PendingVar {
    update: String,
    line: usize,
    value: ValueId,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        let raw: Vec<&'a str> = text.lines().collect();
        let lines = raw
            .iter()
            .enumerate()
            .map(|(i, l)| {
                let l = match l.find(';') {
                    Some(p) => &l[..p],
                    None => l,
                };
                (i + 1, l.trim())
            })
            .filter(|(_, l)| !l.is_empty())
            .collect();
        Parser { raw, lines, pos: 0 }
    }

    /// Builds a spanned error: the snippet is the raw source line, and the
    /// column points at `frag` within it (or at the first non-blank
    /// character when `frag` is empty or not found).
    fn error(&self, line: usize, frag: &str, message: impl Into<String>) -> ParseError {
        let snippet = self
            .raw
            .get(line.wrapping_sub(1))
            .map_or("", |l| l.trim_end());
        let column = if line == 0 {
            0
        } else {
            let found = if frag.is_empty() {
                None
            } else {
                snippet.find(frag)
            };
            found.unwrap_or_else(|| snippet.len() - snippet.trim_start().len()) + 1
        };
        ParseError {
            line,
            column,
            snippet: snippet.to_string(),
            message: message.into(),
        }
    }

    fn err<T>(&self, line: usize, frag: &str, message: impl Into<String>) -> Result<T, ParseError> {
        Err(self.error(line, frag, message))
    }

    fn next_line(&mut self) -> Option<(usize, &'a str)> {
        let l = self.lines.get(self.pos).copied();
        self.pos += 1;
        l
    }

    fn parse(mut self) -> Result<Kernel, ParseError> {
        let (line, header) = match self.next_line() {
            Some(l) => l,
            None => return self.err(0, "", "empty input"),
        };
        let name = header
            .strip_prefix("kernel")
            .map(str::trim)
            .and_then(|rest| rest.strip_suffix('{'))
            .map(str::trim)
            .and_then(|q| q.strip_prefix('"')?.strip_suffix('"'))
            .ok_or_else(|| self.expected(line, header, "`kernel \"name\" {`"))?;

        let mut kb = KernelBuilder::new(name);
        let mut regions: HashMap<String, RegionId> = HashMap::new();
        let mut values: HashMap<String, ValueId> = HashMap::new();
        let mut pending_vars: Vec<PendingVar> = Vec::new();

        while let Some((line, l)) = self.next_line() {
            if let Some(rest) = l.strip_prefix("description ") {
                let text = rest
                    .trim()
                    .strip_prefix('"')
                    .and_then(|r| r.strip_suffix('"'))
                    .ok_or_else(|| self.expected(line, rest, "quoted description"))?;
                kb.description(text);
                continue;
            }
            if l == "}" {
                // Kernel closed: resolve loop-variable updates.
                for pv in &pending_vars {
                    let update = match values.get(&pv.update) {
                        Some(&v) => v,
                        None => {
                            return self.err(
                                pv.line,
                                &pv.update,
                                format!("loop var update `{}` is not defined", pv.update),
                            )
                        }
                    };
                    kb.set_update(pv.value, update.into());
                }
                return kb.build().map_err(ParseError::from);
            }
            if let Some(rest) = l.strip_prefix("region ") {
                let mut parts = rest.split_whitespace();
                let (Some(rname), Some(kind)) = (parts.next(), parts.next()) else {
                    return self.err(line, rest, "expected `region <name> disjoint|aliasing`");
                };
                let disjoint = match kind {
                    "disjoint" => true,
                    "aliasing" => false,
                    other => {
                        return self.err(line, other, format!("unknown region kind `{other}`"))
                    }
                };
                let id = kb.region(rname, disjoint);
                regions.insert(rname.to_string(), id);
                continue;
            }
            let (is_loop, bname) = if let Some(rest) = l.strip_prefix("loop ") {
                (true, rest)
            } else if let Some(rest) = l.strip_prefix("block ") {
                (false, rest)
            } else {
                return self.err(line, l, format!("expected region/block/loop, got `{l}`"));
            };
            let bname = bname
                .strip_suffix('{')
                .map(str::trim)
                .ok_or_else(|| self.expected(line, bname, "`{` after block name"))?;
            let block = if is_loop {
                kb.loop_block(bname)
            } else {
                kb.straight_block(bname)
            };
            self.parse_block(
                &mut kb,
                block,
                is_loop,
                &regions,
                &mut values,
                &mut pending_vars,
            )?;
        }
        self.err(0, "", "unexpected end of input (missing `}`)")
    }

    #[allow(clippy::too_many_arguments)]
    fn parse_block(
        &mut self,
        kb: &mut KernelBuilder,
        block: BlockId,
        is_loop: bool,
        regions: &HashMap<String, RegionId>,
        values: &mut HashMap<String, ValueId>,
        pending_vars: &mut Vec<PendingVar>,
    ) -> Result<(), ParseError> {
        while let Some((line, l)) = self.next_line() {
            if l == "}" {
                return Ok(());
            }
            if let Some(rest) = l.strip_prefix("var ") {
                if !is_loop {
                    return self.err(line, "var", "`var` is only allowed in loop blocks");
                }
                // var <name> = init <operand> update <name>
                let (vname, rest) = split_once_trim(rest, '=').ok_or_else(|| {
                    self.expected(line, rest, "var <name> = init <op> update <name>")
                })?;
                let rest = rest
                    .strip_prefix("init")
                    .ok_or_else(|| self.expected(line, rest, "init <operand>"))?
                    .trim();
                let (init_text, update_name) = match rest.find("update") {
                    Some(p) => (rest[..p].trim(), rest[p + 6..].trim()),
                    None => return self.err(line, rest, "missing `update <name>`"),
                };
                let init = self.operand(line, init_text, values)?;
                let value = kb.loop_var(block, init);
                kb.name_value(value, vname);
                values.insert(vname.to_string(), value);
                pending_vars.push(PendingVar {
                    update: update_name.to_string(),
                    line,
                    value,
                });
                continue;
            }
            if let Some(rest) = l
                .strip_prefix("store ")
                .or_else(|| l.strip_prefix("spwrite "))
            {
                let opcode = if l.starts_with("store") {
                    Opcode::Store
                } else {
                    Opcode::SpWrite
                };
                // <region> [<base> + <off>], <value>
                let (region, base, offset, tail) = self.mem_operand(line, rest, regions, values)?;
                let tail = tail
                    .strip_prefix(',')
                    .ok_or_else(|| self.expected(line, tail, "`, <value>` after store address"))?
                    .trim();
                let value = self.operand(line, tail, values)?;
                kb.push_mem(block, opcode, [base, offset, value], region);
                continue;
            }
            // <name> = <mnemonic> <args>
            let (vname, rest) = split_once_trim(l, '=')
                .ok_or_else(|| self.expected(line, l, "<name> = <op> <operands>"))?;
            let (mnemonic, args) = match rest.find([' ', '\t']) {
                Some(p) => (&rest[..p], rest[p..].trim()),
                None => (rest, ""),
            };
            let result = if mnemonic == "load" || mnemonic == "spread" {
                let opcode = if mnemonic == "load" {
                    Opcode::Load
                } else {
                    Opcode::SpRead
                };
                let (region, base, offset, tail) = self.mem_operand(line, args, regions, values)?;
                if !tail.is_empty() {
                    return self.err(line, tail, format!("unexpected trailing `{tail}`"));
                }
                kb.push_mem(block, opcode, [base, offset], region)
                    .1
                    .ok_or_else(|| self.error(line, mnemonic, "memory read produced no result"))?
            } else {
                let opcode = Opcode::from_mnemonic(mnemonic).ok_or_else(|| {
                    self.error(line, mnemonic, format!("unknown opcode `{mnemonic}`"))
                })?;
                let operands: Vec<Operand> = if args.is_empty() {
                    Vec::new()
                } else {
                    args.split(',')
                        .map(|a| self.operand(line, a.trim(), values))
                        .collect::<Result<_, _>>()?
                };
                if operands.len() != opcode.num_operands() {
                    return self.err(
                        line,
                        mnemonic,
                        format!(
                            "{mnemonic} takes {} operands, got {}",
                            opcode.num_operands(),
                            operands.len()
                        ),
                    );
                }
                kb.push(block, opcode, operands)
            };
            kb.name_value(result, vname);
            values.insert(vname.to_string(), result);
        }
        self.err(0, "", "unexpected end of input in block (missing `}`)")
    }

    fn expected(&self, line: usize, frag: &str, what: impl Into<String>) -> ParseError {
        self.error(line, frag, format!("expected {}", what.into()))
    }

    /// Parses `<region> [<base> + <offset>]` and returns the rest of the
    /// line after `]`.
    fn mem_operand<'b>(
        &self,
        line: usize,
        text: &'b str,
        regions: &HashMap<String, RegionId>,
        values: &HashMap<String, ValueId>,
    ) -> Result<(RegionId, Operand, Operand, &'b str), ParseError> {
        let open = text
            .find('[')
            .ok_or_else(|| self.expected(line, text, "`[base + offset]`"))?;
        let rname = text[..open].trim();
        let region = *regions
            .get(rname)
            .ok_or_else(|| self.expected(line, rname, format!("known region, got `{rname}`")))?;
        let close = text
            .find(']')
            .ok_or_else(|| self.expected(line, text, "closing `]`"))?;
        let inner = &text[open + 1..close];
        // The offset is the last `+`-separated term; a leading minus on an
        // immediate base still parses (`rfind` skips it).
        let plus = inner
            .rfind('+')
            .ok_or_else(|| self.expected(line, inner, "`base + offset`"))?;
        let base = self.operand(line, inner[..plus].trim(), values)?;
        let offset = self.operand(line, inner[plus + 1..].trim(), values)?;
        Ok((region, base, offset, text[close + 1..].trim()))
    }

    fn operand(
        &self,
        line: usize,
        text: &str,
        values: &HashMap<String, ValueId>,
    ) -> Result<Operand, ParseError> {
        if text.is_empty() {
            return self.err(line, "", "empty operand");
        }
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Operand::Imm(Imm::Int(i)));
        }
        if let Ok(f) = text.parse::<f64>() {
            return Ok(Operand::Imm(Imm::Float(f)));
        }
        match values.get(text) {
            Some(&v) => Ok(Operand::Value(v)),
            None => self.err(line, text, format!("unknown value `{text}`")),
        }
    }
}

fn split_once_trim(s: &str, sep: char) -> Option<(&str, &str)> {
    let (a, b) = s.split_once(sep)?;
    Some((a.trim(), b.trim()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{run, Memory};
    use crate::value::Word;

    fn sample_kernel() -> Kernel {
        let mut kb = KernelBuilder::new("sample");
        kb.description("a sample kernel");
        let input = kb.region("in", true);
        let output = kb.region("out", true);
        let pre = kb.straight_block("pre");
        let c = kb.push(pre, Opcode::IAdd, [2i64.into(), 3i64.into()]);
        let lp = kb.loop_block("body");
        let i = kb.loop_var(lp, 0i64.into());
        let acc = kb.loop_var(lp, c.into());
        let x = kb.load(lp, input, i.into(), 0i64.into());
        let y = kb.push(lp, Opcode::IMul, [x.into(), acc.into()]);
        let f = kb.push(lp, Opcode::ItoF, [y.into()]);
        let g = kb.push(lp, Opcode::FMul, [f.into(), 0.5f64.into()]);
        let h = kb.push(lp, Opcode::FtoI, [g.into()]);
        kb.store(lp, output, i.into(), 100i64.into(), h.into());
        let acc1 = kb.push(lp, Opcode::IAdd, [acc.into(), 1i64.into()]);
        let i1 = kb.push(lp, Opcode::IAdd, [i.into(), 1i64.into()]);
        kb.set_update(acc, acc1.into());
        kb.set_update(i, i1.into());
        kb.build().unwrap()
    }

    fn run_outputs(k: &Kernel, trip: u64) -> Vec<Word> {
        let mut mem = Memory::new();
        mem.write_block(0, (0..trip as i64).map(|v| Word::I(v + 1)));
        run(k, &mut mem, trip).unwrap();
        mem.read_block(100, trip as usize)
    }

    #[test]
    fn print_parse_round_trip_semantics() {
        let k = sample_kernel();
        let text = print(&k);
        let k2 = parse(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(k2.name(), k.name());
        assert_eq!(k2.num_ops(), k.num_ops());
        assert_eq!(run_outputs(&k2, 6), run_outputs(&k, 6));
        // Printing again is a fixpoint.
        assert_eq!(print(&k2), text);
    }

    #[test]
    fn table1_kernels_print_cleanly() {
        // The evaluation kernels live in another crate; at this layer just
        // make sure printing a kernel with every operand kind stays stable.
        let text = print(&sample_kernel());
        assert!(text.contains("kernel \"sample\""));
        assert!(text.contains("region in disjoint"));
        assert!(text.contains("var v1 = init 0 update"));
        assert!(text.contains("load in ["));
        assert!(text.contains("store out ["));
        assert!(text.contains("0.5"));
    }

    #[test]
    fn hand_written_kernel_parses() {
        let text = r#"
kernel "triple" {
  ; out[i] = 3 * in[i]
  region in disjoint
  region out disjoint
  loop body {
    var i = init 0 update i1
    x = load in [i + 0]
    y = imul x, 3
    store out [i + 50], y
    i1 = iadd i, 1
  }
}
"#;
        let k = parse(text).unwrap();
        let mut mem = Memory::new();
        mem.write_block(0, [Word::I(2), Word::I(5)]);
        run(&k, &mut mem, 2).unwrap();
        assert_eq!(mem.main[&50], Word::I(6));
        assert_eq!(mem.main[&51], Word::I(15));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let bad = "kernel \"x\" {\n  region r disjoint\n  loop l {\n    y = bogus 1, 2\n  }\n}\n";
        let e = parse(bad).unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.message.contains("bogus"));

        let bad2 = "kernel \"x\" {\n  loop l {\n    y = iadd z, 2\n  }\n}\n";
        let e2 = parse(bad2).unwrap_err();
        assert_eq!(e2.line, 3);
        assert!(e2.message.contains("unknown value"));
    }

    #[test]
    fn missing_update_is_rejected() {
        let bad = "kernel \"x\" {\n  loop l {\n    var i = init 0 update nope\n    y = iadd i, 1\n  }\n}\n";
        let e = parse(bad).unwrap_err();
        assert!(e.message.contains("nope"));
    }

    #[test]
    fn wrong_arity_is_rejected() {
        let bad = "kernel \"x\" {\n  block b {\n    y = iadd 1\n  }\n}\n";
        let e = parse(bad).unwrap_err();
        assert!(e.message.contains("takes 2 operands"));
        // The span points at the mnemonic on the offending line.
        assert_eq!(e.line, 3);
        assert_eq!(e.column, 9);
        assert_eq!(e.snippet, "    y = iadd 1");
    }

    #[test]
    fn spans_point_at_the_offending_token() {
        let bad = "kernel \"x\" {\n  loop l {\n    y = iadd zz, 2\n  }\n}\n";
        let e = parse(bad).unwrap_err();
        assert_eq!((e.line, e.column), (3, 14));
        assert_eq!(e.snippet, "    y = iadd zz, 2");
        // Display renders a caret under the token.
        let rendered = e.to_string();
        assert!(rendered.contains("line 3:14"), "{rendered}");
        let caret_line = rendered.lines().last().unwrap();
        // "  | " prefix plus a caret right-aligned to the column.
        assert_eq!(caret_line.find('^'), Some(4 + 14 - 1));
    }

    #[test]
    fn malformed_headers_and_structure_are_spanned() {
        let e = parse("krenel \"x\" {\n}\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("kernel"));
        assert_eq!(e.snippet, "krenel \"x\" {");

        let e = parse("kernel \"x\" {\n  region r sideways\n}\n").unwrap_err();
        assert_eq!((e.line, e.column), (2, 12));
        assert!(e.message.contains("sideways"));

        let e = parse("kernel \"x\" {\n  block b\n}\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains('{'));

        let e = parse("kernel \"x\" {\n  block b {\n    var i = init 0 update i\n  }\n}\n")
            .unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("only allowed in loop blocks"));
    }

    #[test]
    fn malformed_memory_operands_are_spanned() {
        let base = "kernel \"x\" {\n  region r disjoint\n  block b {\n";
        let e = parse(&format!("{base}    y = load q [0 + 0]\n  }}\n}}\n")).unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.message.contains("known region"), "{e}");

        let e = parse(&format!("{base}    y = load r [0 0]\n  }}\n}}\n")).unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.message.contains("base + offset"), "{e}");

        let e = parse(&format!("{base}    store r [0 + 0]\n  }}\n}}\n")).unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.message.contains("<value>"), "{e}");

        let e = parse(&format!("{base}    y = load r [0 + 0] junk\n  }}\n}}\n")).unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.message.contains("junk"), "{e}");
        assert_eq!(e.column, "    y = load r [0 + 0] ".len() + 1);
    }

    #[test]
    fn unterminated_input_is_reported_without_a_span() {
        for bad in ["", "kernel \"x\" {\n", "kernel \"x\" {\n  block b {\n"] {
            let e = parse(bad).unwrap_err();
            assert_eq!(e.line, 0);
            assert_eq!(e.column, 0);
            assert!(e.snippet.is_empty());
            // Unlocated errors render the message alone.
            assert!(!e.to_string().contains("line 0"), "{e}");
        }
    }
}
