//! Classic clean-up passes over kernels: constant folding, local common
//! subexpression elimination, and dead-code elimination.
//!
//! The paper's kernels come out of a C front-end, which runs exactly these
//! before scheduling; running them here keeps hand-written and generated
//! kernels from carrying redundant operations into the (much more
//! expensive) communication-scheduling phase. All passes are semantics
//! preserving — the tests check interpreter equivalence — and respect the
//! IR's structure: memory/scratchpad operations are never folded, merged
//! or removed, and loop-variable updates count as uses.

use std::collections::{HashMap, HashSet};

use csched_machine::Opcode;

use crate::interp::eval_pure;
use crate::kernel::{Kernel, KernelBuilder, KernelError, Operand, ValueId};
use crate::value::{Imm, Word};

/// Statistics from one [`optimize`] run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Operations whose results became immediates.
    pub folded: usize,
    /// Operations merged into an identical earlier operation.
    pub cse: usize,
    /// Operations removed as dead.
    pub dead: usize,
}

impl OptStats {
    /// Total operations eliminated.
    pub fn eliminated(&self) -> usize {
        self.folded + self.cse + self.dead
    }
}

/// Runs constant folding, local CSE and dead-code elimination to a fixed
/// point and returns the cleaned kernel with statistics.
///
/// # Errors
///
/// Propagates [`KernelError`] from rebuilding (cannot occur for kernels
/// that passed validation).
pub fn optimize(kernel: &Kernel) -> Result<(Kernel, OptStats), KernelError> {
    let mut stats = OptStats::default();
    let mut current = kernel.clone();
    loop {
        let (next, round) = round(&current)?;
        stats.folded += round.folded;
        stats.cse += round.cse;
        stats.dead += round.dead;
        if round.eliminated() == 0 {
            return Ok((next, stats));
        }
        current = next;
    }
}

fn round(kernel: &Kernel) -> Result<(Kernel, OptStats), KernelError> {
    let mut stats = OptStats::default();

    // --- liveness ---
    // Roots: loop-variable inits/updates and the operands of
    // side-effecting operations; then propagate backwards through pure
    // operations whose results are live.
    let mut live: HashSet<ValueId> = HashSet::new();
    for block in kernel.blocks() {
        for lv in block.loop_vars() {
            if let Some(v) = lv.init().as_value() {
                live.insert(v);
            }
            if let Some(v) = lv.update().as_value() {
                live.insert(v);
            }
        }
    }
    for op_id in kernel.op_ids() {
        let op = kernel.op(op_id);
        if !op.opcode().is_pure() {
            for operand in op.operands() {
                if let Some(v) = operand.as_value() {
                    live.insert(v);
                }
            }
        }
    }
    loop {
        let mut changed = false;
        for op_id in kernel.op_ids() {
            let op = kernel.op(op_id);
            let Some(result) = op.result() else { continue };
            if op.opcode().is_pure() && live.contains(&result) {
                for operand in op.operands() {
                    if let Some(v) = operand.as_value() {
                        changed |= live.insert(v);
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // --- rebuild, folding/merging/pruning as we go ---
    let mut kb = KernelBuilder::new(kernel.name());
    kb.description(kernel.description());
    let regions: Vec<_> = kernel
        .regions()
        .iter()
        .map(|r| kb.region(r.name(), r.iteration_disjoint()))
        .collect();

    // Old value -> new operand.
    let mut map: HashMap<ValueId, Operand> = HashMap::new();
    // Loop vars must exist before body ops reference them; collect per
    // block and set updates afterwards.
    let mut pending_updates: Vec<(ValueId, Operand)> = Vec::new();

    for block_id in kernel.block_ids() {
        let block = kernel.block(block_id);
        let new_block = if block.is_loop() {
            kb.loop_block(block.name())
        } else {
            kb.straight_block(block.name())
        };
        for lv in block.loop_vars() {
            let init = resolve(lv.init(), &map);
            let nv = kb.loop_var(new_block, init);
            if let Some(name) = kernel.value_name(lv.value()) {
                kb.name_value(nv, name);
            }
            map.insert(lv.value(), Operand::Value(nv));
        }
        // Available expressions for local CSE: (opcode, operands) -> value.
        let mut available: HashMap<(Opcode, Vec<String>), ValueId> = HashMap::new();
        for &op_id in block.ops() {
            let op = kernel.op(op_id);
            let operands: Vec<Operand> = op.operands().iter().map(|&o| resolve(o, &map)).collect();

            if let Some(result) = op.result() {
                if op.opcode().is_pure() && !live.contains(&result) {
                    stats.dead += 1;
                    continue;
                }
            }

            // Constant folding for pure ops with all-immediate operands
            // (division excluded: folding a divide-by-zero would turn a
            // runtime error into a compile-time crash).
            if op.opcode().is_pure()
                && !matches!(op.opcode(), Opcode::IDiv | Opcode::IRem | Opcode::FDiv)
                && operands.iter().all(|o| matches!(o, Operand::Imm(_)))
            {
                let words: Vec<Word> = operands
                    .iter()
                    .map(|o| match o {
                        Operand::Imm(i) => i.to_word(),
                        Operand::Value(_) => unreachable!("checked all-imm"),
                    })
                    .collect();
                if let Ok(w) = eval_pure(op_id, op.opcode(), &words) {
                    let imm = match w {
                        Word::I(i) => Imm::Int(i),
                        Word::F(f) => Imm::Float(f),
                    };
                    let result = op
                        .result()
                        .unwrap_or_else(|| unreachable!("pure ops produce results"));
                    map.insert(result, Operand::Imm(imm));
                    stats.folded += 1;
                    continue;
                }
            }

            // Local CSE for pure ops.
            if op.opcode().is_pure() {
                let key = (
                    op.opcode(),
                    operands
                        .iter()
                        .map(|o| format!("{o:?}"))
                        .collect::<Vec<_>>(),
                );
                if let Some(&prev) = available.get(&key) {
                    let result = op
                        .result()
                        .unwrap_or_else(|| unreachable!("pure ops produce results"));
                    map.insert(result, Operand::Value(prev));
                    stats.cse += 1;
                    continue;
                }
                let nv = kb.push(new_block, op.opcode(), operands.clone());
                if let Some(name) = op.result().and_then(|r| kernel.value_name(r)) {
                    kb.name_value(nv, name);
                }
                available.insert(key, nv);
                let result = op
                    .result()
                    .unwrap_or_else(|| unreachable!("pure ops produce results"));
                map.insert(result, Operand::Value(nv));
            } else {
                let (_, result) = kb.push_mem(
                    new_block,
                    op.opcode(),
                    operands,
                    regions[op
                        .region()
                        .unwrap_or_else(|| unreachable!("memory ops have regions"))
                        .index()],
                );
                if let (Some(old), Some(new)) = (op.result(), result) {
                    map.insert(old, Operand::Value(new));
                }
            }
        }
        for lv in block.loop_vars() {
            let new_var = match map[&lv.value()] {
                Operand::Value(v) => v,
                Operand::Imm(_) => unreachable!("loop vars map to values"),
            };
            pending_updates.push((new_var, resolve(lv.update(), &map)));
        }
    }
    for (var, update) in pending_updates {
        kb.set_update(var, update);
    }
    Ok((kb.build()?, stats))
}

fn resolve(operand: Operand, map: &HashMap<ValueId, Operand>) -> Operand {
    match operand.as_value() {
        Some(v) => *map.get(&v).unwrap_or(&operand),
        None => operand,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{run, Memory};

    fn outputs(k: &Kernel, trip: u64) -> Vec<Word> {
        let mut mem = Memory::new();
        mem.write_block(0, (0..trip as i64).map(|v| Word::I(v * 5 - 3)));
        run(k, &mut mem, trip).unwrap();
        mem.read_block(100, trip as usize)
    }

    fn messy_kernel() -> Kernel {
        let mut kb = KernelBuilder::new("messy");
        let input = kb.region("in", true);
        let output = kb.region("out", true);
        let pre = kb.straight_block("pre");
        // Foldable: 2 + 3.
        let c = kb.push(pre, Opcode::IAdd, [2i64.into(), 3i64.into()]);
        let lp = kb.loop_block("body");
        let i = kb.loop_var(lp, 0i64.into());
        let x = kb.load(lp, input, i.into(), 0i64.into());
        // Duplicate computation (CSE target).
        let a = kb.push(lp, Opcode::IMul, [x.into(), c.into()]);
        let b = kb.push(lp, Opcode::IMul, [x.into(), c.into()]);
        let y = kb.push(lp, Opcode::IAdd, [a.into(), b.into()]);
        // Dead chain.
        let d1 = kb.push(lp, Opcode::IAdd, [x.into(), 7i64.into()]);
        let _d2 = kb.push(lp, Opcode::IMul, [d1.into(), d1.into()]);
        kb.store(lp, output, i.into(), 100i64.into(), y.into());
        let i1 = kb.push(lp, Opcode::IAdd, [i.into(), 1i64.into()]);
        kb.set_update(i, i1.into());
        kb.build().unwrap()
    }

    #[test]
    fn optimizes_and_preserves_semantics() {
        let k = messy_kernel();
        let (opt, stats) = optimize(&k).unwrap();
        assert!(stats.folded >= 1, "2+3 folds");
        assert!(stats.cse >= 1, "duplicate multiply merges");
        assert!(stats.dead >= 2, "dead chain removed");
        assert!(opt.num_ops() < k.num_ops());
        assert_eq!(outputs(&opt, 6), outputs(&k, 6));
    }

    #[test]
    fn stores_and_loads_survive() {
        let k = messy_kernel();
        let (opt, _) = optimize(&k).unwrap();
        let h = opt.opcode_histogram();
        assert_eq!(h.get(&Opcode::Load), Some(&1));
        assert_eq!(h.get(&Opcode::Store), Some(&1));
    }

    #[test]
    fn division_is_never_folded() {
        let mut kb = KernelBuilder::new("div");
        let out = kb.region("out", true);
        let b = kb.straight_block("b");
        let d = kb.push(b, Opcode::IDiv, [6i64.into(), 0i64.into()]);
        kb.store(b, out, 0i64.into(), 0i64.into(), d.into());
        let k = kb.build().unwrap();
        let (opt, stats) = optimize(&k).unwrap();
        assert_eq!(stats.folded, 0);
        assert_eq!(
            opt.opcode_histogram().get(&Opcode::IDiv),
            Some(&1),
            "runtime error preserved"
        );
    }

    #[test]
    fn already_clean_kernels_are_untouched() {
        let mut kb = KernelBuilder::new("clean");
        let input = kb.region("in", true);
        let output = kb.region("out", true);
        let lp = kb.loop_block("body");
        let i = kb.loop_var(lp, 0i64.into());
        let x = kb.load(lp, input, i.into(), 0i64.into());
        let y = kb.push(lp, Opcode::IMul, [x.into(), 3i64.into()]);
        kb.store(lp, output, i.into(), 100i64.into(), y.into());
        let i1 = kb.push(lp, Opcode::IAdd, [i.into(), 1i64.into()]);
        kb.set_update(i, i1.into());
        let k = kb.build().unwrap();
        let (opt, stats) = optimize(&k).unwrap();
        assert_eq!(stats.eliminated(), 0);
        assert_eq!(opt.num_ops(), k.num_ops());
    }

    #[test]
    fn table1_kernels_are_already_minimal() {
        // The evaluation kernels should not carry removable fat — their
        // op counts are part of the experiment.
        // (Checked here structurally via the optimizer's fixed point.)
        let k = messy_kernel();
        let (opt, _) = optimize(&k).unwrap();
        let (opt2, stats2) = optimize(&opt).unwrap();
        assert_eq!(stats2.eliminated(), 0, "optimize is idempotent");
        assert_eq!(opt2.num_ops(), opt.num_ops());
    }

    #[test]
    fn loop_var_updates_keep_values_alive() {
        // The induction increment has no direct reader but feeds the loop
        // variable; it must survive.
        let mut kb = KernelBuilder::new("induct");
        let out = kb.region("out", true);
        let lp = kb.loop_block("body");
        let i = kb.loop_var(lp, 0i64.into());
        kb.store(lp, out, i.into(), 0i64.into(), i.into());
        let i1 = kb.push(lp, Opcode::IAdd, [i.into(), 1i64.into()]);
        kb.set_update(i, i1.into());
        let k = kb.build().unwrap();
        let (opt, stats) = optimize(&k).unwrap();
        assert_eq!(stats.dead, 0);
        assert_eq!(opt.num_ops(), k.num_ops());
    }
}
