//! Reference interpreter: executes a kernel directly from the IR.
//!
//! The interpreter is the semantic oracle of the project: the cycle-level
//! simulator (`csched-sim`) must produce exactly the same memory state for
//! any schedule of the same kernel. It also validates the kernel's
//! `iteration_disjoint` region claims by recording every address touched.

use std::collections::HashMap;

use csched_machine::Opcode;

use crate::kernel::{Kernel, OpId, Operand, RegionId};
use crate::value::Word;

/// Memory state shared between the interpreter and the simulator: a flat
/// main memory and a scratchpad, both word-addressed and sparse.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Memory {
    /// Main memory (accessed by `load`/`store`).
    pub main: HashMap<i64, Word>,
    /// Scratchpad memory (accessed by `spread`/`spwrite`).
    pub scratch: HashMap<i64, Word>,
}

impl Memory {
    /// An empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes consecutive words starting at `base` into main memory.
    pub fn write_block(&mut self, base: i64, words: impl IntoIterator<Item = Word>) {
        for (i, w) in words.into_iter().enumerate() {
            self.main.insert(base + i as i64, w);
        }
    }

    /// Reads `len` consecutive words starting at `base` from main memory,
    /// substituting integer zero for untouched addresses.
    pub fn read_block(&self, base: i64, len: usize) -> Vec<Word> {
        (0..len as i64)
            .map(|i| self.main.get(&(base + i)).copied().unwrap_or(Word::I(0)))
            .collect()
    }
}

/// Errors raised during interpretation.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum InterpError {
    /// An operand had the wrong type for the opcode.
    TypeMismatch {
        /// The offending operation.
        op: OpId,
        /// Its opcode.
        opcode: Opcode,
    },
    /// Integer division or remainder by zero.
    DivByZero {
        /// The offending operation.
        op: OpId,
    },
    /// A load from an address never stored to.
    UninitializedLoad {
        /// The offending operation.
        op: OpId,
        /// The address read.
        addr: i64,
    },
    /// A region declared `iteration_disjoint` was accessed at the same
    /// address by two different loop iterations.
    RegionAliased {
        /// The offending region.
        region: RegionId,
        /// The shared address.
        addr: i64,
        /// The two iterations involved.
        iterations: (u64, u64),
    },
}

impl std::fmt::Display for InterpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterpError::TypeMismatch { op, opcode } => {
                write!(f, "{op}: operand type mismatch for {opcode}")
            }
            InterpError::DivByZero { op } => write!(f, "{op}: division by zero"),
            InterpError::UninitializedLoad { op, addr } => {
                write!(f, "{op}: load from uninitialized address {addr}")
            }
            InterpError::RegionAliased {
                region,
                addr,
                iterations,
            } => write!(
                f,
                "region {region} declared iteration-disjoint but address {addr} was touched by iterations {} and {}",
                iterations.0, iterations.1
            ),
        }
    }
}

impl std::error::Error for InterpError {}

/// Execution statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InterpStats {
    /// Dynamic operations executed.
    pub ops_executed: u64,
    /// Dynamic loads (main memory).
    pub loads: u64,
    /// Dynamic stores (main memory).
    pub stores: u64,
}

/// Evaluates one opcode on already-fetched operand words.
///
/// Shared by the interpreter and the cycle-level simulator so the two can
/// never diverge on operation semantics.
///
/// # Errors
///
/// Returns `None`-free errors via `Result`: type mismatches and division
/// by zero. Memory opcodes are not handled here (they need memory state).
pub fn eval_pure(op: OpId, opcode: Opcode, args: &[Word]) -> Result<Word, InterpError> {
    use Opcode::*;
    let int = |w: Word| w.as_int().ok_or(InterpError::TypeMismatch { op, opcode });
    let float = |w: Word| w.as_float().ok_or(InterpError::TypeMismatch { op, opcode });
    let b2i = |b: bool| Word::I(b as i64);
    Ok(match opcode {
        IAdd => Word::I(int(args[0])?.wrapping_add(int(args[1])?)),
        ISub => Word::I(int(args[0])?.wrapping_sub(int(args[1])?)),
        INeg => Word::I(int(args[0])?.wrapping_neg()),
        IAbs => Word::I(int(args[0])?.wrapping_abs()),
        IMin => Word::I(int(args[0])?.min(int(args[1])?)),
        IMax => Word::I(int(args[0])?.max(int(args[1])?)),
        And => Word::I(int(args[0])? & int(args[1])?),
        Or => Word::I(int(args[0])? | int(args[1])?),
        Xor => Word::I(int(args[0])? ^ int(args[1])?),
        Not => Word::I(!int(args[0])?),
        Shl => Word::I(int(args[0])?.wrapping_shl(int(args[1])? as u32 & 63)),
        Shr => Word::I(((int(args[0])? as u64) >> (int(args[1])? as u32 & 63)) as i64),
        Sra => Word::I(int(args[0])? >> (int(args[1])? as u32 & 63)),
        ICmpEq => b2i(int(args[0])? == int(args[1])?),
        ICmpLt => b2i(int(args[0])? < int(args[1])?),
        ICmpLe => b2i(int(args[0])? <= int(args[1])?),
        Select => {
            if int(args[0])? != 0 {
                args[1]
            } else {
                args[2]
            }
        }
        ItoF => Word::F(int(args[0])? as f64),
        FtoI => Word::I(float(args[0])? as i64),
        IMul => Word::I(int(args[0])?.wrapping_mul(int(args[1])?)),
        IDiv => {
            let d = int(args[1])?;
            if d == 0 {
                return Err(InterpError::DivByZero { op });
            }
            Word::I(int(args[0])?.wrapping_div(d))
        }
        IRem => {
            let d = int(args[1])?;
            if d == 0 {
                return Err(InterpError::DivByZero { op });
            }
            Word::I(int(args[0])?.wrapping_rem(d))
        }
        FAdd => Word::F(float(args[0])? + float(args[1])?),
        FSub => Word::F(float(args[0])? - float(args[1])?),
        FNeg => Word::F(-float(args[0])?),
        FAbs => Word::F(float(args[0])?.abs()),
        FMin => Word::F(float(args[0])?.min(float(args[1])?)),
        FMax => Word::F(float(args[0])?.max(float(args[1])?)),
        FMul => Word::F(float(args[0])? * float(args[1])?),
        FDiv => Word::F(float(args[0])? / float(args[1])?),
        FSqrt => Word::F(float(args[0])?.sqrt()),
        FCmpEq => b2i(float(args[0])? == float(args[1])?),
        FCmpLt => b2i(float(args[0])? < float(args[1])?),
        FCmpLe => b2i(float(args[0])? <= float(args[1])?),
        Copy => args[0],
        // Permute: rotate the low 32 bits left by the control amount — a
        // simple but data-dependent stand-in for Imagine's permutation unit.
        Permute => {
            let v = int(args[0])? as u32;
            let c = int(args[1])? as u32 & 31;
            Word::I(v.rotate_left(c) as i64)
        }
        Load | Store | SpRead | SpWrite => {
            unreachable!("memory opcodes are handled by the interpreter loop")
        }
    })
}

/// Runs `kernel` for `trip` iterations of its loop block, mutating
/// `memory` in place.
///
/// # Errors
///
/// Propagates [`InterpError`] from any executed operation, including
/// violated `iteration_disjoint` region claims.
pub fn run(kernel: &Kernel, memory: &mut Memory, trip: u64) -> Result<InterpStats, InterpError> {
    let mut values: Vec<Option<Word>> = vec![None; kernel.num_values()];
    let mut stats = InterpStats::default();
    // region -> addr -> first iteration that touched it (u64::MAX = preamble)
    let mut region_touch: HashMap<(usize, i64), u64> = HashMap::new();

    let read_operand = |values: &[Option<Word>], operand: Operand| -> Word {
        match operand {
            Operand::Imm(i) => i.to_word(),
            Operand::Value(v) => values[v.index()]
                .unwrap_or_else(|| unreachable!("validated kernels define values before use")),
        }
    };

    let exec_block = |values: &mut Vec<Option<Word>>,
                      memory: &mut Memory,
                      stats: &mut InterpStats,
                      region_touch: &mut HashMap<(usize, i64), u64>,
                      block: crate::kernel::BlockId,
                      iteration: u64|
     -> Result<(), InterpError> {
        for &op_id in kernel.block(block).ops() {
            let op = kernel.op(op_id);
            let args: Vec<Word> = op
                .operands()
                .iter()
                .map(|&o| read_operand(values, o))
                .collect();
            stats.ops_executed += 1;
            let result: Option<Word> = match op.opcode() {
                Opcode::Load | Opcode::SpRead => {
                    let addr = mem_addr(&args, op_id, op.opcode())?;
                    let space = if op.opcode() == Opcode::Load {
                        stats.loads += 1;
                        &memory.main
                    } else {
                        &memory.scratch
                    };
                    let w = *space
                        .get(&addr)
                        .ok_or(InterpError::UninitializedLoad { op: op_id, addr })?;
                    touch_region(kernel, region_touch, op, addr, iteration)?;
                    Some(w)
                }
                Opcode::Store | Opcode::SpWrite => {
                    let addr = mem_addr(&args, op_id, op.opcode())?;
                    let space = if op.opcode() == Opcode::Store {
                        stats.stores += 1;
                        &mut memory.main
                    } else {
                        &mut memory.scratch
                    };
                    space.insert(addr, args[2]);
                    touch_region(kernel, region_touch, op, addr, iteration)?;
                    None
                }
                opcode => Some(eval_pure(op_id, opcode, &args)?),
            };
            if let (Some(v), Some(result_id)) = (result, op.result()) {
                values[result_id.index()] = Some(v);
            }
        }
        Ok(())
    };

    for block_id in kernel.block_ids() {
        let block = kernel.block(block_id);
        if !block.is_loop() {
            exec_block(
                &mut values,
                memory,
                &mut stats,
                &mut region_touch,
                block_id,
                u64::MAX,
            )?;
            continue;
        }
        // Loop block: initialize loop vars, run `trip` iterations, applying
        // updates at each iteration boundary.
        for lv in block.loop_vars() {
            values[lv.value().index()] = Some(read_operand(&values, lv.init()));
        }
        for iteration in 0..trip {
            exec_block(
                &mut values,
                memory,
                &mut stats,
                &mut region_touch,
                block_id,
                iteration,
            )?;
            let updated: Vec<Word> = block
                .loop_vars()
                .iter()
                .map(|lv| read_operand(&values, lv.update()))
                .collect();
            for (lv, w) in block.loop_vars().iter().zip(updated) {
                values[lv.value().index()] = Some(w);
            }
        }
    }
    Ok(stats)
}

/// Effective address of a memory operation: `base + offset`.
fn mem_addr(args: &[Word], op: crate::kernel::OpId, opcode: Opcode) -> Result<i64, InterpError> {
    let base = args[0]
        .as_int()
        .ok_or(InterpError::TypeMismatch { op, opcode })?;
    let offset = args[1]
        .as_int()
        .ok_or(InterpError::TypeMismatch { op, opcode })?;
    Ok(base.wrapping_add(offset))
}

fn touch_region(
    kernel: &Kernel,
    region_touch: &mut HashMap<(usize, i64), u64>,
    op: &crate::kernel::Operation,
    addr: i64,
    iteration: u64,
) -> Result<(), InterpError> {
    let Some(region) = op.region() else {
        return Ok(());
    };
    if !kernel.region(region).iteration_disjoint() || iteration == u64::MAX {
        return Ok(());
    }
    match region_touch.entry((region.index(), addr)) {
        std::collections::hash_map::Entry::Vacant(e) => {
            e.insert(iteration);
            Ok(())
        }
        std::collections::hash_map::Entry::Occupied(e) => {
            let first = *e.get();
            if first != iteration {
                Err(InterpError::RegionAliased {
                    region,
                    addr,
                    iterations: (first, iteration),
                })
            } else {
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelBuilder;

    #[test]
    fn eval_pure_full_opcode_sweep() {
        // Every pure opcode evaluates with representative operands and
        // returns the expected word kind.
        let op = OpId::from_raw(0);
        let i = Word::I(12);
        let j = Word::I(-5);
        let f = Word::F(2.25);
        let g = Word::F(-0.5);
        let cases: Vec<(Opcode, Vec<Word>, Word)> = vec![
            (Opcode::ISub, vec![i, j], Word::I(17)),
            (Opcode::INeg, vec![j], Word::I(5)),
            (Opcode::IAbs, vec![j], Word::I(5)),
            (Opcode::IMin, vec![i, j], Word::I(-5)),
            (Opcode::IMax, vec![i, j], Word::I(12)),
            (Opcode::And, vec![i, Word::I(10)], Word::I(8)),
            (Opcode::Or, vec![i, Word::I(1)], Word::I(13)),
            (Opcode::Xor, vec![i, i], Word::I(0)),
            (Opcode::Not, vec![Word::I(0)], Word::I(-1)),
            (Opcode::Shl, vec![Word::I(3), Word::I(2)], Word::I(12)),
            (Opcode::Shr, vec![Word::I(-1), Word::I(62)], Word::I(3)),
            (Opcode::Sra, vec![Word::I(-8), Word::I(2)], Word::I(-2)),
            (Opcode::ICmpEq, vec![i, i], Word::I(1)),
            (Opcode::ICmpLt, vec![j, i], Word::I(1)),
            (Opcode::ICmpLe, vec![i, i], Word::I(1)),
            (Opcode::ItoF, vec![Word::I(3)], Word::F(3.0)),
            (Opcode::FtoI, vec![Word::F(3.9)], Word::I(3)),
            (Opcode::IMul, vec![i, j], Word::I(-60)),
            (Opcode::IDiv, vec![i, j], Word::I(-2)),
            (Opcode::IRem, vec![i, Word::I(5)], Word::I(2)),
            (Opcode::FSub, vec![f, g], Word::F(2.75)),
            (Opcode::FNeg, vec![g], Word::F(0.5)),
            (Opcode::FAbs, vec![g], Word::F(0.5)),
            (Opcode::FMin, vec![f, g], Word::F(-0.5)),
            (Opcode::FMax, vec![f, g], Word::F(2.25)),
            (Opcode::FDiv, vec![f, Word::F(0.5)], Word::F(4.5)),
            (Opcode::FSqrt, vec![Word::F(6.25)], Word::F(2.5)),
            (Opcode::FCmpEq, vec![f, f], Word::I(1)),
            (Opcode::FCmpLt, vec![g, f], Word::I(1)),
            (Opcode::FCmpLe, vec![f, f], Word::I(1)),
            (Opcode::FAdd, vec![f, g], Word::F(1.75)),
            (Opcode::Copy, vec![i], Word::I(12)),
            (
                Opcode::Select,
                vec![Word::I(1), Word::I(7), Word::I(9)],
                Word::I(7),
            ),
        ];
        for (opcode, args, want) in cases {
            let got = eval_pure(op, opcode, &args).unwrap_or_else(|e| panic!("{opcode}: {e}"));
            assert!(got.bit_eq(want), "{opcode}: got {got}, want {want}");
        }
        assert!(matches!(
            eval_pure(op, Opcode::IRem, &[Word::I(1), Word::I(0)]),
            Err(InterpError::DivByZero { .. })
        ));
    }

    #[test]
    fn eval_pure_arithmetic() {
        let op = OpId::from_raw(0);
        assert_eq!(
            eval_pure(op, Opcode::IAdd, &[Word::I(2), Word::I(3)]).unwrap(),
            Word::I(5)
        );
        assert_eq!(
            eval_pure(op, Opcode::FMul, &[Word::F(2.0), Word::F(4.0)]).unwrap(),
            Word::F(8.0)
        );
        assert_eq!(
            eval_pure(op, Opcode::Select, &[Word::I(0), Word::I(1), Word::I(2)]).unwrap(),
            Word::I(2)
        );
        assert_eq!(
            eval_pure(op, Opcode::Permute, &[Word::I(1), Word::I(1)]).unwrap(),
            Word::I(2)
        );
        assert!(matches!(
            eval_pure(op, Opcode::IDiv, &[Word::I(1), Word::I(0)]),
            Err(InterpError::DivByZero { .. })
        ));
        assert!(matches!(
            eval_pure(op, Opcode::IAdd, &[Word::F(1.0), Word::I(0)]),
            Err(InterpError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn runs_streaming_loop() {
        // out[i] = in[i] * 2 for 8 iterations.
        let mut kb = KernelBuilder::new("double");
        let input = kb.region("in", true);
        let output = kb.region("out", true);
        let lp = kb.loop_block("body");
        let i = kb.loop_var(lp, 0i64.into());
        let x = kb.load(lp, input, i.into(), 0i64.into());
        let y = kb.push(lp, Opcode::IMul, [x.into(), 2i64.into()]);
        kb.store(lp, output, i.into(), 100i64.into(), y.into());
        let i1 = kb.push(lp, Opcode::IAdd, [i.into(), 1i64.into()]);
        kb.set_update(i, i1.into());
        let k = kb.build().unwrap();

        let mut mem = Memory::new();
        mem.write_block(0, (0..8).map(Word::I));
        let stats = run(&k, &mut mem, 8).unwrap();
        assert_eq!(stats.loads, 8);
        assert_eq!(stats.stores, 8);
        assert_eq!(stats.ops_executed, 4 * 8);
        let out = mem.read_block(100, 8);
        for (i, w) in out.iter().enumerate() {
            assert_eq!(*w, Word::I(2 * i as i64));
        }
    }

    #[test]
    fn accumulator_semantics() {
        // sum of in[0..4] as floats.
        let mut kb = KernelBuilder::new("sum");
        let input = kb.region("in", true);
        let out = kb.region("out", true);
        let pre = kb.straight_block("pre");
        let zero = kb.push(pre, Opcode::ItoF, [Operand::from(0i64)]);
        let lp = kb.loop_block("body");
        let i = kb.loop_var(lp, 0i64.into());
        let acc = kb.loop_var(lp, zero.into());
        let x = kb.load(lp, input, i.into(), 0i64.into());
        let acc1 = kb.push(lp, Opcode::FAdd, [acc.into(), x.into()]);
        let i1 = kb.push(lp, Opcode::IAdd, [i.into(), 1i64.into()]);
        kb.set_update(acc, acc1.into());
        kb.set_update(i, i1.into());
        // Store the running sum each iteration to observe it.
        kb.store(lp, out, i.into(), 0i64.into(), acc1.into());
        let k = kb.build().unwrap();

        let mut mem = Memory::new();
        mem.write_block(0, [1.0, 2.0, 3.0, 4.0].map(Word::F));
        run(&k, &mut mem, 4).unwrap();
        assert_eq!(mem.main[&3], Word::F(10.0));
        assert_eq!(mem.main[&0], Word::F(1.0));
    }

    #[test]
    fn uninitialized_load_is_an_error() {
        let mut kb = KernelBuilder::new("uninit");
        let input = kb.region("in", true);
        let b = kb.straight_block("b");
        kb.load(b, input, Operand::from(42i64), 0i64.into());
        let k = kb.build().unwrap();
        let mut mem = Memory::new();
        assert!(matches!(
            run(&k, &mut mem, 0),
            Err(InterpError::UninitializedLoad { addr: 42, .. })
        ));
    }

    #[test]
    fn detects_region_alias_violation() {
        // Claims iteration-disjoint but stores to address 7 every iteration.
        let mut kb = KernelBuilder::new("alias");
        let out = kb.region("out", true);
        let lp = kb.loop_block("body");
        let i = kb.loop_var(lp, 0i64.into());
        kb.store(lp, out, 7i64.into(), 0i64.into(), i.into());
        let i1 = kb.push(lp, Opcode::IAdd, [i.into(), 1i64.into()]);
        kb.set_update(i, i1.into());
        let k = kb.build().unwrap();
        let mut mem = Memory::new();
        assert!(matches!(
            run(&k, &mut mem, 2),
            Err(InterpError::RegionAliased { addr: 7, .. })
        ));
    }

    #[test]
    fn scratchpad_round_trip() {
        let mut kb = KernelBuilder::new("sp");
        let sp = kb.region("sp", false);
        let b = kb.straight_block("b");
        kb.push_mem(
            b,
            Opcode::SpWrite,
            [Operand::from(3i64), 0i64.into(), 9i64.into()],
            sp,
        );
        let (_, v) = kb.push_mem(b, Opcode::SpRead, [Operand::from(3i64), 0i64.into()], sp);
        let out = kb.region("out", true);
        kb.store(b, out, 0i64.into(), 0i64.into(), v.unwrap().into());
        let k = kb.build().unwrap();
        let mut mem = Memory::new();
        run(&k, &mut mem, 0).unwrap();
        assert_eq!(mem.main[&0], Word::I(9));
        assert_eq!(mem.scratch[&3], Word::I(9));
    }
}
