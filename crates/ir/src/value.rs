//! Runtime values and immediates.

use core::fmt;

/// A runtime word: the machine is word-oriented, with integer and
/// floating-point interpretations (the paper's kernels mix 16-bit
/// fixed-point and single-precision floating point; we model both on wide
/// types since bit-width does not affect scheduling).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Word {
    /// An integer word.
    I(i64),
    /// A floating-point word.
    F(f64),
}

impl Word {
    /// The integer interpretation.
    ///
    /// # Errors
    ///
    /// Returns `None` for floating-point words.
    pub fn as_int(self) -> Option<i64> {
        match self {
            Word::I(v) => Some(v),
            Word::F(_) => None,
        }
    }

    /// The floating-point interpretation.
    ///
    /// # Errors
    ///
    /// Returns `None` for integer words.
    pub fn as_float(self) -> Option<f64> {
        match self {
            Word::F(v) => Some(v),
            Word::I(_) => None,
        }
    }

    /// Whether two words are equal, treating NaN as equal to NaN (used by
    /// differential tests between the interpreter and the simulator).
    pub fn bit_eq(self, other: Word) -> bool {
        match (self, other) {
            (Word::I(a), Word::I(b)) => a == b,
            (Word::F(a), Word::F(b)) => a.to_bits() == b.to_bits(),
            _ => false,
        }
    }
}

impl fmt::Display for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Word::I(v) => write!(f, "{v}"),
            Word::F(v) => write!(f, "{v:?}"),
        }
    }
}

impl From<i64> for Word {
    fn from(v: i64) -> Self {
        Word::I(v)
    }
}

impl From<f64> for Word {
    fn from(v: f64) -> Self {
        Word::F(v)
    }
}

/// A compile-time immediate operand.
///
/// Immediates are encoded in the instruction word and consume no
/// interconnect: operands that are immediates need no read stub.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Imm {
    /// Integer immediate.
    Int(i64),
    /// Floating-point immediate.
    Float(f64),
}

impl Imm {
    /// The immediate as a runtime word.
    pub fn to_word(self) -> Word {
        match self {
            Imm::Int(v) => Word::I(v),
            Imm::Float(v) => Word::F(v),
        }
    }
}

impl fmt::Display for Imm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Imm::Int(v) => write!(f, "{v}"),
            Imm::Float(v) => write!(f, "{v:?}"),
        }
    }
}

impl From<i64> for Imm {
    fn from(v: i64) -> Self {
        Imm::Int(v)
    }
}

impl From<f64> for Imm {
    fn from(v: f64) -> Self {
        Imm::Float(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Word::from(3i64).as_int(), Some(3));
        assert_eq!(Word::from(2.5f64).as_float(), Some(2.5));
        assert_eq!(Word::from(3i64).as_float(), None);
        assert_eq!(Imm::from(7i64).to_word(), Word::I(7));
    }

    #[test]
    fn bit_eq_handles_nan() {
        let nan = Word::F(f64::NAN);
        assert!(nan.bit_eq(nan));
        assert_ne!(nan, nan); // PartialEq follows IEEE
        assert!(!Word::I(1).bit_eq(Word::F(1.0)));
    }

    #[test]
    fn display() {
        assert_eq!(Word::I(-4).to_string(), "-4");
        assert_eq!(Imm::Float(1.0).to_string(), "1.0");
    }
}
