//! # csched-ir — kernel IR for communication scheduling
//!
//! The compiler IR consumed by the communication scheduler: SSA-form
//! kernels shaped like the paper's evaluation programs ("a short preamble
//! followed by a single software-pipelined loop"), a dependence graph with
//! loop-carried distances, a reference interpreter used as the semantic
//! oracle for the cycle-level simulator, a loop unroller (for the `-U2` /
//! `-U4` kernel variants), and a textual kernel language.
//!
//! ## Quick start
//!
//! ```
//! use csched_ir::{KernelBuilder, DepGraph, interp};
//! use csched_machine::{Opcode, default_latency};
//!
//! // out[i] = in[i] + 1
//! let mut kb = KernelBuilder::new("inc");
//! let input = kb.region("in", true);
//! let output = kb.region("out", true);
//! let lp = kb.loop_block("body");
//! let i = kb.loop_var(lp, 0i64.into());
//! let x = kb.load(lp, input, i.into(), 0i64.into());
//! let y = kb.push(lp, Opcode::IAdd, [x.into(), 1i64.into()]);
//! kb.store(lp, output, i.into(), 0i64.into(), y.into());
//! let i1 = kb.push(lp, Opcode::IAdd, [i.into(), 1i64.into()]);
//! kb.set_update(i, i1.into());
//! let kernel = kb.build()?;
//!
//! let graph = DepGraph::build(&kernel, default_latency);
//! assert_eq!(graph.rec_mii(&kernel), 1);
//! # Ok::<(), csched_ir::KernelError>(())
//! ```

#![warn(missing_docs)]
// Kernel construction and interpretation must be panic-free on
// well-formed inputs: outside of test code, checked invariants use
// `unreachable!` with a message and everything else returns typed
// errors. The one documented exception (`KernelBuilder::set_update`)
// carries a targeted allow.
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]
#![warn(missing_debug_implementations)]

mod depgraph;
pub mod interp;
mod kernel;
pub mod opt;
pub mod text;
mod unroll;
mod value;

pub use depgraph::{resolve_producers, DepEdge, DepGraph, DepKind};
pub use interp::{InterpError, InterpStats, Memory};
pub use kernel::{
    BasicBlock, BlockId, Kernel, KernelBuilder, KernelError, LoopVar, MemRegion, OpId, Operand,
    Operation, RegionId, ValueDef, ValueId,
};
pub use unroll::unroll;
pub use value::{Imm, Word};
