//! Kernels: the compiler IR that communication scheduling consumes.
//!
//! A kernel follows the structure of the paper's evaluation programs
//! (§5, Table 1): "a short preamble followed by a single
//! software-pipelined loop". It is a sequence of straight-line basic
//! blocks, optionally ending in one loop block. Values are in SSA form;
//! the only join points are *loop variables* (phi-like values carried
//! around the loop), which is exactly the "operation could use one of
//! several results ... due to different control flows" case of the paper's
//! communication definition (§3).

use core::fmt;
use std::collections::HashMap;

use csched_machine::Opcode;

use crate::value::Imm;

macro_rules! ir_id {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// Creates an id from a raw dense index.
            pub fn from_raw(index: usize) -> Self {
                Self(index as u32)
            }

            /// The raw dense index.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

ir_id!(
    /// Identifies an operation within a kernel.
    OpId,
    "op"
);
ir_id!(
    /// Identifies an SSA value within a kernel.
    ValueId,
    "v"
);
ir_id!(
    /// Identifies a basic block within a kernel.
    BlockId,
    "bb"
);
ir_id!(
    /// Identifies a memory region (used for alias information).
    RegionId,
    "region"
);

/// An operand of an operation: either an SSA value (which requires a
/// communication and a read stub) or an immediate (encoded in the
/// instruction, consuming no interconnect).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Operand {
    /// A value produced by another operation or a loop variable.
    Value(ValueId),
    /// An immediate.
    Imm(Imm),
}

impl Operand {
    /// The value id, if the operand is a value.
    pub fn as_value(self) -> Option<ValueId> {
        match self {
            Operand::Value(v) => Some(v),
            Operand::Imm(_) => None,
        }
    }
}

impl From<ValueId> for Operand {
    fn from(v: ValueId) -> Self {
        Operand::Value(v)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Self {
        Operand::Imm(Imm::Int(v))
    }
}

impl From<f64> for Operand {
    fn from(v: f64) -> Self {
        Operand::Imm(Imm::Float(v))
    }
}

impl From<Imm> for Operand {
    fn from(v: Imm) -> Self {
        Operand::Imm(v)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Value(v) => write!(f, "{v}"),
            Operand::Imm(i) => write!(f, "{i}"),
        }
    }
}

/// One operation of a kernel.
#[derive(Clone, Debug)]
pub struct Operation {
    pub(crate) opcode: Opcode,
    pub(crate) operands: Vec<Operand>,
    pub(crate) result: Option<ValueId>,
    pub(crate) block: BlockId,
    pub(crate) region: Option<RegionId>,
}

impl Operation {
    /// The operation's opcode.
    pub fn opcode(&self) -> Opcode {
        self.opcode
    }

    /// The operands in slot order.
    pub fn operands(&self) -> &[Operand] {
        &self.operands
    }

    /// The result value, if the opcode produces one.
    pub fn result(&self) -> Option<ValueId> {
        self.result
    }

    /// The containing block.
    pub fn block(&self) -> BlockId {
        self.block
    }

    /// The memory region accessed, for memory and scratchpad operations.
    pub fn region(&self) -> Option<RegionId> {
        self.region
    }
}

/// A value carried around the loop: reads of [`LoopVar::value`] see `init`
/// on the first iteration and the previous iteration's `update` afterwards.
#[derive(Clone, Debug)]
pub struct LoopVar {
    pub(crate) value: ValueId,
    pub(crate) init: Operand,
    pub(crate) update: Operand,
}

impl LoopVar {
    /// The phi-like value read inside the loop.
    pub fn value(&self) -> ValueId {
        self.value
    }

    /// The value before the first iteration (an immediate or a value from a
    /// preceding straight-line block).
    pub fn init(&self) -> Operand {
        self.init
    }

    /// The value at the end of each iteration.
    pub fn update(&self) -> Operand {
        self.update
    }
}

/// A basic block: straight-line code, or the kernel's single loop.
#[derive(Clone, Debug)]
pub struct BasicBlock {
    pub(crate) name: String,
    pub(crate) ops: Vec<OpId>,
    pub(crate) is_loop: bool,
    pub(crate) loop_vars: Vec<LoopVar>,
}

impl BasicBlock {
    /// The block's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The block's operations in program order.
    pub fn ops(&self) -> &[OpId] {
        &self.ops
    }

    /// Whether the block is the kernel's software-pipelined loop.
    pub fn is_loop(&self) -> bool {
        self.is_loop
    }

    /// The block's loop-carried variables (empty for straight-line blocks).
    pub fn loop_vars(&self) -> &[LoopVar] {
        &self.loop_vars
    }
}

/// Alias information for a set of memory addresses.
#[derive(Clone, Debug)]
pub struct MemRegion {
    pub(crate) name: String,
    pub(crate) iteration_disjoint: bool,
}

impl MemRegion {
    /// The region's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether distinct loop iterations are guaranteed to access disjoint
    /// addresses within this region (true for streaming input/output
    /// regions), eliminating loop-carried memory dependences.
    pub fn iteration_disjoint(&self) -> bool {
        self.iteration_disjoint
    }
}

/// What defines a value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ValueDef {
    /// The result of an operation.
    Op(OpId),
    /// A loop variable of a block (the `usize` indexes
    /// [`BasicBlock::loop_vars`]).
    LoopVar(BlockId, usize),
}

/// Errors detected while building or validating a kernel.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum KernelError {
    /// Wrong number of operands for the opcode.
    Arity {
        /// The offending operation.
        op: OpId,
        /// Its opcode.
        opcode: Opcode,
        /// Operand count supplied.
        got: usize,
    },
    /// A memory or scratchpad operation without a region tag.
    MissingRegion {
        /// The offending operation.
        op: OpId,
    },
    /// Use of a value that is not visible at the use site (defined later in
    /// the same block, or in a later block).
    UseBeforeDef {
        /// The using operation.
        op: OpId,
        /// The value used.
        value: ValueId,
    },
    /// A loop variable's update operand was never set, or names a value not
    /// defined in the loop body or another loop variable.
    BadLoopUpdate {
        /// The loop variable's value.
        value: ValueId,
    },
    /// A loop variable's init operand must be an immediate or a value from
    /// a straight-line block.
    BadLoopInit {
        /// The loop variable's value.
        value: ValueId,
    },
    /// More than one loop block, or a loop block that is not last.
    BadLoopStructure,
    /// The kernel has no operations.
    Empty,
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::Arity { op, opcode, got } => {
                write!(
                    f,
                    "{op}: {opcode} takes {} operands, got {got}",
                    opcode.num_operands()
                )
            }
            KernelError::MissingRegion { op } => {
                write!(f, "{op}: memory operation without a region tag")
            }
            KernelError::UseBeforeDef { op, value } => {
                write!(f, "{op}: {value} is not visible here")
            }
            KernelError::BadLoopUpdate { value } => {
                write!(f, "loop variable {value} has an invalid update")
            }
            KernelError::BadLoopInit { value } => {
                write!(f, "loop variable {value} has an invalid init")
            }
            KernelError::BadLoopStructure => {
                write!(
                    f,
                    "kernel must be straight-line blocks then at most one loop block"
                )
            }
            KernelError::Empty => write!(f, "kernel has no operations"),
        }
    }
}

impl std::error::Error for KernelError {}

/// A complete, validated kernel.
///
/// Build one with [`KernelBuilder`].
#[derive(Clone, Debug)]
pub struct Kernel {
    pub(crate) name: String,
    pub(crate) description: String,
    pub(crate) ops: Vec<Operation>,
    pub(crate) value_defs: Vec<ValueDef>,
    pub(crate) value_names: Vec<Option<String>>,
    pub(crate) blocks: Vec<BasicBlock>,
    pub(crate) regions: Vec<MemRegion>,
}

impl Kernel {
    /// The kernel's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// A one-line description (Table 1 of the paper).
    pub fn description(&self) -> &str {
        &self.description
    }

    /// Renames the kernel (used after transformations like unrolling to
    /// restore the paper's kernel names).
    pub fn set_name(&mut self, name: impl Into<String>, description: impl Into<String>) {
        self.name = name.into();
        self.description = description.into();
    }

    /// Number of operations.
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Number of values.
    pub fn num_values(&self) -> usize {
        self.value_defs.len()
    }

    /// The operation `op`.
    ///
    /// # Panics
    ///
    /// Panics if `op` is out of range.
    pub fn op(&self, op: OpId) -> &Operation {
        &self.ops[op.index()]
    }

    /// The block `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    pub fn block(&self, block: BlockId) -> &BasicBlock {
        &self.blocks[block.index()]
    }

    /// The region `region`.
    ///
    /// # Panics
    ///
    /// Panics if `region` is out of range.
    pub fn region(&self, region: RegionId) -> &MemRegion {
        &self.regions[region.index()]
    }

    /// All blocks in execution order.
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// All regions.
    pub fn regions(&self) -> &[MemRegion] {
        &self.regions
    }

    /// Iterates over all block ids in execution order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        (0..self.blocks.len()).map(BlockId::from_raw)
    }

    /// Iterates over all operation ids.
    pub fn op_ids(&self) -> impl Iterator<Item = OpId> + '_ {
        (0..self.ops.len()).map(OpId::from_raw)
    }

    /// What defines `value`.
    ///
    /// # Panics
    ///
    /// Panics if `value` is out of range.
    pub fn value_def(&self, value: ValueId) -> ValueDef {
        self.value_defs[value.index()]
    }

    /// The diagnostic name attached to `value`, if any.
    pub fn value_name(&self, value: ValueId) -> Option<&str> {
        self.value_names[value.index()].as_deref()
    }

    /// The kernel's loop block, if it has one.
    pub fn loop_block(&self) -> Option<BlockId> {
        self.block_ids().find(|&b| self.block(b).is_loop())
    }

    /// All `(op, slot)` uses of `value`, plus loop-variable uses reported
    /// as updates/inits (see [`Kernel::loop_var_uses`]).
    pub fn uses(&self, value: ValueId) -> Vec<(OpId, usize)> {
        let mut uses = Vec::new();
        for op in self.op_ids() {
            for (slot, operand) in self.op(op).operands().iter().enumerate() {
                if operand.as_value() == Some(value) {
                    uses.push((op, slot));
                }
            }
        }
        uses
    }

    /// Loop variables whose `init` or `update` operand is `value`, as
    /// `(block, var index, is_update)`.
    pub fn loop_var_uses(&self, value: ValueId) -> Vec<(BlockId, usize, bool)> {
        let mut uses = Vec::new();
        for b in self.block_ids() {
            for (i, lv) in self.block(b).loop_vars().iter().enumerate() {
                if lv.init.as_value() == Some(value) {
                    uses.push((b, i, false));
                }
                if lv.update.as_value() == Some(value) {
                    uses.push((b, i, true));
                }
            }
        }
        uses
    }

    /// Counts operations by opcode (used by the Table 1 report).
    pub fn opcode_histogram(&self) -> HashMap<Opcode, usize> {
        let mut h = HashMap::new();
        for op in &self.ops {
            *h.entry(op.opcode()).or_insert(0) += 1;
        }
        h
    }

    /// Operations of the loop block (empty if there is no loop).
    pub fn loop_ops(&self) -> &[OpId] {
        match self.loop_block() {
            Some(b) => self.block(b).ops(),
            None => &[],
        }
    }
}

/// Incrementally builds a [`Kernel`].
///
/// # Examples
///
/// ```
/// use csched_ir::{KernelBuilder, Operand};
/// use csched_machine::Opcode;
///
/// let mut kb = KernelBuilder::new("axpy-ish");
/// let data = kb.region("data", true);
/// let lp = kb.loop_block("body");
/// let i = kb.loop_var(lp, 0i64.into());
/// let x = kb.load(lp, data, i.into(), 0i64.into());
/// let y = kb.push(lp, Opcode::IAdd, [x.into(), Operand::from(10i64)]);
/// kb.store(lp, data, Operand::from(100i64), 0i64.into(), y.into());
/// let i1 = kb.push(lp, Opcode::IAdd, [i.into(), 1i64.into()]);
/// kb.set_update(i, i1.into());
/// let kernel = kb.build()?;
/// assert_eq!(kernel.num_ops(), 4);
/// # Ok::<(), csched_ir::KernelError>(())
/// ```
#[derive(Debug)]
pub struct KernelBuilder {
    name: String,
    description: String,
    ops: Vec<Operation>,
    value_defs: Vec<ValueDef>,
    value_names: Vec<Option<String>>,
    blocks: Vec<BasicBlock>,
    regions: Vec<MemRegion>,
}

impl KernelBuilder {
    /// Starts a new kernel.
    pub fn new(name: impl Into<String>) -> Self {
        KernelBuilder {
            name: name.into(),
            description: String::new(),
            ops: Vec::new(),
            value_defs: Vec::new(),
            value_names: Vec::new(),
            blocks: Vec::new(),
            regions: Vec::new(),
        }
    }

    /// Sets the kernel's one-line description.
    pub fn description(&mut self, text: impl Into<String>) -> &mut Self {
        self.description = text.into();
        self
    }

    /// Declares a memory region; `iteration_disjoint` asserts that distinct
    /// loop iterations access disjoint addresses in it.
    pub fn region(&mut self, name: impl Into<String>, iteration_disjoint: bool) -> RegionId {
        let id = RegionId::from_raw(self.regions.len());
        self.regions.push(MemRegion {
            name: name.into(),
            iteration_disjoint,
        });
        id
    }

    /// Adds a straight-line block.
    pub fn straight_block(&mut self, name: impl Into<String>) -> BlockId {
        let id = BlockId::from_raw(self.blocks.len());
        self.blocks.push(BasicBlock {
            name: name.into(),
            ops: Vec::new(),
            is_loop: false,
            loop_vars: Vec::new(),
        });
        id
    }

    /// Adds the loop block (must be the last block added).
    pub fn loop_block(&mut self, name: impl Into<String>) -> BlockId {
        let id = BlockId::from_raw(self.blocks.len());
        self.blocks.push(BasicBlock {
            name: name.into(),
            ops: Vec::new(),
            is_loop: true,
            loop_vars: Vec::new(),
        });
        id
    }

    fn fresh_value(&mut self, def: ValueDef) -> ValueId {
        let id = ValueId::from_raw(self.value_defs.len());
        self.value_defs.push(def);
        self.value_names.push(None);
        id
    }

    fn push_raw(
        &mut self,
        block: BlockId,
        opcode: Opcode,
        operands: Vec<Operand>,
        region: Option<RegionId>,
    ) -> (OpId, Option<ValueId>) {
        let id = OpId::from_raw(self.ops.len());
        let result = opcode
            .has_result()
            .then(|| self.fresh_value(ValueDef::Op(id)));
        self.ops.push(Operation {
            opcode,
            operands,
            result,
            block,
            region,
        });
        self.blocks[block.index()].ops.push(id);
        (id, result)
    }

    /// Appends a pure, result-producing operation and returns its value.
    ///
    /// # Panics
    ///
    /// Panics if `opcode` produces no result or is a memory/scratchpad
    /// operation (use [`KernelBuilder::load`] / [`KernelBuilder::store`] /
    /// [`KernelBuilder::push_mem`]).
    pub fn push(
        &mut self,
        block: BlockId,
        opcode: Opcode,
        operands: impl IntoIterator<Item = Operand>,
    ) -> ValueId {
        assert!(opcode.has_result(), "{opcode} has no result; use push_mem");
        assert!(
            opcode.is_pure(),
            "{opcode} accesses memory; use push_mem/load/store"
        );
        let (_, result) = self.push_raw(block, opcode, operands.into_iter().collect(), None);
        result.unwrap_or_else(|| unreachable!("checked has_result above"))
    }

    /// Appends a memory or scratchpad operation tagged with `region`.
    pub fn push_mem(
        &mut self,
        block: BlockId,
        opcode: Opcode,
        operands: impl IntoIterator<Item = Operand>,
        region: RegionId,
    ) -> (OpId, Option<ValueId>) {
        assert!(
            opcode.is_memory() || opcode.is_scratchpad(),
            "{opcode} is not a memory operation"
        );
        self.push_raw(block, opcode, operands.into_iter().collect(), Some(region))
    }

    /// Appends a load from `region` at `base + offset`.
    pub fn load(
        &mut self,
        block: BlockId,
        region: RegionId,
        base: Operand,
        offset: Operand,
    ) -> ValueId {
        self.push_mem(block, Opcode::Load, [base, offset], region)
            .1
            .unwrap_or_else(|| unreachable!("loads produce results"))
    }

    /// Appends a store to `region`: `mem[base + offset] = value`.
    pub fn store(
        &mut self,
        block: BlockId,
        region: RegionId,
        base: Operand,
        offset: Operand,
        value: Operand,
    ) -> OpId {
        self.push_mem(block, Opcode::Store, [base, offset, value], region)
            .0
    }

    /// Declares a loop-carried variable of `block` with initial value
    /// `init`; set its per-iteration update with
    /// [`KernelBuilder::set_update`].
    pub fn loop_var(&mut self, block: BlockId, init: Operand) -> ValueId {
        let idx = self.blocks[block.index()].loop_vars.len();
        let value = self.fresh_value(ValueDef::LoopVar(block, idx));
        self.blocks[block.index()].loop_vars.push(LoopVar {
            value,
            init,
            update: init, // placeholder until set_update; validated in build
        });
        value
    }

    /// Sets the end-of-iteration update of loop variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is not a loop variable.
    // Documented builder contract: passing a non-loop-variable is a
    // caller bug caught at construction time, not a recoverable state.
    #[allow(clippy::panic)]
    pub fn set_update(&mut self, var: ValueId, update: Operand) {
        match self.value_defs[var.index()] {
            ValueDef::LoopVar(block, idx) => {
                self.blocks[block.index()].loop_vars[idx].update = update;
            }
            ValueDef::Op(_) => panic!("{var} is not a loop variable"),
        }
    }

    /// Attaches a diagnostic name to `value`.
    pub fn name_value(&mut self, value: ValueId, name: impl Into<String>) {
        self.value_names[value.index()] = Some(name.into());
    }

    /// Validates and builds the kernel.
    ///
    /// # Errors
    ///
    /// Returns the first [`KernelError`] found: arity mismatches, missing
    /// region tags, use-before-def, malformed loop variables, or a bad
    /// block structure.
    pub fn build(self) -> Result<Kernel, KernelError> {
        let kernel = Kernel {
            name: self.name,
            description: self.description,
            ops: self.ops,
            value_defs: self.value_defs,
            value_names: self.value_names,
            blocks: self.blocks,
            regions: self.regions,
        };
        kernel.validate()?;
        Ok(kernel)
    }
}

impl Kernel {
    /// Validates the structural invariants described on [`KernelError`].
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<(), KernelError> {
        if self.ops.is_empty() {
            return Err(KernelError::Empty);
        }
        // Loop structure: at most one loop block and it must be last.
        let loops: Vec<_> = self
            .block_ids()
            .filter(|&b| self.block(b).is_loop())
            .collect();
        if loops.len() > 1 {
            return Err(KernelError::BadLoopStructure);
        }
        if let Some(&lb) = loops.first() {
            if lb.index() + 1 != self.blocks.len() {
                return Err(KernelError::BadLoopStructure);
            }
        }
        for b in self.block_ids() {
            if !self.block(b).is_loop() && !self.block(b).loop_vars.is_empty() {
                return Err(KernelError::BadLoopStructure);
            }
        }

        // Visibility: position of each op-defined value.
        // A value is visible to op `o` in block `bo` at position `po` if it
        // is a loop var of `bo`, or defined by an op in an earlier block,
        // or defined earlier in `bo`.
        let mut op_pos: HashMap<OpId, (BlockId, usize)> = HashMap::new();
        for b in self.block_ids() {
            for (i, &op) in self.block(b).ops().iter().enumerate() {
                op_pos.insert(op, (b, i));
            }
        }
        let visible = |value: ValueId, at_block: BlockId, at_pos: usize| -> bool {
            match self.value_def(value) {
                ValueDef::LoopVar(b, _) => b == at_block,
                ValueDef::Op(def_op) => {
                    let (db, dp) = op_pos[&def_op];
                    db.index() < at_block.index() || (db == at_block && dp < at_pos)
                }
            }
        };

        for op_id in self.op_ids() {
            let op = self.op(op_id);
            if op.operands().len() != op.opcode().num_operands() {
                return Err(KernelError::Arity {
                    op: op_id,
                    opcode: op.opcode(),
                    got: op.operands().len(),
                });
            }
            if (op.opcode().is_memory() || op.opcode().is_scratchpad()) && op.region().is_none() {
                return Err(KernelError::MissingRegion { op: op_id });
            }
            let (b, p) = op_pos[&op_id];
            for operand in op.operands() {
                if let Some(v) = operand.as_value() {
                    if !visible(v, b, p) {
                        return Err(KernelError::UseBeforeDef {
                            op: op_id,
                            value: v,
                        });
                    }
                }
            }
        }

        // Loop variables: init must be imm or pre-loop value; update must be
        // imm, a value defined in the loop body, or another loop var of the
        // same block.
        for b in self.block_ids() {
            let block = self.block(b);
            for lv in block.loop_vars() {
                if let Some(v) = lv.init.as_value() {
                    let ok = match self.value_def(v) {
                        ValueDef::Op(def_op) => op_pos[&def_op].0.index() < b.index(),
                        ValueDef::LoopVar(..) => false,
                    };
                    if !ok {
                        return Err(KernelError::BadLoopInit { value: lv.value });
                    }
                }
                match lv.update.as_value() {
                    // The update must be the result of an operation in the
                    // loop body. Chaining to another loop variable would
                    // make intermediate iterations read values no
                    // communication ever routes, and an immediate update
                    // would make the operand read an immediate on some
                    // iterations and a register on others — neither is
                    // expressible with a single read stub.
                    Some(v) => {
                        let ok = match self.value_def(v) {
                            ValueDef::Op(def_op) => op_pos[&def_op].0 == b,
                            ValueDef::LoopVar(..) => false,
                        };
                        if !ok {
                            return Err(KernelError::BadLoopUpdate { value: lv.value });
                        }
                    }
                    None => return Err(KernelError::BadLoopUpdate { value: lv.value }),
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_loop() -> Kernel {
        let mut kb = KernelBuilder::new("simple");
        let data = kb.region("data", true);
        let out = kb.region("out", true);
        let pre = kb.straight_block("pre");
        let base = kb.push(pre, Opcode::IAdd, [Operand::from(0i64), 0i64.into()]);
        let lp = kb.loop_block("body");
        let i = kb.loop_var(lp, base.into());
        kb.name_value(i, "i");
        let x = kb.load(lp, data, i.into(), 0i64.into());
        let y = kb.push(lp, Opcode::IAdd, [x.into(), 5i64.into()]);
        kb.store(lp, out, i.into(), 0i64.into(), y.into());
        let i1 = kb.push(lp, Opcode::IAdd, [i.into(), 1i64.into()]);
        kb.set_update(i, i1.into());
        kb.build().unwrap()
    }

    #[test]
    fn builder_produces_expected_shape() {
        let k = simple_loop();
        assert_eq!(k.num_ops(), 5);
        assert_eq!(k.blocks().len(), 2);
        let lb = k.loop_block().unwrap();
        assert_eq!(k.block(lb).ops().len(), 4);
        assert_eq!(k.block(lb).loop_vars().len(), 1);
        assert_eq!(k.value_name(k.block(lb).loop_vars()[0].value()), Some("i"));
    }

    #[test]
    fn uses_and_defs() {
        let k = simple_loop();
        let lb = k.loop_block().unwrap();
        let i = k.block(lb).loop_vars()[0].value();
        let uses = k.uses(i);
        assert_eq!(uses.len(), 3); // load addr, store addr, increment
        assert_eq!(k.value_def(i), ValueDef::LoopVar(lb, 0));
        // the increment's result is used as the loop update
        let i1 = k.block(lb).loop_vars()[0].update().as_value().unwrap();
        assert_eq!(k.loop_var_uses(i1), vec![(lb, 0, true)]);
    }

    #[test]
    fn rejects_missing_region() {
        // Bypass builder convenience by constructing a raw op via push_mem
        // with the wrong opcode is impossible; instead check arity error.
        let mut kb = KernelBuilder::new("bad");
        let b = kb.straight_block("b");
        // Build an op with wrong arity by using push_raw through push:
        // IAdd with 2 operands is fine; force arity error via direct kernel
        // construction instead.
        let v = kb.push(b, Opcode::IAdd, [Operand::from(1i64), 2i64.into()]);
        let mut k = kb.build().unwrap();
        k.ops[0].operands.pop();
        assert!(matches!(k.validate(), Err(KernelError::Arity { .. })));
        let _ = v;
    }

    #[test]
    fn rejects_use_before_def() {
        let mut kb = KernelBuilder::new("bad");
        let b = kb.straight_block("b");
        let v1 = kb.push(b, Opcode::IAdd, [Operand::from(1i64), 1i64.into()]);
        let v2 = kb.push(b, Opcode::IAdd, [v1.into(), 1i64.into()]);
        let mut k = kb.build().unwrap();
        // Swap the two ops in program order: now op0 uses op1's result.
        k.blocks[0].ops.swap(0, 1);
        assert!(matches!(
            k.validate(),
            Err(KernelError::UseBeforeDef { .. })
        ));
        let _ = v2;
    }

    #[test]
    fn rejects_loop_before_straight_block() {
        let mut kb = KernelBuilder::new("bad");
        let lp = kb.loop_block("body");
        let i = kb.loop_var(lp, 0i64.into());
        let i1 = kb.push(lp, Opcode::IAdd, [i.into(), 1i64.into()]);
        kb.set_update(i, i1.into());
        let post = kb.straight_block("post");
        kb.push(post, Opcode::IAdd, [Operand::from(1i64), 1i64.into()]);
        assert_eq!(kb.build().unwrap_err(), KernelError::BadLoopStructure);
    }

    #[test]
    fn rejects_bad_loop_init() {
        let mut kb = KernelBuilder::new("bad");
        let lp = kb.loop_block("body");
        let x = kb.push(lp, Opcode::IAdd, [Operand::from(1i64), 1i64.into()]);
        // init referencing a value defined inside the loop body
        let i = kb.loop_var(lp, x.into());
        let i1 = kb.push(lp, Opcode::IAdd, [i.into(), 1i64.into()]);
        kb.set_update(i, i1.into());
        assert!(matches!(kb.build(), Err(KernelError::BadLoopInit { .. })));
    }

    #[test]
    fn rejects_cross_block_loop_update() {
        let mut kb = KernelBuilder::new("bad");
        let pre = kb.straight_block("pre");
        let outside = kb.push(pre, Opcode::IAdd, [Operand::from(1i64), 1i64.into()]);
        let lp = kb.loop_block("body");
        let i = kb.loop_var(lp, 0i64.into());
        kb.push(lp, Opcode::IAdd, [i.into(), 1i64.into()]);
        kb.set_update(i, outside.into());
        assert!(matches!(kb.build(), Err(KernelError::BadLoopUpdate { .. })));
    }

    #[test]
    fn histogram_counts() {
        let k = simple_loop();
        let h = k.opcode_histogram();
        assert_eq!(h[&Opcode::IAdd], 3);
        assert_eq!(h[&Opcode::Load], 1);
        assert_eq!(h[&Opcode::Store], 1);
    }

    #[test]
    #[should_panic(expected = "has no result")]
    fn push_rejects_store() {
        let mut kb = KernelBuilder::new("bad");
        let b = kb.straight_block("b");
        kb.push(b, Opcode::Store, [Operand::from(0i64), 0i64.into()]);
    }

    #[test]
    fn empty_kernel_rejected() {
        assert_eq!(
            KernelBuilder::new("empty").build().unwrap_err(),
            KernelError::Empty
        );
    }
}
