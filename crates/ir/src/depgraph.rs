//! Dependence graph over a kernel's operations.
//!
//! Edges carry an iteration *distance*: 0 for dependences within one
//! iteration (or within straight-line code), ≥ 1 for loop-carried
//! dependences through loop variables or through memory. The graph drives
//! the scheduler's priority function (critical-path heights, scheduled in
//! *operation order* per paper §4.6) and the recurrence-constrained
//! minimum initiation interval of the modulo scheduler.

use std::collections::HashMap;

use csched_machine::Opcode;

use crate::kernel::{BlockId, Kernel, OpId, Operand, ValueDef};

/// Why one operation must wait for another.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DepKind {
    /// The consumer reads the producer's result in operand `slot`.
    Flow {
        /// Operand position of the use.
        slot: usize,
    },
    /// Memory or scratchpad ordering within one region.
    Mem,
}

/// One dependence edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DepEdge {
    /// The operation that must execute first.
    pub from: OpId,
    /// The operation that must wait.
    pub to: OpId,
    /// The reason for the ordering.
    pub kind: DepKind,
    /// Iteration distance: the `to` operation of iteration `i` depends on
    /// the `from` operation of iteration `i - distance`.
    pub distance: u32,
}

/// The dependence graph of one kernel.
#[derive(Clone, Debug)]
pub struct DepGraph {
    edges: Vec<DepEdge>,
    preds: Vec<Vec<usize>>,
    succs: Vec<Vec<usize>>,
    heights: Vec<u64>,
    latencies: Vec<u32>,
}

impl DepGraph {
    /// Builds the graph for `kernel`, using `latency_of` as the (FU
    /// independent) latency estimate for priority computation.
    pub fn build(kernel: &Kernel, latency_of: impl Fn(Opcode) -> u32) -> Self {
        let n = kernel.num_ops();
        let mut edges: Vec<DepEdge> = Vec::new();

        // --- flow edges ---
        for op_id in kernel.op_ids() {
            let op = kernel.op(op_id);
            for (slot, operand) in op.operands().iter().enumerate() {
                let Some(v) = operand.as_value() else {
                    continue;
                };
                for (producer, distance) in resolve_producers(kernel, v) {
                    edges.push(DepEdge {
                        from: producer,
                        to: op_id,
                        kind: DepKind::Flow { slot },
                        distance,
                    });
                }
            }
        }

        // --- memory edges, per block, per region ---
        for b in kernel.block_ids() {
            let block = kernel.block(b);
            // Per region: program-ordered lists of (op, is_store).
            let mut per_region: HashMap<usize, Vec<(OpId, bool)>> = HashMap::new();
            for &op_id in block.ops() {
                let op = kernel.op(op_id);
                if let Some(region) = op.region() {
                    let writes = !op.opcode().has_result(); // Store / SpWrite
                    per_region
                        .entry(region.index())
                        .or_default()
                        .push((op_id, writes));
                }
            }
            for (region_idx, accesses) in &per_region {
                // Within-iteration ordering: every access depends on the
                // most recent store before it; every store also depends on
                // the loads since that store (anti-dependence).
                let mut last_store: Option<OpId> = None;
                let mut loads_since: Vec<OpId> = Vec::new();
                for &(op, is_store) in accesses {
                    if let Some(s) = last_store {
                        edges.push(DepEdge {
                            from: s,
                            to: op,
                            kind: DepKind::Mem,
                            distance: 0,
                        });
                    }
                    if is_store {
                        for &l in &loads_since {
                            edges.push(DepEdge {
                                from: l,
                                to: op,
                                kind: DepKind::Mem,
                                distance: 0,
                            });
                        }
                        loads_since.clear();
                        last_store = Some(op);
                    } else {
                        loads_since.push(op);
                    }
                }
                // Loop-carried ordering, unless the region promises
                // iteration disjointness.
                let region = kernel.region(crate::kernel::RegionId::from_raw(*region_idx));
                if block.is_loop() && !region.iteration_disjoint() {
                    for &(a, a_store) in accesses {
                        for &(bq, b_store) in accesses {
                            if a_store || b_store {
                                edges.push(DepEdge {
                                    from: a,
                                    to: bq,
                                    kind: DepKind::Mem,
                                    distance: 1,
                                });
                            }
                        }
                    }
                }
            }
        }

        edges.sort_by_key(|e| (e.from, e.to, e.distance));
        edges.dedup();

        let mut preds = vec![Vec::new(); n];
        let mut succs = vec![Vec::new(); n];
        for (i, e) in edges.iter().enumerate() {
            preds[e.to.index()].push(i);
            succs[e.from.index()].push(i);
        }

        let latencies: Vec<u32> = kernel
            .op_ids()
            .map(|op| latency_of(kernel.op(op).opcode()))
            .collect();

        // Heights over distance-0 edges (acyclic): longest latency-weighted
        // path from the op to any sink.
        let heights = compute_heights(kernel, &edges, &succs, &latencies);

        DepGraph {
            edges,
            preds,
            succs,
            heights,
            latencies,
        }
    }

    /// All edges.
    pub fn edges(&self) -> &[DepEdge] {
        &self.edges
    }

    /// Edges into `op`.
    pub fn preds(&self, op: OpId) -> impl Iterator<Item = &DepEdge> + '_ {
        self.preds[op.index()].iter().map(move |&i| &self.edges[i])
    }

    /// Edges out of `op`.
    pub fn succs(&self, op: OpId) -> impl Iterator<Item = &DepEdge> + '_ {
        self.succs[op.index()].iter().map(move |&i| &self.edges[i])
    }

    /// Critical-path height of `op`: its latency plus the maximum height of
    /// its distance-0 successors. The scheduler processes operations in
    /// decreasing height ("along the critical path first", §4.6).
    pub fn height(&self, op: OpId) -> u64 {
        self.heights[op.index()]
    }

    /// The latency estimate the graph was built with.
    pub fn latency(&self, op: OpId) -> u32 {
        self.latencies[op.index()]
    }

    /// Operations of `block` ordered by decreasing height (ties broken by
    /// program order): the paper's *operation order*.
    pub fn operation_order(&self, kernel: &Kernel, block: BlockId) -> Vec<OpId> {
        let mut ops: Vec<OpId> = kernel.block(block).ops().to_vec();
        ops.sort_by_key(|&op| (std::cmp::Reverse(self.height(op)), op));
        ops
    }

    /// Operations of `block` that lie on a dependence cycle (a
    /// *recurrence*): a self-edge at any distance, or a path through
    /// block-local edges — loop-carried ones included — that returns to
    /// the operation.
    pub fn recurrence_members(&self, kernel: &Kernel, block: BlockId) -> Vec<OpId> {
        let ops = kernel.block(block).ops();
        let in_block: std::collections::HashSet<OpId> = ops.iter().copied().collect();
        ops.iter()
            .copied()
            .filter(|&start| {
                // DFS from each successor of `start`: on a cycle iff some
                // edge path leads back to it (self-edges included).
                let mut stack: Vec<OpId> = self
                    .succs(start)
                    .filter(|e| in_block.contains(&e.to))
                    .map(|e| e.to)
                    .collect();
                let mut seen = std::collections::HashSet::new();
                while let Some(op) = stack.pop() {
                    if op == start {
                        return true;
                    }
                    if seen.insert(op) {
                        stack.extend(
                            self.succs(op)
                                .filter(|e| in_block.contains(&e.to))
                                .map(|e| e.to),
                        );
                    }
                }
                false
            })
            .collect()
    }

    /// Operations of `block` with recurrence members first, then by
    /// decreasing height (ties by program order) within each class: the
    /// *recurrence-first* order, mined from exact minimum-II schedules.
    /// A loop update sits on the critical recurrence but has no
    /// same-iteration successors, so the plain height order of
    /// [`operation_order`](Self::operation_order) places it last — after
    /// the issue slots and ports its tight window needs are taken.
    pub fn recurrence_order(&self, kernel: &Kernel, block: BlockId) -> Vec<OpId> {
        let members: std::collections::HashSet<OpId> =
            self.recurrence_members(kernel, block).into_iter().collect();
        let mut ops: Vec<OpId> = kernel.block(block).ops().to_vec();
        ops.sort_by_key(|&op| {
            (
                std::cmp::Reverse(members.contains(&op)),
                std::cmp::Reverse(self.height(op)),
                op,
            )
        });
        ops
    }

    /// Earliest feasible issue cycle per operation over distance-0 edges
    /// (ASAP schedule, unit-resource-free).
    pub fn asap(&self, kernel: &Kernel) -> Vec<i64> {
        let mut asap = vec![0i64; kernel.num_ops()];
        for block in kernel.block_ids() {
            for &op in kernel.block(block).ops() {
                let mut earliest = 0i64;
                for e in self.preds(op) {
                    if e.distance == 0 && kernel.op(e.from).block() == block {
                        earliest = earliest.max(asap[e.from.index()] + self.latency(e.from) as i64);
                    }
                }
                asap[op.index()] = earliest;
            }
        }
        asap
    }

    /// Latest feasible issue cycle per operation (ALAP) against each
    /// block's ASAP-critical-path length, over distance-0 edges.
    pub fn alap(&self, kernel: &Kernel) -> Vec<i64> {
        let asap = self.asap(kernel);
        let mut alap = vec![i64::MAX; kernel.num_ops()];
        for block in kernel.block_ids() {
            let ops = kernel.block(block).ops();
            let horizon = ops
                .iter()
                .map(|&o| asap[o.index()] + self.latency(o) as i64)
                .max()
                .unwrap_or(0);
            for &op in ops.iter().rev() {
                let mut latest = horizon - self.latency(op) as i64;
                for e in self.succs(op) {
                    if e.distance == 0 && kernel.op(e.to).block() == block {
                        latest = latest.min(alap[e.to.index()] - self.latency(op) as i64);
                    }
                }
                alap[op.index()] = latest;
            }
        }
        alap
    }

    /// Scheduling slack per operation: `alap - asap` (0 = on the critical
    /// path).
    pub fn slack(&self, kernel: &Kernel) -> Vec<i64> {
        let asap = self.asap(kernel);
        let alap = self.alap(kernel);
        asap.iter().zip(&alap).map(|(&a, &l)| l - a).collect()
    }

    /// The recurrence-constrained minimum initiation interval of the loop
    /// block: the smallest `ii` such that no dependence cycle requires
    /// `Σ latency > ii · Σ distance`. Returns 1 if the kernel has no loop
    /// or no recurrence.
    pub fn rec_mii(&self, kernel: &Kernel) -> u32 {
        let Some(lb) = kernel.loop_block() else {
            return 1;
        };
        let loop_ops: Vec<OpId> = kernel.block(lb).ops().to_vec();
        let index_of: HashMap<OpId, usize> =
            loop_ops.iter().enumerate().map(|(i, &o)| (o, i)).collect();
        let m = loop_ops.len();
        if m == 0 {
            return 1;
        }
        let loop_edges: Vec<&DepEdge> = self
            .edges
            .iter()
            .filter(|e| index_of.contains_key(&e.from) && index_of.contains_key(&e.to))
            .collect();

        // Binary search the smallest ii with no positive cycle of weight
        // latency(from) - ii * distance.
        let hi_bound: u32 = self.latencies.iter().sum::<u32>().max(1);
        let has_positive_cycle = |ii: i64| -> bool {
            // Bellman-Ford longest path with |V| relaxation rounds; a
            // further improvement implies a positive cycle.
            let mut dist = vec![0i64; m];
            for round in 0..=m {
                let mut changed = false;
                for e in &loop_edges {
                    let w = self.latencies[e.from.index()] as i64 - ii * e.distance as i64;
                    let (fi, ti) = (index_of[&e.from], index_of[&e.to]);
                    if dist[fi] + w > dist[ti] {
                        dist[ti] = dist[fi] + w;
                        changed = true;
                    }
                }
                if !changed {
                    return false;
                }
                if round == m {
                    return true;
                }
            }
            false
        };

        let (mut lo, mut hi) = (1u32, hi_bound);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if has_positive_cycle(mid as i64) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

/// All producers of `value`, with iteration distances. An operation-defined
/// value has one producer at distance 0. A loop variable's carried value
/// resolves through its update chain (distance ≥ 1); its init producer (if
/// the init is a preamble value) is reported at distance 0 — the scheduler
/// treats that edge as satisfied by the loop prologue, while communication
/// scheduling still routes it (both routes must share the read stub).
pub fn resolve_producers(kernel: &Kernel, value: ValueId) -> Vec<(OpId, u32)> {
    let mut out = Vec::new();
    match kernel.value_def(value) {
        ValueDef::Op(op) => out.push((op, 0)),
        ValueDef::LoopVar(block, idx) => {
            // Init producer (distance 0, cross-block).
            let lv = &kernel.block(block).loop_vars()[idx];
            if let Some(init) = lv.init().as_value() {
                if let ValueDef::Op(op) = kernel.value_def(init) {
                    out.push((op, 0));
                }
            }
            // Carried producer: follow update chains through other loop
            // variables, accumulating one iteration per hop.
            let mut distance = 1u32;
            let mut current: Operand = lv.update();
            let mut hops = 0usize;
            loop {
                match current.as_value() {
                    None => break, // immediate update: rejected by validate
                    Some(v) => match kernel.value_def(v) {
                        ValueDef::Op(op) => {
                            out.push((op, distance));
                            break;
                        }
                        ValueDef::LoopVar(b2, i2) => {
                            hops += 1;
                            if hops > kernel.block(b2).loop_vars().len() {
                                break; // cyclic phi chain; no op producer
                            }
                            distance += 1;
                            current = kernel.block(b2).loop_vars()[i2].update();
                        }
                    },
                }
            }
        }
    }
    out
}

use crate::kernel::ValueId;

fn compute_heights(
    kernel: &Kernel,
    edges: &[DepEdge],
    succs: &[Vec<usize>],
    latencies: &[u32],
) -> Vec<u64> {
    // Heights over distance-0 edges only; the kernel's validation
    // guarantees this restriction is acyclic (defs precede uses in program
    // order within a block, blocks are ordered).
    let n = kernel.num_ops();
    let mut heights = vec![0u64; n];
    // Process ops in reverse global program order (blocks in order, ops in
    // order), which is a reverse topological order for distance-0 edges.
    let mut order: Vec<OpId> = Vec::with_capacity(n);
    for b in kernel.block_ids() {
        order.extend_from_slice(kernel.block(b).ops());
    }
    for &op in order.iter().rev() {
        let mut best = 0u64;
        for &ei in &succs[op.index()] {
            let e = &edges[ei];
            if e.distance == 0 {
                best = best.max(heights[e.to.index()]);
            }
        }
        heights[op.index()] = best + latencies[op.index()] as u64;
    }
    heights
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelBuilder;
    use csched_machine::{default_latency, Opcode};

    fn chain_kernel() -> Kernel {
        // v0 = 1+1; v1 = v0+1; v2 = v1*v0
        let mut kb = KernelBuilder::new("chain");
        let b = kb.straight_block("b");
        let v0 = kb.push(b, Opcode::IAdd, [Operand::from(1i64), 1i64.into()]);
        let v1 = kb.push(b, Opcode::IAdd, [v0.into(), 1i64.into()]);
        let _v2 = kb.push(b, Opcode::IMul, [v1.into(), v0.into()]);
        kb.build().unwrap()
    }

    #[test]
    fn flow_edges_and_heights() {
        let k = chain_kernel();
        let g = DepGraph::build(&k, default_latency);
        let flow: Vec<_> = g
            .edges()
            .iter()
            .filter(|e| matches!(e.kind, DepKind::Flow { .. }))
            .collect();
        assert_eq!(flow.len(), 3);
        // heights: op2 (imul, lat 2) = 2; op1 = 1 + 2 = 3; op0 = 1 + 3 = 4
        assert_eq!(g.height(OpId::from_raw(2)), 2);
        assert_eq!(g.height(OpId::from_raw(1)), 3);
        assert_eq!(g.height(OpId::from_raw(0)), 4);
        let order = g.operation_order(&k, crate::kernel::BlockId::from_raw(0));
        assert_eq!(
            order,
            vec![OpId::from_raw(0), OpId::from_raw(1), OpId::from_raw(2)]
        );
    }

    fn accumulator_kernel() -> Kernel {
        // loop: acc = fadd(acc, x); x loaded per iteration.
        let mut kb = KernelBuilder::new("acc");
        let data = kb.region("data", true);
        let pre = kb.straight_block("pre");
        let zero = kb.push(pre, Opcode::ItoF, [Operand::from(0i64)]);
        let lp = kb.loop_block("body");
        let i = kb.loop_var(lp, 0i64.into());
        let acc = kb.loop_var(lp, zero.into());
        let x = kb.load(lp, data, i.into(), 0i64.into());
        let acc1 = kb.push(lp, Opcode::FAdd, [acc.into(), x.into()]);
        let i1 = kb.push(lp, Opcode::IAdd, [i.into(), 1i64.into()]);
        kb.set_update(acc, acc1.into());
        kb.set_update(i, i1.into());
        kb.build().unwrap()
    }

    #[test]
    fn loop_carried_flow_edges() {
        let k = accumulator_kernel();
        let g = DepGraph::build(&k, default_latency);
        // acc1 (fadd) depends on itself at distance 1 through the loop var.
        let fadd = k
            .op_ids()
            .find(|&o| k.op(o).opcode() == Opcode::FAdd)
            .unwrap();
        let self_edge = g
            .edges()
            .iter()
            .find(|e| e.from == fadd && e.to == fadd && e.distance == 1);
        assert!(self_edge.is_some(), "accumulator recurrence edge missing");
        // Its init producer (the preamble itof) also feeds it at distance 0.
        let itof = k
            .op_ids()
            .find(|&o| k.op(o).opcode() == Opcode::ItoF)
            .unwrap();
        assert!(g
            .edges()
            .iter()
            .any(|e| e.from == itof && e.to == fadd && e.distance == 0));
    }

    #[test]
    fn rec_mii_of_accumulator_is_fadd_latency() {
        let k = accumulator_kernel();
        let g = DepGraph::build(&k, default_latency);
        // The tightest recurrence is acc -> acc with distance 1 and FAdd
        // latency 2.
        assert_eq!(g.rec_mii(&k), default_latency(Opcode::FAdd));
    }

    #[test]
    fn rec_mii_without_recurrence_is_one() {
        let mut kb = KernelBuilder::new("norec");
        let data = kb.region("data", true);
        let lp = kb.loop_block("body");
        let i = kb.loop_var(lp, 0i64.into());
        let x = kb.load(lp, data, i.into(), 0i64.into());
        let _y = kb.push(lp, Opcode::IAdd, [x.into(), 1i64.into()]);
        let i1 = kb.push(lp, Opcode::IAdd, [i.into(), 1i64.into()]);
        kb.set_update(i, i1.into());
        let k = kb.build().unwrap();
        let g = DepGraph::build(&k, default_latency);
        // Only the induction i -> i at distance 1, latency 1: RecMII = 1.
        assert_eq!(g.rec_mii(&k), 1);
    }

    #[test]
    fn memory_ordering_within_region() {
        let mut kb = KernelBuilder::new("mem");
        let r = kb.region("r", true);
        let b = kb.straight_block("b");
        let x = kb.load(b, r, Operand::from(0i64), 0i64.into());
        let st = kb.store(b, r, 1i64.into(), 0i64.into(), x.into());
        let y = kb.load(b, r, Operand::from(1i64), 0i64.into());
        let k = kb.build().unwrap();
        let g = DepGraph::build(&k, default_latency);
        // load(x) -> store (anti), store -> load(y)
        let mem: Vec<_> = g
            .edges()
            .iter()
            .filter(|e| e.kind == DepKind::Mem)
            .collect();
        assert_eq!(mem.len(), 2);
        assert!(mem.iter().any(|e| e.to == st && e.distance == 0));
        let _ = y;
    }

    #[test]
    fn disjoint_regions_have_no_cross_edges() {
        let mut kb = KernelBuilder::new("mem2");
        let r1 = kb.region("a", true);
        let r2 = kb.region("b", true);
        let b = kb.straight_block("b");
        let x = kb.load(b, r1, Operand::from(0i64), 0i64.into());
        kb.store(b, r2, 0i64.into(), 0i64.into(), x.into());
        let _y = kb.load(b, r1, Operand::from(1i64), 0i64.into());
        let k = kb.build().unwrap();
        let g = DepGraph::build(&k, default_latency);
        assert!(g.edges().iter().all(|e| e.kind != DepKind::Mem));
    }

    #[test]
    fn loop_carried_memory_for_aliasing_region() {
        let mut kb = KernelBuilder::new("scratch");
        let r = kb.region("sp", false); // iterations may alias
        let lp = kb.loop_block("body");
        let i = kb.loop_var(lp, 0i64.into());
        let x = kb.load(lp, r, i.into(), 0i64.into());
        kb.store(lp, r, i.into(), 0i64.into(), x.into());
        let i1 = kb.push(lp, Opcode::IAdd, [i.into(), 1i64.into()]);
        kb.set_update(i, i1.into());
        let k = kb.build().unwrap();
        let g = DepGraph::build(&k, default_latency);
        assert!(
            g.edges()
                .iter()
                .any(|e| e.kind == DepKind::Mem && e.distance == 1),
            "expected loop-carried memory dependence"
        );
        // And it raises RecMII to at least load+store chain / 1.
        assert!(g.rec_mii(&k) >= 2);
    }

    #[test]
    fn chained_phi_updates_are_rejected() {
        // var a's update naming var b would require routing values that no
        // communication covers; the kernel validator forbids it.
        let mut kb = KernelBuilder::new("phichain");
        let lp = kb.loop_block("body");
        let a = kb.loop_var(lp, 0i64.into());
        let bvar = kb.loop_var(lp, 0i64.into());
        let upd = kb.push(lp, Opcode::IAdd, [bvar.into(), 1i64.into()]);
        kb.set_update(a, bvar.into());
        kb.set_update(bvar, upd.into());
        assert!(matches!(
            kb.build(),
            Err(crate::kernel::KernelError::BadLoopUpdate { .. })
        ));
    }
}

impl DepGraph {
    /// Renders the graph in Graphviz dot format (flow edges solid, memory
    /// edges dashed, loop-carried edges labelled with their distance).
    pub fn to_dot(&self, kernel: &Kernel) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("digraph depgraph {\n  rankdir=TB;\n");
        for block in kernel.block_ids() {
            let _ = writeln!(
                s,
                "  subgraph cluster_{} {{ label=\"{}\";",
                block.index(),
                kernel.block(block).name()
            );
            for &op in kernel.block(block).ops() {
                let _ = writeln!(
                    s,
                    "    n{} [label=\"{}: {}\"];",
                    op.index(),
                    op,
                    kernel.op(op).opcode()
                );
            }
            let _ = writeln!(s, "  }}");
        }
        for e in self.edges() {
            let style = match e.kind {
                DepKind::Flow { .. } => "solid",
                DepKind::Mem => "dashed",
            };
            let label = if e.distance > 0 {
                format!(" label=\"d{}\"", e.distance)
            } else {
                String::new()
            };
            let _ = writeln!(
                s,
                "  n{} -> n{} [style={style}{label}];",
                e.from.index(),
                e.to.index()
            );
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod dot_tests {
    use super::*;
    use crate::kernel::KernelBuilder;
    use csched_machine::default_latency;

    #[test]
    fn dot_output_contains_blocks_and_edges() {
        let mut kb = KernelBuilder::new("dotty");
        let lp = kb.loop_block("body");
        let i = kb.loop_var(lp, 0i64.into());
        let i1 = kb.push(lp, csched_machine::Opcode::IAdd, [i.into(), 1i64.into()]);
        kb.set_update(i, i1.into());
        let k = kb.build().unwrap();
        let g = DepGraph::build(&k, default_latency);
        let dot = g.to_dot(&k);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("subgraph cluster_0"));
        assert!(dot.contains("iadd"));
        assert!(dot.contains("d1"), "loop-carried edge labelled: {dot}");
    }
}

#[cfg(test)]
mod slack_tests {
    use super::*;
    use crate::kernel::KernelBuilder;
    use csched_machine::{default_latency, Opcode};

    #[test]
    fn slack_is_zero_on_the_critical_path() {
        // chain: load(4) -> imul(2) -> store; a side iadd has slack.
        let mut kb = KernelBuilder::new("slack");
        let input = kb.region("in", true);
        let output = kb.region("out", true);
        let b = kb.straight_block("b");
        let x = kb.load(b, input, 0i64.into(), 0i64.into());
        let y = kb.push(b, Opcode::IMul, [x.into(), 3i64.into()]);
        let side = kb.push(b, Opcode::IAdd, [x.into(), 1i64.into()]);
        kb.store(b, output, 0i64.into(), 0i64.into(), y.into());
        kb.store(b, output, 1i64.into(), 0i64.into(), side.into());
        let k = kb.build().unwrap();
        let g = DepGraph::build(&k, default_latency);
        let slack = g.slack(&k);
        let asap = g.asap(&k);
        let alap = g.alap(&k);
        // Everything well-formed: asap <= alap.
        for op in k.op_ids() {
            assert!(asap[op.index()] <= alap[op.index()], "{op}");
        }
        // The load and the multiply chain are critical.
        assert_eq!(slack[0], 0, "load is critical");
        assert_eq!(slack[1], 0, "multiply is critical");
        // The side add (latency 1 vs the 2-cycle multiply) has slack.
        assert!(slack[2] > 0, "side add has slack: {slack:?}");
    }

    #[test]
    fn asap_respects_latencies() {
        let mut kb = KernelBuilder::new("lat");
        let input = kb.region("in", true);
        let b = kb.straight_block("b");
        let x = kb.load(b, input, 0i64.into(), 0i64.into()); // latency 4
        let _y = kb.push(b, Opcode::IAdd, [x.into(), 1i64.into()]);
        let k = kb.build().unwrap();
        let g = DepGraph::build(&k, default_latency);
        let asap = g.asap(&k);
        assert_eq!(asap[0], 0);
        assert_eq!(asap[1], 4);
    }
}
