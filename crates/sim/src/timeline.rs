//! Cycle timelines: per-cycle event recording during [`execute`].
//!
//! Where [`SimStats`](crate::SimStats) reduces a run to aggregate
//! counters, a timeline records *when* each resource fired: every
//! functional-unit issue, every bus transfer, every register-file port
//! read and write, tagged with the flat machine cycle and the loop
//! iteration it belongs to. Recording follows the same zero-cost pattern
//! as `csched_core::trace` — [`execute_timed`](crate::execute_timed)
//! takes an `Option<&mut dyn TimelineSink>` that defaults to `None`, so
//! the plain [`execute`](crate::execute) path pays one branch per event
//! site and nothing else.
//!
//! The bundled [`Timeline`] sink collects events in order and exports
//! them two ways:
//!
//! - [`Timeline::chrome_trace`] renders Chrome trace-event JSON
//!   (loadable in Perfetto or `chrome://tracing`): one track per
//!   functional unit, one per bus, one per register-file port, with one
//!   duration event per cycle-level action and the loop iteration in
//!   each event's `args`;
//! - [`Timeline::render_gantt`] renders a terminal Gantt chart — FUs and
//!   buses as rows, cycles as columns, the iteration digit marking each
//!   issue — so pipelining is visible without leaving the shell.
//!
//! [`Timeline::counts`] recovers aggregate counters from the event
//! stream; the property tests assert they equal the [`SimStats`]
//! counters of the same run exactly (the stats are the timeline's ground
//! truth).
//!
//! [`execute`]: crate::execute
//! [`SimStats`]: crate::SimStats

use std::fmt::Write as _;

use csched_core::trace::json_escape;
use csched_core::{SOpId, Schedule};
use csched_machine::{Architecture, BusId, FuId, Opcode, ReadPortId, RfId, WritePortId};

/// One per-cycle action observed while executing a schedule.
///
/// Cycles are *flat machine cycles*: straight-line blocks execute back to
/// back from cycle 0, and loop iteration `k` is offset by `k · II`, so
/// events from overlapping iterations interleave exactly as on the
/// hardware.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum TimelineEvent {
    /// An operation issued on a functional unit.
    FuIssue {
        /// Flat machine cycle of the issue.
        cycle: i64,
        /// The issuing unit.
        fu: FuId,
        /// The scheduled operation.
        op: SOpId,
        /// Loop iteration (0 for straight-line code).
        iteration: u64,
        /// Whether the operation is a scheduler-inserted copy.
        is_copy: bool,
    },
    /// A result travelled over a bus (one write-stub activation).
    BusTransfer {
        /// Flat machine cycle of the transfer (the producer's completion).
        cycle: i64,
        /// The bus carrying the value.
        bus: BusId,
        /// The register file the value lands in.
        rf: RfId,
        /// The producing operation.
        producer: SOpId,
        /// Loop iteration of the producer.
        iteration: u64,
    },
    /// A write port landed a value into its register file.
    RfWrite {
        /// Flat machine cycle of the write (the producer's completion).
        cycle: i64,
        /// The file written.
        rf: RfId,
        /// The write port used.
        port: WritePortId,
        /// The producing operation.
        producer: SOpId,
        /// Loop iteration of the producer.
        iteration: u64,
    },
    /// A read port staged an operand out of its register file.
    RfRead {
        /// Flat machine cycle of the read (the consumer's issue).
        cycle: i64,
        /// The file read.
        rf: RfId,
        /// The read port used.
        port: ReadPortId,
        /// The consuming operation.
        op: SOpId,
        /// The consumer's operand slot.
        slot: usize,
        /// Loop iteration of the consumer.
        iteration: u64,
    },
}

impl TimelineEvent {
    /// The flat machine cycle the event occurred on.
    pub fn cycle(&self) -> i64 {
        match *self {
            TimelineEvent::FuIssue { cycle, .. }
            | TimelineEvent::BusTransfer { cycle, .. }
            | TimelineEvent::RfWrite { cycle, .. }
            | TimelineEvent::RfRead { cycle, .. } => cycle,
        }
    }
}

/// A consumer of timeline events.
///
/// Passed as `Option<&mut dyn TimelineSink>` so the disabled path costs
/// one branch per event site (the same contract as
/// `csched_core::trace::TraceSink`).
pub trait TimelineSink {
    /// Receives one event. Events arrive in execution order.
    fn event(&mut self, event: TimelineEvent);
}

/// Aggregate counters recovered from a [`Timeline`], shaped to mirror
/// [`SimStats`](crate::SimStats) for reconciliation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TimelineCounts {
    /// Total operations issued (including copies).
    pub ops_executed: u64,
    /// Copy operations issued.
    pub copies_executed: u64,
    /// Total bus transfers.
    pub bus_transfers: u64,
    /// Issues per functional unit (indexed by `FuId`).
    pub fu_issues: Vec<u64>,
    /// Transfers per bus (indexed by `BusId`).
    pub bus_transfers_per_bus: Vec<u64>,
    /// Writes per register file (indexed by `RfId`).
    pub rf_writes: Vec<u64>,
    /// Reads per register file (indexed by `RfId`).
    pub rf_reads: Vec<u64>,
}

/// Increments a dynamically-sized per-resource counter.
fn bump(counters: &mut Vec<u64>, index: usize) {
    if counters.len() <= index {
        counters.resize(index + 1, 0);
    }
    counters[index] += 1;
}

/// A recording sink: collects every event in execution order.
#[derive(Clone, Debug, Default)]
pub struct Timeline {
    events: Vec<TimelineEvent>,
}

impl TimelineSink for Timeline {
    fn event(&mut self, event: TimelineEvent) {
        self.events.push(event);
    }
}

impl Timeline {
    /// An empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded events, in execution order.
    pub fn events(&self) -> &[TimelineEvent] {
        &self.events
    }

    /// Aggregate counters over the whole event stream, shaped like
    /// [`SimStats`](crate::SimStats). The reconciliation property tests
    /// assert these equal the stats of the same run exactly.
    pub fn counts(&self) -> TimelineCounts {
        let mut c = TimelineCounts::default();
        for e in &self.events {
            match *e {
                TimelineEvent::FuIssue { fu, is_copy, .. } => {
                    c.ops_executed += 1;
                    if is_copy {
                        c.copies_executed += 1;
                    }
                    bump(&mut c.fu_issues, fu.index());
                }
                TimelineEvent::BusTransfer { bus, .. } => {
                    c.bus_transfers += 1;
                    bump(&mut c.bus_transfers_per_bus, bus.index());
                }
                TimelineEvent::RfWrite { rf, .. } => bump(&mut c.rf_writes, rf.index()),
                TimelineEvent::RfRead { rf, .. } => bump(&mut c.rf_reads, rf.index()),
            }
        }
        c
    }

    /// Exports the timeline as Chrome trace-event JSON, loadable in
    /// Perfetto or `chrome://tracing`.
    ///
    /// Tracks (trace "threads" of process 0) are one per functional
    /// unit, one per bus, and one per register-file port; each recorded
    /// action becomes a complete (`"ph":"X"`) event of one cycle's
    /// duration with the operation and iteration in `args`. `schedule`
    /// supplies opcode names; the output is deterministic for a
    /// deterministic run.
    pub fn chrome_trace(&self, arch: &Architecture, schedule: &Schedule) -> String {
        let mut s = String::with_capacity(4096 + self.events.len() * 96);
        s.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
        let _ = write!(
            s,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
             \"args\":{{\"name\":\"{} on {}\"}}}}",
            json_escape(schedule.kernel_name()),
            json_escape(schedule.arch_name()),
        );
        // Track metadata: names and sort order (FUs, then buses, then
        // write ports, then read ports).
        let meta = |tid: u64, name: String, s: &mut String| {
            let _ = write!(
                s,
                ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                json_escape(&name)
            );
            let _ = write!(
                s,
                ",\n{{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
                 \"args\":{{\"sort_index\":{tid}}}}}"
            );
        };
        for fu in arch.fu_ids() {
            meta(fu_tid(fu), format!("FU {}", arch.fu(fu).name()), &mut s);
        }
        for bus in arch.bus_ids() {
            meta(
                bus_tid(bus),
                format!("bus {}", arch.bus(bus).name()),
                &mut s,
            );
        }
        for i in 0..arch.num_write_ports() {
            let port = WritePortId::from_raw(i);
            let rf = arch.write_port_rf(port);
            meta(
                wport_tid(port),
                format!("{} write port {}", arch.rf(rf).name(), i),
                &mut s,
            );
        }
        for i in 0..arch.num_read_ports() {
            let port = ReadPortId::from_raw(i);
            let rf = arch.read_port_rf(port);
            meta(
                rport_tid(port),
                format!("{} read port {}", arch.rf(rf).name(), i),
                &mut s,
            );
        }
        let u = schedule.universe();
        let opcode_of = |op: SOpId| -> Opcode { u.op(op).opcode };
        for e in &self.events {
            let (name, tid, args) = match *e {
                TimelineEvent::FuIssue {
                    fu, op, iteration, ..
                } => (
                    format!("{:?} {op}", opcode_of(op)),
                    fu_tid(fu),
                    format!("{{\"op\":{},\"iteration\":{iteration}}}", op.index()),
                ),
                TimelineEvent::BusTransfer {
                    bus,
                    rf,
                    producer,
                    iteration,
                    ..
                } => (
                    format!("{producer} -> {}", arch.rf(rf).name()),
                    bus_tid(bus),
                    format!(
                        "{{\"producer\":{},\"iteration\":{iteration}}}",
                        producer.index()
                    ),
                ),
                TimelineEvent::RfWrite {
                    port,
                    producer,
                    iteration,
                    ..
                } => (
                    format!("write {producer}"),
                    wport_tid(port),
                    format!(
                        "{{\"producer\":{},\"iteration\":{iteration}}}",
                        producer.index()
                    ),
                ),
                TimelineEvent::RfRead {
                    port,
                    op,
                    slot,
                    iteration,
                    ..
                } => (
                    format!("read {op}.{slot}"),
                    rport_tid(port),
                    format!(
                        "{{\"op\":{},\"slot\":{slot},\"iteration\":{iteration}}}",
                        op.index()
                    ),
                ),
            };
            let _ = write!(
                s,
                ",\n{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":1,\"pid\":0,\
                 \"tid\":{tid},\"args\":{args}}}",
                json_escape(&name),
                e.cycle(),
            );
        }
        s.push_str("\n]}\n");
        s
    }

    /// Renders a terminal Gantt chart: functional units and buses as
    /// rows, flat machine cycles as columns. An issue is marked with its
    /// iteration's last digit (so software-pipelined overlap reads
    /// directly off the chart), a bus transfer with `=` (a digit when
    /// several values share the bus cycle via output fanout), and an
    /// idle cycle with `.`. Rows wider than `max_cols` are truncated
    /// with a note.
    pub fn render_gantt(&self, arch: &Architecture, max_cols: usize) -> String {
        let max_cycle = self
            .events
            .iter()
            .map(TimelineEvent::cycle)
            .max()
            .unwrap_or(-1);
        let mut out = String::new();
        if max_cycle < 0 {
            out.push_str("(empty timeline)\n");
            return out;
        }
        let cols = ((max_cycle + 1) as usize).min(max_cols.max(1));
        // cell value: 0 = idle, 1..=10 -> iteration digit (value-1),
        // 100+n -> n transfers on a bus cycle.
        let mut fu_rows = vec![vec![0u64; cols]; arch.num_fus()];
        let mut bus_rows = vec![vec![0u64; cols]; arch.num_buses()];
        for e in &self.events {
            let c = e.cycle();
            if c < 0 || c as usize >= cols {
                continue;
            }
            match *e {
                TimelineEvent::FuIssue { fu, iteration, .. } => {
                    fu_rows[fu.index()][c as usize] = 1 + iteration % 10;
                }
                TimelineEvent::BusTransfer { bus, .. } => {
                    let cell = &mut bus_rows[bus.index()][c as usize];
                    *cell = if *cell == 0 { 100 } else { *cell + 1 };
                }
                _ => {}
            }
        }
        let width = arch
            .fu_ids()
            .map(|f| arch.fu(f).name().len())
            .chain(arch.bus_ids().map(|b| arch.bus(b).name().len()))
            .max()
            .unwrap_or(4)
            .max(4);
        let mut header = String::new();
        for c in 0..cols {
            let _ = write!(header, "{}", c % 10);
        }
        let _ = writeln!(out, "{:width$}  {}", "cycle", header);
        let render_row = |name: &str, row: &[u64], out: &mut String| {
            let cells: String = row
                .iter()
                .map(|&v| match v {
                    0 => '.',
                    1..=10 => char::from(b'0' + (v - 1) as u8),
                    100 => '=',
                    v => {
                        let n = v - 99;
                        if n <= 9 {
                            char::from(b'0' + n as u8)
                        } else {
                            '#'
                        }
                    }
                })
                .collect();
            let _ = writeln!(out, "{name:width$}  {cells}");
        };
        for fu in arch.fu_ids() {
            render_row(arch.fu(fu).name(), &fu_rows[fu.index()], &mut out);
        }
        for bus in arch.bus_ids() {
            render_row(arch.bus(bus).name(), &bus_rows[bus.index()], &mut out);
        }
        if (max_cycle + 1) as usize > cols {
            let _ = writeln!(
                out,
                "({} more cycles not shown; raise max_cols or export a Chrome trace)",
                (max_cycle + 1) as usize - cols
            );
        }
        out
    }
}

fn fu_tid(fu: FuId) -> u64 {
    1 + fu.index() as u64
}

fn bus_tid(bus: BusId) -> u64 {
    1000 + bus.index() as u64
}

fn wport_tid(port: WritePortId) -> u64 {
    2000 + port.index() as u64
}

fn rport_tid(port: ReadPortId) -> u64 {
    3000 + port.index() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_aggregate_events() {
        let mut tl = Timeline::new();
        tl.event(TimelineEvent::FuIssue {
            cycle: 0,
            fu: FuId::from_raw(1),
            op: SOpId::from_raw(0),
            iteration: 0,
            is_copy: false,
        });
        tl.event(TimelineEvent::FuIssue {
            cycle: 2,
            fu: FuId::from_raw(1),
            op: SOpId::from_raw(3),
            iteration: 1,
            is_copy: true,
        });
        tl.event(TimelineEvent::BusTransfer {
            cycle: 2,
            bus: BusId::from_raw(0),
            rf: RfId::from_raw(0),
            producer: SOpId::from_raw(0),
            iteration: 0,
        });
        tl.event(TimelineEvent::RfWrite {
            cycle: 2,
            rf: RfId::from_raw(0),
            port: WritePortId::from_raw(0),
            producer: SOpId::from_raw(0),
            iteration: 0,
        });
        tl.event(TimelineEvent::RfRead {
            cycle: 2,
            rf: RfId::from_raw(0),
            port: ReadPortId::from_raw(1),
            op: SOpId::from_raw(3),
            slot: 0,
            iteration: 1,
        });
        let c = tl.counts();
        assert_eq!(c.ops_executed, 2);
        assert_eq!(c.copies_executed, 1);
        assert_eq!(c.fu_issues, vec![0, 2]);
        assert_eq!(c.bus_transfers, 1);
        assert_eq!(c.bus_transfers_per_bus, vec![1]);
        assert_eq!(c.rf_writes, vec![1]);
        assert_eq!(c.rf_reads, vec![1]);
        assert_eq!(tl.events().len(), 5);
    }
}
