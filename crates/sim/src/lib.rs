//! # csched-sim — cycle-level simulator for communication schedules
//!
//! Executes a [`csched_core::Schedule`] on its machine the way the
//! hardware would: operations issue on their scheduled cycles and units,
//! values travel over the allocated buses into the register files their
//! routes stage them in, and the software-pipelined loop overlaps
//! iterations at the schedule's initiation interval. The IR interpreter
//! (`csched_ir::interp`) acts as the semantic oracle: for any valid
//! schedule, the simulated memory image must match the interpreted one
//! exactly.
//!
//! ```
//! use csched_core::{schedule_kernel, SchedulerConfig};
//! use csched_ir::{interp, KernelBuilder, Memory, Word};
//! use csched_machine::{imagine, Opcode};
//!
//! // out[i] = in[i] + 1
//! let mut kb = KernelBuilder::new("inc");
//! let input = kb.region("in", true);
//! let output = kb.region("out", true);
//! let lp = kb.loop_block("body");
//! let i = kb.loop_var(lp, 0i64.into());
//! let x = kb.load(lp, input, i.into(), 0i64.into());
//! let y = kb.push(lp, Opcode::IAdd, [x.into(), 1i64.into()]);
//! kb.store(lp, output, i.into(), 0i64.into(), y.into());
//! let i1 = kb.push(lp, Opcode::IAdd, [i.into(), 1i64.into()]);
//! kb.set_update(i, i1.into());
//! let kernel = kb.build()?;
//!
//! let arch = imagine::distributed();
//! let schedule = schedule_kernel(&arch, &kernel, SchedulerConfig::default())?;
//!
//! let mut mem = Memory::new();
//! mem.write_block(0, (0..4).map(Word::I));
//! let stats = csched_sim::execute(&kernel, &schedule, &mut mem, 4)?;
//! assert!(stats.cycles > 0);
//! assert_eq!(mem.main[&3], Word::I(4));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod exec;
pub mod timeline;

pub use exec::{execute, execute_timed, SimError, SimStats};
pub use timeline::{Timeline, TimelineCounts, TimelineEvent, TimelineSink};
