//! Cycle-level execution of a schedule.
//!
//! The simulator runs a [`Schedule`] the way the hardware would: each
//! operation issues on its scheduled cycle and functional unit, reads its
//! operands out of the register files its routes stage them in, and drives
//! its result through its write stubs on its completion cycle. The loop
//! block executes software-pipelined — iteration `k` is offset by
//! `k · II` — so operations from several iterations are in flight at once,
//! exactly as on the machine.
//!
//! Register files hold *value instances* keyed by `(producing operation,
//! iteration)`. A read that finds no instance in the expected file is a
//! scheduling bug (a value that was never routed there), reported as
//! [`SimError::ValueNotRouted`]; the differential tests against the IR
//! interpreter then check that the memory image matches exactly.

use std::collections::HashMap;

use csched_core::{SOpId, Schedule};
use csched_ir::{interp, Imm, Kernel, Memory, Operand, ValueDef, Word};
use csched_machine::{Opcode, ReadStub, RfId, WriteStub};

use crate::timeline::{TimelineEvent, TimelineSink};

/// Errors raised while executing a schedule.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// An operation read a register file that does not hold the expected
    /// value instance — the schedule never routed the value there.
    ValueNotRouted {
        /// The reading operation.
        op: SOpId,
        /// Loop iteration of the reader.
        iteration: u64,
        /// Operand slot.
        slot: usize,
        /// Register file that was read.
        rf: RfId,
    },
    /// An operand had no route and no immediate (internal inconsistency).
    MissingOperand {
        /// The reading operation.
        op: SOpId,
        /// Operand slot.
        slot: usize,
    },
    /// The underlying operation semantics failed (type error, division by
    /// zero, uninitialised load).
    Semantics(interp::InterpError),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::ValueNotRouted {
                op,
                iteration,
                slot,
                rf,
            } => write!(
                f,
                "{op} (iteration {iteration}) operand {slot}: no value staged in {rf}"
            ),
            SimError::MissingOperand { op, slot } => {
                write!(f, "{op} operand {slot}: no route and no immediate")
            }
            SimError::Semantics(e) => write!(f, "operation semantics: {e}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<interp::InterpError> for SimError {
    fn from(e: interp::InterpError) -> Self {
        SimError::Semantics(e)
    }
}

/// Execution statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Total machine cycles simulated (preamble + pipelined loop).
    pub cycles: u64,
    /// Dynamic operations executed (including copies).
    pub ops_executed: u64,
    /// Dynamic copy operations executed.
    pub copies_executed: u64,
    /// Values transported over buses (write-stub activations).
    pub bus_transfers: u64,
    /// Dynamic transfers per bus (indexed by `BusId`): one per write-stub
    /// activation on that bus. Sums to `bus_transfers`.
    pub bus_transfers_per_bus: Vec<u64>,
    /// Dynamic issues per functional unit (indexed by `FuId`).
    pub fu_issues: Vec<u64>,
    /// Dynamic register-file writes per file (indexed by `RfId`): one per
    /// write-stub activation that lands a value in that file.
    pub rf_writes: Vec<u64>,
    /// Dynamic register-file reads per file (indexed by `RfId`): one per
    /// operand resolved through a read stub on that file.
    pub rf_reads: Vec<u64>,
}

impl SimStats {
    /// Utilisation per functional unit: `(name, issues / cycles)`.
    pub fn utilization(&self, arch: &csched_machine::Architecture) -> Vec<(String, f64)> {
        let cycles = self.cycles.max(1) as f64;
        arch.fu_ids()
            .map(|fu| {
                let issues = self.fu_issues.get(fu.index()).copied().unwrap_or(0);
                (arch.fu(fu).name().to_string(), issues as f64 / cycles)
            })
            .collect()
    }

    /// Dynamic traffic per bus: `(name, transfers)`, covering every bus
    /// in the machine (zero for buses the schedule never used).
    pub fn bus_traffic(&self, arch: &csched_machine::Architecture) -> Vec<(String, u64)> {
        arch.bus_ids()
            .map(|bus| {
                (
                    arch.bus(bus).name().to_string(),
                    self.bus_transfers_per_bus
                        .get(bus.index())
                        .copied()
                        .unwrap_or(0),
                )
            })
            .collect()
    }

    /// Dynamic traffic per register file: `(name, writes, reads)`.
    pub fn rf_traffic(&self, arch: &csched_machine::Architecture) -> Vec<(String, u64, u64)> {
        arch.rf_ids()
            .map(|rf| {
                (
                    arch.rf(rf).name().to_string(),
                    self.rf_writes.get(rf.index()).copied().unwrap_or(0),
                    self.rf_reads.get(rf.index()).copied().unwrap_or(0),
                )
            })
            .collect()
    }
}

/// Increments a dynamically-sized per-resource counter.
fn bump(counters: &mut Vec<u64>, index: usize) {
    if counters.len() <= index {
        counters.resize(index + 1, 0);
    }
    counters[index] += 1;
}

/// How one operand of one operation obtains its value each iteration.
#[derive(Clone, Debug)]
enum OperandSource {
    /// An immediate, encoded in the instruction.
    Imm(Word),
    /// A register read through `stub`. `init` feeds iteration 0 (and
    /// straight-line code); `carried` feeds iterations ≥ its distance.
    /// `seed` holds the value pre-loaded into the file for iterations
    /// before the carried distance when there is no init producer.
    Read {
        stub: ReadStub,
        /// Distance-0 producer and whether it lives in an earlier block
        /// (cross-block producers execute once; same-block producers
        /// execute every iteration).
        init: Option<(SOpId, bool)>,
        carried: Option<(SOpId, u32)>,
        seed: Option<Word>,
    },
}

/// A staged write: the producing operation's value goes through `stub` on
/// its completion cycle.
#[derive(Clone, Copy, Debug)]
struct StagedWrite {
    stub: WriteStub,
}

/// The per-operation execution plan derived from the schedule's routes.
#[derive(Clone, Debug)]
struct OpPlan {
    opcode: Opcode,
    cycle: i64,
    operands: Vec<OperandSource>,
    writes: Vec<StagedWrite>,
    region_kind: RegionKind,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum RegionKind {
    None,
    Main,
    Scratch,
}

/// Executes `schedule` for `trip` iterations of the kernel's loop,
/// mutating `memory` in place (inputs pre-loaded by the caller, exactly as
/// for the interpreter).
///
/// # Errors
///
/// Returns a [`SimError`] when the schedule fails to transport a value to
/// its reader or an operation's semantics fail.
pub fn execute(
    kernel: &Kernel,
    schedule: &Schedule,
    memory: &mut Memory,
    trip: u64,
) -> Result<SimStats, SimError> {
    execute_timed(kernel, schedule, memory, trip, None)
}

/// [`execute`], additionally streaming per-cycle events into `timeline`.
///
/// With `timeline: None` this *is* `execute` — the sink costs one branch
/// per event site. With a sink (for example
/// [`Timeline`](crate::Timeline)), every functional-unit issue, bus
/// transfer and register-file port access is reported with its flat
/// machine cycle and loop iteration, in execution order. The simulated
/// behaviour and the returned [`SimStats`] are identical either way.
///
/// # Errors
///
/// Returns a [`SimError`] when the schedule fails to transport a value to
/// its reader or an operation's semantics fail.
pub fn execute_timed(
    kernel: &Kernel,
    schedule: &Schedule,
    memory: &mut Memory,
    trip: u64,
    mut timeline: Option<&mut dyn TimelineSink>,
) -> Result<SimStats, SimError> {
    let plans = build_plans(kernel, schedule);
    let mut stats = SimStats {
        fu_issues: vec![
            0;
            schedule
                .universe()
                .op_ids()
                .map(|o| schedule.placement(o).fu.index() + 1)
                .max()
                .unwrap_or(0)
        ],
        ..SimStats::default()
    };

    // Register files: (rf, producer, iteration-frame) -> word.
    let mut rfs: HashMap<(RfId, SOpId, u64), Word> = HashMap::new();
    // Seed pre-loaded constants for carried reads at early iterations.
    for plan in plans.values() {
        for source in &plan.operands {
            if let OperandSource::Read {
                stub,
                carried: Some((producer, distance)),
                seed: Some(seed),
                init: None,
            } = source
            {
                for k in 0..*distance {
                    // Iteration k reads frame k - distance (mod nothing:
                    // represent pre-loop frames as u64 wrap-around keys).
                    let frame = pre_frame(k, *distance);
                    rfs.insert((stub.rf, *producer, frame), *seed);
                }
            }
        }
    }

    let u = schedule.universe();

    // --- straight-line blocks, in order ---
    // `base` tracks the flat machine cycle each block starts on, so
    // timeline events from consecutive blocks land on a single axis.
    let mut base: i64 = 0;
    for block in kernel.block_ids() {
        if kernel.block(block).is_loop() {
            continue;
        }
        let mut ops: Vec<SOpId> = u.op_ids().filter(|&o| u.op(o).block == block).collect();
        ops.sort_by_key(|&o| (plans[&o].cycle, o));
        for op in ops {
            exec_op(
                schedule,
                &plans,
                &mut rfs,
                memory,
                &mut stats,
                op,
                0,
                base,
                &mut timeline,
            )?;
        }
        let len = schedule.block_len(block).max(0);
        stats.cycles += len as u64;
        base += len;
    }

    // --- the software-pipelined loop ---
    if let Some(block) = kernel.loop_block() {
        let ii = schedule.ii().unwrap_or(1) as i64;
        let loop_ops: Vec<SOpId> = u.op_ids().filter(|&o| u.op(o).block == block).collect();
        // Event-driven: (flat cycle, op, iteration) sorted by cycle.
        let mut events: Vec<(i64, SOpId, u64)> = Vec::new();
        for &op in &loop_ops {
            let cycle = plans[&op].cycle;
            for k in 0..trip {
                events.push((cycle + k as i64 * ii, op, k));
            }
        }
        events.sort_by_key(|&(t, op, k)| (t, k, op));
        for (_, op, k) in events {
            exec_op(
                schedule,
                &plans,
                &mut rfs,
                memory,
                &mut stats,
                op,
                k,
                base + k as i64 * ii,
                &mut timeline,
            )?;
        }
        if trip > 0 {
            stats.cycles += (trip as i64 - 1).max(0) as u64 * ii as u64
                + schedule.block_len(block).max(0) as u64;
        }
    }

    Ok(stats)
}

/// Key for register-file frames before iteration 0 (seeded constants):
/// iteration `k` reading at distance `d` needs frame `k - d < 0`, encoded
/// by wrapping below `u64::MAX / 2`.
fn pre_frame(k: u32, distance: u32) -> u64 {
    u64::MAX - (distance - k) as u64
}

#[allow(clippy::too_many_arguments)]
fn exec_op(
    schedule: &Schedule,
    plans: &HashMap<SOpId, OpPlan>,
    rfs: &mut HashMap<(RfId, SOpId, u64), Word>,
    memory: &mut Memory,
    stats: &mut SimStats,
    op: SOpId,
    iteration: u64,
    time_offset: i64,
    timeline: &mut Option<&mut dyn TimelineSink>,
) -> Result<(), SimError> {
    let plan = &plans[&op];
    // Flat machine cycles of this dynamic instance: reads happen on the
    // issue cycle, write stubs fire on the completion cycle.
    let issue_cycle = time_offset + plan.cycle;
    // Gather operand values.
    let mut args = Vec::with_capacity(plan.operands.len());
    for (slot, source) in plan.operands.iter().enumerate() {
        let word = match source {
            OperandSource::Imm(w) => *w,
            OperandSource::Read {
                stub,
                init,
                carried,
                seed: _,
            } => {
                let init_frame =
                    |producer: SOpId, cross: bool| (producer, if cross { 0u64 } else { iteration });
                let (producer, frame) = match (init, carried) {
                    (Some((init, cross)), Some(_)) if iteration == 0 => init_frame(*init, *cross),
                    (Some((init, cross)), None) => init_frame(*init, *cross),
                    (_, Some((carried, d))) => {
                        let frame = if iteration >= *d as u64 {
                            iteration - *d as u64
                        } else {
                            pre_frame(iteration as u32, *d)
                        };
                        (*carried, frame)
                    }
                    (None, None) => return Err(SimError::MissingOperand { op, slot }),
                };
                match rfs.get(&(stub.rf, producer, frame)) {
                    Some(w) => {
                        bump(&mut stats.rf_reads, stub.rf.index());
                        if let Some(sink) = timeline.as_deref_mut() {
                            sink.event(TimelineEvent::RfRead {
                                cycle: issue_cycle,
                                rf: stub.rf,
                                port: stub.port,
                                op,
                                slot,
                                iteration,
                            });
                        }
                        *w
                    }
                    None => {
                        return Err(SimError::ValueNotRouted {
                            op,
                            iteration,
                            slot,
                            rf: stub.rf,
                        })
                    }
                }
            }
        };
        args.push(word);
    }

    stats.ops_executed += 1;
    if plan.opcode == Opcode::Copy {
        stats.copies_executed += 1;
    }
    let placement = schedule.placement(op);
    {
        let fu = placement.fu.index();
        if stats.fu_issues.len() <= fu {
            stats.fu_issues.resize(fu + 1, 0);
        }
        stats.fu_issues[fu] += 1;
    }
    if let Some(sink) = timeline.as_deref_mut() {
        sink.event(TimelineEvent::FuIssue {
            cycle: issue_cycle,
            fu: placement.fu,
            op,
            iteration,
            is_copy: plan.opcode == Opcode::Copy,
        });
    }

    // Execute.
    let ir_op = schedule
        .universe()
        .op(op)
        .kernel_op
        .map(|k| csched_ir::OpId::from_raw(k.index()))
        .unwrap_or(csched_ir::OpId::from_raw(0));
    let result: Option<Word> = match plan.opcode {
        Opcode::Load | Opcode::SpRead => {
            let addr = args[0]
                .as_int()
                .zip(args[1].as_int())
                .map(|(b, o)| b.wrapping_add(o))
                .ok_or(interp::InterpError::TypeMismatch {
                    op: ir_op,
                    opcode: plan.opcode,
                })?;
            let space = if plan.region_kind == RegionKind::Scratch {
                &memory.scratch
            } else {
                &memory.main
            };
            Some(
                *space
                    .get(&addr)
                    .ok_or(interp::InterpError::UninitializedLoad { op: ir_op, addr })?,
            )
        }
        Opcode::Store | Opcode::SpWrite => {
            let addr = args[0]
                .as_int()
                .zip(args[1].as_int())
                .map(|(b, o)| b.wrapping_add(o))
                .ok_or(interp::InterpError::TypeMismatch {
                    op: ir_op,
                    opcode: plan.opcode,
                })?;
            let space = if plan.region_kind == RegionKind::Scratch {
                &mut memory.scratch
            } else {
                &mut memory.main
            };
            space.insert(addr, args[2]);
            None
        }
        opcode => Some(interp::eval_pure(ir_op, opcode, &args)?),
    };

    // Drive the write stubs.
    if let Some(word) = result {
        let completion_cycle = issue_cycle + placement.latency as i64 - 1;
        for write in &plan.writes {
            rfs.insert((write.stub.rf, op, iteration), word);
            stats.bus_transfers += 1;
            bump(&mut stats.bus_transfers_per_bus, write.stub.bus.index());
            bump(&mut stats.rf_writes, write.stub.rf.index());
            if let Some(sink) = timeline.as_deref_mut() {
                sink.event(TimelineEvent::BusTransfer {
                    cycle: completion_cycle,
                    bus: write.stub.bus,
                    rf: write.stub.rf,
                    producer: op,
                    iteration,
                });
                sink.event(TimelineEvent::RfWrite {
                    cycle: completion_cycle,
                    rf: write.stub.rf,
                    port: write.stub.port,
                    producer: op,
                    iteration,
                });
            }
        }
    }
    Ok(())
}

fn build_plans(kernel: &Kernel, schedule: &Schedule) -> HashMap<SOpId, OpPlan> {
    let u = schedule.universe();
    // Routes per operand: (producer, distance, cross-block, read stub).
    type OperandRoute = (SOpId, u32, bool, ReadStub);
    let mut operand_routes: HashMap<(SOpId, usize), Vec<OperandRoute>> = HashMap::new();
    let mut writes: HashMap<SOpId, Vec<StagedWrite>> = HashMap::new();
    for cid in u.comm_ids() {
        for (leg_id, route) in schedule.transport(cid) {
            let leg = u.comm(leg_id);
            let cross = u.op(leg.producer).block != u.op(leg.consumer).block;
            operand_routes
                .entry((leg.consumer, leg.slot))
                .or_default()
                .push((leg.producer, leg.distance, cross, route.rstub));
            let entry = writes.entry(leg.producer).or_default();
            if !entry.iter().any(|w| w.stub == route.wstub) {
                entry.push(StagedWrite { stub: route.wstub });
            }
        }
    }

    let mut plans = HashMap::new();
    for op in u.op_ids() {
        let sop = u.op(op);
        let p = schedule.placement(op);
        let mut operands = Vec::with_capacity(sop.num_operands);
        for slot in 0..sop.num_operands {
            let source = match operand_routes.get(&(op, slot)) {
                None => {
                    // No communications: must be an immediate (kernel op).
                    let imm = sop
                        .kernel_op
                        .and_then(|k| match kernel.op(k).operands()[slot] {
                            Operand::Imm(i) => Some(i.to_word()),
                            Operand::Value(_) => None,
                        });
                    match imm {
                        Some(w) => OperandSource::Imm(w),
                        // A value operand with no comm can only be a
                        // loop variable whose producers were optimised
                        // away; treat as seeded zero (cannot happen for
                        // validated kernels).
                        None => OperandSource::Imm(Word::I(0)),
                    }
                }
                Some(routes) => {
                    let stub = routes[0].3;
                    let mut init = None;
                    let mut carried = None;
                    for &(producer, distance, cross, _) in routes {
                        if distance >= 1 {
                            carried = Some((producer, distance));
                        } else {
                            init = Some((producer, cross));
                        }
                    }
                    // Seed for carried reads before the first produced
                    // frame: the loop variable's immediate init.
                    let seed = if init.is_none() {
                        sop.kernel_op
                            .and_then(|k| match kernel.op(k).operands()[slot] {
                                Operand::Value(v) => match kernel.value_def(v) {
                                    ValueDef::LoopVar(b, idx) => {
                                        match kernel.block(b).loop_vars()[idx].init() {
                                            Operand::Imm(Imm::Int(i)) => Some(Word::I(i)),
                                            Operand::Imm(Imm::Float(f)) => Some(Word::F(f)),
                                            Operand::Value(_) => None,
                                        }
                                    }
                                    ValueDef::Op(_) => None,
                                },
                                Operand::Imm(_) => None,
                            })
                    } else {
                        None
                    };
                    OperandSource::Read {
                        stub,
                        init,
                        carried,
                        seed,
                    }
                }
            };
            operands.push(source);
        }
        let region_kind = match sop.opcode {
            Opcode::Load | Opcode::Store => RegionKind::Main,
            Opcode::SpRead | Opcode::SpWrite => RegionKind::Scratch,
            _ => RegionKind::None,
        };
        plans.insert(
            op,
            OpPlan {
                opcode: sop.opcode,
                cycle: p.cycle,
                operands,
                writes: writes.remove(&op).unwrap_or_default(),
                region_kind,
            },
        );
    }
    plans
}

#[cfg(test)]
mod tests {
    use super::*;
    use csched_core::{schedule_kernel, SchedulerConfig};
    use csched_ir::KernelBuilder;
    use csched_machine::imagine;

    fn streaming_kernel() -> Kernel {
        // out[i] = 2*in[i] + running_sum(in), with an accumulator and an
        // induction variable — covers carried values, imm seeds and loads.
        let mut kb = KernelBuilder::new("mix");
        let input = kb.region("in", true);
        let output = kb.region("out", true);
        let pre = kb.straight_block("pre");
        let zero = kb.push(pre, Opcode::IAdd, [Operand::from(0i64), 0i64.into()]);
        let lp = kb.loop_block("body");
        let i = kb.loop_var(lp, 0i64.into());
        let acc = kb.loop_var(lp, zero.into());
        let x = kb.load(lp, input, i.into(), 0i64.into());
        let acc1 = kb.push(lp, Opcode::IAdd, [acc.into(), x.into()]);
        let two_x = kb.push(lp, Opcode::Shl, [x.into(), 1i64.into()]);
        let y = kb.push(lp, Opcode::IAdd, [two_x.into(), acc1.into()]);
        kb.store(lp, output, i.into(), 500i64.into(), y.into());
        let i1 = kb.push(lp, Opcode::IAdd, [i.into(), 1i64.into()]);
        kb.set_update(i, i1.into());
        kb.set_update(acc, acc1.into());
        kb.build().unwrap()
    }

    fn inputs() -> Memory {
        let mut mem = Memory::new();
        mem.write_block(0, (0..32).map(|v| Word::I(v * 7 - 13)));
        mem
    }

    #[test]
    fn matches_interpreter_on_all_variants() {
        let kernel = streaming_kernel();
        let trip = 16u64;
        let mut expected = inputs();
        interp::run(&kernel, &mut expected, trip).unwrap();
        for arch in imagine::all_variants() {
            let schedule = schedule_kernel(&arch, &kernel, SchedulerConfig::default())
                .unwrap_or_else(|e| panic!("{}: {e}", arch.name()));
            let mut mem = inputs();
            let stats = execute(&kernel, &schedule, &mut mem, trip)
                .unwrap_or_else(|e| panic!("{}: {e}", arch.name()));
            assert_eq!(mem.main, expected.main, "{}", arch.name());
            assert!(stats.cycles > 0);
            assert!(stats.ops_executed >= 6 * trip, "all loop iterations ran");
        }
    }

    #[test]
    fn rf_traffic_counters_balance() {
        let kernel = streaming_kernel();
        let arch = imagine::distributed();
        let schedule = schedule_kernel(&arch, &kernel, SchedulerConfig::default()).unwrap();
        let trip = 16u64;
        let mut mem = inputs();
        let stats = execute(&kernel, &schedule, &mut mem, trip).unwrap();
        // Every bus transfer lands a value in exactly one register file.
        assert_eq!(stats.rf_writes.iter().sum::<u64>(), stats.bus_transfers);
        // Every executed value is read at least once overall, and every
        // file that is read was written (or pre-seeded, which the
        // streaming kernel does not use).
        let reads: u64 = stats.rf_reads.iter().sum();
        assert!(reads >= stats.bus_transfers / 2, "reads {reads}");
        for (name, writes, rd) in stats.rf_traffic(&arch) {
            if rd > 0 {
                assert!(writes > 0, "{name} read but never written");
            }
        }
        // The traffic report covers every register file in the machine.
        assert_eq!(stats.rf_traffic(&arch).len(), arch.num_rfs());
    }

    #[test]
    fn pipelined_iterations_overlap() {
        let kernel = streaming_kernel();
        let arch = imagine::distributed();
        let schedule = schedule_kernel(&arch, &kernel, SchedulerConfig::default()).unwrap();
        let ii = schedule.ii().unwrap() as u64;
        let lb = kernel.loop_block().unwrap();
        let flat = schedule.block_len(lb) as u64;
        // With software pipelining the loop body is longer than II, so
        // iterations overlap.
        let trip = 16u64;
        let mut mem = inputs();
        let stats = execute(&kernel, &schedule, &mut mem, trip).unwrap();
        assert_eq!(
            stats.cycles,
            schedule.block_len(csched_ir::BlockId::from_raw(0)) as u64 + (trip - 1) * ii + flat
        );
        assert!(flat >= ii);
    }

    #[test]
    fn copies_execute_on_clustered_machines() {
        let kernel = streaming_kernel();
        let arch = imagine::clustered(4);
        let schedule = schedule_kernel(&arch, &kernel, SchedulerConfig::default()).unwrap();
        let trip = 8u64;
        let mut mem = inputs();
        let stats = execute(&kernel, &schedule, &mut mem, trip).unwrap();
        if schedule.num_copies() > 0 {
            assert!(stats.copies_executed > 0);
        }
        let mut expected = inputs();
        interp::run(&kernel, &mut expected, trip).unwrap();
        assert_eq!(mem.main, expected.main);
    }
}

#[cfg(test)]
mod utilization_tests {
    use super::*;
    use csched_core::{schedule_kernel, SchedulerConfig};
    use csched_ir::KernelBuilder;
    use csched_machine::imagine;

    #[test]
    fn utilization_counts_add_up() {
        let mut kb = KernelBuilder::new("u");
        let input = kb.region("in", true);
        let output = kb.region("out", true);
        let lp = kb.loop_block("body");
        let i = kb.loop_var(lp, 0i64.into());
        let x = kb.load(lp, input, i.into(), 0i64.into());
        let y = kb.push(lp, Opcode::IMul, [x.into(), 5i64.into()]);
        kb.store(lp, output, i.into(), 50i64.into(), y.into());
        let i1 = kb.push(lp, Opcode::IAdd, [i.into(), 1i64.into()]);
        kb.set_update(i, i1.into());
        let kernel = kb.build().unwrap();

        let arch = imagine::distributed();
        let s = schedule_kernel(&arch, &kernel, SchedulerConfig::default()).unwrap();
        let trip = 6u64;
        let mut mem = Memory::new();
        mem.write_block(0, (0..trip as i64).map(Word::I));
        let stats = execute(&kernel, &s, &mut mem, trip).unwrap();
        let total: u64 = stats.fu_issues.iter().sum();
        assert_eq!(total, stats.ops_executed);
        let util = stats.utilization(&arch);
        assert_eq!(util.len(), arch.num_fus());
        assert!(util.iter().all(|&(_, u)| (0.0..=1.0).contains(&u)));
        assert!(util.iter().any(|&(_, u)| u > 0.0));
    }
}
