//! The simulator must *detect* broken schedules, not silently produce
//! wrong results: shifting an operation off its scheduled cycle makes its
//! reads miss the register file and surfaces as `ValueNotRouted` (or a
//! divergence from the reference, never silence).

use csched_core::{schedule_kernel, SOpId, SchedulerConfig};
use csched_ir::{interp, KernelBuilder, Memory, Word};
use csched_machine::{imagine, Opcode};

fn kernel() -> csched_ir::Kernel {
    let mut kb = KernelBuilder::new("victim");
    let input = kb.region("in", true);
    let output = kb.region("out", true);
    let lp = kb.loop_block("body");
    let i = kb.loop_var(lp, 0i64.into());
    let x = kb.load(lp, input, i.into(), 0i64.into());
    let y = kb.push(lp, Opcode::IMul, [x.into(), 3i64.into()]);
    let z = kb.push(lp, Opcode::IAdd, [y.into(), 1i64.into()]);
    kb.store(lp, output, i.into(), 100i64.into(), z.into());
    let i1 = kb.push(lp, Opcode::IAdd, [i.into(), 1i64.into()]);
    kb.set_update(i, i1.into());
    kb.build().unwrap()
}

fn inputs(trip: u64) -> Memory {
    let mut mem = Memory::new();
    mem.write_block(0, (0..trip as i64).map(Word::I));
    mem
}

#[test]
fn intact_schedule_matches_reference() {
    let kernel = kernel();
    let arch = imagine::distributed();
    let s = schedule_kernel(&arch, &kernel, SchedulerConfig::default()).unwrap();
    let trip = 8;
    let mut mem = inputs(trip);
    csched_sim::execute(&kernel, &s, &mut mem, trip).unwrap();
    let mut expected = inputs(trip);
    interp::run(&kernel, &mut expected, trip).unwrap();
    assert_eq!(mem.main, expected.main);
}

#[test]
fn corrupted_schedule_is_detected_not_silent() {
    let kernel = kernel();
    let arch = imagine::distributed();
    let trip = 8;
    let mut expected = inputs(trip);
    interp::run(&kernel, &mut expected, trip).unwrap();

    // The safety property: a perturbed schedule is either rejected by the
    // validator, or — when the shift lands in genuine slack and the
    // schedule stays well-formed — it must still execute to exactly the
    // reference output. "Accepted but wrong" must never happen.
    let mut rejected = 0usize;
    for victim in 0..kernel.num_ops() {
        for delta in [-3i64, 2] {
            let mut s = schedule_kernel(&arch, &kernel, SchedulerConfig::default()).unwrap();
            s.corrupt_placement_for_tests(SOpId::from_raw(victim), delta);
            let accepted = csched_core::validate::validate(&arch, &kernel, &s).is_ok();
            if !accepted {
                rejected += 1;
                continue;
            }
            let mut mem = inputs(trip);
            csched_sim::execute(&kernel, &s, &mut mem, trip).unwrap_or_else(|e| {
                panic!("op{victim} delta {delta}: validator accepted but simulation failed: {e}")
            });
            assert_eq!(
                mem.main, expected.main,
                "op{victim} delta {delta}: validator accepted a schedule that computes wrong results"
            );
        }
    }
    // Shifting the load or the dependent arithmetic breaks timing or
    // resources in most cases: the validator must be doing real work.
    assert!(
        rejected >= kernel.num_ops(),
        "only {rejected} perturbations rejected"
    );
}
