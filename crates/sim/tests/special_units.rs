//! End-to-end coverage for the scratchpad and permutation units: kernels
//! that route values through `SP0` and `PU0` schedule, validate and
//! simulate identically to the interpreter on every Imagine organisation.

use csched_core::{schedule_kernel, validate, SchedulerConfig};
use csched_ir::{interp, Kernel, KernelBuilder, Memory, Word};
use csched_machine::{imagine, Opcode};

/// Histogram-style kernel: sorts values into scratchpad buckets and reads
/// a rotating window back — every iteration does an SpWrite and an SpRead
/// through the single scratchpad unit.
fn scratch_kernel() -> Kernel {
    let mut kb = KernelBuilder::new("scratch");
    let input = kb.region("in", true);
    let output = kb.region("out", true);
    let scratch = kb.region("tile", false); // scratch re-reads alias
    let lp = kb.loop_block("body");
    let i = kb.loop_var(lp, 0i64.into());
    let x = kb.load(lp, input, i.into(), 0i64.into());
    // tile[i & 3] = x; y = tile[i & 3] * 2 (same address: read-after-write)
    let slot = kb.push(lp, Opcode::And, [i.into(), 3i64.into()]);
    kb.push_mem(
        lp,
        Opcode::SpWrite,
        [slot.into(), 0i64.into(), x.into()],
        scratch,
    );
    let (_, r) = kb.push_mem(lp, Opcode::SpRead, [slot.into(), 0i64.into()], scratch);
    let y = kb.push(lp, Opcode::IMul, [r.unwrap().into(), 2i64.into()]);
    kb.store(lp, output, i.into(), 200i64.into(), y.into());
    let i1 = kb.push(lp, Opcode::IAdd, [i.into(), 1i64.into()]);
    kb.set_update(i, i1.into());
    kb.build().unwrap()
}

/// Rotate-and-mask kernel exercising the permutation unit.
fn permute_kernel() -> Kernel {
    let mut kb = KernelBuilder::new("perm");
    let input = kb.region("in", true);
    let output = kb.region("out", true);
    let lp = kb.loop_block("body");
    let i = kb.loop_var(lp, 0i64.into());
    let x = kb.load(lp, input, i.into(), 0i64.into());
    let amount = kb.push(lp, Opcode::And, [i.into(), 7i64.into()]);
    let rot = kb.push(lp, Opcode::Permute, [x.into(), amount.into()]);
    let mixed = kb.push(lp, Opcode::Xor, [rot.into(), x.into()]);
    kb.store(lp, output, i.into(), 300i64.into(), mixed.into());
    let i1 = kb.push(lp, Opcode::IAdd, [i.into(), 1i64.into()]);
    kb.set_update(i, i1.into());
    kb.build().unwrap()
}

fn check(kernel: &Kernel, trip: u64) {
    let mut expected = Memory::new();
    expected.write_block(0, (0..trip as i64).map(|v| Word::I(v * 9 + 4)));
    interp::run(kernel, &mut expected, trip).unwrap();

    for arch in imagine::all_variants() {
        let s = schedule_kernel(&arch, kernel, SchedulerConfig::default())
            .unwrap_or_else(|e| panic!("{} on {}: {e}", kernel.name(), arch.name()));
        validate::validate(&arch, kernel, &s)
            .unwrap_or_else(|e| panic!("{} on {}: {e:?}", kernel.name(), arch.name()));
        let mut mem = Memory::new();
        mem.write_block(0, (0..trip as i64).map(|v| Word::I(v * 9 + 4)));
        let stats = csched_sim::execute(kernel, &s, &mut mem, trip)
            .unwrap_or_else(|e| panic!("{} on {}: {e}", kernel.name(), arch.name()));
        assert_eq!(
            mem.main,
            expected.main,
            "{} on {}",
            kernel.name(),
            arch.name()
        );
        assert_eq!(
            mem.scratch,
            expected.scratch,
            "{} on {}",
            kernel.name(),
            arch.name()
        );
        assert!(stats.cycles > 0);
    }
}

#[test]
fn scratchpad_unit_end_to_end() {
    // The aliasing scratch region forces loop-carried ordering through the
    // single scratchpad unit; the recurrence binds the II.
    check(&scratch_kernel(), 10);
}

#[test]
fn permute_unit_end_to_end() {
    check(&permute_kernel(), 10);
}

#[test]
fn scratchpad_recurrence_binds_ii() {
    use csched_ir::DepGraph;
    let k = scratch_kernel();
    let g = DepGraph::build(&k, csched_machine::default_latency);
    // spwrite -> spread (same aliasing region) carried ordering exists.
    assert!(g.rec_mii(&k) >= 2);
}
