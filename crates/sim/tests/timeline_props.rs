//! Timeline↔stats reconciliation: across random kernels, architectures
//! and trip counts, the aggregate counters recovered from a recorded
//! [`Timeline`] equal the [`SimStats`] counters of the same run exactly
//! — per functional unit, per bus, per register file, and for the
//! copy/op totals. Recording must also never change behaviour: the
//! stats (and the memory image) with a sink attached are identical to
//! the plain `execute` run.

use csched_core::{schedule_kernel, SchedulerConfig};
use csched_ir::{interp, Kernel, KernelBuilder, Memory, Word};
use csched_machine::{imagine, Architecture, Opcode};
use csched_sim::{execute, execute_timed, Timeline};
use proptest::prelude::*;

/// A loop kernel with `width` dependent chains; `flavor` varies the op
/// mix so different unit classes (and thus buses/ports) get exercised.
fn random_kernel(width: usize, flavor: usize) -> Kernel {
    let mut kb = KernelBuilder::new("rand");
    let input = kb.region("in", true);
    let output = kb.region("out", true);
    let pre = kb.straight_block("pre");
    let bias = kb.push(pre, Opcode::IAdd, [7i64.into(), 0i64.into()]);
    let lp = kb.loop_block("body");
    let i = kb.loop_var(lp, 0i64.into());
    let acc = kb.loop_var(lp, bias.into());
    let mut carried = None;
    for k in 0..width {
        let x = kb.load(lp, input, i.into(), (16 * k as i64).into());
        let y = match (flavor + k) % 3 {
            0 => kb.push(lp, Opcode::IMul, [x.into(), 3i64.into()]),
            1 => kb.push(lp, Opcode::Shl, [x.into(), 1i64.into()]),
            _ => kb.push(lp, Opcode::IAdd, [x.into(), (k as i64 + 1).into()]),
        };
        let z = kb.push(lp, Opcode::IAdd, [y.into(), acc.into()]);
        kb.store(lp, output, i.into(), (500 + 16 * k as i64).into(), z.into());
        carried = Some(z);
    }
    let i1 = kb.push(lp, Opcode::IAdd, [i.into(), 1i64.into()]);
    kb.set_update(i, i1.into());
    if let Some(z) = carried {
        kb.set_update(acc, z.into());
    }
    kb.build().unwrap()
}

fn arch_by_index(index: usize) -> Architecture {
    let mut variants = imagine::all_variants();
    variants.swap_remove(index % variants.len())
}

fn inputs() -> Memory {
    let mut mem = Memory::new();
    mem.write_block(0, (0..64).map(|v| Word::I(v * 5 - 32)));
    mem
}

/// Pads `v` to `n` entries so counters that were never bumped compare
/// equal to pre-sized ones.
fn padded(v: &[u64], n: usize) -> Vec<u64> {
    let mut out = v.to_vec();
    if out.len() < n {
        out.resize(n, 0);
    }
    out
}

proptest! {
    /// Timeline event counts equal the `SimStats` counters byte for
    /// byte, and recording does not perturb execution.
    #[test]
    fn timeline_counts_reconcile_with_stats(
        width in 1usize..4,
        flavor in 0usize..3,
        arch_index in 0usize..4,
        trip in 1u64..8,
    ) {
        let kernel = random_kernel(width, flavor);
        let arch = arch_by_index(arch_index);
        let schedule = schedule_kernel(&arch, &kernel, SchedulerConfig::default())
            .unwrap_or_else(|e| panic!("{}: {e}", arch.name()));

        let mut mem_plain = inputs();
        let plain = execute(&kernel, &schedule, &mut mem_plain, trip).unwrap();

        let mut mem_timed = inputs();
        let mut tl = Timeline::new();
        let timed =
            execute_timed(&kernel, &schedule, &mut mem_timed, trip, Some(&mut tl)).unwrap();

        // Recording never changes behaviour.
        prop_assert_eq!(&plain, &timed);
        prop_assert_eq!(mem_plain.main, mem_timed.main);

        // The interpreter oracle still agrees.
        let mut expected = inputs();
        interp::run(&kernel, &mut expected, trip).unwrap();
        prop_assert_eq!(mem_timed.main, expected.main);

        // Reconciliation: every aggregate equals the stats counter.
        let counts = tl.counts();
        prop_assert_eq!(counts.ops_executed, timed.ops_executed);
        prop_assert_eq!(counts.copies_executed, timed.copies_executed);
        prop_assert_eq!(counts.bus_transfers, timed.bus_transfers);
        let fus = timed.fu_issues.len().max(counts.fu_issues.len());
        prop_assert_eq!(padded(&counts.fu_issues, fus), padded(&timed.fu_issues, fus));
        let buses = timed
            .bus_transfers_per_bus
            .len()
            .max(counts.bus_transfers_per_bus.len());
        prop_assert_eq!(
            padded(&counts.bus_transfers_per_bus, buses),
            padded(&timed.bus_transfers_per_bus, buses)
        );
        let rfs = timed
            .rf_writes
            .len()
            .max(counts.rf_writes.len())
            .max(timed.rf_reads.len())
            .max(counts.rf_reads.len());
        prop_assert_eq!(padded(&counts.rf_writes, rfs), padded(&timed.rf_writes, rfs));
        prop_assert_eq!(padded(&counts.rf_reads, rfs), padded(&timed.rf_reads, rfs));

        // Per-bus counters sum to the aggregate, and the accessor covers
        // every bus in the machine.
        prop_assert_eq!(
            timed.bus_transfers_per_bus.iter().sum::<u64>(),
            timed.bus_transfers
        );
        let traffic = timed.bus_traffic(&arch);
        prop_assert_eq!(traffic.len(), arch.num_buses());
        prop_assert_eq!(
            traffic.iter().map(|&(_, n)| n).sum::<u64>(),
            timed.bus_transfers
        );

        // Events are cycle-bounded by the simulated run length.
        for e in tl.events() {
            prop_assert!(e.cycle() >= 0);
            prop_assert!((e.cycle() as u64) < timed.cycles + 8, "write within latency slack");
        }
    }
}
