//! Golden Chrome-trace acceptance test: the cycle timeline of the
//! paper's motivating example (§2, Figure 4 on the Figure 5 toy
//! machine) exports to a byte-stable Chrome trace-event JSON file, and
//! that file is structurally valid trace-event JSON (Perfetto /
//! `chrome://tracing` loadable).
//!
//! Regenerate the golden file after an intentional scheduler or
//! exporter change with
//! `UPDATE_GOLDEN=1 cargo test -p csched-sim --test timeline_golden`.

use csched_core::{schedule_kernel, validate, SchedulerConfig};
use csched_ir::{Kernel, KernelBuilder, Memory, Word};
use csched_machine::{toy, Opcode};
use csched_sim::{execute_timed, Timeline};

/// Figure 4: `a = load; b = 1+2; c = 3+4; _ = a+b; _ = a+c` plus stores.
fn figure4() -> Kernel {
    let mut kb = KernelBuilder::new("fig4");
    let mem = kb.region("mem", true);
    let b = kb.straight_block("b");
    let a = kb.load(b, mem, 0i64.into(), 0i64.into());
    let bv = kb.push(b, Opcode::IAdd, [1i64.into(), 2i64.into()]);
    let cv = kb.push(b, Opcode::IAdd, [3i64.into(), 4i64.into()]);
    let s4 = kb.push(b, Opcode::IAdd, [a.into(), bv.into()]);
    let s5 = kb.push(b, Opcode::IAdd, [a.into(), cv.into()]);
    kb.store(b, mem, 10i64.into(), 0i64.into(), s4.into());
    kb.store(b, mem, 11i64.into(), 0i64.into(), s5.into());
    kb.build().unwrap()
}

fn motivating_trace() -> (String, Timeline) {
    let arch = toy::motivating_example();
    let kernel = figure4();
    let schedule = schedule_kernel(&arch, &kernel, SchedulerConfig::default()).unwrap();
    validate::validate(&arch, &kernel, &schedule).unwrap();
    let mut mem = Memory::new();
    mem.write_block(0, [Word::I(100)]);
    let mut tl = Timeline::new();
    let stats = execute_timed(&kernel, &schedule, &mut mem, 1, Some(&mut tl)).unwrap();
    assert_eq!(stats.ops_executed, 7 + stats.copies_executed);
    assert_eq!(mem.main.get(&10), Some(&Word::I(103)));
    assert_eq!(mem.main.get(&11), Some(&Word::I(107)));
    (tl.chrome_trace(&arch, &schedule), tl)
}

#[test]
fn motivating_example_timeline_matches_golden_file() {
    let (got, _) = motivating_trace();
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/motivating_timeline.json"
    );
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(path).expect(
        "golden file missing; regenerate with UPDATE_GOLDEN=1 \
         cargo test -p csched-sim --test timeline_golden",
    );
    assert_eq!(
        got, want,
        "timeline diverged from golden; if the scheduler or exporter \
         change is intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

/// Structural trace-event JSON checks, independent of the golden bytes:
/// the export is one JSON object with a `traceEvents` array whose
/// entries carry the keys the Chrome trace-event format requires for
/// their phase ("M" metadata naming tracks, "X" complete events with
/// timestamps and durations).
#[test]
fn timeline_export_is_valid_trace_event_json() {
    let (got, tl) = motivating_trace();
    assert!(got.starts_with("{\"displayTimeUnit\":"));
    assert!(got.trim_end().ends_with("]}"));
    assert!(got.contains("\"traceEvents\":["));

    let mut metadata = 0usize;
    let mut complete = 0usize;
    for line in got.lines() {
        let line = line.trim().trim_end_matches(',');
        if !line.starts_with('{') || !line.contains("\"ph\":") {
            continue;
        }
        assert!(line.ends_with('}'), "{line}");
        assert_eq!(
            line.matches('"').count() % 2,
            0,
            "unbalanced quotes: {line}"
        );
        assert!(line.contains("\"pid\":"), "{line}");
        assert!(line.contains("\"tid\":"), "{line}");
        if line.contains("\"ph\":\"M\"") {
            metadata += 1;
            assert!(
                line.contains("\"name\":\"process_name\"")
                    || line.contains("\"name\":\"thread_name\"")
                    || line.contains("\"name\":\"thread_sort_index\""),
                "{line}"
            );
        } else if line.contains("\"ph\":\"X\"") {
            complete += 1;
            assert!(line.contains("\"ts\":"), "{line}");
            assert!(line.contains("\"dur\":"), "{line}");
            assert!(line.contains("\"name\":\""), "{line}");
        } else {
            panic!("unexpected phase: {line}");
        }
    }
    // Every recorded event became exactly one complete event, and every
    // track got named.
    assert_eq!(complete, tl.events().len());
    assert!(
        metadata >= 2,
        "expected track-naming metadata, got {metadata}"
    );
}
