//! # csched-bench — benchmark harnesses for the paper's tables and figures
//!
//! Each Criterion bench target regenerates one artifact of the paper's
//! evaluation and measures the scheduler while doing so:
//!
//! - `figure28` — per-kernel speedup vs register-file architecture;
//! - `figure29` — overall (geometric-mean) speedup, plus the §5 claims;
//! - `cost_model` — Figures 25–27 and the §8 scaling projection;
//! - `ablations` — the §4.4/§4.6 design choices (operation order, the
//!   eq 1 communication-cost heuristic, closing-first stub ordering,
//!   permutation search budget);
//! - `motivating` — the §2 example on the Figure 5 machine.
//!
//! Run with `cargo bench -p csched-bench`; each target prints its table
//! before measuring.
//!
//! - `trace_overhead` — the observability layer's zero-cost-when-disabled
//!   claim: untraced scheduling vs scheduling into a ring-buffer sink.

#![warn(missing_docs)]

/// Kernels small enough to schedule repeatedly inside a Criterion loop.
pub const FAST_KERNELS: &[&str] = &["FFT", "Merge", "Block Warp", "Sort", "DCT"];
