//! Figure 29: overall speedup vs register file architecture (geometric
//! mean over the Table 1 kernels), plus the §5 textual claims.
//!
//! Prints the figure, asserts the qualitative claims (shape, not absolute
//! numbers), then benchmarks the full-grid evaluation end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use csched_core::SchedulerConfig;

fn print_and_check_figure29() {
    let workloads = csched_kernels::all();
    let archs = csched_machine::imagine::all_variants();
    let grid = csched_eval::run_grid(&workloads, &archs, &SchedulerConfig::default(), false)
        .expect("the whole grid schedules");
    println!("{}", csched_eval::report::figure29(&grid));

    let overall = grid.overall_speedups();
    // The paper's shape: central = 1.0 is the upper bound; distributed is
    // close behind; the clustered organisations pay for their copies
    // (paper: 1.00 / 0.82 / 0.82 / 0.98).
    assert!((overall[0] - 1.0).abs() < 1e-9, "central is the baseline");
    assert!(overall[3] > overall[2], "distributed beats clustered(4)");
    assert!(
        overall[3] >= 0.8,
        "distributed near parity: {:.2}",
        overall[3]
    );
    for (i, v) in overall.iter().enumerate().skip(1) {
        assert!(*v <= 1.0 + 1e-9, "architecture {i} beat central: {v:.2}");
    }
    println!(
        "claims: distributed/central = {:.2} (paper 0.98), distributed/clustered4 = {:.2} (paper 1.20)",
        overall[3],
        overall[3] / overall[2]
    );
}

fn bench_grid(c: &mut Criterion) {
    print_and_check_figure29();

    // Benchmark the full evaluation pipeline on the fast kernels only.
    let workloads: Vec<_> = csched_kernels::all()
        .into_iter()
        .filter(|w| csched_bench::FAST_KERNELS.contains(&w.kernel.name()))
        .collect();
    let archs = csched_machine::imagine::all_variants();
    let mut group = c.benchmark_group("figure29");
    group.sample_size(10);
    group.bench_function("grid/fast-kernels/no-sim", |b| {
        b.iter(|| {
            csched_eval::run_grid(&workloads, &archs, &SchedulerConfig::default(), false)
                .expect("schedules")
                .overall_speedups()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_grid);
criterion_main!(benches);
