//! Measures the cost of the observability layer: scheduling with tracing
//! disabled must match the pre-trace baseline (the sink test in the
//! engine is a branch on an `Option` that is `None`), and scheduling into
//! a ring-buffer sink bounds the cost of full event capture.
//!
//! Run with `cargo bench -p csched-bench --bench trace_overhead`; compare
//! `untraced` against `ring_buffer` — the former is the zero-cost claim.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use csched_core::{schedule_kernel, schedule_kernel_traced, RingBufferSink, SchedulerConfig};
use csched_ir::{Kernel, KernelBuilder};
use csched_machine::{imagine, toy, Opcode};

fn figure4() -> Kernel {
    let mut kb = KernelBuilder::new("figure4");
    let mem = kb.region("mem", true);
    let b = kb.straight_block("fragment");
    let a = kb.load(b, mem, 0i64.into(), 0i64.into());
    let bv = kb.push(b, Opcode::IAdd, [1i64.into(), 2i64.into()]);
    let cv = kb.push(b, Opcode::IAdd, [3i64.into(), 4i64.into()]);
    let s4 = kb.push(b, Opcode::IAdd, [a.into(), bv.into()]);
    let s5 = kb.push(b, Opcode::IAdd, [a.into(), cv.into()]);
    kb.store(b, mem, 10i64.into(), 0i64.into(), s4.into());
    kb.store(b, mem, 11i64.into(), 0i64.into(), s5.into());
    kb.build().expect("figure 4 fragment is well-formed")
}

fn bench_pair(c: &mut Criterion, tag: &str, arch: &csched_machine::Architecture, kernel: &Kernel) {
    c.bench_function(&format!("{tag}/untraced"), |b| {
        b.iter(|| {
            schedule_kernel(
                black_box(arch),
                black_box(kernel),
                SchedulerConfig::default(),
            )
            .expect("schedules")
            .num_copies()
        })
    });
    c.bench_function(&format!("{tag}/ring_buffer"), |b| {
        b.iter(|| {
            let mut sink = RingBufferSink::new(4096);
            let copies = schedule_kernel_traced(
                black_box(arch),
                black_box(kernel),
                SchedulerConfig::default(),
                &mut sink,
            )
            .expect("schedules")
            .num_copies();
            (copies, sink.total())
        })
    });
}

fn bench_trace_overhead(c: &mut Criterion) {
    let toy_arch = toy::motivating_example();
    bench_pair(c, "trace_overhead/motivating", &toy_arch, &figure4());

    let dist = imagine::distributed();
    let merge = csched_kernels::by_name("Merge").expect("known kernel");
    bench_pair(c, "trace_overhead/merge_distributed", &dist, &merge.kernel);
}

criterion_group!(benches, bench_trace_overhead);
criterion_main!(benches);
