//! Figures 25–27 (register-file area / power / delay bars) and the §8
//! scaling projection, plus a Criterion measurement of the cost model
//! itself across machine scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csched_machine::{cost, imagine};

fn print_figures() {
    let rows = csched_eval::costs::figures_25_27().expect("paper machines have positive costs");
    println!("{}", csched_eval::report::figures_25_27(&rows));
    println!(
        "{}",
        csched_eval::report::headline(
            &csched_eval::costs::headline().expect("paper machines have positive costs"),
            None
        )
    );
    println!(
        "{}",
        csched_eval::report::scaling(&csched_eval::costs::scaling(&[1, 2, 4, 8]))
    );
}

fn bench_cost_model(c: &mut Criterion) {
    print_figures();

    let params = cost::CostParams::default();
    let mut group = c.benchmark_group("cost_model");
    for scale in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("estimate/distributed", scale),
            &scale,
            |b, &s| {
                let arch = imagine::distributed_scaled(s);
                b.iter(|| cost::estimate(&arch, &params).area())
            },
        );
        group.bench_with_input(
            BenchmarkId::new("estimate/central", scale),
            &scale,
            |b, &s| {
                let arch = imagine::central_scaled(s);
                b.iter(|| cost::estimate(&arch, &params).area())
            },
        );
    }
    group.bench_function("copy_connectivity/distributed", |b| {
        let arch = imagine::distributed();
        b.iter(|| arch.copy_connectivity().is_copy_connected())
    });
    group.finish();
}

criterion_group!(benches, bench_cost_model);
criterion_main!(benches);
