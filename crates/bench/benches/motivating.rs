//! The §2 motivating example (Figures 4–7) as a micro-benchmark: the
//! smallest workload that requires communication scheduling. Prints the
//! schedule grid, then measures the placement engine on it.

use criterion::{criterion_group, criterion_main, Criterion};
use csched_core::{schedule_kernel, SchedulerConfig};
use csched_ir::{Kernel, KernelBuilder};
use csched_machine::{toy, Opcode};

fn figure4() -> Kernel {
    let mut kb = KernelBuilder::new("figure4");
    let mem = kb.region("mem", true);
    let b = kb.straight_block("fragment");
    let a = kb.load(b, mem, 0i64.into(), 0i64.into());
    let bv = kb.push(b, Opcode::IAdd, [1i64.into(), 2i64.into()]);
    let cv = kb.push(b, Opcode::IAdd, [3i64.into(), 4i64.into()]);
    let s4 = kb.push(b, Opcode::IAdd, [a.into(), bv.into()]);
    let s5 = kb.push(b, Opcode::IAdd, [a.into(), cv.into()]);
    kb.store(b, mem, 10i64.into(), 0i64.into(), s4.into());
    kb.store(b, mem, 11i64.into(), 0i64.into(), s5.into());
    kb.build().expect("figure 4 fragment is well-formed")
}

fn bench_motivating(c: &mut Criterion) {
    let arch = toy::motivating_example();
    let kernel = figure4();
    let schedule = schedule_kernel(&arch, &kernel, SchedulerConfig::default()).expect("schedules");
    println!("{}", schedule.render(&arch, &kernel));
    println!(
        "copies inserted: {} (the paper's Figure 13 route for `a`)",
        schedule.num_copies()
    );

    c.bench_function("motivating/schedule", |b| {
        b.iter(|| {
            schedule_kernel(&arch, &kernel, SchedulerConfig::default())
                .expect("schedules")
                .num_copies()
        })
    });
}

criterion_group!(benches, bench_motivating);
criterion_main!(benches);
