//! Ablations of the scheduler design choices the paper calls out:
//!
//! - §4.6 operation order vs cycle order ("operations are scheduled in
//!   operation order, rather than cycle order");
//! - §4.6 eq 1, the communication-cost unit-assignment heuristic;
//! - §4.4 closing-first / smallest-copy-range-first stub search ordering;
//! - §4.4 the permutation search budget.
//!
//! For each configuration the harness prints the achieved IIs and copy
//! counts on the distributed and clustered(4) machines (quality), and
//! Criterion measures the scheduling time (cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csched_core::{schedule_kernel, SchedulerConfig};
use csched_machine::Architecture;

fn configs() -> Vec<(&'static str, SchedulerConfig)> {
    let tiny_budget = SchedulerConfig {
        search_budget: 8,
        ..SchedulerConfig::default()
    };
    vec![
        ("paper", SchedulerConfig::paper()),
        ("cycle-order", SchedulerConfig::cycle_order()),
        ("no-comm-cost", SchedulerConfig::without_comm_cost()),
        ("no-closing-first", SchedulerConfig::without_closing_first()),
        ("budget-8", tiny_budget),
    ]
}

fn quality_table(archs: &[Architecture]) {
    println!("Ablation: II (copies) per configuration");
    print!("{:<18}", "config");
    for arch in archs {
        for name in csched_bench::FAST_KERNELS {
            print!(
                "{:>18}",
                format!("{}/{}", name, arch.name().replace("imagine-", ""))
            );
        }
    }
    println!();
    for (label, config) in configs() {
        print!("{label:<18}");
        // Cap the II walk so configurations that cannot schedule a kernel
        // report `fail` quickly; 64 is far above every achievable II here.
        let config = SchedulerConfig {
            max_ii: 64,
            ..config
        };
        for arch in archs {
            for name in csched_bench::FAST_KERNELS {
                let w = csched_kernels::by_name(name).expect("known kernel");
                match schedule_kernel(arch, &w.kernel, config.clone()) {
                    Ok(s) => print!(
                        "{:>18}",
                        format!("{} ({})", s.ii().unwrap_or(0), s.num_copies())
                    ),
                    Err(_) => print!("{:>18}", "fail"),
                }
            }
        }
        println!();
    }
    println!();
}

fn bench_ablations(c: &mut Criterion) {
    let archs = vec![
        csched_machine::imagine::distributed(),
        csched_machine::imagine::clustered(4),
    ];
    quality_table(&archs);

    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    let w = csched_kernels::by_name("FFT").expect("known kernel");
    for (label, config) in configs() {
        // Cap the II search for timing purposes: ablated configurations
        // that cannot schedule a kernel at any II would otherwise walk to
        // `max_ii` on every sample; "time to fail fast" is the meaningful
        // number for them.
        let timed = SchedulerConfig {
            max_ii: 32,
            ..config
        };
        for arch in &archs {
            group.bench_with_input(
                BenchmarkId::new(label, arch.name()),
                &(&w, arch, &timed),
                |b, (w, arch, config)| {
                    b.iter(|| {
                        schedule_kernel(arch, &w.kernel, (*config).clone())
                            .map(|s| s.ii())
                            .ok()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
