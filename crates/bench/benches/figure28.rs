//! Figure 28: kernel speedup vs register file architecture.
//!
//! Prints the full per-kernel table (the paper's figure as rows), then
//! benchmarks the scheduler on a representative kernel per architecture so
//! regressions in communication-scheduling cost show up in Criterion
//! history.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csched_core::{schedule_kernel, SchedulerConfig};

fn print_figure28() {
    let workloads = csched_kernels::all();
    let archs = csched_machine::imagine::all_variants();
    let grid = csched_eval::run_grid(&workloads, &archs, &SchedulerConfig::default(), false)
        .expect("the whole grid schedules");
    println!("{}", csched_eval::report::figure28(&grid));
}

fn bench_scheduler(c: &mut Criterion) {
    print_figure28();

    let mut group = c.benchmark_group("figure28/schedule");
    group.sample_size(10);
    for name in csched_bench::FAST_KERNELS {
        let w = csched_kernels::by_name(name).expect("known kernel");
        for arch in csched_machine::imagine::all_variants() {
            group.bench_with_input(
                BenchmarkId::new(*name, arch.name()),
                &(&w, &arch),
                |b, (w, arch)| {
                    b.iter(|| {
                        schedule_kernel(arch, &w.kernel, SchedulerConfig::default())
                            .expect("schedules")
                            .ii()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scheduler);
criterion_main!(benches);
