//! Schedule metrics: a per-kernel×architecture summary of schedule
//! quality and resource pressure.
//!
//! Where [`trace`](crate::trace) records the scheduler's *search*
//! (every attempt, including rolled-back subtrees),
//! [`ScheduleMetrics`] summarises the *surviving schedule*: the achieved
//! II against its ResMII/RecMII lower bounds, how many copies each
//! communication cost, and a per-resource occupancy profile obtained by
//! replaying the schedule's resource claims exactly as the validator
//! does ([`validate`](crate::validate)) — issue slots for every
//! operation, one write-stub claim per distinct `(producer, stub)`, one
//! read-stub claim per consumer operand.
//!
//! The summary serialises to JSON ([`ScheduleMetrics::to_json`], used by
//! `csched-eval`'s `table1 --metrics-json`) and renders as a
//! reservation-table/occupancy heatmap
//! ([`ScheduleMetrics::render_heatmap`], surfaced by the `one-cell
//! --heatmap` binary).

use std::fmt::Write as _;

use csched_ir::{DepGraph, Kernel};
use csched_machine::{Architecture, ReadPortId, Resource, ResourceMap, RfId, WritePortId};

use crate::driver::{min_latency, res_mii};
use crate::retry::ScheduleReport;
use crate::schedule::Schedule;
use crate::table::{ResourceTable, TableMode};
use crate::trace::json_escape;
use crate::universe::SOpId;

/// Occupancy profile of one resource over a block's rows.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ResourceLoad {
    /// Display name of the resource (bus name, or `RF.w0` / `RF.r1` for
    /// ports, or the unit name for issue slots).
    pub name: String,
    /// Claims per row: `profile[c]` is the number of distinct claims on
    /// row `c` (0 = free).
    pub profile: Vec<usize>,
}

impl ResourceLoad {
    /// Number of rows with at least one claim.
    pub fn busy_rows(&self) -> usize {
        self.profile.iter().filter(|&&n| n > 0).count()
    }

    /// Total claims over all rows.
    pub fn total(&self) -> usize {
        self.profile.iter().sum()
    }
}

/// Per-block occupancy: one [`ResourceLoad`] per issue slot, bus, and
/// register-file port.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BlockOccupancy {
    /// Block name from the kernel.
    pub name: String,
    /// Whether this is the software-pipelined loop block (modulo rows).
    pub is_loop: bool,
    /// Number of rows profiled: the II for the loop block, the block
    /// length for straight-line blocks.
    pub rows: i64,
    /// Issue-slot occupancy per functional unit.
    pub fu_issue: Vec<ResourceLoad>,
    /// Bus occupancy.
    pub buses: Vec<ResourceLoad>,
    /// Register-file write-port occupancy.
    pub write_ports: Vec<ResourceLoad>,
    /// Register-file read-port occupancy.
    pub read_ports: Vec<ResourceLoad>,
}

/// Cost of one retry-ladder rung, carried into the metrics summary from a
/// [`ScheduleReport`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RungCost {
    /// Zero-based attempt number.
    pub attempt: usize,
    /// The relaxation the rung applied.
    pub relaxation: String,
    /// II cap the rung searched under.
    pub max_ii: u32,
    /// Placement attempts granted from the retry budget.
    pub attempts_granted: u64,
    /// Whether the rung produced a schedule.
    pub ok: bool,
}

/// Summary of one finished schedule on one architecture.
///
/// Built by [`ScheduleMetrics::compute`]; retry-ladder costs can be
/// attached with [`ScheduleMetrics::with_report`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ScheduleMetrics {
    /// Kernel name.
    pub kernel: String,
    /// Architecture name.
    pub arch: String,
    /// Achieved loop initiation interval (`None` for loop-free kernels).
    pub ii: Option<u32>,
    /// Recurrence-constrained lower bound on the II.
    pub rec_mii: u32,
    /// Resource-constrained lower bound on the II.
    pub res_mii: u32,
    /// Number of producer→consumer communications in the kernel (between
    /// kernel operations; copy legs are not counted separately).
    pub comms: usize,
    /// Copy operations inserted by the scheduler.
    pub copies: usize,
    /// Histogram of copies per communication: `copies_per_comm[k]`
    /// communications needed exactly `k` copies.
    pub copies_per_comm: Vec<usize>,
    /// Total placement attempts made while scheduling.
    pub attempts: u64,
    /// Placement attempts rejected by the five-step check.
    pub rejections: u64,
    /// Attempts divided by the number of scheduled operations (kernel
    /// operations plus copies).
    pub attempts_per_op: f64,
    /// Number of candidate IIs tried (1 = scheduled at the first II).
    pub ii_tried: u32,
    /// Whether the §4.5 slack-widening backtracking round was needed.
    pub backtracked: bool,
    /// Per-block resource occupancy.
    pub blocks: Vec<BlockOccupancy>,
    /// Retry-ladder costs, when attached via
    /// [`ScheduleMetrics::with_report`].
    pub retry_rungs: Vec<RungCost>,
}

impl ScheduleMetrics {
    /// Computes the metrics for `schedule` by replaying its resource
    /// claims into fresh per-block tables, exactly as the validator does.
    ///
    /// The replay is best-effort: `schedule` is assumed to have passed
    /// [`validate`](crate::validate::validate), so claim failures (which
    /// cannot happen on a valid schedule) are ignored rather than
    /// reported here.
    pub fn compute(arch: &Architecture, kernel: &Kernel, schedule: &Schedule) -> Self {
        let u = schedule.universe();
        let stats = schedule.stats();
        let ii = schedule.ii();
        let rows_of = |block: csched_ir::BlockId| -> i64 {
            if kernel.block(block).is_loop() {
                ii.unwrap_or(1) as i64
            } else {
                schedule.block_len(block)
            }
        };

        // --- resource replay (mirrors validate.rs) ---
        let map = ResourceMap::new(arch);
        let mut tables: Vec<ResourceTable> = kernel
            .blocks()
            .iter()
            .map(|b| {
                let mode = if b.is_loop() {
                    TableMode::Modulo(ii.unwrap_or(1).max(1))
                } else {
                    TableMode::Linear
                };
                ResourceTable::new(map.clone(), mode)
            })
            .collect();
        for op in u.op_ids() {
            let p = schedule.placement(op);
            let block = u.op(op).block;
            let interval = arch
                .fu(p.fu)
                .capability(u.op(op).opcode)
                .map(|c| c.issue_interval)
                .unwrap_or(1);
            let _ = tables[block.index()].place_issue(p.cycle, p.fu, interval, op);
        }
        let mut placed_writes: std::collections::HashSet<(SOpId, csched_machine::WriteStub)> =
            std::collections::HashSet::new();
        let mut placed_reads: std::collections::HashSet<(SOpId, usize)> =
            std::collections::HashSet::new();
        for cid in u.comm_ids() {
            for (leg_id, route) in schedule.transport(cid) {
                let leg = u.comm(leg_id);
                let p = schedule.placement(leg.producer);
                let q = schedule.placement(leg.consumer);
                let pb = u.op(leg.producer).block;
                let qb = u.op(leg.consumer).block;
                if placed_writes.insert((leg.producer, route.wstub)) {
                    let fanout = arch.fu(p.fu).output_fanout();
                    let _ = tables[pb.index()].place_write_stub(
                        p.completion(),
                        route.wstub,
                        leg.producer,
                        fanout,
                    );
                }
                if placed_reads.insert((leg.consumer, leg.slot)) {
                    let _ = tables[qb.index()].place_read_stub(
                        q.cycle,
                        route.rstub,
                        leg.consumer,
                        leg.slot,
                    );
                }
            }
        }

        // --- per-block occupancy profiles ---
        let blocks: Vec<BlockOccupancy> = kernel
            .block_ids()
            .map(|block| {
                let rows = rows_of(block);
                let table = &tables[block.index()];
                let fu_issue = arch
                    .fu_ids()
                    .map(|f| ResourceLoad {
                        name: arch.fu(f).name().to_string(),
                        profile: table.occupancy_profile(Resource::FuIssue(f), rows),
                    })
                    .collect();
                let buses = arch
                    .bus_ids()
                    .map(|b| ResourceLoad {
                        name: arch.bus(b).name().to_string(),
                        profile: table.occupancy_profile(Resource::Bus(b), rows),
                    })
                    .collect();
                let write_ports = (0..arch.num_write_ports())
                    .map(|i| {
                        let port = WritePortId::from_raw(i);
                        ResourceLoad {
                            name: port_name(arch, arch.write_port_rf(port), i, true),
                            profile: table.occupancy_profile(Resource::WritePort(port), rows),
                        }
                    })
                    .collect();
                let read_ports = (0..arch.num_read_ports())
                    .map(|i| {
                        let port = ReadPortId::from_raw(i);
                        ResourceLoad {
                            name: port_name(arch, arch.read_port_rf(port), i, false),
                            profile: table.occupancy_profile(Resource::ReadPort(port), rows),
                        }
                    })
                    .collect();
                BlockOccupancy {
                    name: kernel.block(block).name().to_string(),
                    is_loop: kernel.block(block).is_loop(),
                    rows,
                    fu_issue,
                    buses,
                    write_ports,
                    read_ports,
                }
            })
            .collect();

        // --- copies per communication ---
        let num_kernel_ops = u.num_kernel_ops();
        let mut copies_per_comm: Vec<usize> = Vec::new();
        let mut comms = 0usize;
        for cid in u.comm_ids() {
            let c = u.comm(cid);
            if c.producer.index() >= num_kernel_ops || c.consumer.index() >= num_kernel_ops {
                continue; // a leg added for a copy, not a kernel communication
            }
            comms += 1;
            let legs = schedule.transport(cid).len();
            let k = legs.saturating_sub(1);
            if copies_per_comm.len() <= k {
                copies_per_comm.resize(k + 1, 0);
            }
            copies_per_comm[k] += 1;
        }

        let rec_mii = if kernel.loop_block().is_some() {
            DepGraph::build(kernel, |opcode| min_latency(arch, opcode)).rec_mii(kernel)
        } else {
            1
        };
        let num_ops = u.num_ops();
        let attempts_per_op = if num_ops > 0 {
            stats.attempts as f64 / num_ops as f64
        } else {
            0.0
        };

        ScheduleMetrics {
            kernel: schedule.kernel_name().to_string(),
            arch: schedule.arch_name().to_string(),
            ii,
            rec_mii,
            res_mii: res_mii(arch, kernel),
            comms,
            copies: schedule.num_copies(),
            copies_per_comm,
            attempts: stats.attempts,
            rejections: stats.rejections,
            attempts_per_op,
            ii_tried: stats.ii_tried,
            backtracked: stats.backtracked,
            blocks,
            retry_rungs: Vec::new(),
        }
    }

    /// Attaches the retry-ladder costs of `report` (one [`RungCost`] per
    /// attempt, in order).
    pub fn with_report(mut self, report: &ScheduleReport) -> Self {
        self.retry_rungs = report
            .attempts
            .iter()
            .map(|a| RungCost {
                attempt: a.attempt,
                relaxation: a.relaxation.to_string(),
                max_ii: a.max_ii,
                attempts_granted: a.attempts_granted,
                ok: a.error.is_none(),
            })
            .collect();
        self
    }

    /// Renders the metrics as one JSON object.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(512);
        let _ = write!(
            s,
            "{{\"kernel\":\"{}\",\"arch\":\"{}\",\"ii\":{},\"rec_mii\":{},\"res_mii\":{}",
            json_escape(&self.kernel),
            json_escape(&self.arch),
            match self.ii {
                Some(ii) => ii.to_string(),
                None => "null".to_string(),
            },
            self.rec_mii,
            self.res_mii,
        );
        let _ = write!(
            s,
            ",\"comms\":{},\"copies\":{},\"copies_per_comm\":{:?}",
            self.comms, self.copies, self.copies_per_comm
        );
        let _ = write!(
            s,
            ",\"attempts\":{},\"rejections\":{},\"attempts_per_op\":{:.3},\"ii_tried\":{},\
             \"backtracked\":{}",
            self.attempts, self.rejections, self.attempts_per_op, self.ii_tried, self.backtracked
        );
        s.push_str(",\"retry_rungs\":[");
        for (i, r) in self.retry_rungs.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"attempt\":{},\"relaxation\":\"{}\",\"max_ii\":{},\"attempts_granted\":{},\
                 \"ok\":{}}}",
                r.attempt,
                json_escape(&r.relaxation),
                r.max_ii,
                r.attempts_granted,
                r.ok
            );
        }
        s.push_str("],\"blocks\":[");
        for (i, b) in self.blocks.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"name\":\"{}\",\"is_loop\":{},\"rows\":{}",
                json_escape(&b.name),
                b.is_loop,
                b.rows
            );
            for (key, loads) in [
                ("fu_issue", &b.fu_issue),
                ("buses", &b.buses),
                ("write_ports", &b.write_ports),
                ("read_ports", &b.read_ports),
            ] {
                let _ = write!(s, ",\"{key}\":[");
                for (j, load) in loads.iter().enumerate() {
                    if j > 0 {
                        s.push(',');
                    }
                    let _ = write!(
                        s,
                        "{{\"name\":\"{}\",\"profile\":{:?}}}",
                        json_escape(&load.name),
                        load.profile
                    );
                }
                s.push(']');
            }
            s.push('}');
        }
        s.push_str("]}");
        s
    }

    /// Renders the per-block occupancy as a text heatmap: resources as
    /// rows, table rows (cycles) as columns; `.` marks a free row, digits
    /// the claim count, `#` ten or more claims.
    pub fn render_heatmap(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} on {}: II {} (RecMII {}, ResMII {}), {} copies over {} comms",
            self.kernel,
            self.arch,
            match self.ii {
                Some(ii) => ii.to_string(),
                None => "-".to_string(),
            },
            self.rec_mii,
            self.res_mii,
            self.copies,
            self.comms
        );
        for b in &self.blocks {
            let _ = writeln!(
                out,
                "block {} ({}, {} rows):",
                b.name,
                if b.is_loop { "modulo" } else { "linear" },
                b.rows
            );
            let width = b
                .fu_issue
                .iter()
                .chain(&b.buses)
                .chain(&b.write_ports)
                .chain(&b.read_ports)
                .map(|l| l.name.len())
                .max()
                .unwrap_or(4)
                .max(4);
            let mut cycles = String::new();
            for c in 0..b.rows {
                let _ = write!(cycles, "{}", c % 10);
            }
            let _ = writeln!(out, "  {:width$}  {}", "", cycles);
            for (label, loads) in [
                ("issue", &b.fu_issue),
                ("bus", &b.buses),
                ("wport", &b.write_ports),
                ("rport", &b.read_ports),
            ] {
                for load in loads.iter() {
                    let cells: String = load
                        .profile
                        .iter()
                        .map(|&n| match n {
                            0 => '.',
                            1..=9 => char::from(b'0' + n as u8),
                            _ => '#',
                        })
                        .collect();
                    let _ = writeln!(out, "  {:width$}  {}  [{}]", load.name, cells, label);
                }
            }
        }
        out
    }
}

/// `RF.w0` / `RF.r1`-style port label: the owning file's name plus the
/// port's ordinal *within that file*.
fn port_name(arch: &Architecture, rf: RfId, global_index: usize, write: bool) -> String {
    let ordinal = if write {
        (0..global_index)
            .filter(|&i| arch.write_port_rf(WritePortId::from_raw(i)) == rf)
            .count()
    } else {
        (0..global_index)
            .filter(|&i| arch.read_port_rf(ReadPortId::from_raw(i)) == rf)
            .count()
    };
    format!(
        "{}.{}{}",
        arch.rf(rf).name(),
        if write { 'w' } else { 'r' },
        ordinal
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::schedule_kernel;
    use crate::SchedulerConfig;
    use csched_ir::KernelBuilder;
    use csched_machine::{toy, Opcode};

    fn figure4() -> Kernel {
        let mut kb = KernelBuilder::new("fig4");
        let mem = kb.region("mem", true);
        let b = kb.straight_block("b");
        let a = kb.load(b, mem, 0i64.into(), 0i64.into());
        let s2 = kb.push(b, Opcode::IAdd, [1i64.into(), 2i64.into()]);
        let s3 = kb.push(b, Opcode::IAdd, [3i64.into(), 4i64.into()]);
        let s4 = kb.push(b, Opcode::IAdd, [a.into(), s2.into()]);
        let s5 = kb.push(b, Opcode::IAdd, [a.into(), s3.into()]);
        kb.store(b, mem, 10i64.into(), 0i64.into(), s4.into());
        kb.store(b, mem, 11i64.into(), 0i64.into(), s5.into());
        kb.build().unwrap()
    }

    #[test]
    fn metrics_of_the_motivating_example() {
        let arch = toy::motivating_example();
        let kernel = figure4();
        let schedule = schedule_kernel(&arch, &kernel, SchedulerConfig::default()).unwrap();
        let m = ScheduleMetrics::compute(&arch, &kernel, &schedule);
        assert_eq!(m.kernel, "fig4");
        assert_eq!(m.ii, None);
        assert_eq!(m.copies, schedule.num_copies());
        assert!(m.copies >= 1, "the motivating example needs a copy");
        // Every kernel communication lands in exactly one histogram bin.
        assert_eq!(m.copies_per_comm.iter().sum::<usize>(), m.comms);
        // At least one communication (a → s4, paper Figure 13) needed a
        // copy, so the histogram has a non-zero-copies bin.
        assert!(m.copies_per_comm.len() >= 2);
        assert!(m.copies_per_comm[1..].iter().sum::<usize>() >= 1);
        assert!(m.attempts > 0 && m.attempts_per_op > 0.0);
        // One block, linear, with as many rows as the block is long.
        assert_eq!(m.blocks.len(), 1);
        assert!(!m.blocks[0].is_loop);
        assert!(m.blocks[0].rows > 0);
        // Issue-slot occupancy counts every op exactly once per issue row.
        let issued: usize = m.blocks[0].fu_issue.iter().map(|l| l.total()).sum();
        assert_eq!(issued, schedule.universe().num_ops());
        let json = m.to_json();
        assert!(json.starts_with("{\"kernel\":\"fig4\""));
        assert!(json.contains(&format!("\"copies\":{}", m.copies)));
        let heat = m.render_heatmap();
        assert!(heat.contains("block b (linear"));
        assert!(heat.contains("[bus]"));
    }

    #[test]
    fn heatmap_marks_loop_blocks_modulo() {
        let arch = toy::motivating_example();
        let mut kb = KernelBuilder::new("looped");
        let lp = kb.loop_block("body");
        let i = kb.loop_var(lp, 0i64.into());
        let i1 = kb.push(lp, Opcode::IAdd, [i.into(), 1i64.into()]);
        kb.set_update(i, i1.into());
        let kernel = kb.build().unwrap();
        let schedule = schedule_kernel(&arch, &kernel, SchedulerConfig::default()).unwrap();
        let m = ScheduleMetrics::compute(&arch, &kernel, &schedule);
        assert_eq!(m.ii, Some(schedule.ii().unwrap()));
        assert!(m.rec_mii >= 1 && m.res_mii >= 1);
        let body = &m.blocks[0];
        assert!(body.is_loop);
        assert_eq!(body.rows, m.ii.unwrap() as i64);
        assert!(m.render_heatmap().contains("(modulo"));
    }

    /// Independent recount of every distinct claim a schedule makes,
    /// without going through [`ResourceTable`]: plain hash sets keyed by
    /// `(resource, row, claim identity)`, mirroring the sharing rules
    /// (identical claims count once; out-of-range rows are dropped, as
    /// the profile does).
    fn recount(
        arch: &Architecture,
        kernel: &Kernel,
        schedule: &Schedule,
    ) -> std::collections::HashMap<(Resource, i64), std::collections::HashSet<RecountClaim>> {
        use std::collections::{HashMap, HashSet};
        let u = schedule.universe();
        let ii = schedule.ii();
        let row_of = |block: csched_ir::BlockId, cycle: i64| -> Option<i64> {
            if kernel.block(block).is_loop() {
                Some(cycle.rem_euclid(ii.unwrap_or(1).max(1) as i64))
            } else {
                (cycle >= 0).then_some(cycle)
            }
        };
        let mut counts: HashMap<(Resource, i64), HashSet<RecountClaim>> = HashMap::new();
        let add = |counts: &mut HashMap<(Resource, i64), HashSet<RecountClaim>>,
                   r: Resource,
                   row: Option<i64>,
                   claim: RecountClaim| {
            if let Some(row) = row {
                counts.entry((r, row)).or_default().insert(claim);
            }
        };
        for op in u.op_ids() {
            let p = schedule.placement(op);
            let block = u.op(op).block;
            let interval = arch
                .fu(p.fu)
                .capability(u.op(op).opcode)
                .map(|c| c.issue_interval)
                .unwrap_or(1);
            for i in 0..interval as i64 {
                add(
                    &mut counts,
                    Resource::FuIssue(p.fu),
                    row_of(block, p.cycle + i),
                    RecountClaim::Op(op.index()),
                );
            }
        }
        let mut placed_writes = HashSet::new();
        let mut placed_reads = HashSet::new();
        for cid in u.comm_ids() {
            for (leg_id, route) in schedule.transport(cid) {
                let leg = u.comm(leg_id);
                let p = schedule.placement(leg.producer);
                let q = schedule.placement(leg.consumer);
                if placed_writes.insert((leg.producer, route.wstub)) {
                    let row = row_of(u.op(leg.producer).block, p.completion());
                    let value = leg.producer.index();
                    let bus = route.wstub.bus.index();
                    add(
                        &mut counts,
                        Resource::FuOutput(route.wstub.fu),
                        row,
                        RecountClaim::Write(value, bus),
                    );
                    add(
                        &mut counts,
                        Resource::Bus(route.wstub.bus),
                        row,
                        RecountClaim::WriteBus(value),
                    );
                    add(
                        &mut counts,
                        Resource::WritePort(route.wstub.port),
                        row,
                        RecountClaim::Write(value, bus),
                    );
                }
                if placed_reads.insert((leg.consumer, leg.slot)) {
                    let row = row_of(u.op(leg.consumer).block, q.cycle);
                    let claim = RecountClaim::Read(leg.consumer.index(), leg.slot);
                    add(
                        &mut counts,
                        Resource::ReadPort(route.rstub.port),
                        row,
                        claim,
                    );
                    add(
                        &mut counts,
                        Resource::Bus(route.rstub.bus),
                        row,
                        RecountClaim::ReadBus(route.rstub.port.index()),
                    );
                    add(
                        &mut counts,
                        Resource::FuInput(route.rstub.input()),
                        row,
                        claim,
                    );
                }
            }
        }
        counts
    }

    #[derive(Clone, Copy, PartialEq, Eq, Hash)]
    enum RecountClaim {
        Op(usize),
        Write(usize, usize),
        WriteBus(usize),
        ReadBus(usize),
        Read(usize, usize),
    }

    /// Pins the dense table's `occupancy_profile` (as surfaced through the
    /// metrics replay) against the independent recount, for every
    /// resource and row of both a linear and a modulo schedule.
    fn assert_profiles_match_recount(arch: &Architecture, kernel: &Kernel) {
        let schedule = schedule_kernel(arch, kernel, SchedulerConfig::default()).unwrap();
        let m = ScheduleMetrics::compute(arch, kernel, &schedule);
        let counts = recount(arch, kernel, &schedule);
        let expect = |r: Resource, row: i64| counts.get(&(r, row)).map_or(0, |s| s.len());
        for (bi, block) in m.blocks.iter().enumerate() {
            assert_eq!(bi, 0, "single-block kernels expected here");
            for (i, load) in block.fu_issue.iter().enumerate() {
                let fu = csched_machine::FuId::from_raw(i);
                for (row, &n) in load.profile.iter().enumerate() {
                    assert_eq!(
                        n,
                        expect(Resource::FuIssue(fu), row as i64),
                        "issue {i}@{row}"
                    );
                }
            }
            for (i, load) in block.buses.iter().enumerate() {
                let bus = csched_machine::BusId::from_raw(i);
                for (row, &n) in load.profile.iter().enumerate() {
                    assert_eq!(n, expect(Resource::Bus(bus), row as i64), "bus {i}@{row}");
                }
            }
            for (i, load) in block.write_ports.iter().enumerate() {
                let port = WritePortId::from_raw(i);
                for (row, &n) in load.profile.iter().enumerate() {
                    assert_eq!(
                        n,
                        expect(Resource::WritePort(port), row as i64),
                        "wport {i}@{row}"
                    );
                }
            }
            for (i, load) in block.read_ports.iter().enumerate() {
                let port = ReadPortId::from_raw(i);
                for (row, &n) in load.profile.iter().enumerate() {
                    assert_eq!(
                        n,
                        expect(Resource::ReadPort(port), row as i64),
                        "rport {i}@{row}"
                    );
                }
            }
        }
        // Completeness: the recount holds no claim the profiles missed
        // (every counted (resource, row) is inside the profiled range for
        // the resources the metrics expose; FuInput is not profiled).
        for ((r, row), set) in &counts {
            let within = *row >= 0 && *row < m.blocks[0].rows;
            if !within || matches!(r, Resource::FuInput(_)) {
                continue;
            }
            assert!(!set.is_empty(), "empty recount bucket for {r:?}@{row}");
        }
    }

    #[test]
    fn occupancy_profile_matches_independent_recount_linear() {
        let arch = toy::motivating_example();
        assert_profiles_match_recount(&arch, &figure4());
    }

    #[test]
    fn occupancy_profile_matches_independent_recount_modulo() {
        let arch = toy::motivating_example();
        let mut kb = KernelBuilder::new("looped");
        let lp = kb.loop_block("body");
        let i = kb.loop_var(lp, 0i64.into());
        let x = kb.push(lp, Opcode::IAdd, [i.into(), 2i64.into()]);
        let y = kb.push(lp, Opcode::IAdd, [x.into(), i.into()]);
        let i1 = kb.push(lp, Opcode::IAdd, [y.into(), 1i64.into()]);
        kb.set_update(i, i1.into());
        let kernel = kb.build().unwrap();
        assert_profiles_match_recount(&arch, &kernel);
    }
}
