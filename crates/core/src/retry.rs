//! Retry/backoff scheduling: a relaxation ladder over the driver.
//!
//! [`schedule_kernel`] fails with [`SchedError::BlockFailed`] or
//! [`SchedError::IiExhausted`] when its delay, copy, or II budgets run out
//! — budgets that exist to bound scheduling *time*, not because the kernel
//! is unschedulable. [`schedule_kernel_with_retry`] climbs a ladder of
//! relaxed configurations when that happens:
//!
//! 1. the caller's configuration unchanged;
//! 2. relaxed delay and copy budgets (wider placement windows, deeper
//!    copy recursion, larger cross-block slack — the §4.5 levers);
//! 3. the exact-mined recurrence-first operation order
//!    ([`ScheduleOrder::Recurrence`]): certified minimum-II schedules
//!    from the [`exact`](crate::exact) oracle place recurrence
//!    operations *early*, where the plain height order leaves them for
//!    last and fails at IIs the machine can actually sustain;
//! 4. a widened initiation-interval cap;
//! 5. the cycle-order ablation (a differently-shaped search that escapes
//!    operation-order pathologies);
//! 6. further doubling of the II cap and delay budget.
//!
//! Every attempt is recorded in a [`ScheduleReport`] so a caller (or a
//! fault-injection campaign) can see which relaxation recovered a failing
//! kernel and at what cost. Errors that no relaxation can fix — a machine
//! that is not copy-connected, an opcode with no capable unit, an internal
//! invariant break — abort the ladder immediately.
//!
//! [`schedule_kernel`]: crate::schedule_kernel

use csched_ir::Kernel;
use csched_machine::Architecture;

use crate::budget::StepBudget;
use crate::config::{ScheduleOrder, SchedulerConfig};
use crate::driver::{schedule_kernel_impl, PrepCache};
use crate::error::SchedError;
use crate::schedule::Schedule;
use crate::trace::{TraceEvent, TraceSink};

/// Bounds for the retry ladder of [`schedule_kernel_with_retry`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum scheduling attempts, counting the initial un-relaxed one.
    pub max_attempts: usize,
    /// Total placement-attempt budget shared by all attempts: each
    /// attempt's `max_attempts_per_ii` is capped by what remains, and the
    /// ladder stops when the budget is spent.
    pub budget: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 6,
            budget: 1 << 20,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (one attempt, the caller's config).
    pub fn no_retry() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..Self::default()
        }
    }
}

/// Record of one rung of the retry ladder.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Attempt {
    /// Zero-based attempt number.
    pub attempt: usize,
    /// Human-readable description of the relaxation applied.
    pub relaxation: &'static str,
    /// The II cap this attempt searched under.
    pub max_ii: u32,
    /// The per-II placement-attempt cap granted from the budget.
    pub attempts_granted: u64,
    /// The error, if the attempt failed (`None` on success).
    pub error: Option<SchedError>,
}

/// Diagnostic attached to every [`schedule_kernel_with_retry`] result:
/// one [`Attempt`] per rung tried, in order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ScheduleReport {
    /// Every attempt made, in order; the last one's `error` is `None`
    /// exactly when scheduling succeeded.
    pub attempts: Vec<Attempt>,
    /// Whether the ladder stopped because [`RetryPolicy::budget`] ran out.
    pub budget_exhausted: bool,
    /// Exact placement attempts charged across every rung, as counted by
    /// the shared [`StepBudget`]. Never exceeds
    /// `max(RetryPolicy::budget, 1)` — the one-attempt floor exists so a
    /// zero budget still surfaces a real scheduler answer.
    pub attempts_spent: u64,
}

impl ScheduleReport {
    /// Whether a retry rung succeeded after at least one failed attempt.
    pub fn recovered(&self) -> bool {
        self.attempts.len() > 1 && self.attempts.last().is_some_and(|a| a.error.is_none())
    }

    /// Renders the report as one line per attempt.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for a in &self.attempts {
            let _ = writeln!(
                s,
                "attempt {}: {} (II cap {}, {} placement attempts/II): {}",
                a.attempt,
                a.relaxation,
                a.max_ii,
                a.attempts_granted,
                match &a.error {
                    None => "ok".to_string(),
                    Some(e) => e.to_string(),
                }
            );
        }
        if self.budget_exhausted {
            let _ = writeln!(
                s,
                "retry budget exhausted ({} placement attempts spent)",
                self.attempts_spent
            );
        }
        s
    }
}

/// The configuration for ladder rung `attempt` (cumulative relaxations).
fn rung(base: &SchedulerConfig, attempt: usize) -> (SchedulerConfig, &'static str) {
    let mut cfg = base.clone();
    if attempt == 0 {
        return (cfg, "caller configuration");
    }
    // Rung 1+: relax the delay/copy budgets (§4.5 levers).
    cfg.max_delay = base.max_delay.saturating_mul(2);
    cfg.no_copy_scan = base.no_copy_scan.saturating_mul(2).saturating_add(4);
    cfg.cross_block_copy_slack = base.cross_block_copy_slack.saturating_mul(4);
    cfg.search_budget = base.search_budget.saturating_mul(2);
    cfg.max_copy_attempts = base.max_copy_attempts.saturating_mul(2);
    cfg.max_copy_depth = base.max_copy_depth + 1;
    if attempt == 1 {
        return (cfg, "relaxed delay and copy budgets");
    }
    if attempt == 2 {
        // Rung 2: the recurrence-first operation order, mined from the
        // exact oracle's certified minimum-II schedules. It runs *before*
        // the II cap widens: on cells with a real optimality gap it
        // recovers the better II instead of settling for a larger one.
        cfg.order = ScheduleOrder::Recurrence;
        return (cfg, "exact-mined recurrence-first order");
    }
    // Rung 3+: widen the II cap.
    cfg.max_ii = base.max_ii.saturating_mul(4);
    if attempt == 3 {
        return (cfg, "widened II cap");
    }
    if attempt == 4 {
        // Rung 4: a differently-shaped search.
        cfg.order = ScheduleOrder::Cycle;
        return (cfg, "cycle-order ablation");
    }
    // Rung 5+: keep doubling the II cap and delay budget.
    let extra = (attempt - 4) as u32;
    cfg.max_ii = cfg.max_ii.saturating_mul(1 << extra.min(16));
    cfg.max_delay = cfg.max_delay.saturating_mul(1i64 << extra.min(16));
    (cfg, "doubled II cap and delay budget")
}

/// [`schedule_kernel`] behind a retry/backoff ladder.
///
/// On a retryable error ([`SchedError::is_retryable`]) the scheduler is
/// re-run with progressively relaxed budgets, up to
/// [`RetryPolicy::max_attempts`] times and within the shared
/// [`RetryPolicy::budget`]. The returned [`ScheduleReport`] records every
/// attempt whether scheduling succeeded or not.
///
/// # Errors
///
/// The error of the *last* attempt, under the same taxonomy as
/// [`schedule_kernel`].
///
/// [`schedule_kernel`]: crate::schedule_kernel
pub fn schedule_kernel_with_retry(
    arch: &Architecture,
    kernel: &Kernel,
    config: SchedulerConfig,
    policy: &RetryPolicy,
) -> (Result<Schedule, SchedError>, ScheduleReport) {
    // One-attempt floor: a zero budget still lets the first rung try one
    // placement, so the caller gets a real scheduler answer.
    let budget = StepBudget::new(policy.budget.max(1));
    let mut prep = PrepCache::new();
    schedule_with_retry_impl(arch, kernel, config, policy, &budget, None, &mut prep)
}

/// [`schedule_kernel_with_retry`] with the ladder's shared work budget
/// supplied by the caller instead of built from [`RetryPolicy::budget`].
///
/// The same [`StepBudget`] is handed to every rung, so the sum of
/// placement attempts over all relaxations never exceeds the budget —
/// and a budget with a [`CancelToken`](crate::CancelToken) attached makes
/// the whole ladder cancellable mid-rung. [`RetryPolicy::budget`] is
/// ignored in favour of the budget's own limit.
pub fn schedule_kernel_with_retry_budgeted(
    arch: &Architecture,
    kernel: &Kernel,
    config: SchedulerConfig,
    policy: &RetryPolicy,
    budget: &StepBudget,
) -> (Result<Schedule, SchedError>, ScheduleReport) {
    let mut prep = PrepCache::new();
    schedule_with_retry_impl(arch, kernel, config, policy, budget, None, &mut prep)
}

/// [`schedule_kernel_with_retry`] with every pipeline decision traced
/// into `sink`, including a [`TraceEvent::RungAdvanced`] per ladder rung.
pub fn schedule_kernel_with_retry_traced(
    arch: &Architecture,
    kernel: &Kernel,
    config: SchedulerConfig,
    policy: &RetryPolicy,
    sink: &mut dyn TraceSink,
) -> (Result<Schedule, SchedError>, ScheduleReport) {
    let budget = StepBudget::new(policy.budget.max(1));
    let mut prep = PrepCache::new();
    schedule_with_retry_impl(arch, kernel, config, policy, &budget, Some(sink), &mut prep)
}

fn schedule_with_retry_impl(
    arch: &Architecture,
    kernel: &Kernel,
    config: SchedulerConfig,
    policy: &RetryPolicy,
    budget: &StepBudget,
    mut sink: Option<&mut dyn TraceSink>,
    prep: &mut PrepCache,
) -> (Result<Schedule, SchedError>, ScheduleReport) {
    let mut report = ScheduleReport::default();
    let mut last_err: Option<SchedError> = None;
    for attempt in 0..policy.max_attempts.max(1) {
        let remaining = budget.remaining();
        if remaining == 0 {
            report.budget_exhausted = true;
            break;
        }
        let (mut cfg, relaxation) = rung(&config, attempt);
        // The per-II cap still shapes when a rung gives up and relaxes,
        // but the shared budget is the hard bound: the engine charges it
        // per placement attempt and stops mid-rung when it runs dry.
        cfg.max_attempts_per_ii = cfg.max_attempts_per_ii.min(remaining);
        let record = Attempt {
            attempt,
            relaxation,
            max_ii: cfg.max_ii,
            attempts_granted: cfg.max_attempts_per_ii,
            error: None,
        };
        if let Some(s) = sink.as_mut() {
            s.event(TraceEvent::RungAdvanced {
                attempt: attempt as u32,
                relaxation: relaxation.to_string(),
                max_ii: cfg.max_ii,
            });
        }
        // The prepared tables are shared by every rung; a build error is
        // handled exactly like the same error from the driver itself.
        let result = match prep.get(arch, kernel) {
            Ok(p) => schedule_kernel_impl(
                arch,
                kernel,
                cfg,
                sink.as_mut().map(|s| &mut **s as &mut dyn TraceSink),
                Some(budget),
                Some(p),
            ),
            Err(e) => Err(e),
        };
        match result {
            Ok(schedule) => {
                report.attempts.push(record);
                report.attempts_spent = budget.spent();
                return (Ok(schedule), report);
            }
            Err(e) => {
                let stop = !e.is_retryable();
                if e.is_budget_stop() {
                    report.budget_exhausted = true;
                }
                report.attempts.push(Attempt {
                    error: Some(e.clone()),
                    ..record
                });
                last_err = Some(e);
                if stop {
                    break;
                }
            }
        }
    }
    report.attempts_spent = budget.spent();
    let err = last_err.unwrap_or_else(|| {
        SchedError::internal("retry", "no scheduling attempt was made".to_string())
    });
    (Err(err), report)
}

/// Diagnostic attached to every [`schedule_kernel_anytime`] result.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AnytimeReport {
    /// The acquisition ladder: the same relaxation rungs as
    /// [`schedule_kernel_with_retry`], run first to get *some* schedule.
    pub ladder: ScheduleReport,
    /// Improvement rungs tried after the first schedule was acquired,
    /// each searching below the best II found so far with escalating
    /// per-II effort.
    pub improvements: Vec<Attempt>,
    /// Budget spent when the first schedule was acquired (equals
    /// `ladder.attempts_spent`; 0 when acquisition failed outright).
    pub acquired_spent: u64,
    /// Total placement attempts charged across acquisition and
    /// improvement. Never exceeds the budget's limit.
    pub attempts_spent: u64,
    /// `true` when the budget (or a cancellation) expired mid-ladder and
    /// the returned schedule is merely the best one found so far — the
    /// improvement search was cut short before it could prove no better
    /// II exists. `false` both on full completion and on outright error.
    pub degraded: bool,
    /// The initiation interval of the returned schedule (`None` for
    /// straight-line kernels or when scheduling failed).
    pub best_ii: Option<u32>,
}

/// *Anytime* scheduling: acquire a schedule fast, then spend the rest of
/// the budget improving it, and always return the best one found.
///
/// Phase one runs the [`schedule_kernel_with_retry`] relaxation ladder
/// under `budget`. Phase two repeatedly re-schedules with the II cap
/// lowered to one below the best II achieved, escalating the per-II
/// placement-attempt cap each rung (a backoff ladder in reverse: more
/// effort per rung as cheaper rungs fail), until either
///
/// - an improvement rung fails with [`SchedError::IiExhausted`] at its
///   full escalated effort — no better schedule was found, the result is
///   *not* degraded; or
/// - the shared budget runs dry (or the budget's
///   [`CancelToken`](crate::CancelToken) fires) mid-rung — the
///   best-so-far schedule is returned with
///   [`AnytimeReport::degraded`] set.
///
/// This is the graceful-degradation primitive for a scheduling service:
/// a request whose deadline expires mid-ladder still gets the best
/// relaxed-II schedule completed so far instead of an error, and the
/// report says exactly how much confidence the answer carries.
///
/// # Errors
///
/// Only when *no* schedule was found at all: the acquisition ladder's
/// final error, under the same taxonomy as [`schedule_kernel_with_retry`].
pub fn schedule_kernel_anytime(
    arch: &Architecture,
    kernel: &Kernel,
    config: SchedulerConfig,
    policy: &RetryPolicy,
    budget: &StepBudget,
) -> (Result<Schedule, SchedError>, AnytimeReport) {
    schedule_anytime_impl(arch, kernel, config, policy, budget, None)
}

/// [`schedule_kernel_anytime`] with every pipeline decision traced into
/// `sink` — the acquisition ladder (including its
/// [`TraceEvent::RungAdvanced`] markers) *and* the improvement rungs, so
/// a service attaching a sink sees exactly where a degraded request's
/// budget went.
///
/// Restricted to [`crate::trace::decision_filter`] events, the stream of
/// a successful un-degraded run is byte-identical to
/// [`schedule_kernel_traced`](crate::schedule_kernel_traced) on the same
/// inputs: the first acquisition rung runs the caller's configuration
/// unchanged, and the decision filter drops the ladder markers.
///
/// # Errors
///
/// As [`schedule_kernel_anytime`].
pub fn schedule_kernel_anytime_traced(
    arch: &Architecture,
    kernel: &Kernel,
    config: SchedulerConfig,
    policy: &RetryPolicy,
    budget: &StepBudget,
    sink: &mut dyn TraceSink,
) -> (Result<Schedule, SchedError>, AnytimeReport) {
    schedule_anytime_impl(arch, kernel, config, policy, budget, Some(sink))
}

fn schedule_anytime_impl(
    arch: &Architecture,
    kernel: &Kernel,
    config: SchedulerConfig,
    policy: &RetryPolicy,
    budget: &StepBudget,
    mut sink: Option<&mut dyn TraceSink>,
) -> (Result<Schedule, SchedError>, AnytimeReport) {
    let mut prep = PrepCache::new();
    let (acquired, ladder) = schedule_with_retry_impl(
        arch,
        kernel,
        config.clone(),
        policy,
        budget,
        sink.as_mut().map(|s| &mut **s as &mut dyn TraceSink),
        &mut prep,
    );
    let mut report = AnytimeReport {
        acquired_spent: ladder.attempts_spent,
        attempts_spent: ladder.attempts_spent,
        ..AnytimeReport::default()
    };
    let successful_rung = ladder.attempts.last().map_or(0, |a| a.attempt);
    report.ladder = ladder;
    let mut best = match acquired {
        Ok(schedule) => schedule,
        Err(e) => return (Err(e), report),
    };
    report.best_ii = best.ii();
    // Straight-line kernels have no II to improve; an II of 1 is already
    // the floor.
    let Some(mut best_ii) = best.ii().filter(|&ii| ii > 1) else {
        return (Ok(best), report);
    };
    // Improvement rungs reuse the configuration of the rung that
    // succeeded (its relaxations are what made the kernel schedulable).
    let (rung_config, _) = rung(&config, successful_rung);
    let mut escalation = 0u32;
    loop {
        if best_ii <= 1 {
            break;
        }
        let remaining = budget.remaining();
        if remaining == 0 {
            // The deadline expired before this rung could start: the
            // result is the best schedule completed so far.
            report.degraded = true;
            break;
        }
        let mut cfg = rung_config.clone();
        cfg.max_ii = best_ii - 1;
        let effort = rung_config
            .max_attempts_per_ii
            .saturating_mul(1 << escalation.min(16));
        let truncated = effort > remaining;
        cfg.max_attempts_per_ii = effort.min(remaining);
        let mut record = Attempt {
            attempt: report.improvements.len(),
            relaxation: "improvement: lowered II cap",
            max_ii: cfg.max_ii,
            attempts_granted: cfg.max_attempts_per_ii,
            error: None,
        };
        let improved = match prep.get(arch, kernel) {
            Ok(p) => schedule_kernel_impl(
                arch,
                kernel,
                cfg,
                sink.as_mut().map(|s| &mut **s as &mut dyn TraceSink),
                Some(budget),
                Some(p),
            ),
            Err(e) => Err(e),
        };
        match improved {
            Ok(better) => {
                report.improvements.push(record);
                best_ii = better.ii().unwrap_or(1);
                report.best_ii = Some(best_ii);
                best = better;
                escalation = escalation.saturating_add(1);
            }
            Err(e) => {
                let budget_stop = e.is_budget_stop();
                let exhausted_ii = matches!(e, SchedError::IiExhausted { .. });
                record.error = Some(e);
                report.improvements.push(record);
                if budget_stop || (exhausted_ii && truncated) {
                    // The budget cut the search short (mid-rung, or by
                    // truncating the rung's effort): degrade gracefully.
                    report.degraded = true;
                }
                // IiExhausted at full effort proves (heuristically) that
                // no better II exists; any other error also stops the
                // ladder — the acquired schedule stands.
                break;
            }
        }
    }
    report.attempts_spent = budget.spent();
    (Ok(best), report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate;
    use csched_ir::KernelBuilder;
    use csched_machine::{toy, Opcode};

    /// A loop with enough add pressure that its achievable II exceeds 1.
    fn pressured_loop() -> Kernel {
        let mut kb = KernelBuilder::new("pressure");
        let lp = kb.loop_block("body");
        let i = kb.loop_var(lp, 0i64.into());
        let a = kb.push(lp, Opcode::IAdd, [i.into(), 1i64.into()]);
        let b = kb.push(lp, Opcode::IAdd, [a.into(), 2i64.into()]);
        let _c = kb.push(lp, Opcode::IAdd, [b.into(), 3i64.into()]);
        let i1 = kb.push(lp, Opcode::IAdd, [i.into(), 1i64.into()]);
        kb.set_update(i, i1.into());
        kb.build().unwrap()
    }

    #[test]
    fn ladder_recovers_from_too_small_ii_cap() {
        let arch = toy::motivating_example();
        let kernel = pressured_loop();
        // Four add-class ops on two adders: MII = 2, so max_ii = 1 cannot
        // succeed until the ladder widens the cap.
        let cfg = SchedulerConfig {
            max_ii: 1,
            ..SchedulerConfig::default()
        };
        let (result, report) =
            schedule_kernel_with_retry(&arch, &kernel, cfg, &RetryPolicy::default());
        let schedule = result.expect("the widened II cap must recover this kernel");
        assert!(validate::validate(&arch, &kernel, &schedule).is_ok());
        assert!(report.recovered(), "{}", report.render());
        assert!(report.attempts.len() >= 2);
        assert!(matches!(
            report.attempts[0].error,
            Some(SchedError::IiExhausted { mii: 2, max_ii: 1 })
        ));
        assert!(report.attempts.last().unwrap().error.is_none());
        // The recovering rung really did widen the cap.
        assert!(report.attempts.last().unwrap().max_ii > 1);
    }

    #[test]
    fn mined_recurrence_rung_closes_a_certified_optimality_gap() {
        use crate::budget::StepBudget;
        use crate::exact::{certify_min_ii, ExactConfig, ExactVerdict};

        let arch = toy::motivating_example();
        let kernel = pressured_loop();
        // The oracle certifies II = 2 on this cell; the plain height
        // order cannot reach it (it settles at 3).
        let budget = StepBudget::new(10_000_000);
        let report = certify_min_ii(&arch, &kernel, &ExactConfig::default(), &budget)
            .expect("the oracle must run");
        assert_eq!(report.verdict, ExactVerdict::Certified { ii: 2 });

        // Pin the II cap at the certified minimum: the caller rung and
        // the budget-relaxation rung exhaust, and the mined
        // recurrence-first rung schedules at the optimum.
        let cfg = SchedulerConfig {
            max_ii: 2,
            ..SchedulerConfig::default()
        };
        let (result, ladder) =
            schedule_kernel_with_retry(&arch, &kernel, cfg, &RetryPolicy::default());
        let schedule = result.expect("the mined rung must close the gap");
        assert_eq!(schedule.ii(), Some(2), "{}", ladder.render());
        assert!(validate::validate(&arch, &kernel, &schedule).is_ok());
        assert!(ladder.recovered(), "{}", ladder.render());
        let winner = ladder.attempts.last().unwrap();
        assert_eq!(winner.relaxation, "exact-mined recurrence-first order");
        assert_eq!(winner.max_ii, 2, "the II cap never widened");
    }

    #[test]
    fn non_retryable_errors_stop_the_ladder() {
        let arch = toy::motivating_example();
        let mut kb = KernelBuilder::new("fp");
        let b = kb.straight_block("b");
        kb.push(b, Opcode::FMul, [1.0f64.into(), 2.0f64.into()]);
        let kernel = kb.build().unwrap();
        let (result, report) = schedule_kernel_with_retry(
            &arch,
            &kernel,
            SchedulerConfig::default(),
            &RetryPolicy::default(),
        );
        assert!(matches!(
            result,
            Err(SchedError::NoCapableUnit {
                opcode: Opcode::FMul
            })
        ));
        assert_eq!(report.attempts.len(), 1, "{}", report.render());
        assert!(!report.recovered());
    }

    #[test]
    fn success_on_first_attempt_records_one_attempt() {
        let arch = toy::motivating_example();
        let kernel = pressured_loop();
        let (result, report) = schedule_kernel_with_retry(
            &arch,
            &kernel,
            SchedulerConfig::default(),
            &RetryPolicy::default(),
        );
        assert!(result.is_ok());
        assert_eq!(report.attempts.len(), 1);
        assert!(!report.recovered());
        assert_eq!(report.attempts[0].relaxation, "caller configuration");
    }

    #[test]
    fn budget_bounds_the_ladder() {
        let arch = toy::motivating_example();
        let kernel = pressured_loop();
        let cfg = SchedulerConfig {
            max_ii: 1,
            ..SchedulerConfig::default()
        };
        // Too small to place even the kernel's five operations: once a
        // rung widens the II cap enough to actually search, the shared
        // budget trips mid-rung.
        let policy = RetryPolicy {
            max_attempts: 8,
            budget: 3,
        };
        let (result, report) = schedule_kernel_with_retry(&arch, &kernel, cfg, &policy);
        assert!(
            matches!(
                result,
                Err(SchedError::DeadlineExceeded {
                    spent: 3,
                    limit: 3,
                    ..
                })
            ),
            "{result:?}\n{}",
            report.render()
        );
        assert!(report.budget_exhausted);
        // Exact accounting: the budget counts real placement attempts
        // (the early IiExhausted rungs never reach the engine's hot
        // loop), and never overruns.
        assert_eq!(report.attempts_spent, 3, "{}", report.render());
        // The deadline is non-retryable: the ladder stopped on it.
        assert!(matches!(
            report.attempts.last().and_then(|a| a.error.as_ref()),
            Some(SchedError::DeadlineExceeded { .. })
        ));
    }

    #[test]
    fn zero_budget_still_surfaces_a_typed_error() {
        let arch = toy::motivating_example();
        let kernel = pressured_loop();
        let cfg = SchedulerConfig {
            max_ii: 1,
            ..SchedulerConfig::default()
        };
        let policy = RetryPolicy {
            max_attempts: 8,
            budget: 0,
        };
        let (result, report) = schedule_kernel_with_retry(&arch, &kernel, cfg, &policy);
        // The one-attempt floor lets the ladder run until one real
        // placement attempt has been charged; the result is a typed
        // deadline, never an internal "no attempt was made" fallback.
        assert!(
            matches!(
                result,
                Err(SchedError::DeadlineExceeded {
                    spent: 1,
                    limit: 1,
                    ..
                })
            ),
            "{result:?}\n{}",
            report.render()
        );
        assert_eq!(report.attempts_spent, 1, "{}", report.render());
        assert!(report.budget_exhausted);
        // The rungs that never charged the budget still reported their
        // real errors.
        assert!(matches!(
            report.attempts[0].error,
            Some(SchedError::IiExhausted { mii: 2, max_ii: 1 })
        ));
    }

    #[test]
    fn anytime_reaches_a_proven_best_with_budget_to_spare() {
        let arch = toy::motivating_example();
        let kernel = pressured_loop();
        // max_ii = 1 forces the acquisition ladder to relax before it can
        // schedule (MII = 2); improvement then tries II cap 1 and proves
        // IiExhausted at full effort — not degraded.
        let cfg = SchedulerConfig {
            max_ii: 1,
            ..SchedulerConfig::default()
        };
        let budget = StepBudget::new(1 << 20);
        let (result, report) =
            schedule_kernel_anytime(&arch, &kernel, cfg, &RetryPolicy::default(), &budget);
        let schedule = result.expect("anytime must return the acquired schedule");
        assert!(validate::validate(&arch, &kernel, &schedule).is_ok());
        // MII is 2, but stub/copy pressure on the toy machine makes 3 the
        // achievable floor: the improvement rung searches II = 2 at full
        // effort and proves exhaustion.
        assert_eq!(report.best_ii, Some(3));
        assert!(!report.degraded, "full completion must not be degraded");
        assert!(report.ladder.recovered());
        // The improvement ladder ran and stopped on a genuine proof.
        assert!(matches!(
            report.improvements.last().and_then(|a| a.error.as_ref()),
            Some(SchedError::IiExhausted { .. })
        ));
        assert!(report.attempts_spent >= report.acquired_spent);
        assert!(report.attempts_spent <= budget.limit());
    }

    #[test]
    fn deadline_mid_ladder_degrades_to_best_rung_completed_so_far() {
        let arch = toy::motivating_example();
        let kernel = pressured_loop();
        let cfg = SchedulerConfig {
            max_ii: 1,
            ..SchedulerConfig::default()
        };
        // Reference run: learn the deterministic acquisition cost and the
        // best II the full ladder reaches.
        let reference = StepBudget::new(1 << 20);
        let (ref_result, ref_report) = schedule_kernel_anytime(
            &arch,
            &kernel,
            cfg.clone(),
            &RetryPolicy::default(),
            &reference,
        );
        let ref_ii = ref_result.unwrap().ii().unwrap();
        let acquired = ref_report.acquired_spent;
        assert!(acquired > 0);

        // A budget that dies exactly when acquisition completes: the
        // improvement ladder is cut short before it can run, and the
        // degraded result is the best (only) rung completed so far.
        let limit = acquired;
        let budget = StepBudget::new(limit);
        let (result, report) =
            schedule_kernel_anytime(&arch, &kernel, cfg, &RetryPolicy::default(), &budget);
        let schedule = result.expect("the acquired schedule must be returned, degraded");
        assert!(report.degraded, "deadline mid-ladder must degrade");
        assert_eq!(
            schedule.ii().unwrap(),
            ref_ii,
            "degraded result must be the best rung completed so far"
        );
        assert!(validate::validate(&arch, &kernel, &schedule).is_ok());
        // The hard contract: a budgeted call never overruns its limit.
        assert!(
            report.attempts_spent <= limit,
            "attempts_spent {} > limit {limit}",
            report.attempts_spent
        );
        assert_eq!(report.attempts_spent, budget.spent());
    }

    #[test]
    fn deadline_mid_improvement_rung_still_returns_acquired_schedule() {
        let arch = toy::motivating_example();
        let kernel = pressured_loop();
        let cfg = SchedulerConfig {
            max_ii: 1,
            ..SchedulerConfig::default()
        };
        let reference = StepBudget::new(1 << 20);
        let (_, ref_report) = schedule_kernel_anytime(
            &arch,
            &kernel,
            cfg.clone(),
            &RetryPolicy::default(),
            &reference,
        );
        // One attempt of headroom: the improvement rung starts, charges
        // work, and trips the deadline mid-search (or proves exhaustion
        // under truncated effort) — either way a degraded-or-proven
        // answer within budget.
        let limit = ref_report.acquired_spent + 1;
        let budget = StepBudget::new(limit);
        let (result, report) =
            schedule_kernel_anytime(&arch, &kernel, cfg, &RetryPolicy::default(), &budget);
        assert!(result.is_ok());
        assert!(report.attempts_spent <= limit);
        assert!(!report.improvements.is_empty());
    }

    #[test]
    fn anytime_on_unschedulable_kernel_surfaces_the_ladder_error() {
        let arch = toy::motivating_example();
        let mut kb = KernelBuilder::new("fp");
        let b = kb.straight_block("b");
        kb.push(b, Opcode::FMul, [1.0f64.into(), 2.0f64.into()]);
        let kernel = kb.build().unwrap();
        let budget = StepBudget::new(1 << 20);
        let (result, report) = schedule_kernel_anytime(
            &arch,
            &kernel,
            SchedulerConfig::default(),
            &RetryPolicy::default(),
            &budget,
        );
        assert!(matches!(result, Err(SchedError::NoCapableUnit { .. })));
        assert!(!report.degraded);
        assert_eq!(report.best_ii, None);
        assert!(report.improvements.is_empty());
    }

    #[test]
    fn caller_supplied_budget_is_shared_and_cancellable() {
        use crate::budget::{CancelToken, StepBudget};
        let arch = toy::motivating_example();
        let kernel = pressured_loop();
        let token = CancelToken::new();
        token.cancel();
        let budget = StepBudget::new(1 << 20).with_cancel(token);
        let (result, report) = schedule_kernel_with_retry_budgeted(
            &arch,
            &kernel,
            SchedulerConfig::default(),
            &RetryPolicy::default(),
            &budget,
        );
        assert!(matches!(
            result,
            Err(SchedError::Cancelled { phase: "placement" })
        ));
        assert!(report.budget_exhausted);
        assert_eq!(report.attempts_spent, 0);
    }
}
