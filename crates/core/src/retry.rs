//! Retry/backoff scheduling: a relaxation ladder over the driver.
//!
//! [`schedule_kernel`] fails with [`SchedError::BlockFailed`] or
//! [`SchedError::IiExhausted`] when its delay, copy, or II budgets run out
//! — budgets that exist to bound scheduling *time*, not because the kernel
//! is unschedulable. [`schedule_kernel_with_retry`] climbs a ladder of
//! relaxed configurations when that happens:
//!
//! 1. the caller's configuration unchanged;
//! 2. relaxed delay and copy budgets (wider placement windows, deeper
//!    copy recursion, larger cross-block slack — the §4.5 levers);
//! 3. a widened initiation-interval cap;
//! 4. the cycle-order ablation (a differently-shaped search that escapes
//!    operation-order pathologies);
//! 5. further doubling of the II cap and delay budget.
//!
//! Every attempt is recorded in a [`ScheduleReport`] so a caller (or a
//! fault-injection campaign) can see which relaxation recovered a failing
//! kernel and at what cost. Errors that no relaxation can fix — a machine
//! that is not copy-connected, an opcode with no capable unit, an internal
//! invariant break — abort the ladder immediately.
//!
//! [`schedule_kernel`]: crate::schedule_kernel

use csched_ir::Kernel;
use csched_machine::Architecture;

use crate::budget::StepBudget;
use crate::config::{ScheduleOrder, SchedulerConfig};
use crate::driver::schedule_kernel_impl;
use crate::error::SchedError;
use crate::schedule::Schedule;
use crate::trace::{TraceEvent, TraceSink};

/// Bounds for the retry ladder of [`schedule_kernel_with_retry`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum scheduling attempts, counting the initial un-relaxed one.
    pub max_attempts: usize,
    /// Total placement-attempt budget shared by all attempts: each
    /// attempt's `max_attempts_per_ii` is capped by what remains, and the
    /// ladder stops when the budget is spent.
    pub budget: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            budget: 1 << 20,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (one attempt, the caller's config).
    pub fn no_retry() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..Self::default()
        }
    }
}

/// Record of one rung of the retry ladder.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Attempt {
    /// Zero-based attempt number.
    pub attempt: usize,
    /// Human-readable description of the relaxation applied.
    pub relaxation: &'static str,
    /// The II cap this attempt searched under.
    pub max_ii: u32,
    /// The per-II placement-attempt cap granted from the budget.
    pub attempts_granted: u64,
    /// The error, if the attempt failed (`None` on success).
    pub error: Option<SchedError>,
}

/// Diagnostic attached to every [`schedule_kernel_with_retry`] result:
/// one [`Attempt`] per rung tried, in order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ScheduleReport {
    /// Every attempt made, in order; the last one's `error` is `None`
    /// exactly when scheduling succeeded.
    pub attempts: Vec<Attempt>,
    /// Whether the ladder stopped because [`RetryPolicy::budget`] ran out.
    pub budget_exhausted: bool,
    /// Exact placement attempts charged across every rung, as counted by
    /// the shared [`StepBudget`]. Never exceeds
    /// `max(RetryPolicy::budget, 1)` — the one-attempt floor exists so a
    /// zero budget still surfaces a real scheduler answer.
    pub attempts_spent: u64,
}

impl ScheduleReport {
    /// Whether a retry rung succeeded after at least one failed attempt.
    pub fn recovered(&self) -> bool {
        self.attempts.len() > 1 && self.attempts.last().is_some_and(|a| a.error.is_none())
    }

    /// Renders the report as one line per attempt.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for a in &self.attempts {
            let _ = writeln!(
                s,
                "attempt {}: {} (II cap {}, {} placement attempts/II): {}",
                a.attempt,
                a.relaxation,
                a.max_ii,
                a.attempts_granted,
                match &a.error {
                    None => "ok".to_string(),
                    Some(e) => e.to_string(),
                }
            );
        }
        if self.budget_exhausted {
            let _ = writeln!(
                s,
                "retry budget exhausted ({} placement attempts spent)",
                self.attempts_spent
            );
        }
        s
    }
}

/// The configuration for ladder rung `attempt` (cumulative relaxations).
fn rung(base: &SchedulerConfig, attempt: usize) -> (SchedulerConfig, &'static str) {
    let mut cfg = base.clone();
    if attempt == 0 {
        return (cfg, "caller configuration");
    }
    // Rung 1+: relax the delay/copy budgets (§4.5 levers).
    cfg.max_delay = base.max_delay.saturating_mul(2);
    cfg.no_copy_scan = base.no_copy_scan.saturating_mul(2).saturating_add(4);
    cfg.cross_block_copy_slack = base.cross_block_copy_slack.saturating_mul(4);
    cfg.search_budget = base.search_budget.saturating_mul(2);
    cfg.max_copy_attempts = base.max_copy_attempts.saturating_mul(2);
    cfg.max_copy_depth = base.max_copy_depth + 1;
    if attempt == 1 {
        return (cfg, "relaxed delay and copy budgets");
    }
    // Rung 2+: widen the II cap.
    cfg.max_ii = base.max_ii.saturating_mul(4);
    if attempt == 2 {
        return (cfg, "widened II cap");
    }
    if attempt == 3 {
        // Rung 3: a differently-shaped search.
        cfg.order = ScheduleOrder::Cycle;
        return (cfg, "cycle-order ablation");
    }
    // Rung 4+: keep doubling the II cap and delay budget.
    let extra = (attempt - 3) as u32;
    cfg.max_ii = cfg.max_ii.saturating_mul(1 << extra.min(16));
    cfg.max_delay = cfg.max_delay.saturating_mul(1i64 << extra.min(16));
    (cfg, "doubled II cap and delay budget")
}

/// [`schedule_kernel`] behind a retry/backoff ladder.
///
/// On a retryable error ([`SchedError::is_retryable`]) the scheduler is
/// re-run with progressively relaxed budgets, up to
/// [`RetryPolicy::max_attempts`] times and within the shared
/// [`RetryPolicy::budget`]. The returned [`ScheduleReport`] records every
/// attempt whether scheduling succeeded or not.
///
/// # Errors
///
/// The error of the *last* attempt, under the same taxonomy as
/// [`schedule_kernel`].
///
/// [`schedule_kernel`]: crate::schedule_kernel
pub fn schedule_kernel_with_retry(
    arch: &Architecture,
    kernel: &Kernel,
    config: SchedulerConfig,
    policy: &RetryPolicy,
) -> (Result<Schedule, SchedError>, ScheduleReport) {
    // One-attempt floor: a zero budget still lets the first rung try one
    // placement, so the caller gets a real scheduler answer.
    let budget = StepBudget::new(policy.budget.max(1));
    schedule_with_retry_impl(arch, kernel, config, policy, &budget, None)
}

/// [`schedule_kernel_with_retry`] with the ladder's shared work budget
/// supplied by the caller instead of built from [`RetryPolicy::budget`].
///
/// The same [`StepBudget`] is handed to every rung, so the sum of
/// placement attempts over all relaxations never exceeds the budget —
/// and a budget with a [`CancelToken`](crate::CancelToken) attached makes
/// the whole ladder cancellable mid-rung. [`RetryPolicy::budget`] is
/// ignored in favour of the budget's own limit.
pub fn schedule_kernel_with_retry_budgeted(
    arch: &Architecture,
    kernel: &Kernel,
    config: SchedulerConfig,
    policy: &RetryPolicy,
    budget: &StepBudget,
) -> (Result<Schedule, SchedError>, ScheduleReport) {
    schedule_with_retry_impl(arch, kernel, config, policy, budget, None)
}

/// [`schedule_kernel_with_retry`] with every pipeline decision traced
/// into `sink`, including a [`TraceEvent::RungAdvanced`] per ladder rung.
pub fn schedule_kernel_with_retry_traced(
    arch: &Architecture,
    kernel: &Kernel,
    config: SchedulerConfig,
    policy: &RetryPolicy,
    sink: &mut dyn TraceSink,
) -> (Result<Schedule, SchedError>, ScheduleReport) {
    let budget = StepBudget::new(policy.budget.max(1));
    schedule_with_retry_impl(arch, kernel, config, policy, &budget, Some(sink))
}

fn schedule_with_retry_impl(
    arch: &Architecture,
    kernel: &Kernel,
    config: SchedulerConfig,
    policy: &RetryPolicy,
    budget: &StepBudget,
    mut sink: Option<&mut dyn TraceSink>,
) -> (Result<Schedule, SchedError>, ScheduleReport) {
    let mut report = ScheduleReport::default();
    let mut last_err: Option<SchedError> = None;
    for attempt in 0..policy.max_attempts.max(1) {
        let remaining = budget.remaining();
        if remaining == 0 {
            report.budget_exhausted = true;
            break;
        }
        let (mut cfg, relaxation) = rung(&config, attempt);
        // The per-II cap still shapes when a rung gives up and relaxes,
        // but the shared budget is the hard bound: the engine charges it
        // per placement attempt and stops mid-rung when it runs dry.
        cfg.max_attempts_per_ii = cfg.max_attempts_per_ii.min(remaining);
        let record = Attempt {
            attempt,
            relaxation,
            max_ii: cfg.max_ii,
            attempts_granted: cfg.max_attempts_per_ii,
            error: None,
        };
        if let Some(s) = sink.as_mut() {
            s.event(TraceEvent::RungAdvanced {
                attempt: attempt as u32,
                relaxation: relaxation.to_string(),
                max_ii: cfg.max_ii,
            });
        }
        let result = schedule_kernel_impl(
            arch,
            kernel,
            cfg,
            sink.as_mut().map(|s| &mut **s as &mut dyn TraceSink),
            Some(budget),
        );
        match result {
            Ok(schedule) => {
                report.attempts.push(record);
                report.attempts_spent = budget.spent();
                return (Ok(schedule), report);
            }
            Err(e) => {
                let stop = !e.is_retryable();
                if matches!(
                    e,
                    SchedError::DeadlineExceeded { .. } | SchedError::Cancelled { .. }
                ) {
                    report.budget_exhausted = true;
                }
                report.attempts.push(Attempt {
                    error: Some(e.clone()),
                    ..record
                });
                last_err = Some(e);
                if stop {
                    break;
                }
            }
        }
    }
    report.attempts_spent = budget.spent();
    let err = last_err.unwrap_or_else(|| {
        SchedError::internal("retry", "no scheduling attempt was made".to_string())
    });
    (Err(err), report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate;
    use csched_ir::KernelBuilder;
    use csched_machine::{toy, Opcode};

    /// A loop with enough add pressure that its achievable II exceeds 1.
    fn pressured_loop() -> Kernel {
        let mut kb = KernelBuilder::new("pressure");
        let lp = kb.loop_block("body");
        let i = kb.loop_var(lp, 0i64.into());
        let a = kb.push(lp, Opcode::IAdd, [i.into(), 1i64.into()]);
        let b = kb.push(lp, Opcode::IAdd, [a.into(), 2i64.into()]);
        let _c = kb.push(lp, Opcode::IAdd, [b.into(), 3i64.into()]);
        let i1 = kb.push(lp, Opcode::IAdd, [i.into(), 1i64.into()]);
        kb.set_update(i, i1.into());
        kb.build().unwrap()
    }

    #[test]
    fn ladder_recovers_from_too_small_ii_cap() {
        let arch = toy::motivating_example();
        let kernel = pressured_loop();
        // Four add-class ops on two adders: MII = 2, so max_ii = 1 cannot
        // succeed until the ladder widens the cap.
        let cfg = SchedulerConfig {
            max_ii: 1,
            ..SchedulerConfig::default()
        };
        let (result, report) =
            schedule_kernel_with_retry(&arch, &kernel, cfg, &RetryPolicy::default());
        let schedule = result.expect("the widened II cap must recover this kernel");
        assert!(validate::validate(&arch, &kernel, &schedule).is_ok());
        assert!(report.recovered(), "{}", report.render());
        assert!(report.attempts.len() >= 2);
        assert!(matches!(
            report.attempts[0].error,
            Some(SchedError::IiExhausted { mii: 2, max_ii: 1 })
        ));
        assert!(report.attempts.last().unwrap().error.is_none());
        // The recovering rung really did widen the cap.
        assert!(report.attempts.last().unwrap().max_ii > 1);
    }

    #[test]
    fn non_retryable_errors_stop_the_ladder() {
        let arch = toy::motivating_example();
        let mut kb = KernelBuilder::new("fp");
        let b = kb.straight_block("b");
        kb.push(b, Opcode::FMul, [1.0f64.into(), 2.0f64.into()]);
        let kernel = kb.build().unwrap();
        let (result, report) = schedule_kernel_with_retry(
            &arch,
            &kernel,
            SchedulerConfig::default(),
            &RetryPolicy::default(),
        );
        assert!(matches!(
            result,
            Err(SchedError::NoCapableUnit {
                opcode: Opcode::FMul
            })
        ));
        assert_eq!(report.attempts.len(), 1, "{}", report.render());
        assert!(!report.recovered());
    }

    #[test]
    fn success_on_first_attempt_records_one_attempt() {
        let arch = toy::motivating_example();
        let kernel = pressured_loop();
        let (result, report) = schedule_kernel_with_retry(
            &arch,
            &kernel,
            SchedulerConfig::default(),
            &RetryPolicy::default(),
        );
        assert!(result.is_ok());
        assert_eq!(report.attempts.len(), 1);
        assert!(!report.recovered());
        assert_eq!(report.attempts[0].relaxation, "caller configuration");
    }

    #[test]
    fn budget_bounds_the_ladder() {
        let arch = toy::motivating_example();
        let kernel = pressured_loop();
        let cfg = SchedulerConfig {
            max_ii: 1,
            ..SchedulerConfig::default()
        };
        // Too small to place even the kernel's five operations: once a
        // rung widens the II cap enough to actually search, the shared
        // budget trips mid-rung.
        let policy = RetryPolicy {
            max_attempts: 8,
            budget: 3,
        };
        let (result, report) = schedule_kernel_with_retry(&arch, &kernel, cfg, &policy);
        assert!(
            matches!(
                result,
                Err(SchedError::DeadlineExceeded {
                    spent: 3,
                    limit: 3,
                    ..
                })
            ),
            "{result:?}\n{}",
            report.render()
        );
        assert!(report.budget_exhausted);
        // Exact accounting: the budget counts real placement attempts
        // (the early IiExhausted rungs never reach the engine's hot
        // loop), and never overruns.
        assert_eq!(report.attempts_spent, 3, "{}", report.render());
        // The deadline is non-retryable: the ladder stopped on it.
        assert!(matches!(
            report.attempts.last().and_then(|a| a.error.as_ref()),
            Some(SchedError::DeadlineExceeded { .. })
        ));
    }

    #[test]
    fn zero_budget_still_surfaces_a_typed_error() {
        let arch = toy::motivating_example();
        let kernel = pressured_loop();
        let cfg = SchedulerConfig {
            max_ii: 1,
            ..SchedulerConfig::default()
        };
        let policy = RetryPolicy {
            max_attempts: 8,
            budget: 0,
        };
        let (result, report) = schedule_kernel_with_retry(&arch, &kernel, cfg, &policy);
        // The one-attempt floor lets the ladder run until one real
        // placement attempt has been charged; the result is a typed
        // deadline, never an internal "no attempt was made" fallback.
        assert!(
            matches!(
                result,
                Err(SchedError::DeadlineExceeded {
                    spent: 1,
                    limit: 1,
                    ..
                })
            ),
            "{result:?}\n{}",
            report.render()
        );
        assert_eq!(report.attempts_spent, 1, "{}", report.render());
        assert!(report.budget_exhausted);
        // The rungs that never charged the budget still reported their
        // real errors.
        assert!(matches!(
            report.attempts[0].error,
            Some(SchedError::IiExhausted { mii: 2, max_ii: 1 })
        ));
    }

    #[test]
    fn caller_supplied_budget_is_shared_and_cancellable() {
        use crate::budget::{CancelToken, StepBudget};
        let arch = toy::motivating_example();
        let kernel = pressured_loop();
        let token = CancelToken::new();
        token.cancel();
        let budget = StepBudget::new(1 << 20).with_cancel(token);
        let (result, report) = schedule_kernel_with_retry_budgeted(
            &arch,
            &kernel,
            SchedulerConfig::default(),
            &RetryPolicy::default(),
            &budget,
        );
        assert!(matches!(
            result,
            Err(SchedError::Cancelled { phase: "placement" })
        ));
        assert!(report.budget_exhausted);
        assert_eq!(report.attempts_spent, 0);
    }
}
