//! Exact-scheduling oracle: branch-and-bound certification of the
//! minimum initiation interval.
//!
//! The paper's scheduler is a heuristic — it reports *an* II, never *the*
//! II. This module is the correctness oracle behind the gap reports in
//! `csched-eval`: for a candidate II it runs a complete backtracking
//! search over (functional unit, cycle) placements × (write stub, read
//! stub) routings, on the same transactional [`ResourceTable`]s the
//! engine uses, and either produces a schedule (independently re-checked
//! by [`validate`]) or proves that no schedule exists in
//! the normalised search space. Iterating the candidate II upward from
//! `max(RecMII, ResMII)` certifies the minimum (DESIGN.md §17).
//!
//! # The normalised search space
//!
//! A complete search over unbounded schedules is impossible, so the
//! oracle searches a *normalised* space and its `Infeasible` verdict is
//! relative to it:
//!
//! - every operation issues within a window of `II + window_slack`
//!   cycles (straight-line blocks: `straight_horizon`) past its earliest
//!   feasible cycle given already-placed neighbours — any modulo
//!   schedule can be compacted operation-by-operation into this window,
//!   with `window_slack` covering back-edge effects;
//! - copy chains have depth ≤ 1 and at most `max_copies` copies, each
//!   issuing within `copy_slack` cycles of its producer's completion
//!   (the paper machines never need more on the evaluation kernels; a
//!   machine that does shows up as a *conservative* `Infeasible`, never
//!   as a bogus `Certified`).
//!
//! `Certified` verdicts are unconditional: the witness schedule passed
//! the independent validator, and every smaller II was exhaustively
//! refuted within the space above.
//!
//! # Budgets
//!
//! Every search node (one placement or routing trial) charges one step of
//! the caller's [`StepBudget`], so oracle runs are deterministic and
//! bounded; exhausting the budget yields the typed
//! [`ExactVerdict::GapUnknown`] rather than an error. Search statistics
//! (nodes expanded, prunes by reason) are surfaced per candidate II both
//! in the [`ExactReport`] and as [`TraceEvent::ExactIiStart`] /
//! [`TraceEvent::ExactIiDone`] events.
//!
//! ```
//! use csched_core::exact::{certify_min_ii, ExactConfig, ExactVerdict};
//! use csched_core::StepBudget;
//! use csched_ir::KernelBuilder;
//! use csched_machine::{toy, Opcode};
//!
//! let mut kb = KernelBuilder::new("inc");
//! let lp = kb.loop_block("body");
//! let i = kb.loop_var(lp, 0i64.into());
//! let i1 = kb.push(lp, Opcode::IAdd, [i.into(), 1i64.into()]);
//! kb.set_update(i, i1.into());
//! let kernel = kb.build()?;
//!
//! let arch = toy::motivating_example();
//! let budget = StepBudget::new(100_000);
//! let report = certify_min_ii(&arch, &kernel, &ExactConfig::default(), &budget)?;
//! assert_eq!(report.verdict, ExactVerdict::Certified { ii: 1 });
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::HashMap;

use csched_ir::{BlockId, DepGraph, DepKind, Kernel};
use csched_machine::{Architecture, Capability, FuId, Opcode, ReadStub, ResourceMap};

use crate::budget::{BudgetStop, StepBudget};
use crate::driver::{not_copy_connected, res_mii};
use crate::error::SchedError;
use crate::schedule::{CommDisposition, Route, SchedStats, Schedule, ScheduledOp};
use crate::table::{ResourceTable, Savepoint, TableMode};
use crate::trace::{TraceEvent, TraceSink};
use crate::universe::{Comm, CommId, SOpId, Universe};
use crate::validate;

/// Tunables of the exact search. The defaults define the normalised
/// search space the `Infeasible` verdict is relative to (module docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExactConfig {
    /// Upper bound on the candidate II iterated to; reaching it without a
    /// schedule yields [`ExactVerdict::Infeasible`].
    pub max_ii: u32,
    /// Extra cycles past `II` in each loop operation's issue window.
    pub window_slack: i64,
    /// Issue-window length for straight-line block operations.
    pub straight_horizon: i64,
    /// Allow depth-1 copy insertion when no direct route closes a
    /// communication.
    pub allow_copies: bool,
    /// Maximum copies live in one candidate schedule.
    pub max_copies: usize,
    /// Cycles past its producer's completion a copy may issue.
    pub copy_slack: i64,
}

impl Default for ExactConfig {
    fn default() -> Self {
        ExactConfig {
            max_ii: 128,
            window_slack: 8,
            straight_horizon: 64,
            allow_copies: true,
            max_copies: 4,
            copy_slack: 8,
        }
    }
}

/// The oracle's answer for one `(architecture, kernel)` cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExactVerdict {
    /// `ii` is the minimum initiation interval: a validated schedule
    /// exists at `ii` and every II below it (down to the MII) was
    /// exhaustively refuted. Kernels without a loop block certify as
    /// `ii = 0` (schedulability proven; II is a loop metric).
    Certified {
        /// The certified minimum initiation interval.
        ii: u32,
    },
    /// The step budget ran out before the search settled; the optimality
    /// gap at this cell stays unknown.
    GapUnknown {
        /// Search steps charged when the budget tripped.
        spent: u64,
        /// The configured budget limit.
        limit: u64,
    },
    /// No schedule exists within the normalised search space for any II
    /// up to the configured cap.
    Infeasible {
        /// The largest candidate II refuted.
        max_ii: u32,
    },
}

impl ExactVerdict {
    /// Stable lower-snake-case verdict name (used in gap-report JSON).
    pub fn name(&self) -> &'static str {
        match self {
            ExactVerdict::Certified { .. } => "certified",
            ExactVerdict::GapUnknown { .. } => "gap_unknown",
            ExactVerdict::Infeasible { .. } => "infeasible",
        }
    }

    /// The certified II, when the verdict is [`ExactVerdict::Certified`].
    pub fn certified_ii(&self) -> Option<u32> {
        match self {
            ExactVerdict::Certified { ii } => Some(*ii),
            _ => None,
        }
    }
}

/// Search statistics for one candidate II.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IiStats {
    /// The candidate initiation interval.
    pub ii: u32,
    /// Whether a schedule was found at this II.
    pub feasible: bool,
    /// Search nodes expanded (placement and routing trials).
    pub nodes: u64,
    /// Trials pruned by an occupied issue slot.
    pub pruned_issue: u64,
    /// Placements pruned by an empty dependence window.
    pub pruned_timing: u64,
    /// Routing trials pruned by stub resource conflicts.
    pub pruned_routing: u64,
}

impl IiStats {
    /// The dominant prune reason at this II, as a stable name (`None`
    /// when nothing was pruned).
    pub fn dominant_prune(&self) -> Option<&'static str> {
        let ranked = [
            (self.pruned_issue, "issue_slot"),
            (self.pruned_timing, "timing_window"),
            (self.pruned_routing, "routing"),
        ];
        ranked
            .iter()
            .max_by_key(|(n, _)| *n)
            .filter(|(n, _)| *n > 0)
            .map(|&(_, name)| name)
    }
}

/// The full result of a [`certify_min_ii`] run.
#[derive(Clone, Debug)]
pub struct ExactReport {
    /// The oracle's verdict.
    pub verdict: ExactVerdict,
    /// The lower bound the II iteration started from
    /// (`max(RecMII, ResMII)`; 0 for kernels without a loop).
    pub mii: u32,
    /// Per-candidate-II search statistics, in search order.
    pub per_ii: Vec<IiStats>,
    /// The witness schedule, when the verdict is `Certified`. Always
    /// passes [`validate`] (checked internally).
    pub schedule: Option<Schedule>,
}

impl ExactReport {
    /// Total search nodes expanded across every candidate II.
    pub fn nodes(&self) -> u64 {
        self.per_ii.iter().map(|s| s.nodes).sum()
    }

    /// Renders the search as human-readable text: one line per candidate
    /// II with its node and prune counts, then the verdict.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for s in &self.per_ii {
            let _ = write!(
                out,
                "II={}: {} after {} nodes (issue {}, timing {}, routing {})",
                s.ii,
                if s.feasible { "feasible" } else { "infeasible" },
                s.nodes,
                s.pruned_issue,
                s.pruned_timing,
                s.pruned_routing,
            );
            if !s.feasible {
                if let Some(why) = s.dominant_prune() {
                    let _ = write!(out, " — dominated by {why} prunes");
                }
            }
            out.push('\n');
        }
        let _ = match self.verdict {
            ExactVerdict::Certified { ii } => {
                writeln!(out, "verdict: certified minimum II={ii} (MII={})", self.mii)
            }
            ExactVerdict::GapUnknown { spent, limit } => {
                writeln!(out, "verdict: gap unknown (budget {spent}/{limit} spent)")
            }
            ExactVerdict::Infeasible { max_ii } => writeln!(
                out,
                "verdict: infeasible up to II={max_ii} within the search space"
            ),
        };
        out
    }
}

/// Certifies the minimum initiation interval of `kernel` on `arch`.
///
/// Iterates candidate IIs upward from `max(RecMII, ResMII)`, running a
/// complete branch-and-bound search at each; the first II with a
/// schedule is the certified minimum (every smaller II was refuted).
/// The witness schedule is re-checked by the independent validator
/// before the verdict is issued.
///
/// # Errors
///
/// [`SchedError::NotCopyConnected`] / [`SchedError::NoCapableUnit`] when
/// `arch` cannot execute `kernel` at all, and [`SchedError::Internal`]
/// if a found schedule fails validation (an oracle bug, never silent).
/// Budget exhaustion is *not* an error: it yields
/// [`ExactVerdict::GapUnknown`].
pub fn certify_min_ii(
    arch: &Architecture,
    kernel: &Kernel,
    cfg: &ExactConfig,
    budget: &StepBudget,
) -> Result<ExactReport, SchedError> {
    certify_impl(arch, kernel, cfg, budget, None)
}

/// [`certify_min_ii`] with per-II search events traced into `sink`
/// ([`TraceEvent::ExactIiStart`], [`TraceEvent::ExactIiDone`]).
///
/// # Errors
///
/// Identical to [`certify_min_ii`].
pub fn certify_min_ii_traced(
    arch: &Architecture,
    kernel: &Kernel,
    cfg: &ExactConfig,
    budget: &StepBudget,
    sink: &mut dyn TraceSink,
) -> Result<ExactReport, SchedError> {
    certify_impl(arch, kernel, cfg, budget, Some(sink))
}

fn certify_impl(
    arch: &Architecture,
    kernel: &Kernel,
    cfg: &ExactConfig,
    budget: &StepBudget,
    mut sink: Option<&mut dyn TraceSink>,
) -> Result<ExactReport, SchedError> {
    if !arch.copy_connectivity().is_copy_connected() {
        return Err(not_copy_connected(arch));
    }
    for op in kernel.op_ids() {
        let opcode = kernel.op(op).opcode();
        if arch.fus_for(opcode).is_empty() {
            return Err(SchedError::NoCapableUnit { opcode });
        }
    }
    let graph = DepGraph::build(kernel, |opcode| crate::driver::min_latency(arch, opcode));
    let has_loop = kernel.loop_block().is_some();
    let mii = if has_loop {
        graph.rec_mii(kernel).max(res_mii(arch, kernel))
    } else {
        0
    };
    let first = mii.max(1);
    let last = if has_loop { cfg.max_ii } else { first };

    let mut per_ii = Vec::new();
    for ii in first..=last {
        if let Some(s) = sink.as_mut() {
            s.event(TraceEvent::ExactIiStart { ii });
        }
        let mut search = Searcher::new(arch, kernel, &graph, cfg, budget, ii);
        let outcome = search.run();
        let mut stats = search.stats;
        stats.ii = ii;
        stats.feasible = matches!(outcome, Ok(true));
        if let Some(s) = sink.as_mut() {
            s.event(TraceEvent::ExactIiDone {
                ii,
                feasible: stats.feasible,
                nodes: stats.nodes,
                pruned_issue: stats.pruned_issue,
                pruned_timing: stats.pruned_timing,
                pruned_routing: stats.pruned_routing,
            });
        }
        per_ii.push(stats);
        match outcome {
            Ok(true) => {
                let schedule = search.into_schedule(mii)?;
                if let Err(errors) = validate::validate(arch, kernel, &schedule) {
                    return Err(SchedError::internal(
                        "exact",
                        format!(
                            "oracle schedule for {} on {} failed validation: {:?}",
                            kernel.name(),
                            arch.name(),
                            errors.first()
                        ),
                    ));
                }
                let certified = if has_loop { ii } else { 0 };
                return Ok(ExactReport {
                    verdict: ExactVerdict::Certified { ii: certified },
                    mii,
                    per_ii,
                    schedule: Some(schedule),
                });
            }
            Ok(false) => {}
            Err(_stop) => {
                return Ok(ExactReport {
                    verdict: ExactVerdict::GapUnknown {
                        spent: budget.spent(),
                        limit: budget.limit(),
                    },
                    mii,
                    per_ii,
                    schedule: None,
                });
            }
        }
    }
    Ok(ExactReport {
        verdict: ExactVerdict::Infeasible { max_ii: last },
        mii,
        per_ii,
        schedule: None,
    })
}

/// One candidate-II branch-and-bound search (module docs).
struct Searcher<'a> {
    arch: &'a Architecture,
    kernel: &'a Kernel,
    cfg: &'a ExactConfig,
    budget: &'a StepBudget,
    ii: u32,
    universe: Universe,
    placements: Vec<Option<ScheduledOp>>,
    dispositions: Vec<Option<CommDisposition>>,
    tables: Vec<ResourceTable>,
    /// The one read stub every communication into `(consumer, slot)` must
    /// share (the §4.2 operand-sharing rule the validator enforces).
    operand_stub: HashMap<(u32, u32), ReadStub>,
    /// Kernel operations in placement order (per block, decreasing
    /// critical-path height — the same order the heuristic uses, so the
    /// feasible case is found fast).
    order: Vec<SOpId>,
    /// Candidate `(unit, capability)` pairs per kernel operation.
    cand: Vec<Vec<(FuId, Capability)>>,
    /// Candidate `(unit, capability)` pairs for inserted copies.
    copy_cand: Vec<(FuId, Capability)>,
    /// Same-block memory-order predecessors `(pred, distance)` per op.
    order_preds: Vec<Vec<(SOpId, u32)>>,
    /// Same-block memory-order successors `(succ, distance)` per op.
    order_succs: Vec<Vec<(SOpId, u32)>>,
    copies_used: usize,
    copy_depth: usize,
    stats: IiStats,
}

impl<'a> Searcher<'a> {
    fn new(
        arch: &'a Architecture,
        kernel: &'a Kernel,
        graph: &DepGraph,
        cfg: &'a ExactConfig,
        budget: &'a StepBudget,
        ii: u32,
    ) -> Self {
        let universe = Universe::build(kernel);
        let num_ops = universe.num_ops();
        let num_comms = universe.num_comms();
        let tables: Vec<ResourceTable> = kernel
            .block_ids()
            .map(|b| {
                let mode = if kernel.block(b).is_loop() {
                    TableMode::Modulo(ii)
                } else {
                    TableMode::Linear
                };
                ResourceTable::new(ResourceMap::new(arch), mode)
            })
            .collect();
        let mut order = Vec::with_capacity(num_ops);
        for block in kernel.block_ids() {
            for op in graph.operation_order(kernel, block) {
                order.push(SOpId::from_raw(op.index()));
            }
        }
        let cand: Vec<Vec<(FuId, Capability)>> = kernel
            .op_ids()
            .map(|op| fu_candidates(arch, kernel.op(op).opcode()))
            .collect();
        let copy_cand = fu_candidates(arch, Opcode::Copy);
        let mut order_preds = vec![Vec::new(); num_ops];
        let mut order_succs = vec![Vec::new(); num_ops];
        for e in graph.edges() {
            if e.kind != DepKind::Mem {
                continue;
            }
            if kernel.op(e.from).block() != kernel.op(e.to).block() {
                continue;
            }
            let (from, to) = (
                SOpId::from_raw(e.from.index()),
                SOpId::from_raw(e.to.index()),
            );
            order_preds[to.index()].push((from, e.distance));
            order_succs[from.index()].push((to, e.distance));
        }
        Searcher {
            arch,
            kernel,
            cfg,
            budget,
            ii,
            universe,
            placements: vec![None; num_ops],
            dispositions: vec![None; num_comms],
            tables,
            operand_stub: HashMap::new(),
            order,
            cand,
            copy_cand,
            order_preds,
            order_succs,
            copies_used: 0,
            copy_depth: 0,
            stats: IiStats::default(),
        }
    }

    fn block_ii(&self, block: BlockId) -> i64 {
        if self.kernel.block(block).is_loop() {
            self.ii as i64
        } else {
            1
        }
    }

    fn savepoints(&self) -> Vec<Savepoint> {
        self.tables.iter().map(ResourceTable::savepoint).collect()
    }

    fn rollback(&mut self, sps: &[Savepoint]) {
        for (table, &sp) in self.tables.iter_mut().zip(sps) {
            table.rollback(sp);
        }
    }

    /// Runs the search: `Ok(true)` leaves the searcher holding a complete
    /// placement + routing, `Ok(false)` proves the space empty at this II.
    fn run(&mut self) -> Result<bool, BudgetStop> {
        self.place_from(0)
    }

    /// Places `order[idx..]`, backtracking over units, cycles, and routes.
    fn place_from(&mut self, idx: usize) -> Result<bool, BudgetStop> {
        if idx == self.order.len() {
            return Ok(true);
        }
        let op = self.order[idx];
        let block = self.universe.op(op).block;
        let bii = self.block_ii(block);
        let is_loop = self.kernel.block(block).is_loop();

        // Earliest issue cycle: every placed same-block producer (data or
        // memory order) must complete before this op reads/issues.
        let mut lo = 0i64;
        for slot in 0..self.universe.op(op).num_operands {
            for &cid in self.universe.comms_to_operand(op, slot) {
                let c = self.universe.comm(cid);
                if self.universe.op(c.producer).block != block {
                    continue;
                }
                if let Some(p) = self.placements[c.producer.index()] {
                    lo = lo.max(p.completion() + 1 - c.distance as i64 * bii);
                }
            }
        }
        for &(pred, dist) in &self.order_preds[op.index()] {
            if let Some(p) = self.placements[pred.index()] {
                lo = lo.max(p.completion() + 1 - dist as i64 * bii);
            }
        }
        lo = lo.max(0);
        let window = if is_loop {
            self.ii as i64 + self.cfg.window_slack
        } else {
            self.cfg.straight_horizon
        };

        for ci in 0..self.cand[op.index()].len() {
            let (fu, cap) = self.cand[op.index()][ci];
            // Latest issue cycle on this unit: every placed same-block
            // consumer must issue after this op completes.
            let mut hi = lo + window - 1;
            for &cid in self.universe.comms_from(op) {
                let c = self.universe.comm(cid);
                if self.universe.op(c.consumer).block != block {
                    continue;
                }
                if let Some(q) = self.placements[c.consumer.index()] {
                    hi = hi.min(q.cycle + c.distance as i64 * bii - cap.latency as i64);
                }
            }
            for &(succ, dist) in &self.order_succs[op.index()] {
                if let Some(q) = self.placements[succ.index()] {
                    hi = hi.min(q.cycle + dist as i64 * bii - cap.latency as i64);
                }
            }
            if hi < lo {
                self.stats.pruned_timing += 1;
                continue;
            }
            for cycle in lo..=hi {
                self.stats.nodes += 1;
                self.budget.step()?;
                let sps = self.savepoints();
                if !self.tables[block.index()].place_issue(cycle, fu, cap.issue_interval, op) {
                    self.stats.pruned_issue += 1;
                    continue;
                }
                self.placements[op.index()] = Some(ScheduledOp {
                    fu,
                    cycle,
                    latency: cap.latency,
                });
                let closable = self.closable_comms(op);
                if self.route_comms(&closable, 0, idx + 1)? {
                    return Ok(true);
                }
                self.placements[op.index()] = None;
                self.rollback(&sps);
            }
        }
        Ok(false)
    }

    /// Communications touching `op` whose both endpoints are now placed
    /// and which have no disposition yet, in id order.
    fn closable_comms(&self, op: SOpId) -> Vec<CommId> {
        let mut out: Vec<CommId> = Vec::new();
        for slot in 0..self.universe.op(op).num_operands {
            out.extend_from_slice(self.universe.comms_to_operand(op, slot));
        }
        out.extend_from_slice(self.universe.comms_from(op));
        out.retain(|&cid| {
            let c = self.universe.comm(cid);
            self.dispositions[cid.index()].is_none()
                && self.placements[c.producer.index()].is_some()
                && self.placements[c.consumer.index()].is_some()
        });
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Routes `comms[k..]`, then continues placing from `order[next_idx]`.
    fn route_comms(
        &mut self,
        comms: &[CommId],
        k: usize,
        next_idx: usize,
    ) -> Result<bool, BudgetStop> {
        if k == comms.len() {
            return self.place_from(next_idx);
        }
        let cid = comms[k];
        let c = self.universe.comm(cid).clone();
        let Some(p) = self.placements[c.producer.index()] else {
            return Ok(false); // unreachable: closable_comms filtered
        };
        let Some(q) = self.placements[c.consumer.index()] else {
            return Ok(false);
        };
        let pblock = self.universe.op(c.producer).block;
        let qblock = self.universe.op(c.consumer).block;
        let fanout = self.arch.fu(p.fu).output_fanout();
        let key = (c.consumer.0, c.slot as u32);
        let locked = self.operand_stub.get(&key).copied();

        // Direct routes: one write stub on the producer's unit, one read
        // stub on the consumer's operand, meeting in one register file.
        for wi in 0..self.arch.write_stubs(p.fu).len() {
            let wstub = self.arch.write_stubs(p.fu)[wi];
            for ri in 0..self.arch.read_stubs(q.fu, c.slot).len() {
                let rstub = self.arch.read_stubs(q.fu, c.slot)[ri];
                if wstub.rf != rstub.rf {
                    continue;
                }
                if let Some(l) = locked {
                    if rstub != l {
                        continue;
                    }
                }
                self.stats.nodes += 1;
                self.budget.step()?;
                let sps = self.savepoints();
                let placed = self.tables[pblock.index()].place_write_stub(
                    p.completion(),
                    wstub,
                    c.producer,
                    fanout,
                ) && self.tables[qblock.index()]
                    .place_read_stub(q.cycle, rstub, c.consumer, c.slot);
                if !placed {
                    self.stats.pruned_routing += 1;
                    self.rollback(&sps);
                    continue;
                }
                self.dispositions[cid.index()] =
                    Some(CommDisposition::Direct(Route { wstub, rstub }));
                if locked.is_none() {
                    self.operand_stub.insert(key, rstub);
                }
                if self.route_comms(comms, k + 1, next_idx)? {
                    return Ok(true);
                }
                if locked.is_none() {
                    self.operand_stub.remove(&key);
                }
                self.dispositions[cid.index()] = None;
                self.rollback(&sps);
            }
        }

        // Depth-1 copy insertion: split the communication through a copy
        // in the producer's block (cross-block values stage there too,
        // mirroring the engine's preamble copies).
        if !self.cfg.allow_copies || self.copies_used >= self.cfg.max_copies || self.copy_depth > 0
        {
            return Ok(false);
        }
        let cblock = pblock;
        let cbii = self.block_ii(cblock);
        for ci in 0..self.copy_cand.len() {
            let (cfu, ccap) = self.copy_cand[ci];
            let lo_c = p.completion() + 1;
            let mut hi_c = lo_c + self.cfg.copy_slack - 1;
            if cblock == qblock {
                hi_c = hi_c.min(q.cycle + c.distance as i64 * cbii - ccap.latency as i64);
            }
            for ccycle in lo_c..=hi_c {
                self.stats.nodes += 1;
                self.budget.step()?;
                let sps = self.savepoints();
                let copy = self.universe.add_copy(cblock);
                if !self.tables[cblock.index()].place_issue(ccycle, cfu, ccap.issue_interval, copy)
                {
                    self.stats.pruned_issue += 1;
                    self.universe.remove_last_copy();
                    continue;
                }
                // Split: producer -> copy carries distance 0; copy ->
                // consumer carries the original distance (engine §4.3
                // step 5 convention, which the validator's transport
                // resolution relies on).
                let leg1 = self.universe.add_comm(Comm {
                    producer: c.producer,
                    consumer: copy,
                    slot: 0,
                    distance: 0,
                });
                let leg2 = self.universe.add_comm(Comm {
                    producer: copy,
                    consumer: c.consumer,
                    slot: c.slot,
                    distance: c.distance,
                });
                self.placements.push(Some(ScheduledOp {
                    fu: cfu,
                    cycle: ccycle,
                    latency: ccap.latency,
                }));
                self.dispositions.push(None);
                self.dispositions.push(None);
                self.dispositions[cid.index()] = Some(CommDisposition::Via(copy));
                self.copies_used += 1;
                self.copy_depth += 1;
                let mut rest = vec![leg1, leg2];
                rest.extend_from_slice(&comms[k + 1..]);
                let found = self.route_comms(&rest, 0, next_idx)?;
                self.copy_depth -= 1;
                if found {
                    return Ok(true);
                }
                self.copies_used -= 1;
                self.dispositions[cid.index()] = None;
                self.dispositions.pop();
                self.dispositions.pop();
                self.placements.pop();
                self.universe.remove_last_copy();
                self.rollback(&sps);
            }
        }
        Ok(false)
    }

    /// Consumes a successful search into a [`Schedule`].
    fn into_schedule(self, mii: u32) -> Result<Schedule, SchedError> {
        let mut placements = Vec::with_capacity(self.placements.len());
        for (i, p) in self.placements.iter().enumerate() {
            match p {
                Some(p) => placements.push(*p),
                None => {
                    return Err(SchedError::internal(
                        "exact",
                        format!("operation s{i} unplaced in a found schedule"),
                    ))
                }
            }
        }
        let mut dispositions = Vec::with_capacity(self.dispositions.len());
        for (i, d) in self.dispositions.iter().enumerate() {
            match d {
                Some(d) => dispositions.push(*d),
                None => {
                    return Err(SchedError::internal(
                        "exact",
                        format!("communication c{i} unrouted in a found schedule"),
                    ))
                }
            }
        }
        let mut block_len: Vec<i64> = self.kernel.block_ids().map(|_| 0).collect();
        for op in self.universe.op_ids() {
            let block = self.universe.op(op).block;
            let end = placements[op.index()].completion() + 1;
            block_len[block.index()] = block_len[block.index()].max(end);
        }
        let ii = self.kernel.loop_block().map(|lb| {
            block_len[lb.index()] = block_len[lb.index()].max(self.ii as i64);
            self.ii
        });
        let stats = SchedStats {
            attempts: self.stats.nodes,
            rejections: self.stats.pruned_issue + self.stats.pruned_routing,
            copies_inserted: self.copies_used as u64,
            ii_tried: ii.map_or(1, |ii| ii - mii.max(1) + 1),
            cross_block_copy_failures: 0,
            backtracked: false,
        };
        Ok(Schedule {
            arch_name: self.arch.name().to_string(),
            kernel_name: self.kernel.name().to_string(),
            universe: self.universe,
            placements,
            dispositions,
            block_len,
            ii,
            stats,
        })
    }
}

/// Candidate `(unit, capability)` pairs for `opcode`, in unit-id order
/// (deterministic).
fn fu_candidates(arch: &Architecture, opcode: Opcode) -> Vec<(FuId, Capability)> {
    arch.fus_for(opcode)
        .into_iter()
        .filter_map(|fu| arch.fu(fu).capability(opcode).map(|cap| (fu, cap)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{schedule_kernel, SchedulerConfig};
    use csched_ir::KernelBuilder;
    use csched_machine::{imagine, toy};

    fn pressured_loop() -> Kernel {
        let mut kb = KernelBuilder::new("pressured");
        let lp = kb.loop_block("body");
        let i = kb.loop_var(lp, 0i64.into());
        let a = kb.push(lp, Opcode::IAdd, [i.into(), 1i64.into()]);
        let b = kb.push(lp, Opcode::IAdd, [a.into(), 2i64.into()]);
        let _c = kb.push(lp, Opcode::IAdd, [b.into(), 3i64.into()]);
        let i1 = kb.push(lp, Opcode::IAdd, [i.into(), 1i64.into()]);
        kb.set_update(i, i1.into());
        kb.build().unwrap()
    }

    #[test]
    fn certifies_the_motivating_example_kernel() {
        // Golden certification: 4 add-class ops on the toy machine's 2
        // adders have ResMII 2, and a modulo schedule at II=2 exists; the
        // oracle must certify exactly 2 and produce a valid witness.
        let arch = toy::motivating_example();
        let kernel = pressured_loop();
        let budget = StepBudget::new(5_000_000);
        let report = certify_min_ii(&arch, &kernel, &ExactConfig::default(), &budget).unwrap();
        assert_eq!(report.verdict, ExactVerdict::Certified { ii: 2 }, "{}", {
            report.render_text()
        });
        let schedule = report.schedule.as_ref().unwrap();
        assert!(validate::validate(&arch, &kernel, schedule).is_ok());
        assert_eq!(schedule.ii(), Some(2));
    }

    #[test]
    fn exact_never_exceeds_the_heuristic() {
        let arch = imagine::central();
        let mut kb = KernelBuilder::new("scale");
        let input = kb.region("in", true);
        let output = kb.region("out", true);
        let lp = kb.loop_block("body");
        let i = kb.loop_var(lp, 0i64.into());
        let x = kb.load(lp, input, i.into(), 0i64.into());
        let y = kb.push(lp, Opcode::IMul, [x.into(), 3i64.into()]);
        kb.store(lp, output, i.into(), 0i64.into(), y.into());
        let i1 = kb.push(lp, Opcode::IAdd, [i.into(), 1i64.into()]);
        kb.set_update(i, i1.into());
        let kernel = kb.build().unwrap();

        let heuristic = schedule_kernel(&arch, &kernel, SchedulerConfig::default()).unwrap();
        let budget = StepBudget::new(5_000_000);
        let report = certify_min_ii(&arch, &kernel, &ExactConfig::default(), &budget).unwrap();
        let exact = report.verdict.certified_ii().unwrap();
        assert!(exact <= heuristic.ii().unwrap());
        assert!(report.mii <= exact);
    }

    #[test]
    fn straight_line_kernels_certify_as_zero() {
        let arch = toy::motivating_example();
        let mut kb = KernelBuilder::new("straight");
        let b = kb.straight_block("b");
        let x = kb.push(b, Opcode::IAdd, [1i64.into(), 2i64.into()]);
        kb.push(b, Opcode::IAdd, [x.into(), 3i64.into()]);
        let kernel = kb.build().unwrap();
        let budget = StepBudget::new(100_000);
        let report = certify_min_ii(&arch, &kernel, &ExactConfig::default(), &budget).unwrap();
        assert_eq!(report.verdict, ExactVerdict::Certified { ii: 0 });
        let schedule = report.schedule.unwrap();
        assert_eq!(schedule.ii(), None);
        assert!(validate::validate(&arch, &kernel, &schedule).is_ok());
    }

    #[test]
    fn tight_budget_yields_gap_unknown() {
        let arch = toy::motivating_example();
        let kernel = pressured_loop();
        let budget = StepBudget::new(3);
        let report = certify_min_ii(&arch, &kernel, &ExactConfig::default(), &budget).unwrap();
        assert_eq!(
            report.verdict,
            ExactVerdict::GapUnknown { spent: 3, limit: 3 }
        );
        assert!(report.schedule.is_none());
    }

    /// A loop that is *bus*-bound on the toy machine: MII = 2 from issue
    /// pressure (4 adds on 2 adders, 2 loads on LS), but the iteration
    /// communicates 5 distinct values and the machine has only
    /// 2 buses × II cycles of write bandwidth — so II = 2 admits at most
    /// 4 communicated values and is genuinely infeasible. ResMII cannot
    /// see this; only the exhaustive search can refute it.
    fn bus_bound_loop() -> Kernel {
        let mut kb = KernelBuilder::new("busbound");
        let data = kb.region("data", true);
        let lp = kb.loop_block("body");
        let i = kb.loop_var(lp, 0i64.into());
        let x = kb.load(lp, data, i.into(), 0i64.into());
        let y = kb.load(lp, data, i.into(), 64i64.into());
        let a = kb.push(lp, Opcode::IAdd, [x.into(), 1i64.into()]);
        let b = kb.push(lp, Opcode::IAdd, [y.into(), 2i64.into()]);
        let _c = kb.push(lp, Opcode::IAdd, [a.into(), b.into()]);
        let i1 = kb.push(lp, Opcode::IAdd, [i.into(), 1i64.into()]);
        kb.set_update(i, i1.into());
        kb.build().unwrap()
    }

    #[test]
    fn refutes_a_bus_bound_ii_the_mii_cannot_see() {
        let arch = toy::motivating_example();
        let kernel = bus_bound_loop();
        let budget = StepBudget::new(20_000_000);
        let cfg = ExactConfig {
            max_ii: 2,
            ..ExactConfig::default()
        };
        let report = certify_min_ii(&arch, &kernel, &cfg, &budget).unwrap();
        assert_eq!(report.mii, 2, "issue pressure alone says 2");
        assert_eq!(
            report.verdict,
            ExactVerdict::Infeasible { max_ii: 2 },
            "{}",
            report.render_text()
        );
        assert_eq!(report.per_ii.len(), 1);
        assert!(!report.per_ii[0].feasible);
        assert!(report.per_ii[0].nodes > 0);
    }

    #[test]
    fn empty_ii_range_is_infeasible_without_search() {
        let arch = toy::motivating_example();
        let kernel = pressured_loop();
        let budget = StepBudget::new(5_000_000);
        let cfg = ExactConfig {
            max_ii: 1, // below the MII of 2: nothing to search
            ..ExactConfig::default()
        };
        let report = certify_min_ii(&arch, &kernel, &cfg, &budget).unwrap();
        assert_eq!(report.verdict, ExactVerdict::Infeasible { max_ii: 1 });
        assert!(report.per_ii.is_empty());
    }

    #[test]
    fn certification_is_deterministic() {
        let arch = imagine::clustered(2);
        let kernel = pressured_loop();
        let run = || {
            let budget = StepBudget::new(5_000_000);
            certify_min_ii(&arch, &kernel, &ExactConfig::default(), &budget).unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.verdict, b.verdict);
        assert_eq!(a.per_ii, b.per_ii, "node/prune counts must be replayable");
    }

    #[test]
    fn search_events_reach_the_sink() {
        use crate::trace::RingBufferSink;
        let arch = toy::motivating_example();
        let kernel = pressured_loop();
        let budget = StepBudget::new(5_000_000);
        let mut sink = RingBufferSink::new(64);
        let report =
            certify_min_ii_traced(&arch, &kernel, &ExactConfig::default(), &budget, &mut sink)
                .unwrap();
        let done: Vec<&TraceEvent> = sink
            .events()
            .filter(|e| matches!(e, TraceEvent::ExactIiDone { .. }))
            .collect();
        assert_eq!(done.len(), report.per_ii.len());
        match done.last().unwrap() {
            TraceEvent::ExactIiDone {
                ii,
                feasible,
                nodes,
                ..
            } => {
                assert_eq!(*ii, 2);
                assert!(*feasible);
                assert_eq!(*nodes, report.per_ii.last().unwrap().nodes);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn render_text_names_the_dominant_prune() {
        let report = ExactReport {
            verdict: ExactVerdict::Infeasible { max_ii: 3 },
            mii: 3,
            per_ii: vec![IiStats {
                ii: 3,
                feasible: false,
                nodes: 100,
                pruned_issue: 80,
                pruned_timing: 5,
                pruned_routing: 10,
            }],
            schedule: None,
        };
        let text = report.render_text();
        assert!(text.contains("II=3: infeasible after 100 nodes"), "{text}");
        assert!(text.contains("dominated by issue_slot prunes"), "{text}");
        assert!(text.contains("verdict: infeasible up to II=3"), "{text}");
    }
}
