//! Independent schedule validation.
//!
//! Re-derives every constraint a correct schedule must satisfy — unit
//! capability, dependence timing, route well-formedness, operand stub
//! consistency, and cycle-level resource exclusivity — directly from the
//! finished [`Schedule`], the [`Architecture`] and the [`Kernel`]. The
//! scheduler never consults this module, so bookkeeping bugs in the engine
//! cannot hide here; the property tests lean on it heavily.

use std::collections::HashMap;
use std::fmt;

use csched_ir::{DepGraph, DepKind, Kernel};
use csched_machine::{Architecture, ResourceMap};

use crate::schedule::Schedule;
use crate::table::{ResourceTable, TableMode};
use crate::universe::{CommId, SOpId};

/// One validation failure.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum ValidationError {
    /// An operation is placed on a unit that cannot execute it.
    IncapableUnit {
        /// The operation.
        op: SOpId,
    },
    /// The recorded latency disagrees with the unit's capability.
    WrongLatency {
        /// The operation.
        op: SOpId,
    },
    /// A same-block dependence or communication is not satisfied in time.
    TimingViolated {
        /// Producing operation.
        from: SOpId,
        /// Consuming operation.
        to: SOpId,
        /// Iteration distance of the dependence.
        distance: u32,
    },
    /// A route's stubs do not match the endpoint placements or do not meet
    /// in one register file.
    MalformedRoute {
        /// The communication.
        comm: CommId,
        /// Human-readable reason.
        reason: String,
    },
    /// Two communications into one operand use different read stubs.
    InconsistentOperand {
        /// The consuming operation.
        op: SOpId,
        /// The operand slot.
        slot: usize,
    },
    /// Replaying the schedule's claims found a hardware resource conflict.
    ResourceConflict {
        /// Human-readable description of the conflicting claim.
        what: String,
    },
    /// A copy operation landed outside its communication's copy range.
    CopyOutOfRange {
        /// The copy operation.
        copy: SOpId,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::IncapableUnit { op } => write!(f, "{op}: unit cannot execute it"),
            ValidationError::WrongLatency { op } => write!(f, "{op}: latency mismatch"),
            ValidationError::TimingViolated { from, to, distance } => {
                write!(
                    f,
                    "dependence {from} -> {to} (distance {distance}) violated"
                )
            }
            ValidationError::MalformedRoute { comm, reason } => {
                write!(f, "{comm}: malformed route: {reason}")
            }
            ValidationError::InconsistentOperand { op, slot } => {
                write!(f, "{op} operand {slot}: read stubs differ")
            }
            ValidationError::ResourceConflict { what } => {
                write!(f, "resource conflict: {what}")
            }
            ValidationError::CopyOutOfRange { copy } => {
                write!(f, "{copy}: copy scheduled outside its copy range")
            }
        }
    }
}

/// Validates `schedule` against `arch` and `kernel`.
///
/// # Errors
///
/// Returns every violation found (an empty `Ok(())` means the schedule is
/// consistent).
pub fn validate(
    arch: &Architecture,
    kernel: &Kernel,
    schedule: &Schedule,
) -> Result<(), Vec<ValidationError>> {
    let mut errors = Vec::new();
    let u = schedule.universe();
    let ii = schedule.ii().unwrap_or(1) as i64;

    // --- capability and latency ---
    for op in u.op_ids() {
        let p = schedule.placement(op);
        match arch.fu(p.fu).capability(u.op(op).opcode) {
            None => errors.push(ValidationError::IncapableUnit { op }),
            Some(cap) => {
                if cap.latency != p.latency {
                    errors.push(ValidationError::WrongLatency { op });
                }
            }
        }
    }

    let block_ii = |block: csched_ir::BlockId| -> i64 {
        if kernel.block(block).is_loop() {
            ii
        } else {
            1
        }
    };

    // --- communication timing (same block) ---
    for cid in u.comm_ids() {
        let c = u.comm(cid);
        let bp = u.op(c.producer).block;
        let bq = u.op(c.consumer).block;
        if bp != bq {
            continue;
        }
        let p = schedule.placement(c.producer);
        let q = schedule.placement(c.consumer);
        if q.cycle + c.distance as i64 * block_ii(bp) < p.completion() + 1 {
            errors.push(ValidationError::TimingViolated {
                from: c.producer,
                to: c.consumer,
                distance: c.distance,
            });
        }
    }

    // --- memory ordering (kernel ops only) ---
    let graph = DepGraph::build(kernel, csched_machine::default_latency);
    for e in graph.edges() {
        if e.kind != DepKind::Mem {
            continue;
        }
        if kernel.op(e.from).block() != kernel.op(e.to).block() {
            continue;
        }
        let from = SOpId::from_raw(e.from.index());
        let to = SOpId::from_raw(e.to.index());
        let p = schedule.placement(from);
        let q = schedule.placement(to);
        if q.cycle + e.distance as i64 * block_ii(kernel.op(e.from).block()) < p.completion() + 1 {
            errors.push(ValidationError::TimingViolated {
                from,
                to,
                distance: e.distance,
            });
        }
    }

    // --- route well-formedness ---
    let mut operand_stub: HashMap<(SOpId, usize), csched_machine::ReadStub> = HashMap::new();
    for cid in u.comm_ids() {
        for (leg_id, route) in schedule.transport(cid) {
            let leg = u.comm(leg_id);
            let p = schedule.placement(leg.producer);
            let q = schedule.placement(leg.consumer);
            if route.wstub.fu != p.fu {
                errors.push(ValidationError::MalformedRoute {
                    comm: leg_id,
                    reason: format!("write stub unit {} != producer unit", route.wstub.fu),
                });
            }
            if route.rstub.fu != q.fu || route.rstub.slot as usize != leg.slot {
                errors.push(ValidationError::MalformedRoute {
                    comm: leg_id,
                    reason: "read stub does not match consumer input".into(),
                });
            }
            if route.wstub.rf != route.rstub.rf {
                errors.push(ValidationError::MalformedRoute {
                    comm: leg_id,
                    reason: format!(
                        "stubs meet in different files ({} vs {})",
                        route.wstub.rf, route.rstub.rf
                    ),
                });
            }
            if !arch.write_stubs(p.fu).contains(&route.wstub) {
                errors.push(ValidationError::MalformedRoute {
                    comm: leg_id,
                    reason: "write stub not valid for this unit".into(),
                });
            }
            if !arch.read_stubs(q.fu, leg.slot).contains(&route.rstub) {
                errors.push(ValidationError::MalformedRoute {
                    comm: leg_id,
                    reason: "read stub not valid for this input".into(),
                });
            }
            // Operand consistency across communications.
            match operand_stub.entry((leg.consumer, leg.slot)) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(route.rstub);
                }
                std::collections::hash_map::Entry::Occupied(e) => {
                    if *e.get() != route.rstub {
                        errors.push(ValidationError::InconsistentOperand {
                            op: leg.consumer,
                            slot: leg.slot,
                        });
                    }
                }
            }
        }
    }

    // --- copy ranges ---
    for cid in u.comm_ids() {
        let legs = schedule.transport(cid);
        if legs.len() < 2 {
            continue;
        }
        let original = u.comm(cid);
        let same_block = u.op(original.producer).block == u.op(original.consumer).block;
        for window in legs.windows(2) {
            let first = u.comm(window[0].0);
            let copy = first.consumer;
            let p = schedule.placement(first.producer);
            let cp = schedule.placement(copy);
            if cp.cycle < p.completion() + 1 {
                errors.push(ValidationError::CopyOutOfRange { copy });
            }
            if same_block {
                let q = schedule.placement(original.consumer);
                let read_at =
                    q.cycle + original.distance as i64 * block_ii(u.op(original.consumer).block);
                if cp.completion() + 1 > read_at {
                    errors.push(ValidationError::CopyOutOfRange { copy });
                }
            }
        }
    }

    // --- resource replay ---
    let map = ResourceMap::new(arch);
    let mut tables: Vec<ResourceTable> = kernel
        .blocks()
        .iter()
        .map(|b| {
            let mode = if b.is_loop() {
                TableMode::Modulo(ii as u32)
            } else {
                TableMode::Linear
            };
            ResourceTable::new(map.clone(), mode)
        })
        .collect();
    for op in u.op_ids() {
        let p = schedule.placement(op);
        let block = u.op(op).block;
        let interval = arch
            .fu(p.fu)
            .capability(u.op(op).opcode)
            .map(|c| c.issue_interval)
            .unwrap_or(1);
        if !tables[block.index()].place_issue(p.cycle, p.fu, interval, op) {
            errors.push(ValidationError::ResourceConflict {
                what: format!("issue slot of {} at cycle {} ({op})", p.fu, p.cycle),
            });
        }
    }
    // Stub claims: write stubs once per distinct (producer, stub); read
    // stubs once per consumer operand.
    let mut placed_writes: HashMap<(SOpId, csched_machine::WriteStub), ()> = HashMap::new();
    let mut placed_reads: HashMap<(SOpId, usize), ()> = HashMap::new();
    for cid in u.comm_ids() {
        for (leg_id, route) in schedule.transport(cid) {
            let leg = u.comm(leg_id);
            let p = schedule.placement(leg.producer);
            let q = schedule.placement(leg.consumer);
            let pb = u.op(leg.producer).block;
            let qb = u.op(leg.consumer).block;
            if placed_writes
                .insert((leg.producer, route.wstub), ())
                .is_none()
            {
                let fanout = arch.fu(p.fu).output_fanout();
                if !tables[pb.index()].place_write_stub(
                    p.completion(),
                    route.wstub,
                    leg.producer,
                    fanout,
                ) {
                    errors.push(ValidationError::ResourceConflict {
                        what: format!("write stub of {leg_id} at cycle {}", p.completion()),
                    });
                }
            }
            if placed_reads.insert((leg.consumer, leg.slot), ()).is_none()
                && !tables[qb.index()].place_read_stub(q.cycle, route.rstub, leg.consumer, leg.slot)
            {
                errors.push(ValidationError::ResourceConflict {
                    what: format!("read stub of {leg_id} at cycle {}", q.cycle),
                });
            }
        }
    }

    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{schedule_kernel, SchedulerConfig};
    use csched_ir::KernelBuilder;
    use csched_machine::{imagine, toy, Opcode};

    fn loopy_kernel() -> Kernel {
        let mut kb = KernelBuilder::new("loopy");
        let input = kb.region("in", true);
        let output = kb.region("out", true);
        let lp = kb.loop_block("body");
        let i = kb.loop_var(lp, 0i64.into());
        let x = kb.load(lp, input, i.into(), 0i64.into());
        let y = kb.push(lp, Opcode::IAdd, [x.into(), x.into()]);
        kb.store(lp, output, i.into(), 0i64.into(), y.into());
        let i1 = kb.push(lp, Opcode::IAdd, [i.into(), 1i64.into()]);
        kb.set_update(i, i1.into());
        kb.build().unwrap()
    }

    #[test]
    fn valid_schedules_pass() {
        let kernel = loopy_kernel();
        for arch in [toy::motivating_example(), imagine::distributed()] {
            let s = schedule_kernel(&arch, &kernel, SchedulerConfig::default()).unwrap();
            validate(&arch, &kernel, &s).unwrap_or_else(|e| {
                panic!("{}: {:?}", arch.name(), e);
            });
        }
    }

    #[test]
    fn corrupted_placement_is_caught() {
        let kernel = loopy_kernel();
        let arch = imagine::distributed();
        let mut s = schedule_kernel(&arch, &kernel, SchedulerConfig::default()).unwrap();
        // Shift an op off its legal cycle: breaks timing or resources.
        s.placements[0].cycle += 1;
        assert!(validate(&arch, &kernel, &s).is_err());
    }

    #[test]
    fn corrupted_route_is_caught() {
        let kernel = loopy_kernel();
        let arch = imagine::distributed();
        let mut s = schedule_kernel(&arch, &kernel, SchedulerConfig::default()).unwrap();
        // Point one direct route's read stub at a different register file.
        let victim = s
            .dispositions
            .iter()
            .position(|d| matches!(d, crate::schedule::CommDisposition::Direct(_)))
            .expect("some direct route");
        if let crate::schedule::CommDisposition::Direct(ref mut r) = s.dispositions[victim] {
            r.rstub.rf = csched_machine::RfId::from_raw((r.rstub.rf.index() + 1) % arch.num_rfs());
        }
        assert!(validate(&arch, &kernel, &s).is_err());
    }
}
