//! Fault-injection campaigns: scheduling on degraded machines.
//!
//! The paper's Appendix A guarantee — communication scheduling completes
//! on any copy-connected machine — is a statement about machine
//! *descriptions*. This module stress-tests the implementation's side of
//! that contract: for an architecture degraded by
//! [`Architecture::with_faults`] (a failed bus, register-file port, copy
//! unit, or whole functional unit), [`schedule_kernel`] must either
//! produce a schedule that passes independent validation on the degraded
//! machine or return a typed [`SchedError`] — never panic and never
//! return a schedule that validation rejects.
//!
//! [`single_fault_campaign`] runs that check for every single-resource
//! fault of a machine across a set of kernels; [`breaking_faults`]
//! pre-computes which faults break the machine outright (copy
//! connectivity lost, or an opcode left without a capable unit) so a
//! campaign can distinguish "rejected because the machine is broken" from
//! "rejected because the search ran out of budget".

use csched_ir::Kernel;
use csched_machine::{Architecture, FaultSpec};

use crate::config::SchedulerConfig;
use crate::driver::{not_copy_connected, schedule_kernel};
use crate::error::SchedError;
use crate::validate;

/// Outcome of scheduling one kernel on one degraded machine.
#[derive(Clone, Debug)]
pub enum FaultVerdict {
    /// The scheduler produced a schedule and it passed validation on the
    /// degraded machine.
    Scheduled {
        /// The achieved initiation interval (for loop kernels).
        ii: Option<u32>,
        /// Copy operations the schedule needed.
        copies: usize,
    },
    /// The scheduler returned a typed error.
    Rejected(SchedError),
    /// The scheduler accepted the kernel but its schedule failed
    /// independent validation on the degraded machine — a scheduler bug
    /// the campaign surfaces instead of hiding.
    Invalid(String),
}

impl FaultVerdict {
    /// Whether the scheduler held its contract (scheduled-and-valid or
    /// typed rejection).
    pub fn contract_held(&self) -> bool {
        !matches!(self, FaultVerdict::Invalid(_))
    }
}

/// One row of a campaign: a fault set, a kernel, and what happened.
#[derive(Clone, Debug)]
pub struct CampaignEntry {
    /// The injected fault.
    pub fault: FaultSpec,
    /// The fault resolved against the healthy machine's names.
    pub fault_desc: String,
    /// The kernel's name.
    pub kernel: String,
    /// What the scheduler did.
    pub verdict: FaultVerdict,
}

/// Schedules `kernel` on `arch` degraded by `faults`, validating any
/// produced schedule against the degraded machine.
pub fn schedule_degraded(
    arch: &Architecture,
    faults: &[FaultSpec],
    kernel: &Kernel,
    config: SchedulerConfig,
) -> FaultVerdict {
    let degraded = arch.with_faults(faults);
    match schedule_kernel(&degraded, kernel, config) {
        Ok(schedule) => match validate::validate(&degraded, kernel, &schedule) {
            Ok(()) => FaultVerdict::Scheduled {
                ii: schedule.ii(),
                copies: schedule.num_copies(),
            },
            Err(violations) => FaultVerdict::Invalid(
                violations
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join("; "),
            ),
        },
        Err(e) => FaultVerdict::Rejected(e),
    }
}

/// Runs every single-resource fault of `arch` against every kernel in
/// `kernels`, returning one [`CampaignEntry`] per (fault, kernel) pair.
pub fn single_fault_campaign(
    arch: &Architecture,
    kernels: &[(&str, &Kernel)],
    config: &SchedulerConfig,
) -> Vec<CampaignEntry> {
    let mut entries = Vec::new();
    for fault in arch.single_resource_faults() {
        let fault_desc = fault.describe(arch);
        for &(name, kernel) in kernels {
            let verdict = schedule_degraded(arch, &[fault], kernel, config.clone());
            entries.push(CampaignEntry {
                fault,
                fault_desc: fault_desc.clone(),
                kernel: name.to_string(),
                verdict,
            });
        }
    }
    entries
}

/// Single-resource faults that make `arch` unschedulable for `kernel`
/// before any search runs: the degraded machine loses Appendix A copy
/// connectivity, or some opcode of the kernel loses every capable unit.
/// Returned with the typed error [`schedule_kernel`] would report.
pub fn breaking_faults(arch: &Architecture, kernel: &Kernel) -> Vec<(FaultSpec, SchedError)> {
    let mut broken = Vec::new();
    for fault in arch.single_resource_faults() {
        let degraded = arch.with_faults(&[fault]);
        if !degraded.copy_connectivity().is_copy_connected() {
            broken.push((fault, not_copy_connected(&degraded)));
            continue;
        }
        for op in kernel.op_ids() {
            let opcode = kernel.op(op).opcode();
            if degraded.fus_for(opcode).is_empty() {
                broken.push((fault, SchedError::NoCapableUnit { opcode }));
                break;
            }
        }
    }
    broken
}

#[cfg(test)]
mod tests {
    use super::*;
    use csched_ir::KernelBuilder;
    use csched_machine::{toy, Opcode};

    fn tiny_loop() -> Kernel {
        let mut kb = KernelBuilder::new("tiny");
        let lp = kb.loop_block("body");
        let i = kb.loop_var(lp, 0i64.into());
        let a = kb.push(lp, Opcode::IAdd, [i.into(), 1i64.into()]);
        kb.set_update(i, a.into());
        kb.build().unwrap()
    }

    #[test]
    fn campaign_holds_contract_on_toy_machine() {
        let arch = toy::motivating_example();
        let kernel = tiny_loop();
        let entries =
            single_fault_campaign(&arch, &[("tiny", &kernel)], &SchedulerConfig::default());
        assert!(!entries.is_empty());
        for e in &entries {
            assert!(
                e.verdict.contract_held(),
                "{} on fault {}: {:?}",
                e.kernel,
                e.fault_desc,
                e.verdict
            );
        }
    }

    #[test]
    fn breaking_faults_report_typed_errors() {
        let arch = toy::motivating_example();
        let kernel = tiny_loop();
        for (fault, err) in breaking_faults(&arch, &kernel) {
            assert!(
                matches!(
                    err,
                    SchedError::NotCopyConnected { .. } | SchedError::NoCapableUnit { .. }
                ),
                "fault {} produced {err:?}",
                fault.describe(&arch)
            );
        }
    }
}
