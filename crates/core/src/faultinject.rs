//! Fault-injection campaigns: scheduling on degraded machines.
//!
//! The paper's Appendix A guarantee — communication scheduling completes
//! on any copy-connected machine — is a statement about machine
//! *descriptions*. This module stress-tests the implementation's side of
//! that contract: for an architecture degraded by
//! [`Architecture::with_faults`] (a failed bus, register-file port, copy
//! unit, or whole functional unit), [`schedule_kernel`] must either
//! produce a schedule that passes independent validation on the degraded
//! machine or return a typed [`SchedError`] — never panic and never
//! return a schedule that validation rejects.
//!
//! [`single_fault_campaign`] runs that check for every single-resource
//! fault of a machine across a set of kernels; [`breaking_faults`]
//! pre-computes which faults break the machine outright (copy
//! connectivity lost, or an opcode left without a capable unit) so a
//! campaign can distinguish "rejected because the machine is broken" from
//! "rejected because the search ran out of budget".
//!
//! [`chaos_campaign`] goes further: *seeded multi-fault chaos*. Each run
//! degrades the machine by a pseudo-randomly drawn combination of `1..=k`
//! simultaneous faults and schedules under a hard
//! [`StepBudget`], asserting the watchdog contract —
//! **valid schedule, typed error, or deadline; never a panic, never
//! unbounded work**. The fault draw is driven by a deterministic
//! splitmix64 generator, so a campaign seed reproduces the exact same
//! fault combinations (and, because the scheduler and budget are both
//! deterministic, the exact same verdicts) on every machine.

use csched_ir::Kernel;
use csched_machine::{Architecture, FaultSpec};

use crate::budget::StepBudget;
use crate::config::SchedulerConfig;
use crate::driver::{not_copy_connected, schedule_kernel, schedule_kernel_budgeted};
use crate::error::SchedError;
use crate::validate;

/// Outcome of scheduling one kernel on one degraded machine.
#[derive(Clone, Debug)]
pub enum FaultVerdict {
    /// The scheduler produced a schedule and it passed validation on the
    /// degraded machine.
    Scheduled {
        /// The achieved initiation interval (for loop kernels).
        ii: Option<u32>,
        /// Copy operations the schedule needed.
        copies: usize,
    },
    /// The scheduler returned a typed error.
    Rejected(SchedError),
    /// The scheduling call's [`StepBudget`] ran dry before an answer —
    /// the bounded-work half of the chaos contract, kept distinct from
    /// [`FaultVerdict::Rejected`] so campaigns can report how often the
    /// deadline (rather than the search) decided the outcome.
    TimedOut {
        /// Placement attempts charged when the budget tripped.
        spent: u64,
        /// The budget limit.
        limit: u64,
    },
    /// The scheduler accepted the kernel but its schedule failed
    /// independent validation on the degraded machine — a scheduler bug
    /// the campaign surfaces instead of hiding.
    Invalid(String),
}

impl FaultVerdict {
    /// Whether the scheduler held its contract (scheduled-and-valid,
    /// typed rejection, or in-deadline stop).
    pub fn contract_held(&self) -> bool {
        !matches!(self, FaultVerdict::Invalid(_))
    }

    /// Stable one-line rendering (used by the reproducibility digest of
    /// [`render_chaos_campaign`]).
    pub fn render(&self) -> String {
        match self {
            FaultVerdict::Scheduled { ii, copies } => match ii {
                Some(ii) => format!("scheduled II={ii} copies={copies}"),
                None => format!("scheduled copies={copies}"),
            },
            FaultVerdict::Rejected(e) => format!("rejected: {e}"),
            FaultVerdict::TimedOut { spent, limit } => {
                format!("timed out: {spent}/{limit} placement attempts")
            }
            FaultVerdict::Invalid(detail) => format!("INVALID: {detail}"),
        }
    }
}

/// One row of a campaign: a fault set, a kernel, and what happened.
#[derive(Clone, Debug)]
pub struct CampaignEntry {
    /// The injected fault.
    pub fault: FaultSpec,
    /// The fault resolved against the healthy machine's names.
    pub fault_desc: String,
    /// The kernel's name.
    pub kernel: String,
    /// What the scheduler did.
    pub verdict: FaultVerdict,
}

/// Schedules `kernel` on `arch` degraded by `faults`, validating any
/// produced schedule against the degraded machine.
pub fn schedule_degraded(
    arch: &Architecture,
    faults: &[FaultSpec],
    kernel: &Kernel,
    config: SchedulerConfig,
) -> FaultVerdict {
    let degraded = arch.with_faults(faults);
    verdict_of(
        &degraded,
        kernel,
        schedule_kernel(&degraded, kernel, config),
    )
}

/// Like [`schedule_degraded`], but charges every placement attempt to
/// `budget`; a tripped budget becomes [`FaultVerdict::TimedOut`].
pub fn schedule_degraded_budgeted(
    arch: &Architecture,
    faults: &[FaultSpec],
    kernel: &Kernel,
    config: SchedulerConfig,
    budget: &StepBudget,
) -> FaultVerdict {
    let degraded = arch.with_faults(faults);
    match schedule_kernel_budgeted(&degraded, kernel, config, budget) {
        Err(SchedError::DeadlineExceeded { spent, limit, .. }) => {
            FaultVerdict::TimedOut { spent, limit }
        }
        Err(SchedError::Cancelled { .. }) => FaultVerdict::TimedOut {
            spent: budget.spent(),
            limit: budget.limit(),
        },
        result => verdict_of(&degraded, kernel, result),
    }
}

fn verdict_of(
    degraded: &Architecture,
    kernel: &Kernel,
    result: Result<crate::Schedule, SchedError>,
) -> FaultVerdict {
    match result {
        Ok(schedule) => match validate::validate(degraded, kernel, &schedule) {
            Ok(()) => FaultVerdict::Scheduled {
                ii: schedule.ii(),
                copies: schedule.num_copies(),
            },
            Err(violations) => FaultVerdict::Invalid(
                violations
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join("; "),
            ),
        },
        Err(e) => FaultVerdict::Rejected(e),
    }
}

/// Runs every single-resource fault of `arch` against every kernel in
/// `kernels`, returning one [`CampaignEntry`] per (fault, kernel) pair.
pub fn single_fault_campaign(
    arch: &Architecture,
    kernels: &[(&str, &Kernel)],
    config: &SchedulerConfig,
) -> Vec<CampaignEntry> {
    let mut entries = Vec::new();
    for fault in arch.single_resource_faults() {
        let fault_desc = fault.describe(arch);
        for &(name, kernel) in kernels {
            let verdict = schedule_degraded(arch, &[fault], kernel, config.clone());
            entries.push(CampaignEntry {
                fault,
                fault_desc: fault_desc.clone(),
                kernel: name.to_string(),
                verdict,
            });
        }
    }
    entries
}

/// Single-resource faults that make `arch` unschedulable for `kernel`
/// before any search runs: the degraded machine loses Appendix A copy
/// connectivity, or some opcode of the kernel loses every capable unit.
/// Returned with the typed error [`schedule_kernel`] would report.
pub fn breaking_faults(arch: &Architecture, kernel: &Kernel) -> Vec<(FaultSpec, SchedError)> {
    let mut broken = Vec::new();
    for fault in arch.single_resource_faults() {
        let degraded = arch.with_faults(&[fault]);
        if !degraded.copy_connectivity().is_copy_connected() {
            broken.push((fault, not_copy_connected(&degraded)));
            continue;
        }
        for op in kernel.op_ids() {
            let opcode = kernel.op(op).opcode();
            if degraded.fus_for(opcode).is_empty() {
                broken.push((fault, SchedError::NoCapableUnit { opcode }));
                break;
            }
        }
    }
    broken
}

/// A deterministic splitmix64 generator — the chaos campaign's only
/// source of randomness, hand-rolled so campaigns reproduce bit-for-bit
/// with no dependency on an external RNG crate.
#[derive(Clone, Debug)]
pub struct ChaosRng {
    state: u64,
}

impl ChaosRng {
    /// Creates a generator from a campaign seed.
    pub fn new(seed: u64) -> Self {
        ChaosRng { state: seed }
    }

    /// Next raw 64-bit output (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..bound` (`bound` must be nonzero). Uses simple
    /// modulo reduction: the bias for the tiny bounds a chaos campaign
    /// uses (tens of faults) is negligible and determinism is what
    /// matters here.
    pub fn below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        (self.next_u64() % bound.max(1) as u64) as usize
    }

    /// Uniform draw in `0..bound` over the full `u64` range (`bound`
    /// must be nonzero) — the wide-bound sibling of
    /// [`below`](Self::below), used for byte offsets and millisecond
    /// delays in network fault schedules.
    pub fn below_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound.max(1)
    }

    /// Derives the `index`-th independent substream of `seed`: a fresh
    /// generator whose outputs do not collide with adjacent indices (the
    /// index is run through the splitmix64 finalizer before it perturbs
    /// the seed, so `substream(s, 0)` and `substream(s, 1)` diverge
    /// immediately). This is how per-connection fault schedules and
    /// per-client retry jitter stay deterministic under concurrency:
    /// every connection index owns its own reproducible stream,
    /// whatever order the threads actually run in.
    pub fn substream(seed: u64, index: u64) -> ChaosRng {
        let mut mix = ChaosRng::new(index.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ seed);
        let perturbed = mix.next_u64();
        ChaosRng::new(seed ^ perturbed)
    }
}

/// Parameters for a seeded multi-fault chaos campaign.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Seed for the fault-combination generator. The same seed on the
    /// same machine and kernel set reproduces the campaign exactly.
    pub seed: u64,
    /// Number of fault combinations to draw.
    pub runs: usize,
    /// Faults per run are drawn uniformly from `1..=max_faults`
    /// (clamped to the machine's fault population).
    pub max_faults: usize,
    /// Hard placement-attempt budget for each scheduling call.
    pub step_limit: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0xc5c4ed,
            runs: 32,
            max_faults: 3,
            step_limit: 20_000,
        }
    }
}

/// One run of a chaos campaign: a drawn fault combination, a kernel, the
/// verdict, and what the run cost.
#[derive(Clone, Debug)]
pub struct ChaosEntry {
    /// Index of the run within the campaign (fault combinations are
    /// reused across kernels, so several entries share a run index).
    pub run: usize,
    /// The injected fault combination.
    pub faults: Vec<FaultSpec>,
    /// The combination resolved against the healthy machine's names.
    pub fault_descs: Vec<String>,
    /// The kernel's name.
    pub kernel: String,
    /// What the scheduler did.
    pub verdict: FaultVerdict,
    /// Placement attempts the run charged to its budget.
    pub attempts_spent: u64,
    /// The budget limit the run was held to.
    pub step_limit: u64,
}

/// Draws `k` distinct faults from `population` without replacement
/// (partial Fisher–Yates over an index vector).
fn draw_combination(rng: &mut ChaosRng, population: &[FaultSpec], k: usize) -> Vec<FaultSpec> {
    let mut indices: Vec<usize> = (0..population.len()).collect();
    let k = k.min(indices.len());
    let mut picked = Vec::with_capacity(k);
    for slot in 0..k {
        let j = slot + rng.below(indices.len() - slot);
        indices.swap(slot, j);
        picked.push(population[indices[slot]]);
    }
    picked
}

/// Runs a seeded multi-fault chaos campaign: `config.runs` fault
/// combinations, each scheduled for every kernel under a fresh
/// [`StepBudget`] of `config.step_limit` attempts.
///
/// Every entry satisfies the watchdog contract checkable via
/// [`FaultVerdict::contract_held`] *and* the bounded-work guarantee
/// `attempts_spent <= step_limit` (the budget refuses the attempt that
/// would overrun, so it can never be exceeded — not even by one).
pub fn chaos_campaign(
    arch: &Architecture,
    kernels: &[(&str, &Kernel)],
    config: &SchedulerConfig,
    chaos: &ChaosConfig,
) -> Vec<ChaosEntry> {
    let population = arch.single_resource_faults();
    let mut rng = ChaosRng::new(chaos.seed);
    let mut entries = Vec::new();
    if population.is_empty() {
        return entries;
    }
    let max_k = chaos.max_faults.clamp(1, population.len());
    for run in 0..chaos.runs {
        let k = 1 + rng.below(max_k);
        let faults = draw_combination(&mut rng, &population, k);
        let fault_descs: Vec<String> = faults.iter().map(|f| f.describe(arch)).collect();
        for &(name, kernel) in kernels {
            let budget = StepBudget::new(chaos.step_limit);
            let verdict =
                schedule_degraded_budgeted(arch, &faults, kernel, config.clone(), &budget);
            entries.push(ChaosEntry {
                run,
                faults: faults.clone(),
                fault_descs: fault_descs.clone(),
                kernel: name.to_string(),
                verdict,
                attempts_spent: budget.spent(),
                step_limit: chaos.step_limit,
            });
        }
    }
    entries
}

/// Renders a chaos campaign as a stable multi-line digest: one line per
/// entry plus a summary tail. Two campaigns with the same seed, machine,
/// kernels, and configuration render byte-for-byte identically — the
/// reproducibility test and the CI smoke run both compare this string.
pub fn render_chaos_campaign(entries: &[ChaosEntry]) -> String {
    let mut out = String::new();
    let mut scheduled = 0usize;
    let mut rejected = 0usize;
    let mut timed_out = 0usize;
    let mut invalid = 0usize;
    for e in entries {
        match e.verdict {
            FaultVerdict::Scheduled { .. } => scheduled += 1,
            FaultVerdict::Rejected(_) => rejected += 1,
            FaultVerdict::TimedOut { .. } => timed_out += 1,
            FaultVerdict::Invalid(_) => invalid += 1,
        }
        out.push_str(&format!(
            "run {:03} kernel {} faults [{}] attempts {}/{}: {}\n",
            e.run,
            e.kernel,
            e.fault_descs.join(", "),
            e.attempts_spent,
            e.step_limit,
            e.verdict.render()
        ));
    }
    out.push_str(&format!(
        "chaos summary: {} entries, {scheduled} scheduled, {rejected} rejected, \
         {timed_out} timed out, {invalid} INVALID\n",
        entries.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use csched_ir::KernelBuilder;
    use csched_machine::{toy, Opcode};

    fn tiny_loop() -> Kernel {
        let mut kb = KernelBuilder::new("tiny");
        let lp = kb.loop_block("body");
        let i = kb.loop_var(lp, 0i64.into());
        let a = kb.push(lp, Opcode::IAdd, [i.into(), 1i64.into()]);
        kb.set_update(i, a.into());
        kb.build().unwrap()
    }

    #[test]
    fn campaign_holds_contract_on_toy_machine() {
        let arch = toy::motivating_example();
        let kernel = tiny_loop();
        let entries =
            single_fault_campaign(&arch, &[("tiny", &kernel)], &SchedulerConfig::default());
        assert!(!entries.is_empty());
        for e in &entries {
            assert!(
                e.verdict.contract_held(),
                "{} on fault {}: {:?}",
                e.kernel,
                e.fault_desc,
                e.verdict
            );
        }
    }

    #[test]
    fn chaos_rng_is_deterministic_and_draws_are_distinct() {
        let mut a = ChaosRng::new(42);
        let mut b = ChaosRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let arch = toy::motivating_example();
        let population = arch.single_resource_faults();
        let mut rng = ChaosRng::new(7);
        for _ in 0..50 {
            let k = 1 + rng.below(population.len());
            let combo = draw_combination(&mut rng, &population, k);
            assert_eq!(combo.len(), k);
            for i in 0..combo.len() {
                for j in (i + 1)..combo.len() {
                    assert_ne!(combo[i], combo[j], "duplicate fault in combination");
                }
            }
        }
    }

    #[test]
    fn tiny_chaos_campaign_holds_contract() {
        let arch = toy::motivating_example();
        let kernel = tiny_loop();
        let chaos = ChaosConfig {
            seed: 1,
            runs: 8,
            max_faults: 2,
            step_limit: 5_000,
        };
        let entries = chaos_campaign(
            &arch,
            &[("tiny", &kernel)],
            &SchedulerConfig::default(),
            &chaos,
        );
        assert_eq!(entries.len(), 8);
        for e in &entries {
            assert!(e.verdict.contract_held(), "{:?}", e);
            assert!(e.attempts_spent <= e.step_limit, "{:?}", e);
        }
    }

    #[test]
    fn substreams_are_deterministic_and_adjacent_indices_diverge() {
        for index in 0..8u64 {
            let mut a = ChaosRng::substream(99, index);
            let mut b = ChaosRng::substream(99, index);
            for _ in 0..10 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }
        // Adjacent indices must not share a stream (the seed-aliasing
        // trap the gen::Rng fix in PR 5 closed).
        let first: Vec<u64> = (0..16)
            .map(|i| ChaosRng::substream(7, i).next_u64())
            .collect();
        for i in 0..first.len() {
            for j in (i + 1)..first.len() {
                assert_ne!(first[i], first[j], "substreams {i} and {j} collide");
            }
        }
    }

    #[test]
    fn breaking_faults_report_typed_errors() {
        let arch = toy::motivating_example();
        let kernel = tiny_loop();
        for (fault, err) in breaking_faults(&arch, &kernel) {
            assert!(
                matches!(
                    err,
                    SchedError::NotCopyConnected { .. } | SchedError::NoCapableUnit { .. }
                ),
                "fault {} produced {err:?}",
                fault.describe(&arch)
            );
        }
    }
}
