//! Structured event tracing for the scheduling pipeline.
//!
//! The scheduler is transactional: placements are attempted, stubs are
//! tentatively allocated, and whole subtrees of work are rolled back when
//! a permutation or a copy chain fails. That makes it a black box — when
//! an II is missed there is normally no record of *why*. This module is
//! the observability layer: the engine, driver, and retry ladder emit
//! typed [`TraceEvent`]s into a [`TraceSink`] supplied by the caller.
//!
//! Tracing is **zero-cost when disabled**: the engine holds an
//! `Option<&mut dyn TraceSink>` that defaults to `None`, so the untraced
//! entry points ([`schedule_kernel`]) pay a single never-taken branch per
//! emission site (see the `trace_overhead` bench in `csched-bench`).
//!
//! Two sinks are provided: [`RingBufferSink`] keeps the last *N* events
//! in memory for post-mortem inspection, and [`JsonlSink`] renders each
//! event as one line of JSON for machine consumption (golden-file tests,
//! external tooling).
//!
//! Events are emitted *as decisions are explored*, not only for the
//! surviving schedule: an accepted placement inside a copy chain that is
//! later rolled back still appears in the stream. This is deliberate —
//! the trace records search effort, while [`ScheduleMetrics`] summarises
//! the surviving schedule.
//!
//! ```
//! use csched_core::trace::{RingBufferSink, TraceEvent};
//! use csched_core::{schedule_kernel_traced, SchedulerConfig};
//! use csched_ir::KernelBuilder;
//! use csched_machine::{toy, Opcode};
//!
//! let mut kb = KernelBuilder::new("sum");
//! let b = kb.straight_block("b");
//! let s = kb.push(b, Opcode::IAdd, [1i64.into(), 2i64.into()]);
//! kb.push(b, Opcode::IAdd, [s.into(), 3i64.into()]);
//! let kernel = kb.build()?;
//!
//! let arch = toy::motivating_example();
//! let mut sink = RingBufferSink::new(1024);
//! let schedule = schedule_kernel_traced(&arch, &kernel, SchedulerConfig::default(), &mut sink)?;
//! let accepts = sink
//!     .events()
//!     .filter(|e| matches!(e, TraceEvent::PlaceAccept { .. }))
//!     .count();
//! assert!(accepts >= 2, "every op placement is traced");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! [`schedule_kernel`]: crate::schedule_kernel
//! [`ScheduleMetrics`]: crate::metrics::ScheduleMetrics

use std::collections::VecDeque;
use std::fmt::Write as _;

/// Why the engine rejected a tentative placement.
///
/// Carried by [`TraceEvent::PlaceReject`]; the reasons mirror the §4.3
/// placement steps, in order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RejectReason {
    /// The candidate cycle violated a dependence or loop-carried timing
    /// constraint before any resource was tried.
    Timing,
    /// Step 1 failed: the functional unit's issue slot (or its pipeline
    /// interval) was already claimed in the candidate cycle.
    IssueSlot,
    /// Steps 2–3 failed: no permutation of read stubs for the operation's
    /// operands fit the read ports and buses.
    ReadPermutation,
    /// Step 4 failed: no write-stub allocation for the operation's result
    /// (or a required revision of an earlier stub) fit.
    WritePermutation,
    /// Step 5 failed: a communication that became fully placed could not
    /// be closed into a route, and copy insertion also failed.
    Closing,
}

impl RejectReason {
    /// Every reason, in declaration (placement-step) order — the index
    /// of a reason here is its slot in aggregated reject arrays.
    pub const ALL: [RejectReason; 5] = [
        RejectReason::Timing,
        RejectReason::IssueSlot,
        RejectReason::ReadPermutation,
        RejectReason::WritePermutation,
        RejectReason::Closing,
    ];

    /// Stable lower-snake-case name, used in the JSONL encoding.
    pub fn as_str(self) -> &'static str {
        match self {
            RejectReason::Timing => "timing",
            RejectReason::IssueSlot => "issue_slot",
            RejectReason::ReadPermutation => "read_permutation",
            RejectReason::WritePermutation => "write_permutation",
            RejectReason::Closing => "closing",
        }
    }
}

/// One typed event from the scheduling pipeline.
///
/// Identifiers are raw indices into the schedule's op/comm universe and
/// the architecture's resource tables (`op` ↔ [`SOpId`], `comm` ↔
/// [`CommId`], `fu`/`rf`/`bus` ↔ the machine description), kept as plain
/// integers so events are cheap to construct and trivially serialisable.
///
/// [`SOpId`]: crate::SOpId
/// [`CommId`]: crate::CommId
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// The driver started (or restarted) a scheduling attempt at this
    /// initiation interval.
    IiStart {
        /// Candidate initiation interval for the loop block.
        ii: u32,
    },
    /// The driver widened the cross-block slack for a backtracking round.
    SlackWidened {
        /// New slack bound (cycles of extra room for cross-block copies).
        slack: i64,
    },
    /// The engine is about to test a placement of `op` on `fu` at `cycle`.
    PlaceAttempt {
        /// Scheduled-op index.
        op: u32,
        /// Functional-unit index.
        fu: u32,
        /// Candidate issue cycle.
        cycle: i64,
    },
    /// The placement survived all five steps and was committed.
    PlaceAccept {
        /// Scheduled-op index.
        op: u32,
        /// Functional-unit index.
        fu: u32,
        /// Issue cycle.
        cycle: i64,
    },
    /// The placement failed and was rolled back.
    PlaceReject {
        /// Scheduled-op index.
        op: u32,
        /// Functional-unit index.
        fu: u32,
        /// Candidate issue cycle.
        cycle: i64,
        /// Which step failed.
        reason: RejectReason,
    },
    /// A read stub was tentatively allocated for one operand of `op`.
    ReadStubAllocated {
        /// Consumer scheduled-op index.
        op: u32,
        /// Operand slot on the consumer.
        slot: u32,
        /// Register file the stub reads from.
        rf: u32,
        /// Bus carrying the value to the consumer's input.
        bus: u32,
    },
    /// A write stub was tentatively allocated for `comm`'s producer.
    WriteStubAllocated {
        /// Communication index.
        comm: u32,
        /// Register file the stub writes into.
        rf: u32,
        /// Bus carrying the value from the producer's output.
        bus: u32,
    },
    /// An already-allocated write stub was revised to target a new
    /// register file so a later consumer could be reached.
    WriteStubRevised {
        /// Communication index.
        comm: u32,
        /// Register file the stub now writes into.
        rf: u32,
    },
    /// Both stubs of `comm` were frozen prior to copy insertion: they can
    /// no longer be permuted or revised.
    StubsFrozen {
        /// Communication index.
        comm: u32,
    },
    /// `comm` closed into a finished route.
    RouteClosed {
        /// Communication index.
        comm: u32,
        /// Staging register file of the route.
        rf: u32,
        /// `true` for a direct (zero-copy) close; `false` when the route
        /// was completed through a copy chain.
        direct: bool,
    },
    /// A new copy operation was inserted and scheduled to bridge `comm`.
    CopyInserted {
        /// Communication index being bridged.
        comm: u32,
        /// Scheduled-op index of the new copy.
        copy: u32,
    },
    /// An existing scheduled copy of the same value was reused for `comm`.
    CopyReused {
        /// Communication index being bridged.
        comm: u32,
        /// Scheduled-op index of the reused copy.
        copy: u32,
    },
    /// The register post-pass computed the demand of one register file.
    RfPressure {
        /// Register-file index.
        rf: u32,
        /// Registers the schedule requires in the file.
        required: u32,
        /// Registers the file physically has.
        capacity: u32,
    },
    /// The register post-pass proposed spilling a value out of an
    /// overflowing register file.
    SpillPlanned {
        /// Producing operation of the value to spill.
        value: u32,
        /// The overflowing file it stages through.
        from: u32,
        /// Proposed destination file index, or -1 when no file has room.
        to: i64,
        /// Copies needed per direction to reach the destination.
        copies: u32,
    },
    /// A [`StepBudget`](crate::StepBudget) refused further work: the
    /// placement-attempt limit was reached, or the attached
    /// [`CancelToken`](crate::CancelToken) fired.
    DeadlineExceeded {
        /// Placement attempts charged when the budget tripped.
        spent: u64,
        /// The configured limit.
        limit: u64,
        /// Pipeline phase that hit the limit (`"placement"`,
        /// `"regalloc"`).
        phase: String,
        /// `true` when the stop came from cancellation rather than the
        /// attempt limit.
        cancelled: bool,
    },
    /// The retry ladder advanced to its next relaxation rung.
    RungAdvanced {
        /// 1-based attempt number.
        attempt: u32,
        /// Human-readable description of the cumulative relaxation.
        relaxation: String,
        /// II cap in force for this rung.
        max_ii: u32,
    },
    /// The exact oracle started a branch-and-bound search at this
    /// candidate initiation interval.
    ExactIiStart {
        /// Candidate initiation interval under search.
        ii: u32,
    },
    /// The exact oracle finished searching one candidate II; the node and
    /// prune counters say *why* an infeasible II failed (which resource
    /// class dominated the refutation).
    ExactIiDone {
        /// Candidate initiation interval searched.
        ii: u32,
        /// Whether a schedule was found.
        feasible: bool,
        /// Search nodes expanded.
        nodes: u64,
        /// Trials pruned by occupied issue slots.
        pruned_issue: u64,
        /// Placements pruned by empty dependence windows.
        pruned_timing: u64,
        /// Routing trials pruned by stub resource conflicts.
        pruned_routing: u64,
    },
    /// A kernel failed to parse; the span information of
    /// [`csched_ir::text::ParseError`] is preserved structurally.
    ParseFailed {
        /// 1-based line (0 when unlocated).
        line: u32,
        /// 1-based column (0 when unlocated).
        column: u32,
        /// The offending source line.
        snippet: String,
        /// What went wrong.
        message: String,
    },
}

impl TraceEvent {
    /// Builds a [`TraceEvent::ParseFailed`] from an IR text-format parse
    /// error, keeping its span and snippet instead of flattening the
    /// error to a display string.
    pub fn parse_failed(err: &csched_ir::text::ParseError) -> Self {
        TraceEvent::ParseFailed {
            line: err.line as u32,
            column: err.column as u32,
            snippet: err.snippet.clone(),
            message: err.message.clone(),
        }
    }

    /// Stable lower-snake-case event name, used as the `"event"` key in
    /// the JSONL encoding.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::IiStart { .. } => "ii_start",
            TraceEvent::SlackWidened { .. } => "slack_widened",
            TraceEvent::PlaceAttempt { .. } => "place_attempt",
            TraceEvent::PlaceAccept { .. } => "place_accept",
            TraceEvent::PlaceReject { .. } => "place_reject",
            TraceEvent::ReadStubAllocated { .. } => "read_stub_allocated",
            TraceEvent::WriteStubAllocated { .. } => "write_stub_allocated",
            TraceEvent::WriteStubRevised { .. } => "write_stub_revised",
            TraceEvent::StubsFrozen { .. } => "stubs_frozen",
            TraceEvent::RouteClosed { .. } => "route_closed",
            TraceEvent::CopyInserted { .. } => "copy_inserted",
            TraceEvent::CopyReused { .. } => "copy_reused",
            TraceEvent::RfPressure { .. } => "rf_pressure",
            TraceEvent::SpillPlanned { .. } => "spill_planned",
            TraceEvent::DeadlineExceeded { .. } => "deadline_exceeded",
            TraceEvent::RungAdvanced { .. } => "rung_advanced",
            TraceEvent::ExactIiStart { .. } => "exact_ii_start",
            TraceEvent::ExactIiDone { .. } => "exact_ii_done",
            TraceEvent::ParseFailed { .. } => "parse_failed",
        }
    }

    /// Renders the event as a single-line JSON object.
    ///
    /// The first key is always `"event"` with the [`kind`](Self::kind)
    /// name; remaining keys are the variant's fields in declaration
    /// order. Strings are escaped with [`json_escape`].
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(64);
        let _ = write!(s, "{{\"event\":\"{}\"", self.kind());
        match self {
            TraceEvent::IiStart { ii } => {
                let _ = write!(s, ",\"ii\":{ii}");
            }
            TraceEvent::SlackWidened { slack } => {
                let _ = write!(s, ",\"slack\":{slack}");
            }
            TraceEvent::PlaceAttempt { op, fu, cycle }
            | TraceEvent::PlaceAccept { op, fu, cycle } => {
                let _ = write!(s, ",\"op\":{op},\"fu\":{fu},\"cycle\":{cycle}");
            }
            TraceEvent::PlaceReject {
                op,
                fu,
                cycle,
                reason,
            } => {
                let _ = write!(
                    s,
                    ",\"op\":{op},\"fu\":{fu},\"cycle\":{cycle},\"reason\":\"{}\"",
                    reason.as_str()
                );
            }
            TraceEvent::ReadStubAllocated { op, slot, rf, bus } => {
                let _ = write!(s, ",\"op\":{op},\"slot\":{slot},\"rf\":{rf},\"bus\":{bus}");
            }
            TraceEvent::WriteStubAllocated { comm, rf, bus } => {
                let _ = write!(s, ",\"comm\":{comm},\"rf\":{rf},\"bus\":{bus}");
            }
            TraceEvent::WriteStubRevised { comm, rf } => {
                let _ = write!(s, ",\"comm\":{comm},\"rf\":{rf}");
            }
            TraceEvent::StubsFrozen { comm } => {
                let _ = write!(s, ",\"comm\":{comm}");
            }
            TraceEvent::RouteClosed { comm, rf, direct } => {
                let _ = write!(s, ",\"comm\":{comm},\"rf\":{rf},\"direct\":{direct}");
            }
            TraceEvent::CopyInserted { comm, copy } | TraceEvent::CopyReused { comm, copy } => {
                let _ = write!(s, ",\"comm\":{comm},\"copy\":{copy}");
            }
            TraceEvent::RfPressure {
                rf,
                required,
                capacity,
            } => {
                let _ = write!(
                    s,
                    ",\"rf\":{rf},\"required\":{required},\"capacity\":{capacity}"
                );
            }
            TraceEvent::SpillPlanned {
                value,
                from,
                to,
                copies,
            } => {
                let _ = write!(
                    s,
                    ",\"value\":{value},\"from\":{from},\"to\":{to},\"copies\":{copies}"
                );
            }
            TraceEvent::DeadlineExceeded {
                spent,
                limit,
                phase,
                cancelled,
            } => {
                let _ = write!(
                    s,
                    ",\"spent\":{spent},\"limit\":{limit},\"phase\":\"{}\",\"cancelled\":{cancelled}",
                    json_escape(phase)
                );
            }
            TraceEvent::RungAdvanced {
                attempt,
                relaxation,
                max_ii,
            } => {
                let _ = write!(
                    s,
                    ",\"attempt\":{attempt},\"relaxation\":\"{}\",\"max_ii\":{max_ii}",
                    json_escape(relaxation)
                );
            }
            TraceEvent::ExactIiStart { ii } => {
                let _ = write!(s, ",\"ii\":{ii}");
            }
            TraceEvent::ExactIiDone {
                ii,
                feasible,
                nodes,
                pruned_issue,
                pruned_timing,
                pruned_routing,
            } => {
                let _ = write!(
                    s,
                    ",\"ii\":{ii},\"feasible\":{feasible},\"nodes\":{nodes},\
                     \"pruned_issue\":{pruned_issue},\"pruned_timing\":{pruned_timing},\
                     \"pruned_routing\":{pruned_routing}"
                );
            }
            TraceEvent::ParseFailed {
                line,
                column,
                snippet,
                message,
            } => {
                let _ = write!(
                    s,
                    ",\"line\":{line},\"column\":{column},\"snippet\":\"{}\",\"message\":\"{}\"",
                    json_escape(snippet),
                    json_escape(message)
                );
            }
        }
        s.push('}');
        s
    }
}

/// The stable *decision-level* event filter: keeps the events that
/// describe the surviving schedule's construction (II starts, accepted
/// placements, stub freezes, route closures, copy insertion/reuse) and
/// drops the search-order-dependent attempt/reject stream.
///
/// This is the filter behind the golden-trace acceptance tests and the
/// serve layer's `TRACE` wire verb: a stream filtered this way is a
/// deterministic function of (kernel, architecture, configuration).
pub fn decision_filter(e: &TraceEvent) -> bool {
    matches!(
        e,
        TraceEvent::IiStart { .. }
            | TraceEvent::PlaceAccept { .. }
            | TraceEvent::StubsFrozen { .. }
            | TraceEvent::RouteClosed { .. }
            | TraceEvent::CopyInserted { .. }
            | TraceEvent::CopyReused { .. }
    )
}

/// A sink retaining the *first* `cap` events that pass its filter — the
/// streaming complement of [`RingBufferSink`] (which keeps the last N).
///
/// Built for wire streaming: a consumer that relays the retained events
/// to a socket is bounded by construction, no matter how many events the
/// schedule produces, and [`truncated`](Self::truncated) says whether
/// the cap cut the stream short. The total pass-filter count keeps
/// accumulating after the cap so the loss is quantifiable.
#[derive(Debug)]
pub struct CappingSink {
    cap: usize,
    filter: Option<fn(&TraceEvent) -> bool>,
    events: Vec<TraceEvent>,
    total: u64,
}

impl CappingSink {
    /// A sink keeping the first `cap` events of any kind.
    pub fn new(cap: usize) -> Self {
        CappingSink {
            cap,
            filter: None,
            events: Vec::new(),
            total: 0,
        }
    }

    /// A sink keeping the first `cap` events for which `filter` is true;
    /// events failing the filter are neither retained nor counted.
    pub fn with_filter(cap: usize, filter: fn(&TraceEvent) -> bool) -> Self {
        CappingSink {
            cap,
            filter: Some(filter),
            events: Vec::new(),
            total: 0,
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Total events that passed the filter, including dropped ones.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Whether the cap dropped at least one passing event.
    pub fn truncated(&self) -> bool {
        self.total > self.events.len() as u64
    }
}

impl TraceSink for CappingSink {
    fn event(&mut self, event: TraceEvent) {
        if let Some(f) = self.filter {
            if !f(&event) {
                return;
            }
        }
        self.total += 1;
        if self.events.len() < self.cap {
            self.events.push(event);
        }
    }
}

/// Escapes `s` for inclusion inside a JSON string literal.
///
/// Handles the two mandatory escapes (`"` and `\`) plus control
/// characters; everything else passes through as UTF-8 (valid in JSON).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Receiver for pipeline [`TraceEvent`]s.
///
/// Implementations must be cheap: the engine calls [`event`](Self::event)
/// from the innermost placement loop. Sinks that need filtering should
/// filter on [`TraceEvent::kind`] before doing any formatting work.
pub trait TraceSink {
    /// Consumes one event.
    fn event(&mut self, event: TraceEvent);
}

/// A bounded in-memory sink keeping the most recent events.
///
/// When the buffer is full the oldest event is dropped; the total number
/// of events ever observed stays available via [`total`](Self::total),
/// so overflow is detectable.
#[derive(Debug, Default)]
pub struct RingBufferSink {
    capacity: usize,
    buf: VecDeque<TraceEvent>,
    total: u64,
}

impl RingBufferSink {
    /// Creates a sink retaining at most `capacity` events (0 keeps none
    /// but still counts).
    pub fn new(capacity: usize) -> Self {
        RingBufferSink {
            capacity,
            buf: VecDeque::with_capacity(capacity.min(4096)),
            total: 0,
        }
    }

    /// Iterates the retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Number of retained events (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events observed, including those dropped by overflow.
    pub fn total(&self) -> u64 {
        self.total
    }
}

impl TraceSink for RingBufferSink {
    fn event(&mut self, event: TraceEvent) {
        self.total += 1;
        if self.capacity == 0 {
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(event);
    }
}

/// A sink rendering each event as one line of JSON (JSONL).
///
/// An optional filter restricts which events are rendered — useful for
/// golden-file tests that want only the stable, decision-level events
/// and not the (search-order-dependent) attempt stream.
#[derive(Default)]
pub struct JsonlSink {
    out: String,
    filter: Option<fn(&TraceEvent) -> bool>,
    lines: u64,
}

impl JsonlSink {
    /// Creates a sink accepting every event.
    pub fn new() -> Self {
        JsonlSink::default()
    }

    /// Creates a sink rendering only events for which `filter` returns
    /// `true`.
    pub fn with_filter(filter: fn(&TraceEvent) -> bool) -> Self {
        JsonlSink {
            out: String::new(),
            filter: Some(filter),
            lines: 0,
        }
    }

    /// The JSONL document accumulated so far.
    pub fn as_str(&self) -> &str {
        &self.out
    }

    /// Consumes the sink, returning the JSONL document.
    pub fn into_string(self) -> String {
        self.out
    }

    /// Number of lines written (after filtering).
    pub fn lines(&self) -> u64 {
        self.lines
    }
}

impl TraceSink for JsonlSink {
    fn event(&mut self, event: TraceEvent) {
        if let Some(f) = self.filter {
            if !f(&event) {
                return;
            }
        }
        self.out.push_str(&event.to_json());
        self.out.push('\n');
        self.lines += 1;
    }
}

/// A failed write or flush from a [`JsonlWriterSink`].
///
/// Carries which operation failed and how many lines had been durably
/// handed to the writer before the failure, so a consumer (e.g. a
/// campaign journal) knows exactly what survived.
#[derive(Debug)]
pub struct TraceWriteError {
    /// `"write"` or `"flush"`.
    pub operation: &'static str,
    /// Lines successfully written before the failure.
    pub lines_written: u64,
    /// The underlying I/O error.
    pub source: std::io::Error,
}

impl std::fmt::Display for TraceWriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trace {} failed after {} lines: {}",
            self.operation, self.lines_written, self.source
        )
    }
}

impl std::error::Error for TraceWriteError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// A sink streaming each event as one line of JSON into an
/// [`std::io::Write`] (a file, a pipe, a socket).
///
/// [`TraceSink::event`] cannot return a result, so write failures are
/// *latched* instead of swallowed: after the first failure the sink
/// stops writing, and [`finish`](Self::finish) (or
/// [`take_error`](Self::take_error)) surfaces the typed
/// [`TraceWriteError`]. Dropping the sink without calling `finish`
/// loses the error but never panics.
#[derive(Debug)]
pub struct JsonlWriterSink<W: std::io::Write> {
    writer: W,
    lines: u64,
    error: Option<TraceWriteError>,
}

impl<W: std::io::Write> JsonlWriterSink<W> {
    /// Wraps `writer`. Wrap in [`std::io::BufWriter`] for unbuffered
    /// targets — the sink writes one line per event.
    pub fn new(writer: W) -> Self {
        JsonlWriterSink {
            writer,
            lines: 0,
            error: None,
        }
    }

    /// Lines successfully handed to the writer so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Returns and clears the latched write failure, if any. Once a
    /// failure is latched the sink drops all further events.
    pub fn take_error(&mut self) -> Option<TraceWriteError> {
        self.error.take()
    }

    /// Flushes the writer and consumes the sink, surfacing any latched
    /// write failure (or the flush failure) as a typed error.
    ///
    /// # Errors
    ///
    /// The first [`TraceWriteError`] the sink observed.
    pub fn finish(mut self) -> Result<u64, TraceWriteError> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        match self.writer.flush() {
            Ok(()) => Ok(self.lines),
            Err(source) => Err(TraceWriteError {
                operation: "flush",
                lines_written: self.lines,
                source,
            }),
        }
    }
}

impl<W: std::io::Write> TraceSink for JsonlWriterSink<W> {
    fn event(&mut self, event: TraceEvent) {
        if self.error.is_some() {
            return;
        }
        let mut line = event.to_json();
        line.push('\n');
        match self.writer.write_all(line.as_bytes()) {
            Ok(()) => self.lines += 1,
            Err(source) => {
                self.error = Some(TraceWriteError {
                    operation: "write",
                    lines_written: self.lines,
                    source,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("tab\there"), "tab\\there");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn event_json_shapes() {
        let e = TraceEvent::PlaceReject {
            op: 3,
            fu: 1,
            cycle: -2,
            reason: RejectReason::ReadPermutation,
        };
        assert_eq!(
            e.to_json(),
            "{\"event\":\"place_reject\",\"op\":3,\"fu\":1,\"cycle\":-2,\
             \"reason\":\"read_permutation\"}"
        );
        let e = TraceEvent::ParseFailed {
            line: 2,
            column: 5,
            snippet: "x = bogus \"q\"".into(),
            message: "unknown mnemonic".into(),
        };
        assert!(e.to_json().contains("\"snippet\":\"x = bogus \\\"q\\\"\""));
    }

    #[test]
    fn ring_buffer_wraps_and_counts() {
        let mut sink = RingBufferSink::new(2);
        for ii in 0..5 {
            sink.event(TraceEvent::IiStart { ii });
        }
        assert_eq!(sink.total(), 5);
        assert_eq!(sink.len(), 2);
        let iis: Vec<u32> = sink
            .events()
            .map(|e| match e {
                TraceEvent::IiStart { ii } => *ii,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(iis, vec![3, 4]);
    }

    #[test]
    fn capping_sink_keeps_first_events_and_counts_overflow() {
        let mut sink = CappingSink::with_filter(2, decision_filter);
        sink.event(TraceEvent::PlaceAttempt {
            op: 0,
            fu: 0,
            cycle: 0,
        }); // filtered out: neither retained nor counted
        for ii in 0..5 {
            sink.event(TraceEvent::IiStart { ii });
        }
        assert_eq!(sink.total(), 5);
        assert!(sink.truncated());
        let iis: Vec<u32> = sink
            .events()
            .iter()
            .map(|e| match e {
                TraceEvent::IiStart { ii } => *ii,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(iis, vec![0, 1], "the first events survive, not the last");
        let mut roomy = CappingSink::new(8);
        roomy.event(TraceEvent::IiStart { ii: 1 });
        assert!(!roomy.truncated());
    }

    #[test]
    fn jsonl_filter() {
        let mut sink = JsonlSink::with_filter(|e| matches!(e, TraceEvent::IiStart { .. }));
        sink.event(TraceEvent::IiStart { ii: 4 });
        sink.event(TraceEvent::StubsFrozen { comm: 0 });
        assert_eq!(sink.as_str(), "{\"event\":\"ii_start\",\"ii\":4}\n");
        assert_eq!(sink.lines(), 1);
    }

    #[test]
    fn writer_sink_streams_and_latches_failures() {
        let mut ok_sink = JsonlWriterSink::new(Vec::new());
        ok_sink.event(TraceEvent::IiStart { ii: 3 });
        ok_sink.event(TraceEvent::StubsFrozen { comm: 1 });
        assert_eq!(ok_sink.lines(), 2);
        assert!(ok_sink.finish().is_ok());

        /// A writer that fails after a fixed byte capacity.
        struct Full {
            room: usize,
        }
        impl std::io::Write for Full {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                if buf.len() > self.room {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::StorageFull,
                        "disk full",
                    ));
                }
                self.room -= buf.len();
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let mut sink = JsonlWriterSink::new(Full { room: 30 });
        sink.event(TraceEvent::IiStart { ii: 1 }); // fits (24 bytes)
        sink.event(TraceEvent::IiStart { ii: 2 }); // fails
        sink.event(TraceEvent::IiStart { ii: 3 }); // dropped, error latched
        let err = sink.finish().expect_err("write failure must surface");
        assert_eq!(err.operation, "write");
        assert_eq!(err.lines_written, 1);
        assert_eq!(err.source.kind(), std::io::ErrorKind::StorageFull);
        assert!(err.to_string().contains("after 1 lines"), "{err}");
    }

    #[test]
    fn enospc_latches_once_and_later_events_never_touch_the_writer() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;

        /// A writer simulating a disk that runs out of space: accepts
        /// `room` bytes, then fails every write with `StorageFull`,
        /// counting how often it is even asked.
        struct Enospc {
            attempts: Arc<AtomicUsize>,
            room: usize,
        }
        impl std::io::Write for Enospc {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.attempts.fetch_add(1, Ordering::SeqCst);
                if buf.len() > self.room {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::StorageFull,
                        "no space left on device",
                    ));
                }
                self.room -= buf.len();
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let attempts = Arc::new(AtomicUsize::new(0));
        let mut sink = JsonlWriterSink::new(Enospc {
            attempts: Arc::clone(&attempts),
            room: 30, // one ii_start line fits, the second overflows
        });
        sink.event(TraceEvent::IiStart { ii: 1 });
        sink.event(TraceEvent::IiStart { ii: 2 }); // ENOSPC: latches
        assert_eq!(attempts.load(Ordering::SeqCst), 2);

        // Every later event is a pure no-op: the full disk is not
        // retried per event, the line count stays frozen.
        for ii in 3..100 {
            sink.event(TraceEvent::IiStart { ii });
        }
        assert_eq!(
            attempts.load(Ordering::SeqCst),
            2,
            "a latched sink must stop hammering the full disk"
        );
        assert_eq!(sink.lines(), 1);

        // The first failure is reported exactly once via take_error…
        let err = sink.take_error().expect("failure must be latched");
        assert_eq!(err.operation, "write");
        assert_eq!(err.lines_written, 1);
        assert_eq!(err.source.kind(), std::io::ErrorKind::StorageFull);
        assert!(sink.take_error().is_none(), "error reported once");

        // …which re-arms the sink: the next event hits the (still full)
        // writer again and `finish` surfaces the fresh failure.
        sink.event(TraceEvent::IiStart { ii: 50 });
        assert_eq!(attempts.load(Ordering::SeqCst), 3);
        let err = sink.finish().expect_err("still-full disk latches again");
        assert_eq!(err.lines_written, 1);
        assert_eq!(err.source.kind(), std::io::ErrorKind::StorageFull);
    }

    #[test]
    fn deadline_event_json_shape() {
        let e = TraceEvent::DeadlineExceeded {
            spent: 40,
            limit: 40,
            phase: "placement".into(),
            cancelled: false,
        };
        assert_eq!(e.kind(), "deadline_exceeded");
        assert_eq!(
            e.to_json(),
            "{\"event\":\"deadline_exceeded\",\"spent\":40,\"limit\":40,\
             \"phase\":\"placement\",\"cancelled\":false}"
        );
    }

    #[test]
    fn parse_failed_preserves_span() {
        let err = csched_ir::text::ParseError {
            line: 7,
            column: 3,
            snippet: "  y = frob x".into(),
            message: "unknown mnemonic `frob`".into(),
        };
        let ev = TraceEvent::parse_failed(&err);
        match &ev {
            TraceEvent::ParseFailed {
                line,
                column,
                snippet,
                ..
            } => {
                assert_eq!((*line, *column), (7, 3));
                assert_eq!(snippet, "  y = frob x");
            }
            _ => unreachable!(),
        }
    }
}
