//! The output of the scheduler: operation placements and communication
//! routes.

use std::collections::HashMap;
use std::fmt;

use csched_ir::{BlockId, Kernel};
use csched_machine::{Architecture, FuId, ReadStub, WriteStub};

use crate::universe::{CommId, SOpId, Universe};

/// A completed route: the write stub and read stub that carry one
/// communication (paper Fig 12). Copies appear as separate scheduled
/// operations whose own communications have their own routes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Route {
    /// Interconnect writing the value to `wstub.rf` on the producer's
    /// completion cycle.
    pub wstub: WriteStub,
    /// Interconnect reading the value from `rstub.rf` (same register file)
    /// on the consumer's issue cycle.
    pub rstub: ReadStub,
}

/// The final disposition of one communication.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommDisposition {
    /// Routed directly through one register file.
    Direct(Route),
    /// Split by an inserted copy operation (paper Fig 22); the copy's own
    /// communications carry the value.
    Via(SOpId),
}

/// Placement of one operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScheduledOp {
    /// The functional unit executing the operation.
    pub fu: FuId,
    /// Issue cycle, local to the operation's block (for the loop block, a
    /// flat software-pipeline cycle; resources repeat every II).
    pub cycle: i64,
    /// Latency on the chosen unit; the result is written on
    /// `cycle + latency - 1`.
    pub latency: u32,
}

impl ScheduledOp {
    /// The cycle the operation completes (write stubs are allocated here).
    pub fn completion(&self) -> i64 {
        self.cycle + self.latency as i64 - 1
    }
}

/// Counters describing the scheduling run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Placement attempts (operation × fu × cycle trials).
    pub attempts: u64,
    /// Placements rejected by communication scheduling.
    pub rejections: u64,
    /// Copy operations inserted (surviving in the final schedule).
    pub copies_inserted: u64,
    /// Initiation intervals tried before success.
    pub ii_tried: u32,
    /// Failed cross-block copy insertions (the precondition of the §4.5
    /// special case).
    pub cross_block_copy_failures: u64,
    /// Whether the §4.5 cross-block backtracking case was ever triggered
    /// (the driver had to widen the writer-side copy range and retry).
    pub backtracked: bool,
}

/// A complete schedule for one kernel on one architecture.
#[derive(Clone, Debug)]
pub struct Schedule {
    pub(crate) arch_name: String,
    pub(crate) kernel_name: String,
    pub(crate) universe: Universe,
    pub(crate) placements: Vec<ScheduledOp>,
    pub(crate) dispositions: Vec<CommDisposition>,
    pub(crate) block_len: Vec<i64>,
    pub(crate) ii: Option<u32>,
    pub(crate) stats: SchedStats,
}

impl Schedule {
    /// Name of the architecture scheduled for.
    pub fn arch_name(&self) -> &str {
        &self.arch_name
    }

    /// Name of the kernel scheduled.
    pub fn kernel_name(&self) -> &str {
        &self.kernel_name
    }

    /// The scheduling universe (kernel operations plus inserted copies and
    /// all communications).
    pub fn universe(&self) -> &Universe {
        &self.universe
    }

    /// Placement of `op`.
    ///
    /// # Panics
    ///
    /// Panics if `op` is out of range.
    pub fn placement(&self, op: SOpId) -> ScheduledOp {
        self.placements[op.index()]
    }

    /// Disposition of `comm`.
    ///
    /// # Panics
    ///
    /// Panics if `comm` is out of range.
    pub fn disposition(&self, comm: CommId) -> CommDisposition {
        self.dispositions[comm.index()]
    }

    /// The loop's initiation interval, if the kernel has a loop block.
    /// This is the paper's per-kernel performance metric ("the schedule
    /// length of that loop").
    pub fn ii(&self) -> Option<u32> {
        self.ii
    }

    /// Schedule length of `block` in cycles (for the loop block: the flat
    /// length of one iteration's schedule, ≥ II).
    pub fn block_len(&self, block: BlockId) -> i64 {
        self.block_len[block.index()]
    }

    /// Shifts an operation's issue cycle without touching its routes —
    /// **test support only**: produces an inconsistent schedule for
    /// exercising the validator's and simulator's error paths.
    #[doc(hidden)]
    pub fn corrupt_placement_for_tests(&mut self, op: SOpId, delta: i64) {
        self.placements[op.index()].cycle += delta;
    }

    /// Redirects a directly-routed communication's read stub into register
    /// file `rf` without touching anything else — **test support only**:
    /// when `rf` differs from the route's meeting file, validation must
    /// report the route as malformed.
    ///
    /// Returns `false` (schedule untouched) if `comm` is not `Direct`.
    #[doc(hidden)]
    pub fn corrupt_route_for_tests(&mut self, comm: CommId, rf: csched_machine::RfId) -> bool {
        match &mut self.dispositions[comm.index()] {
            CommDisposition::Direct(route) => {
                route.rstub.rf = rf;
                true
            }
            CommDisposition::Via(_) => false,
        }
    }

    /// Forces two directly-routed communications with distinct producers
    /// onto the *same* write stub (same bus, port, and file) on the same
    /// resource-table cycle — **test support only**: validation must
    /// report the double-booked interconnect as a resource conflict.
    ///
    /// Returns the clobbered communication, or `None` if the schedule has
    /// no pair of direct routes whose producers complete on the same
    /// table cycle (same block; modulo II in the loop block).
    #[doc(hidden)]
    pub fn double_book_bus_for_tests(&mut self, kernel: &Kernel) -> Option<CommId> {
        let ii = self.ii.unwrap_or(1).max(1) as i64;
        let direct: Vec<(usize, Route)> = self
            .dispositions
            .iter()
            .enumerate()
            .filter_map(|(i, d)| match d {
                CommDisposition::Direct(r) => Some((i, *r)),
                CommDisposition::Via(_) => None,
            })
            .collect();
        for (n, &(ia, ra)) in direct.iter().enumerate() {
            let pa = self.universe.comm(CommId::from_raw(ia)).producer;
            for &(ib, rb) in &direct[n + 1..] {
                let pb = self.universe.comm(CommId::from_raw(ib)).producer;
                if pa == pb || ra.wstub == rb.wstub {
                    continue;
                }
                let (ba, bb) = (self.universe.op(pa).block, self.universe.op(pb).block);
                if ba != bb {
                    continue;
                }
                let ca = self.placements[pa.index()].completion();
                let cb = self.placements[pb.index()].completion();
                let same_cycle = if kernel.block(ba).is_loop() {
                    (ca - cb) % ii == 0
                } else {
                    ca == cb
                };
                if !same_cycle {
                    continue;
                }
                if let CommDisposition::Direct(route) = &mut self.dispositions[ib] {
                    route.wstub = ra.wstub;
                }
                return Some(CommId::from_raw(ib));
            }
        }
        None
    }

    /// Run statistics.
    pub fn stats(&self) -> SchedStats {
        self.stats
    }

    /// Number of copy operations in the final schedule.
    pub fn num_copies(&self) -> usize {
        self.universe.num_ops() - self.universe.num_kernel_ops()
    }

    /// Resolves the transport of `comm` to its final leg routes, flattening
    /// any copy chain: returns `(comm, route)` pairs in producer-to-consumer
    /// order.
    pub fn transport(&self, comm: CommId) -> Vec<(CommId, Route)> {
        let mut legs = Vec::new();
        self.collect_transport(comm, &mut legs);
        legs
    }

    fn collect_transport(&self, comm: CommId, legs: &mut Vec<(CommId, Route)>) {
        match self.disposition(comm) {
            CommDisposition::Direct(route) => legs.push((comm, route)),
            CommDisposition::Via(copy) => {
                // comm was split into (producer -> copy) and (copy -> consumer).
                let original = self.universe.comm(comm);
                // The engine splits a Via communication into exactly these
                // two legs; their absence means the schedule was built by
                // hand or corrupted. Resolve to no legs (which validation
                // reports) rather than panic.
                let first = self
                    .universe
                    .comms_to_operand(copy, 0)
                    .iter()
                    .copied()
                    .find(|&c| self.universe.comm(c).producer == original.producer);
                let second = self.universe.comms_from(copy).iter().copied().find(|&c| {
                    let k = self.universe.comm(c);
                    k.consumer == original.consumer
                        && k.slot == original.slot
                        && k.distance == original.distance
                });
                let (Some(first), Some(second)) = (first, second) else {
                    debug_assert!(false, "split comms missing for {comm}");
                    return;
                };
                self.collect_transport(first, legs);
                self.collect_transport(second, legs);
            }
        }
    }

    /// Renders the schedule as a cycle × functional-unit grid in the style
    /// of the paper's Figure 7, one grid per block.
    pub fn render(&self, arch: &Architecture, kernel: &Kernel) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for block in kernel.block_ids() {
            let _ = writeln!(
                out,
                "block {} ({}){}:",
                block,
                kernel.block(block).name(),
                match (kernel.block(block).is_loop(), self.ii) {
                    (true, Some(ii)) => format!(" II={ii}"),
                    _ => String::new(),
                }
            );
            // Collect placements for this block.
            let mut grid: HashMap<(i64, usize), String> = HashMap::new();
            let mut max_cycle = 0i64;
            for op in self.universe.op_ids() {
                if self.universe.op(op).block != block {
                    continue;
                }
                let p = self.placement(op);
                max_cycle = max_cycle.max(p.cycle);
                let label = match self.universe.op(op).kernel_op {
                    Some(k) => format!("{}:{}", k, kernel.op(k).opcode()),
                    None => format!("{op}:copy"),
                };
                grid.insert((p.cycle, p.fu.index()), label);
            }
            let width = 14usize;
            let _ = write!(out, "{:>6} ", "cycle");
            for fu in arch.fu_ids() {
                let _ = write!(out, "{:width$}", arch.fu(fu).name());
            }
            let _ = writeln!(out);
            for cycle in 0..=max_cycle {
                let _ = write!(out, "{cycle:>6} ");
                for fu in arch.fu_ids() {
                    let cell = grid
                        .get(&(cycle, fu.index()))
                        .map(String::as_str)
                        .unwrap_or(".");
                    let _ = write!(out, "{cell:width$}");
                }
                let _ = writeln!(out);
            }
        }
        out
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "schedule of {} on {}: {} ops ({} copies){}",
            self.kernel_name,
            self.arch_name,
            self.universe.num_ops(),
            self.num_copies(),
            match self.ii {
                Some(ii) => format!(", II={ii}"),
                None => String::new(),
            }
        )
    }
}

/// One issued operation in an expanded software pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PipelineSlot {
    /// The operation issued.
    pub op: SOpId,
    /// The loop iteration it belongs to.
    pub iteration: u64,
    /// The unit executing it.
    pub fu: FuId,
}

impl Schedule {
    /// Expands the loop block's software pipeline for `trip` iterations
    /// into a flat cycle-indexed issue table (iteration `k` offset by
    /// `k · II`), the form a code generator's prologue/steady-state/
    /// epilogue emission works from. Returns an empty table when the
    /// kernel has no loop.
    pub fn expand_pipeline(&self, kernel: &Kernel, trip: u64) -> Vec<Vec<PipelineSlot>> {
        let Some(loop_block) = kernel.loop_block() else {
            return Vec::new();
        };
        let Some(ii) = self.ii else { return Vec::new() };
        let flat = self.block_len(loop_block);
        if trip == 0 {
            return Vec::new();
        }
        let total = (flat + (trip as i64 - 1) * ii as i64).max(0) as usize;
        let mut table: Vec<Vec<PipelineSlot>> = vec![Vec::new(); total];
        for op in self.universe.op_ids() {
            if self.universe.op(op).block != loop_block {
                continue;
            }
            let p = self.placement(op);
            for k in 0..trip {
                let cycle = (p.cycle + k as i64 * ii as i64) as usize;
                table[cycle].push(PipelineSlot {
                    op,
                    iteration: k,
                    fu: p.fu,
                });
            }
        }
        for row in &mut table {
            row.sort_by_key(|s| (s.fu, s.op));
        }
        table
    }
}

#[cfg(test)]
mod pipeline_tests {
    use crate::{schedule_kernel, SchedulerConfig};
    use csched_ir::KernelBuilder;
    use csched_machine::{imagine, Opcode};

    #[test]
    fn expansion_has_no_unit_conflicts_and_covers_all_ops() {
        let mut kb = KernelBuilder::new("pipe");
        let input = kb.region("in", true);
        let output = kb.region("out", true);
        let lp = kb.loop_block("body");
        let i = kb.loop_var(lp, 0i64.into());
        let x = kb.load(lp, input, i.into(), 0i64.into());
        let y = kb.push(lp, Opcode::FMul, [x.into(), x.into()]);
        let z = kb.push(lp, Opcode::FAdd, [y.into(), 1.5f64.into()]);
        kb.store(lp, output, i.into(), 100i64.into(), z.into());
        let i1 = kb.push(lp, Opcode::IAdd, [i.into(), 1i64.into()]);
        kb.set_update(i, i1.into());
        let kernel = kb.build().unwrap();

        let arch = imagine::distributed();
        let s = schedule_kernel(&arch, &kernel, SchedulerConfig::default()).unwrap();
        let trip = 9u64;
        let table = s.expand_pipeline(&kernel, trip);
        assert!(!table.is_empty());

        let mut issued = 0usize;
        for row in &table {
            // No functional unit issues twice on one cycle.
            let mut fus: Vec<_> = row.iter().map(|slot| slot.fu).collect();
            fus.sort_unstable();
            fus.dedup();
            assert_eq!(fus.len(), row.len(), "unit double-booked in flat pipeline");
            issued += row.len();
        }
        let loop_ops = s
            .universe()
            .op_ids()
            .filter(|&o| s.universe().op(o).block == kernel.loop_block().unwrap())
            .count();
        assert_eq!(issued, loop_ops * trip as usize);

        // Steady state: interior cycles issue from several iterations at
        // once whenever the flat body is longer than the II.
        let ii = s.ii().unwrap() as i64;
        if s.block_len(kernel.loop_block().unwrap()) > ii {
            let mid = table.len() / 2;
            let iters: std::collections::HashSet<u64> =
                table[mid].iter().map(|s| s.iteration).collect();
            assert!(!iters.is_empty());
        }
    }
}
