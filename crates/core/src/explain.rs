//! Bottleneck attribution: *why* a schedule's II is what it is.
//!
//! [`crate::metrics::ScheduleMetrics`] reports the
//! achieved II next to its RecMII/ResMII lower bounds;
//! [`explain`] goes one step further and names the **binding
//! constraint** — the paper's central question when comparing the
//! central, clustered, and distributed register-file organisations
//! (Table 1, §7):
//!
//! - **recurrence-bound** (`II == RecMII`): the dependence cycle
//!   achieving the bound is extracted from the [`DepGraph`] and reported
//!   op by op (`Σ latency / Σ distance` realises the RecMII);
//! - **resource-bound** (`II == ResMII`): the functional unit whose
//!   issue load saturates the bound is named, with its spread load in
//!   issue-slots per iteration;
//! - **transport-bound** (`II > max(RecMII, ResMII)`): neither classic
//!   bound explains the II — communication did. The most-occupied
//!   resource at the achieved II (usually a bus or a register-file
//!   port) is named.
//!
//! Alongside the verdict, an [`Explanation`] ranks every resource by
//! occupancy at the achieved II and computes **counterfactual bounds**
//! ("with +1 bus, the aggregate bus bound drops from 7 to 5") under a
//! full-connectivity approximation, the same what-if shape
//! crossbar-sizing methodologies iterate on. Rendered as a text report
//! ([`Explanation::render_text`]) and JSON ([`Explanation::to_json`]);
//! surfaced by the `one-cell --explain` and `explain` binaries of
//! `csched-eval`.

use std::collections::HashMap;
use std::fmt::Write as _;

use csched_ir::{DepEdge, DepGraph, Kernel, OpId};
use csched_machine::{Architecture, FuId, ReadPortId, WritePortId};

use crate::driver::min_latency;
use crate::metrics::{BlockOccupancy, ScheduleMetrics};
use crate::schedule::Schedule;
use crate::trace::json_escape;

/// One resource's occupancy at the achieved II, for ranking.
#[derive(Clone, Debug, PartialEq)]
pub struct ResourceRank {
    /// Display name (unit name, bus name, or `RF.w0`-style port label).
    pub name: String,
    /// Resource family: `"issue"`, `"bus"`, `"wport"`, or `"rport"`.
    pub kind: &'static str,
    /// Distinct claims on the resource per iteration (loop block) or per
    /// run (straight-line block).
    pub claims: usize,
    /// Rows the claims are spread over (the II for the loop block).
    pub rows: i64,
    /// `claims / rows`: 1.0 means the resource is busy every cycle.
    pub occupancy: f64,
}

/// A what-if lower bound: how an aggregate bound moves when one copy of
/// a resource is added.
///
/// Aggregate bounds assume full connectivity (any claim may use any
/// instance of the resource family), so they are *lower* bounds on the
/// benefit — the real machine's partial connectivity can only do worse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Counterfactual {
    /// Human description of the change, e.g. `"+1 unit like ADD0"`.
    pub change: String,
    /// The bound the change moves (`"res_mii"`, `"bus_bound"`,
    /// `"write_port_bound"`, `"read_port_bound"`).
    pub metric: String,
    /// The bound before the change.
    pub before: u32,
    /// The bound after the change.
    pub after: u32,
}

/// The constraint that binds the achieved II.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum Binding {
    /// The kernel has no loop: there is no II to bind.
    Straightline,
    /// `II == RecMII ≥ ResMII`: a dependence cycle sets the II.
    Recurrence {
        /// The ops on the critical cycle, in dependence order
        /// (`"o4:IAdd"`-style labels).
        path: Vec<String>,
        /// Total latency around the cycle.
        latency: u32,
        /// Total iteration distance around the cycle.
        distance: u32,
    },
    /// `II == ResMII ≥ RecMII`: one unit's issue bandwidth sets the II.
    Resource {
        /// The saturating functional unit.
        resource: String,
        /// Its spread issue load (issue-slots per iteration).
        load: f64,
    },
    /// `II > max(RecMII, ResMII)`: communication resources forced the
    /// scheduler past both classic bounds.
    Transport {
        /// The most-occupied resource at the achieved II.
        resource: String,
        /// That resource's family (`"bus"`, `"wport"`, …).
        kind: &'static str,
        /// Its occupancy at the achieved II.
        occupancy: f64,
    },
}

impl Binding {
    /// Short tag for serialisation: `"straightline"`, `"recurrence"`,
    /// `"resource"`, or `"transport"`.
    pub fn kind(&self) -> &'static str {
        match self {
            Binding::Straightline => "straightline",
            Binding::Recurrence { .. } => "recurrence",
            Binding::Resource { .. } => "resource",
            Binding::Transport { .. } => "transport",
        }
    }
}

/// The full attribution for one scheduled kernel on one architecture.
#[derive(Clone, Debug, PartialEq)]
pub struct Explanation {
    /// Kernel name.
    pub kernel: String,
    /// Architecture name.
    pub arch: String,
    /// Achieved loop II (`None` for loop-free kernels).
    pub ii: Option<u32>,
    /// Recurrence-constrained lower bound (from the [`DepGraph`]).
    pub rec_mii: u32,
    /// Resource-constrained lower bound (from [`crate::res_mii`]).
    pub res_mii: u32,
    /// The binding constraint.
    pub binding: Binding,
    /// Every resource of the profiled block, most occupied first.
    pub ranking: Vec<ResourceRank>,
    /// What-if bounds for the saturating unit, the buses, and the
    /// hottest register file's ports (loop kernels only).
    pub counterfactuals: Vec<Counterfactual>,
}

/// Attributes the achieved II of `schedule` to its binding constraint.
///
/// The verdict agrees with the independent bound computations by
/// construction: recurrence-bound iff `II == RecMII > ResMII`,
/// resource-bound iff `II == ResMII ≥ RecMII`, transport-bound iff the
/// II exceeds both.
pub fn explain(arch: &Architecture, kernel: &Kernel, schedule: &Schedule) -> Explanation {
    let metrics = ScheduleMetrics::compute(arch, kernel, schedule);
    let profiled = metrics
        .blocks
        .iter()
        .find(|b| b.is_loop)
        .or_else(|| metrics.blocks.first());
    let ranking = profiled.map(ranking_of).unwrap_or_default();

    let binding = if kernel.loop_block().is_none() {
        Binding::Straightline
    } else {
        let ii = metrics.ii.unwrap_or(1);
        if ii > metrics.rec_mii.max(metrics.res_mii) {
            let top = top_transport(&ranking);
            Binding::Transport {
                resource: top.map(|r| r.name.clone()).unwrap_or_default(),
                kind: top.map(|r| r.kind).unwrap_or("bus"),
                occupancy: top.map(|r| r.occupancy).unwrap_or(0.0),
            }
        } else if metrics.res_mii >= metrics.rec_mii {
            let (fu, load) = saturating_fu(arch, kernel);
            Binding::Resource {
                resource: fu
                    .map(|f| arch.fu(f).name().to_string())
                    .unwrap_or_default(),
                load,
            }
        } else {
            match critical_cycle(arch, kernel) {
                Some((ops, latency, distance)) => Binding::Recurrence {
                    path: ops
                        .iter()
                        .map(|&o| format!("{o}:{:?}", kernel.op(o).opcode()))
                        .collect(),
                    latency,
                    distance,
                },
                // RecMII > ResMII implies RecMII ≥ 2, so a positive cycle
                // exists at II − 1 and extraction cannot fail; keep a
                // degenerate arm rather than unwrap.
                None => Binding::Recurrence {
                    path: Vec::new(),
                    latency: metrics.rec_mii,
                    distance: 1,
                },
            }
        }
    };

    let counterfactuals = if kernel.loop_block().is_some() {
        counterfactuals_for(arch, kernel, profiled, metrics.res_mii)
    } else {
        Vec::new()
    };

    Explanation {
        kernel: metrics.kernel,
        arch: metrics.arch,
        ii: metrics.ii,
        rec_mii: metrics.rec_mii,
        res_mii: metrics.res_mii,
        binding,
        ranking,
        counterfactuals,
    }
}

/// Flattens one block's occupancy profiles into a ranking, most
/// occupied first (ties broken by family then name, deterministically).
fn ranking_of(block: &BlockOccupancy) -> Vec<ResourceRank> {
    let rows = block.rows.max(1);
    let mut ranking: Vec<ResourceRank> = Vec::new();
    for (kind, loads) in [
        ("issue", &block.fu_issue),
        ("bus", &block.buses),
        ("wport", &block.write_ports),
        ("rport", &block.read_ports),
    ] {
        for load in loads {
            let claims = load.total();
            ranking.push(ResourceRank {
                name: load.name.clone(),
                kind,
                claims,
                rows,
                occupancy: claims as f64 / rows as f64,
            });
        }
    }
    ranking.sort_by(|a, b| {
        b.occupancy
            .total_cmp(&a.occupancy)
            .then_with(|| a.kind.cmp(b.kind))
            .then_with(|| a.name.cmp(&b.name))
    });
    ranking
}

/// The resource to blame when the II beats both classic bounds: the
/// most-occupied one, preferring transport resources (buses, ports)
/// over issue slots on a tie.
fn top_transport(ranking: &[ResourceRank]) -> Option<&ResourceRank> {
    let best = ranking.first()?;
    Some(
        ranking
            .iter()
            .filter(|r| r.occupancy >= best.occupancy - 1e-9)
            .min_by_key(|r| (r.kind == "issue", r.name.clone()))
            .unwrap_or(best),
    )
}

/// The unit whose spread issue load realises the ResMII, with that load
/// (mirrors [`res_mii`]'s load-spreading computation).
fn saturating_fu(arch: &Architecture, kernel: &Kernel) -> (Option<FuId>, f64) {
    let load = fu_load(arch, kernel, None);
    let best = arch
        .fu_ids()
        .max_by(|&a, &b| load[a.index()].total_cmp(&load[b.index()]));
    (best, best.map(|f| load[f.index()]).unwrap_or(0.0))
}

/// The per-unit spread issue load of the loop block, optionally with a
/// ghost clone of `clone_of` added to every candidate set it belongs
/// to. The ghost's load is appended as the last element.
fn fu_load(arch: &Architecture, kernel: &Kernel, clone_of: Option<FuId>) -> Vec<f64> {
    let mut load = vec![0.0f64; arch.num_fus() + 1];
    let Some(lb) = kernel.loop_block() else {
        return load;
    };
    for &op in kernel.block(lb).ops() {
        let opcode = kernel.op(op).opcode();
        let fus = arch.fus_for(opcode);
        if fus.is_empty() {
            continue;
        }
        let ghost = clone_of.and_then(|f| arch.fu(f).capability(opcode).map(|c| (f, c)));
        let n = fus.len() + usize::from(ghost.is_some());
        let share = 1.0 / n as f64;
        for &fu in &fus {
            let interval = arch
                .fu(fu)
                .capability(opcode)
                .map(|c| c.issue_interval)
                .unwrap_or(1);
            load[fu.index()] += share * interval as f64;
        }
        if let Some((_, cap)) = ghost {
            load[arch.num_fus()] += share * cap.issue_interval as f64;
        }
    }
    load
}

/// ResMII if the machine grew one more unit identical to `like`.
fn res_mii_with_clone(arch: &Architecture, kernel: &Kernel, like: FuId) -> u32 {
    fu_load(arch, kernel, Some(like))
        .iter()
        .fold(1.0f64, |a, &b| a.max(b))
        .ceil() as u32
}

fn ceil_div(a: usize, b: usize) -> u32 {
    if b == 0 {
        0
    } else {
        a.div_ceil(b).max(1) as u32
    }
}

/// Aggregate what-if bounds: +1 saturating unit, +1 bus, +1 write/read
/// port on the hottest register file.
fn counterfactuals_for(
    arch: &Architecture,
    kernel: &Kernel,
    block: Option<&BlockOccupancy>,
    res_mii_now: u32,
) -> Vec<Counterfactual> {
    let mut out = Vec::new();
    if let (Some(fu), _) = saturating_fu(arch, kernel) {
        out.push(Counterfactual {
            change: format!("+1 unit like {}", arch.fu(fu).name()),
            metric: "res_mii".to_string(),
            before: res_mii_now,
            after: res_mii_with_clone(arch, kernel, fu),
        });
    }
    let Some(block) = block else {
        return out;
    };
    // Bus aggregate: total transfers per iteration over all buses.
    let bus_claims: usize = block.buses.iter().map(|l| l.total()).sum();
    if bus_claims > 0 && arch.num_buses() > 0 {
        out.push(Counterfactual {
            change: "+1 bus".to_string(),
            metric: "bus_bound".to_string(),
            before: ceil_div(bus_claims, arch.num_buses()),
            after: ceil_div(bus_claims, arch.num_buses() + 1),
        });
    }
    // Hottest register file by write-port claims, then by read-port
    // claims; one counterfactual each.
    let mut wclaims: HashMap<usize, usize> = HashMap::new();
    for (i, l) in block.write_ports.iter().enumerate() {
        let rf = arch.write_port_rf(WritePortId::from_raw(i)).index();
        *wclaims.entry(rf).or_insert(0) += l.total();
    }
    if let Some((&rf, &claims)) = wclaims.iter().max_by_key(|&(rf, c)| (*c, usize::MAX - rf)) {
        let ports = (0..arch.num_write_ports())
            .filter(|&i| arch.write_port_rf(WritePortId::from_raw(i)).index() == rf)
            .count();
        if claims > 0 && ports > 0 {
            out.push(Counterfactual {
                change: format!(
                    "+1 write port on {}",
                    arch.rf(csched_machine::RfId::from_raw(rf)).name()
                ),
                metric: "write_port_bound".to_string(),
                before: ceil_div(claims, ports),
                after: ceil_div(claims, ports + 1),
            });
        }
    }
    let mut rclaims: HashMap<usize, usize> = HashMap::new();
    for (i, l) in block.read_ports.iter().enumerate() {
        let rf = arch.read_port_rf(ReadPortId::from_raw(i)).index();
        *rclaims.entry(rf).or_insert(0) += l.total();
    }
    if let Some((&rf, &claims)) = rclaims.iter().max_by_key(|&(rf, c)| (*c, usize::MAX - rf)) {
        let ports = (0..arch.num_read_ports())
            .filter(|&i| arch.read_port_rf(ReadPortId::from_raw(i)).index() == rf)
            .count();
        if claims > 0 && ports > 0 {
            out.push(Counterfactual {
                change: format!(
                    "+1 read port on {}",
                    arch.rf(csched_machine::RfId::from_raw(rf)).name()
                ),
                metric: "read_port_bound".to_string(),
                before: ceil_div(claims, ports),
                after: ceil_div(claims, ports + 1),
            });
        }
    }
    out
}

/// Extracts a dependence cycle achieving the RecMII: the positive cycle
/// that exists at `II = RecMII − 1`, found by Bellman–Ford with parent
/// tracking. Returns `(ops on the cycle, Σ latency, Σ distance)`.
fn critical_cycle(arch: &Architecture, kernel: &Kernel) -> Option<(Vec<OpId>, u32, u32)> {
    let lb = kernel.loop_block()?;
    let graph = DepGraph::build(kernel, |opc| min_latency(arch, opc));
    let rec = graph.rec_mii(kernel);
    if rec <= 1 {
        return None;
    }
    let ii = (rec - 1) as i64;
    let loop_ops: Vec<OpId> = kernel.block(lb).ops().to_vec();
    let index_of: HashMap<OpId, usize> =
        loop_ops.iter().enumerate().map(|(i, &o)| (o, i)).collect();
    let m = loop_ops.len();
    let edges: Vec<&DepEdge> = graph
        .edges()
        .iter()
        .filter(|e| index_of.contains_key(&e.from) && index_of.contains_key(&e.to))
        .collect();
    let mut dist = vec![0i64; m];
    let mut parent: Vec<Option<usize>> = vec![None; m];
    let mut last_updated: Option<usize> = None;
    for _ in 0..=m {
        last_updated = None;
        for (ei, e) in edges.iter().enumerate() {
            let w = graph.latency(e.from) as i64 - ii * e.distance as i64;
            let (fi, ti) = (*index_of.get(&e.from)?, *index_of.get(&e.to)?);
            if dist[fi] + w > dist[ti] {
                dist[ti] = dist[fi] + w;
                parent[ti] = Some(ei);
                last_updated = Some(ti);
            }
        }
        // Converged: no positive cycle (cannot happen at rec−1).
        last_updated?;
    }
    // Walk m parent steps to land inside the cycle, then collect it.
    let mut x = last_updated?;
    for _ in 0..m {
        x = *index_of.get(&edges[parent[x]?].from)?;
    }
    let start = x;
    let mut cycle_edges: Vec<usize> = Vec::new();
    for _ in 0..=m {
        let ei = parent[x]?;
        cycle_edges.push(ei);
        x = *index_of.get(&edges[ei].from)?;
        if x == start {
            cycle_edges.reverse();
            let ops: Vec<OpId> = cycle_edges.iter().map(|&ei| edges[ei].from).collect();
            let latency: u32 = ops.iter().map(|&o| graph.latency(o)).sum();
            let distance: u32 = cycle_edges.iter().map(|&ei| edges[ei].distance).sum();
            return Some((ops, latency, distance));
        }
    }
    None
}

impl Explanation {
    /// Renders the attribution as a terminal report: the verdict line,
    /// the top of the occupancy ranking, and the counterfactual bounds.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} on {}: II {} (RecMII {}, ResMII {})",
            self.kernel,
            self.arch,
            match self.ii {
                Some(ii) => ii.to_string(),
                None => "-".to_string(),
            },
            self.rec_mii,
            self.res_mii
        );
        match &self.binding {
            Binding::Straightline => {
                let _ = writeln!(
                    out,
                    "  binding: none — the kernel has no loop, no II to bind"
                );
            }
            Binding::Recurrence {
                path,
                latency,
                distance,
            } => {
                let _ = writeln!(
                    out,
                    "  binding: recurrence — cycle [{}] needs {latency} cycles over distance \
                     {distance} (ceil {latency}/{distance} = RecMII {})",
                    path.join(" -> "),
                    self.rec_mii
                );
            }
            Binding::Resource { resource, load } => {
                let _ = writeln!(
                    out,
                    "  binding: resource — issue bandwidth of {resource} (spread load {load:.2} \
                     issue-slots/iteration sets ResMII {})",
                    self.res_mii
                );
            }
            Binding::Transport {
                resource,
                kind,
                occupancy,
            } => {
                let _ = writeln!(
                    out,
                    "  binding: transport — II exceeds both bounds; busiest resource is \
                     {resource} [{kind}] at {:.0}% occupancy",
                    occupancy * 100.0
                );
            }
        }
        let _ = writeln!(out, "  occupancy at the profiled rows (top 10):");
        for r in self.ranking.iter().take(10) {
            let _ = writeln!(
                out,
                "    {:<10} [{:<5}] {:>3}/{:<3} {:>5.1}%",
                r.name,
                r.kind,
                r.claims,
                r.rows,
                r.occupancy * 100.0
            );
        }
        if !self.counterfactuals.is_empty() {
            let _ = writeln!(
                out,
                "  counterfactual bounds (full-connectivity approximation):"
            );
            for c in &self.counterfactuals {
                let _ = writeln!(
                    out,
                    "    {:<24} {} {} -> {}",
                    c.change, c.metric, c.before, c.after
                );
            }
        }
        out
    }

    /// Renders the attribution as one JSON object (stable field order;
    /// consumed by the CI explain smoke step).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(512);
        let _ = write!(
            s,
            "{{\"kernel\":\"{}\",\"arch\":\"{}\",\"ii\":{},\"rec_mii\":{},\"res_mii\":{}",
            json_escape(&self.kernel),
            json_escape(&self.arch),
            match self.ii {
                Some(ii) => ii.to_string(),
                None => "null".to_string(),
            },
            self.rec_mii,
            self.res_mii
        );
        let _ = write!(s, ",\"binding\":{{\"kind\":\"{}\"", self.binding.kind());
        match &self.binding {
            Binding::Straightline => {}
            Binding::Recurrence {
                path,
                latency,
                distance,
            } => {
                s.push_str(",\"path\":[");
                for (i, p) in path.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    let _ = write!(s, "\"{}\"", json_escape(p));
                }
                let _ = write!(s, "],\"latency\":{latency},\"distance\":{distance}");
            }
            Binding::Resource { resource, load } => {
                let _ = write!(
                    s,
                    ",\"resource\":\"{}\",\"load\":{load:.3}",
                    json_escape(resource)
                );
            }
            Binding::Transport {
                resource,
                kind,
                occupancy,
            } => {
                let _ = write!(
                    s,
                    ",\"resource\":\"{}\",\"resource_kind\":\"{kind}\",\"occupancy\":{occupancy:.3}",
                    json_escape(resource)
                );
            }
        }
        s.push_str("},\"ranking\":[");
        for (i, r) in self.ranking.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"name\":\"{}\",\"kind\":\"{}\",\"claims\":{},\"rows\":{},\
                 \"occupancy\":{:.3}}}",
                json_escape(&r.name),
                r.kind,
                r.claims,
                r.rows,
                r.occupancy
            );
        }
        s.push_str("],\"counterfactuals\":[");
        for (i, c) in self.counterfactuals.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"change\":\"{}\",\"metric\":\"{}\",\"before\":{},\"after\":{}}}",
                json_escape(&c.change),
                json_escape(&c.metric),
                c.before,
                c.after
            );
        }
        s.push_str("]}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{res_mii, schedule_kernel};
    use crate::SchedulerConfig;
    use csched_ir::KernelBuilder;
    use csched_ir::Operand;
    use csched_machine::{imagine, toy, Opcode};

    /// acc = ((acc + x) + y) each iteration: a two-add recurrence, so
    /// RecMII ≥ 2 while the 12-unit central machine keeps ResMII low.
    fn recurrence_kernel() -> Kernel {
        let mut kb = KernelBuilder::new("rec");
        let input = kb.region("in", true);
        let output = kb.region("out", true);
        let lp = kb.loop_block("body");
        let i = kb.loop_var(lp, 0i64.into());
        let acc = kb.loop_var(lp, 1i64.into());
        let x = kb.load(lp, input, i.into(), 0i64.into());
        let a1 = kb.push(lp, Opcode::IAdd, [acc.into(), x.into()]);
        let a2 = kb.push(lp, Opcode::IAdd, [a1.into(), x.into()]);
        kb.store(lp, output, i.into(), 100i64.into(), a2.into());
        let i1 = kb.push(lp, Opcode::IAdd, [i.into(), 1i64.into()]);
        kb.set_update(i, i1.into());
        kb.set_update(acc, a2.into());
        kb.build().unwrap()
    }

    #[test]
    fn recurrence_bound_names_the_cycle() {
        let kernel = recurrence_kernel();
        let arch = imagine::central();
        let s = schedule_kernel(&arch, &kernel, SchedulerConfig::default()).unwrap();
        let ex = explain(&arch, &kernel, &s);
        assert_eq!(ex.rec_mii, {
            let g = DepGraph::build(&kernel, |o| min_latency(&arch, o));
            g.rec_mii(&kernel)
        });
        if ex.rec_mii > ex.res_mii && ex.ii == Some(ex.rec_mii) {
            let Binding::Recurrence {
                path,
                latency,
                distance,
            } = &ex.binding
            else {
                panic!("expected recurrence binding, got {:?}", ex.binding);
            };
            assert!(!path.is_empty(), "critical cycle extracted");
            assert_eq!(
                (*latency as f64 / *distance as f64).ceil() as u32,
                ex.rec_mii,
                "the reported cycle realises the RecMII"
            );
        }
        let text = ex.render_text();
        assert!(text.contains("binding:"));
        let json = ex.to_json();
        assert!(json.contains("\"binding\""));
        assert!(json.contains("\"counterfactuals\""));
    }

    #[test]
    fn binding_agrees_with_bounds_on_toy_loop() {
        let arch = toy::motivating_example();
        let mut kb = KernelBuilder::new("looped");
        let lp = kb.loop_block("body");
        let i = kb.loop_var(lp, 0i64.into());
        let i1 = kb.push(lp, Opcode::IAdd, [Operand::from(i), 1i64.into()]);
        kb.set_update(i, i1.into());
        let kernel = kb.build().unwrap();
        let s = schedule_kernel(&arch, &kernel, SchedulerConfig::default()).unwrap();
        let ex = explain(&arch, &kernel, &s);
        let ii = ex.ii.unwrap();
        match &ex.binding {
            Binding::Recurrence { .. } => {
                assert_eq!(ii, ex.rec_mii);
                assert!(ex.rec_mii > ex.res_mii);
            }
            Binding::Resource { resource, .. } => {
                assert_eq!(ii, ex.res_mii);
                assert!(ex.res_mii >= ex.rec_mii);
                assert!(!resource.is_empty());
            }
            Binding::Transport { .. } => assert!(ii > ex.rec_mii.max(ex.res_mii)),
            Binding::Straightline => panic!("loop kernel cannot be straightline-bound"),
        }
        assert!(!ex.ranking.is_empty());
        // Ranking is sorted by occupancy.
        for w in ex.ranking.windows(2) {
            assert!(w[0].occupancy >= w[1].occupancy - 1e-9);
        }
    }

    #[test]
    fn straightline_kernels_have_no_binding_ii() {
        let arch = toy::motivating_example();
        let mut kb = KernelBuilder::new("straight");
        let mem = kb.region("mem", true);
        let b = kb.straight_block("b");
        let x = kb.push(b, Opcode::IAdd, [1i64.into(), 2i64.into()]);
        kb.store(b, mem, 0i64.into(), 0i64.into(), x.into());
        let kernel = kb.build().unwrap();
        let s = schedule_kernel(&arch, &kernel, SchedulerConfig::default()).unwrap();
        let ex = explain(&arch, &kernel, &s);
        assert_eq!(ex.binding, Binding::Straightline);
        assert_eq!(ex.ii, None);
        assert!(ex.counterfactuals.is_empty());
        assert!(ex.to_json().contains("\"kind\":\"straightline\""));
    }

    #[test]
    fn clone_counterfactual_never_raises_the_bound() {
        let kernel = recurrence_kernel();
        for arch in imagine::all_variants() {
            let before = res_mii(&arch, &kernel);
            for fu in arch.fu_ids() {
                let after = res_mii_with_clone(&arch, &kernel, fu);
                assert!(
                    after <= before,
                    "{}: +1 {} raised ResMII {before} -> {after}",
                    arch.name(),
                    arch.fu(fu).name()
                );
            }
        }
    }
}
