//! Transactional per-cycle resource tables on dense modulo-indexed
//! occupancy arrays.
//!
//! Communication scheduling is trial-heavy: a placement attempt claims
//! issue slots, outputs, buses and ports, and the whole attempt must be
//! rolled back exactly if any later step fails (paper §4.3: "if
//! communication scheduling fails, any routes assigned to communications
//! to/from the current operation are unassigned"). The table therefore
//! journals every claim and exposes savepoint/rollback.
//!
//! # Hot-path layout (DESIGN.md §14)
//!
//! The table is a flat `Vec` of *cells*, one per `(row, resource)` pair,
//! indexed `row * num_resources + resource_index` with the dense resource
//! indices of [`ResourceMap`]. In modulo mode the row is `cycle mod II`
//! and all `II` rows are allocated up front; in linear mode the row is
//! the cycle itself and rows grow geometrically on demand. A cell is a
//! small inline list of `(payload, refcount)` claims whose capacity is
//! *retained* when the cell empties, so the steady-state placement loop
//! performs no allocation at all — the previous design paid a hashmap
//! probe (hash + bucket walk) per claim and allocated a fresh list per
//! occupied `(cycle, resource)` key.
//!
//! Savepoint/rollback is a generation-stamped undo log: every mutation
//! appends a [`JournalEntry`] naming the flat cell it touched, a
//! [`Savepoint`] is the journal length stamped with the table's rollback
//! generation, and rolling back pops entries in reverse. The generation
//! stamp makes stale savepoints (taken before an enclosing rollback
//! already unwound past them) detectable in debug builds instead of
//! silently corrupting claims.
//!
//! The table understands the paper's sharing rules (§4.2):
//!
//! - a functional-unit output produces one result per cycle but may drive
//!   up to `fanout` buses with it;
//! - a bus carries one value per cycle and may broadcast it to several
//!   write ports ("two write stubs for the same result only conflict if
//!   they write to the same register file using different buses or
//!   register file ports");
//! - a write port accepts one (value, bus) pair per cycle;
//! - read-side resources are claimed per consumer operand; the
//!   communications of one operand (e.g. a loop variable's init and
//!   carried communications) share one read stub ("two read stubs for the
//!   same operand conflict if they are not identical").
//!
//! In modulo mode (software pipelining), cycles fold into `cycle mod II`.
//! Linear tables expect non-negative cycles (the driver never schedules
//! below cycle 0); a negative linear cycle is rejected as a conflict.

use csched_machine::{FuId, ReadPortId, ReadStub, Resource, ResourceMap, WriteStub};

use crate::universe::SOpId;

/// How cycles map onto table rows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TableMode {
    /// Straight-line code: each cycle is its own row.
    Linear,
    /// Modulo scheduling with the given initiation interval.
    Modulo(u32),
}

/// What occupies a resource on a cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum Payload {
    /// Issue slot held by an operation.
    Op(SOpId),
    /// Write-side claim: the producing operation (result identity) and the
    /// bus used.
    Write { value: SOpId, bus: u32 },
    /// Write-side bus claim: the value on the bus.
    WriteBus { value: SOpId },
    /// Read-side bus claim: the read port driving the bus.
    ReadBus { port: ReadPortId },
    /// Read-side claim by a consumer operand.
    Read { op: SOpId, slot: u8 },
}

/// A claim journal entry for rollback: the flat cell touched, the payload,
/// and whether it was added (rollback removes) or released (rollback
/// re-adds).
#[derive(Clone, Copy, Debug)]
struct JournalEntry {
    /// Flat cell index `row * num_resources + resource_index`.
    cell: u32,
    payload: Payload,
    /// `true` for claims added, `false` for claims released (rollback
    /// re-adds those).
    added: bool,
}

/// The per-block resource table. See the module docs for the layout.
#[derive(Clone, Debug)]
pub struct ResourceTable {
    mode: TableMode,
    map: ResourceMap,
    /// Number of resources (row stride).
    nres: usize,
    /// Allocated rows (`cells.len() / nres`). Fixed at the II in modulo
    /// mode; grows on demand in linear mode.
    rows: usize,
    /// `cells[row * nres + resource]` = the claims on that resource in
    /// that row. Emptied cells keep their capacity.
    cells: Vec<Vec<(Payload, u32)>>,
    journal: Vec<JournalEntry>,
    /// Rollback generation: bumped by every [`ResourceTable::rollback`].
    generation: u64,
}

/// A savepoint for rollback: a journal position stamped with the rollback
/// generation it was taken in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Savepoint {
    len: usize,
    generation: u64,
}

impl ResourceTable {
    /// Creates an empty table for an architecture's resources.
    pub fn new(map: ResourceMap, mode: TableMode) -> Self {
        let nres = map.len();
        let rows = match mode {
            TableMode::Linear => 0,
            TableMode::Modulo(ii) => ii.max(1) as usize,
        };
        ResourceTable {
            mode,
            map,
            nres,
            rows,
            cells: vec![Vec::new(); rows * nres],
            journal: Vec::new(),
            generation: 0,
        }
    }

    /// The table's mode.
    pub fn mode(&self) -> TableMode {
        self.mode
    }

    /// The row `cycle` folds onto, or `None` for a negative linear cycle
    /// (never scheduled; see the module docs).
    #[inline]
    fn row(&self, cycle: i64) -> Option<usize> {
        match self.mode {
            TableMode::Linear => (cycle >= 0).then_some(cycle as usize),
            TableMode::Modulo(ii) => Some(cycle.rem_euclid(ii as i64) as usize),
        }
    }

    /// Flat cell index for reading: `None` when the row was never
    /// allocated (trivially unoccupied).
    #[inline]
    fn cell_read(&self, cycle: i64, resource: Resource) -> Option<usize> {
        let row = self.row(cycle)?;
        if row >= self.rows {
            return None;
        }
        Some(row * self.nres + self.map.index(resource))
    }

    /// Flat cell index for claiming, growing linear tables on demand.
    /// `None` only for negative linear cycles.
    #[inline]
    fn cell_claim(&mut self, cycle: i64, resource: Resource) -> Option<usize> {
        let row = self.row(cycle)?;
        if row >= self.rows {
            debug_assert!(matches!(self.mode, TableMode::Linear));
            // Geometric growth keeps amortised claim cost O(1); retained
            // cells are reused for the rest of the schedule.
            let new_rows = (row + 1).next_power_of_two().max(8);
            self.cells.resize(new_rows * self.nres, Vec::new());
            self.rows = new_rows;
        }
        Some(row * self.nres + self.map.index(resource))
    }

    /// Number of distinct claims on `resource` at `cycle` (0 = free).
    pub fn occupancy(&self, cycle: i64, resource: Resource) -> usize {
        self.cell_read(cycle, resource)
            .map_or(0, |c| self.cells[c].len())
    }

    /// Per-row occupancy of `resource` over the first `rows` rows
    /// (`0..rows`): the table's occupancy histogram for one resource,
    /// used by the metrics layer. For a modulo table, `rows` is normally
    /// the II; rows past the fold repeat. The dense layout makes this a
    /// strided walk over one column — the resource index is resolved
    /// once, not once per row.
    pub fn occupancy_profile(&self, resource: Resource, rows: i64) -> Vec<usize> {
        let n = rows.max(0) as usize;
        let ridx = self.map.index(resource);
        (0..n)
            .map(|r| {
                let row = match self.mode {
                    TableMode::Linear => r,
                    TableMode::Modulo(ii) => r % ii.max(1) as usize,
                };
                if row >= self.rows {
                    0
                } else {
                    self.cells[row * self.nres + ridx].len()
                }
            })
            .collect()
    }

    /// An order-independent digest of the table's current claims (used by
    /// tests to prove that rollback restores state exactly, and handy when
    /// debugging the scheduler).
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        for (i, cell) in self.cells.iter().enumerate() {
            if cell.is_empty() {
                continue;
            }
            // Entries within a cell are order-independent (swap_remove
            // reorders them): combine per-entry hashes commutatively.
            let mut combined: u64 = 0;
            for entry in cell {
                let mut eh = std::collections::hash_map::DefaultHasher::new();
                entry.hash(&mut eh);
                combined = combined.wrapping_add(eh.finish());
            }
            (i as u64, cell.len() as u64, combined).hash(&mut h);
        }
        h.finish()
    }

    /// Marks the current journal position.
    pub fn savepoint(&self) -> Savepoint {
        Savepoint {
            len: self.journal.len(),
            generation: self.generation,
        }
    }

    /// Reverts every claim change (addition or release) made since `sp`.
    pub fn rollback(&mut self, sp: Savepoint) {
        // A savepoint from an older generation whose position has already
        // been unwound past is stale; rolling back to it would corrupt the
        // refcounts. Trip debug builds, degrade to a no-op in release
        // (the placement fails and validation rejects the schedule).
        debug_assert!(
            sp.len <= self.journal.len(),
            "stale savepoint: journal already unwound past it"
        );
        if self.journal.len() > sp.len {
            self.generation = self.generation.wrapping_add(1);
        }
        while self.journal.len() > sp.len {
            let Some(entry) = self.journal.pop() else {
                break; // unreachable: the loop condition guarantees an entry
            };
            let list = &mut self.cells[entry.cell as usize];
            if entry.added {
                // A journalled addition always has a matching live claim;
                // tolerate its absence (skip) rather than panic, so a
                // corrupted table degrades into a failed schedule that
                // validation rejects instead of aborting the process.
                let Some(pos) = list.iter().position(|(p, _)| *p == entry.payload) else {
                    debug_assert!(false, "journalled claim missing on rollback");
                    continue;
                };
                if list[pos].1 > 1 {
                    list[pos].1 -= 1;
                } else {
                    list.swap_remove(pos);
                }
            } else {
                // Re-add a released claim.
                match list.iter_mut().find(|(p, _)| *p == entry.payload) {
                    Some((_, count)) => *count += 1,
                    None => list.push((entry.payload, 1)),
                }
            }
        }
    }

    fn release(&mut self, cell: usize, payload: Payload) {
        // Releasing a claim that is not held indicates an engine bug; skip
        // (and trip debug builds) rather than panic — the resulting table
        // can only over-constrain later placements, never corrupt a
        // schedule that validation accepts.
        let list = &mut self.cells[cell];
        let Some(pos) = list.iter().position(|(p, _)| *p == payload) else {
            debug_assert!(false, "released claim missing");
            return;
        };
        if list[pos].1 > 1 {
            list[pos].1 -= 1;
        } else {
            list.swap_remove(pos);
        }
        self.journal.push(JournalEntry {
            cell: cell as u32,
            payload,
            added: false,
        });
    }

    /// Releases one placement of a write stub made with
    /// [`ResourceTable::place_write_stub`] (used when the permutation
    /// search revises a tentative open-communication stub, paper §4.3
    /// step 2/3). The release itself is journalled, so a later rollback
    /// restores the claim. Releasing a stub that was never placed is an
    /// engine bug; it is skipped (debug builds trip an assertion).
    pub fn unplace_write_stub(&mut self, cycle: i64, stub: WriteStub, value: SOpId) {
        let bus_raw = stub.bus.index() as u32;
        let payload = Payload::Write {
            value,
            bus: bus_raw,
        };
        let Some(ocell) = self.cell_read(cycle, Resource::FuOutput(stub.fu)) else {
            debug_assert!(false, "released claim on an unallocated row");
            return;
        };
        self.release(ocell, payload);
        if let Some(bcell) = self.cell_read(cycle, Resource::Bus(stub.bus)) {
            self.release(bcell, Payload::WriteBus { value });
        }
        if let Some(pcell) = self.cell_read(cycle, Resource::WritePort(stub.port)) {
            self.release(pcell, payload);
        }
    }

    /// Releases one placement of a read stub made with
    /// [`ResourceTable::place_read_stub`]. Releasing a stub that was never
    /// placed is an engine bug; it is skipped (debug builds trip an
    /// assertion).
    pub fn unplace_read_stub(&mut self, cycle: i64, stub: ReadStub, op: SOpId, slot: usize) {
        let payload = Payload::Read {
            op,
            slot: slot as u8,
        };
        let Some(rcell) = self.cell_read(cycle, Resource::ReadPort(stub.port)) else {
            debug_assert!(false, "released claim on an unallocated row");
            return;
        };
        self.release(rcell, payload);
        if let Some(bcell) = self.cell_read(cycle, Resource::Bus(stub.bus)) {
            self.release(bcell, Payload::ReadBus { port: stub.port });
        }
        if let Some(icell) = self.cell_read(cycle, Resource::FuInput(stub.input())) {
            self.release(icell, payload);
        }
    }

    /// Applies an admission decision computed by `admit_exclusive` /
    /// `admit_output` against the cell's current claim list, journalling
    /// the addition. `Conflict` must be filtered out by the caller before
    /// mutating anything; it is tolerated here as a no-op (debug builds
    /// trip an assertion) so a logic error degrades into a failed schedule
    /// rather than a corrupted table.
    fn apply_claim(&mut self, cell: usize, payload: Payload, adm: Admission) {
        let list = &mut self.cells[cell];
        match adm {
            Admission::Conflict => {
                debug_assert!(false, "applied a conflicting claim");
                return;
            }
            Admission::Identical(pos) => list[pos].1 += 1,
            Admission::Additional => list.push((payload, 1)),
        }
        self.journal.push(JournalEntry {
            cell: cell as u32,
            payload,
            added: true,
        });
    }

    /// Claims the issue slot of `fu` for `op` on cycles
    /// `cycle .. cycle + interval` (partially pipelined capabilities hold
    /// the unit for several cycles). Leaves the table untouched on failure.
    pub fn place_issue(&mut self, cycle: i64, fu: FuId, interval: u32, op: SOpId) -> bool {
        if let TableMode::Modulo(ii) = self.mode {
            if interval > ii {
                return false; // cannot re-issue fast enough
            }
        }
        // The claimed cycles map to distinct cells (`interval <= II` in
        // modulo mode), so the admissions are independent: check them all
        // read-only, then mutate only when every cycle admits. The failure
        // path touches neither the cells nor the journal, so the hot
        // permutation search never pays for journalling doomed claims.
        let payload = Payload::Op(op);
        for i in 0..interval as i64 {
            let Some(cell) = self.cell_claim(cycle + i, Resource::FuIssue(fu)) else {
                return false;
            };
            if matches!(
                admit_exclusive(&self.cells[cell], payload),
                Admission::Conflict
            ) {
                return false;
            }
        }
        for i in 0..interval as i64 {
            let Some(cell) = self.cell_claim(cycle + i, Resource::FuIssue(fu)) else {
                debug_assert!(false, "claimable cell vanished between check and apply");
                return false;
            };
            let adm = admit_exclusive(&self.cells[cell], payload);
            self.apply_claim(cell, payload, adm);
        }
        true
    }

    /// Claims the resources of a write stub on `cycle` for the result of
    /// `value` (identified by its producing operation). `fanout` is the
    /// producing unit's maximum simultaneous bus drive count. Leaves the
    /// table untouched on failure.
    pub fn place_write_stub(
        &mut self,
        cycle: i64,
        stub: WriteStub,
        value: SOpId,
        fanout: usize,
    ) -> bool {
        let bus_raw = stub.bus.index() as u32;
        let wpayload = Payload::Write {
            value,
            bus: bus_raw,
        };

        // The three claims live in distinct cells (distinct resource
        // kinds), so their admissions are independent: resolve every cell,
        // check every admission read-only, and mutate only when all three
        // admit. The failure path — the common case during the §4.3
        // permutation search — touches neither the cells nor the journal.
        let Some(ocell) = self.cell_claim(cycle, Resource::FuOutput(stub.fu)) else {
            return false;
        };
        let Some(bcell) = self.cell_claim(cycle, Resource::Bus(stub.bus)) else {
            return false;
        };
        let Some(pcell) = self.cell_claim(cycle, Resource::WritePort(stub.port)) else {
            return false;
        };

        // Output: one value; up to `fanout` distinct buses.
        let o_adm = admit_output(&self.cells[ocell], value, bus_raw, fanout);
        if matches!(o_adm, Admission::Conflict) {
            return false;
        }
        // Bus: one value, broadcast allowed.
        let b_adm = admit_exclusive(&self.cells[bcell], Payload::WriteBus { value });
        if matches!(b_adm, Admission::Conflict) {
            return false;
        }
        // Write port: one (value, bus) pair.
        let p_adm = admit_exclusive(&self.cells[pcell], wpayload);
        if matches!(p_adm, Admission::Conflict) {
            return false;
        }

        self.apply_claim(ocell, wpayload, o_adm);
        self.apply_claim(bcell, Payload::WriteBus { value }, b_adm);
        self.apply_claim(pcell, wpayload, p_adm);
        true
    }

    /// Claims the resources of a read stub on `cycle` for consumer operand
    /// `(op, slot)`. Leaves the table untouched on failure.
    pub fn place_read_stub(&mut self, cycle: i64, stub: ReadStub, op: SOpId, slot: usize) -> bool {
        let payload = Payload::Read {
            op,
            slot: slot as u8,
        };
        // As in `place_write_stub`: distinct cells, so check all three
        // admissions read-only before mutating anything.
        let Some(rcell) = self.cell_claim(cycle, Resource::ReadPort(stub.port)) else {
            return false;
        };
        let Some(bcell) = self.cell_claim(cycle, Resource::Bus(stub.bus)) else {
            return false;
        };
        let Some(icell) = self.cell_claim(cycle, Resource::FuInput(stub.input())) else {
            return false;
        };

        let r_adm = admit_exclusive(&self.cells[rcell], payload);
        if matches!(r_adm, Admission::Conflict) {
            return false;
        }
        // Bus: shareable between identical source ports (broadcast).
        let b_adm = admit_exclusive(&self.cells[bcell], Payload::ReadBus { port: stub.port });
        if matches!(b_adm, Admission::Conflict) {
            return false;
        }
        let i_adm = admit_exclusive(&self.cells[icell], payload);
        if matches!(i_adm, Admission::Conflict) {
            return false;
        }

        self.apply_claim(rcell, payload, r_adm);
        self.apply_claim(bcell, Payload::ReadBus { port: stub.port }, b_adm);
        self.apply_claim(icell, payload, i_adm);
        true
    }

    /// Whether a write stub could be placed (non-mutating probe).
    pub fn can_place_write_stub(
        &mut self,
        cycle: i64,
        stub: WriteStub,
        value: SOpId,
        fanout: usize,
    ) -> bool {
        let sp = self.savepoint();
        let ok = self.place_write_stub(cycle, stub, value, fanout);
        self.rollback(sp);
        ok
    }

    /// Whether a read stub could be placed (non-mutating probe).
    pub fn can_place_read_stub(
        &mut self,
        cycle: i64,
        stub: ReadStub,
        op: SOpId,
        slot: usize,
    ) -> bool {
        let sp = self.savepoint();
        let ok = self.place_read_stub(cycle, stub, op, slot);
        self.rollback(sp);
        ok
    }
}

enum Admission {
    /// Same claim already present: bump its refcount.
    Identical(usize),
    /// Compatible new claim.
    Additional,
    /// Incompatible.
    Conflict,
}

/// Admission for resources carrying one claim per cycle: identical claims
/// share (refcounted), anything else conflicts.
fn admit_exclusive(list: &[(Payload, u32)], p: Payload) -> Admission {
    match list.first() {
        Some((e, _)) if *e == p => Admission::Identical(0),
        Some(_) => Admission::Conflict,
        None => Admission::Additional,
    }
}

/// Admission for a unit's output: one value per cycle, broadcast onto up
/// to `fanout` distinct buses.
fn admit_output(list: &[(Payload, u32)], value: SOpId, bus: u32, fanout: usize) -> Admission {
    // The distinct-bus count is over a list at most `fanout` long: count
    // in place instead of allocating a set.
    for (e, _) in list {
        match e {
            Payload::Write { value: ev, .. } => {
                if *ev != value {
                    return Admission::Conflict;
                }
            }
            _ => return Admission::Conflict,
        }
    }
    let p = Payload::Write { value, bus };
    if let Some(pos) = list.iter().position(|(e, _)| *e == p) {
        return Admission::Identical(pos);
    }
    let mut distinct = 1usize; // the new bus
    for (i, (e, _)) in list.iter().enumerate() {
        let Payload::Write { bus: eb, .. } = e else {
            continue;
        };
        if *eb == bus {
            continue;
        }
        let first = !list[..i]
            .iter()
            .any(|(prev, _)| matches!(prev, Payload::Write { bus: pb, .. } if pb == eb));
        if first {
            distinct += 1;
        }
    }
    if distinct <= fanout {
        Admission::Additional
    } else {
        Admission::Conflict
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csched_machine::{toy, Architecture};

    fn setup() -> (Architecture, ResourceTable) {
        let arch = toy::motivating_example();
        let table = ResourceTable::new(ResourceMap::new(&arch), TableMode::Linear);
        (arch, table)
    }

    fn op(i: usize) -> SOpId {
        SOpId::from_raw(i)
    }

    #[test]
    fn issue_slot_is_exclusive() {
        let (arch, mut t) = setup();
        let fu = arch.fu_by_name("ADD0").unwrap();
        assert!(t.place_issue(0, fu, 1, op(0)));
        assert!(!t.place_issue(0, fu, 1, op(1)));
        assert!(t.place_issue(1, fu, 1, op(1)));
    }

    #[test]
    fn issue_interval_occupies_multiple_cycles() {
        let (arch, mut t) = setup();
        let fu = arch.fu_by_name("ADD0").unwrap();
        assert!(t.place_issue(0, fu, 3, op(0)));
        assert!(!t.place_issue(2, fu, 1, op(1)));
        assert!(t.place_issue(3, fu, 1, op(1)));
    }

    #[test]
    fn bus_conflict_between_different_values() {
        let (arch, mut t) = setup();
        // ADD0 and LS both drive BUS0; two different results on the same
        // cycle conflict — the Figure 6 incorrect-schedule scenario.
        let add0 = arch.fu_by_name("ADD0").unwrap();
        let ls = arch.fu_by_name("LS").unwrap();
        let s_add = arch.write_stubs(add0)[0];
        let s_ls = arch
            .write_stubs(ls)
            .iter()
            .copied()
            .find(|s| s.bus == s_add.bus)
            .unwrap();
        assert!(t.place_write_stub(0, s_add, op(0), 1));
        assert!(!t.place_write_stub(0, s_ls, op(1), 2));
        // A different cycle is fine.
        assert!(t.place_write_stub(1, s_ls, op(1), 2));
    }

    #[test]
    fn bus_broadcast_of_same_value() {
        let (arch, mut t) = setup();
        // LS's BUS1 reaches RF1 and RFC: same value to both ports is legal.
        let ls = arch.fu_by_name("LS").unwrap();
        let stubs: Vec<_> = arch
            .write_stubs(ls)
            .iter()
            .copied()
            .filter(|s| arch.bus(s.bus).name() == "BUS1")
            .collect();
        assert_eq!(stubs.len(), 2);
        assert!(t.place_write_stub(0, stubs[0], op(0), 2));
        assert!(t.place_write_stub(0, stubs[1], op(0), 2));
    }

    #[test]
    fn output_fanout_limits_distinct_buses() {
        let (arch, mut t) = setup();
        let ls = arch.fu_by_name("LS").unwrap();
        let bus0_stub = arch
            .write_stubs(ls)
            .iter()
            .copied()
            .find(|s| arch.bus(s.bus).name() == "BUS0")
            .unwrap();
        let bus1_stub = arch
            .write_stubs(ls)
            .iter()
            .copied()
            .find(|s| arch.bus(s.bus).name() == "BUS1")
            .unwrap();
        // Fanout 1: one bus only.
        assert!(t.place_write_stub(0, bus0_stub, op(0), 1));
        assert!(!t.place_write_stub(0, bus1_stub, op(0), 1));
        // Fanout 2 (LS's real capability): both buses, same value.
        assert!(t.place_write_stub(1, bus0_stub, op(0), 2));
        assert!(t.place_write_stub(1, bus1_stub, op(0), 2));
    }

    #[test]
    fn output_single_value_per_cycle() {
        let (arch, mut t) = setup();
        let ls = arch.fu_by_name("LS").unwrap();
        let stubs = arch.write_stubs(ls);
        assert!(t.place_write_stub(0, stubs[0], op(0), 2));
        let other_bus = stubs
            .iter()
            .copied()
            .find(|s| s.bus != stubs[0].bus)
            .unwrap();
        assert!(!t.place_write_stub(0, other_bus, op(1), 2));
    }

    #[test]
    fn write_port_same_value_different_bus_conflicts() {
        let (arch, mut t) = setup();
        // RFC's shared port is reachable from BUS0 and BUS1. The same value
        // through different buses conflicts (paper §4.2).
        let ls = arch.fu_by_name("LS").unwrap();
        let rfc = arch.rf_by_name("RFC").unwrap();
        let to_rfc: Vec<_> = arch
            .write_stubs(ls)
            .iter()
            .copied()
            .filter(|s| s.rf == rfc)
            .collect();
        assert_eq!(to_rfc.len(), 2);
        assert!(t.place_write_stub(0, to_rfc[0], op(0), 2));
        assert!(!t.place_write_stub(0, to_rfc[1], op(0), 2));
    }

    #[test]
    fn read_stub_dedupe_and_conflict() {
        let (arch, mut t) = setup();
        let add0 = arch.fu_by_name("ADD0").unwrap();
        let stub = arch.read_stubs(add0, 0)[0];
        // Same operand twice (init + carried communications): dedupes.
        assert!(t.place_read_stub(0, stub, op(5), 0));
        assert!(t.place_read_stub(0, stub, op(5), 0));
        // A different operand on the same port conflicts.
        assert!(!t.place_read_stub(0, stub, op(6), 0));
    }

    #[test]
    fn rollback_restores_everything() {
        let (arch, mut t) = setup();
        let add0 = arch.fu_by_name("ADD0").unwrap();
        let stub = arch.write_stubs(add0)[0];
        assert!(t.place_write_stub(0, stub, op(0), 1));
        let sp = t.savepoint();
        assert!(t.place_issue(0, add0, 1, op(1)));
        let rstub = arch.read_stubs(add0, 0)[0];
        assert!(t.place_read_stub(0, rstub, op(1), 0));
        t.rollback(sp);
        // Issue and read slots are free again; the earlier write remains.
        assert!(t.place_issue(0, add0, 1, op(9)));
        assert!(t.place_read_stub(0, rstub, op(9), 0));
        let other = arch.fu_by_name("LS").unwrap();
        let conflicting = arch
            .write_stubs(other)
            .iter()
            .copied()
            .find(|s| s.bus == stub.bus)
            .unwrap();
        assert!(!t.place_write_stub(0, conflicting, op(9), 2));
    }

    #[test]
    fn refcounted_rollback_keeps_shared_claims() {
        let (arch, mut t) = setup();
        let add0 = arch.fu_by_name("ADD0").unwrap();
        let rstub = arch.read_stubs(add0, 0)[0];
        assert!(t.place_read_stub(0, rstub, op(5), 0));
        let sp = t.savepoint();
        assert!(t.place_read_stub(0, rstub, op(5), 0)); // second comm, same operand
        t.rollback(sp);
        // Operand claim is still held by the first communication.
        assert!(!t.place_read_stub(0, rstub, op(6), 0));
    }

    #[test]
    fn modulo_mode_folds_cycles() {
        let (arch, _) = setup();
        let mut t = ResourceTable::new(ResourceMap::new(&arch), TableMode::Modulo(4));
        let fu = arch.fu_by_name("ADD0").unwrap();
        assert!(t.place_issue(1, fu, 1, op(0)));
        // Cycle 5 maps to the same modulo slot.
        assert!(!t.place_issue(5, fu, 1, op(1)));
        assert!(t.place_issue(6, fu, 1, op(1)));
    }

    #[test]
    fn modulo_rejects_interval_beyond_ii() {
        let (arch, _) = setup();
        let mut t = ResourceTable::new(ResourceMap::new(&arch), TableMode::Modulo(3));
        let fu = arch.fu_by_name("ADD0").unwrap();
        assert!(!t.place_issue(0, fu, 4, op(0)));
        assert!(t.place_issue(0, fu, 3, op(0)));
    }

    #[test]
    fn probes_do_not_mutate() {
        let (arch, mut t) = setup();
        let add0 = arch.fu_by_name("ADD0").unwrap();
        let stub = arch.write_stubs(add0)[0];
        assert!(t.can_place_write_stub(0, stub, op(0), 1));
        assert!(t.can_place_write_stub(0, stub, op(1), 1)); // still free
        let rstub = arch.read_stubs(add0, 1)[0];
        assert!(t.can_place_read_stub(0, rstub, op(0), 1));
        assert!(t.can_place_read_stub(0, rstub, op(1), 1));
    }

    #[test]
    fn negative_linear_cycle_is_rejected_not_corrupting() {
        let (arch, mut t) = setup();
        let fu = arch.fu_by_name("ADD0").unwrap();
        let fp = t.fingerprint();
        assert!(!t.place_issue(-1, fu, 1, op(0)));
        assert_eq!(t.occupancy(-1, Resource::FuIssue(fu)), 0);
        assert_eq!(t.fingerprint(), fp);
        // Modulo mode folds negatives instead.
        let mut m = ResourceTable::new(ResourceMap::new(&arch), TableMode::Modulo(4));
        assert!(m.place_issue(-1, fu, 1, op(0)));
        assert!(!m.place_issue(3, fu, 1, op(1))); // -1 mod 4 == 3
    }

    #[test]
    fn modulo_profile_repeats_past_the_fold() {
        let (arch, _) = setup();
        let mut t = ResourceTable::new(ResourceMap::new(&arch), TableMode::Modulo(3));
        let fu = arch.fu_by_name("ADD0").unwrap();
        assert!(t.place_issue(1, fu, 1, op(0)));
        assert_eq!(
            t.occupancy_profile(Resource::FuIssue(fu), 7),
            vec![0, 1, 0, 0, 1, 0, 0]
        );
    }

    #[test]
    fn stale_savepoint_is_ignored_in_release() {
        let (arch, mut t) = setup();
        let fu = arch.fu_by_name("ADD0").unwrap();
        let outer = t.savepoint();
        assert!(t.place_issue(0, fu, 1, op(0)));
        let inner = t.savepoint();
        t.rollback(outer);
        // `inner` now points past the journal's end: a later-generation
        // position. Rolling back to it must not invent claims.
        let fp = t.fingerprint();
        if !cfg!(debug_assertions) {
            t.rollback(inner);
            assert_eq!(t.fingerprint(), fp);
        }
        assert!(inner.len > t.savepoint().len);
    }
}
