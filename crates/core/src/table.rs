//! Transactional per-cycle resource tables.
//!
//! Communication scheduling is trial-heavy: a placement attempt claims
//! issue slots, outputs, buses and ports, and the whole attempt must be
//! rolled back exactly if any later step fails (paper §4.3: "if
//! communication scheduling fails, any routes assigned to communications
//! to/from the current operation are unassigned"). The table therefore
//! journals every claim and exposes savepoint/rollback.
//!
//! The table understands the paper's sharing rules (§4.2):
//!
//! - a functional-unit output produces one result per cycle but may drive
//!   up to `fanout` buses with it;
//! - a bus carries one value per cycle and may broadcast it to several
//!   write ports ("two write stubs for the same result only conflict if
//!   they write to the same register file using different buses or
//!   register file ports");
//! - a write port accepts one (value, bus) pair per cycle;
//! - read-side resources are claimed per consumer operand; the
//!   communications of one operand (e.g. a loop variable's init and
//!   carried communications) share one read stub ("two read stubs for the
//!   same operand conflict if they are not identical").
//!
//! In modulo mode (software pipelining), cycles fold into `cycle mod II`.

use std::collections::HashMap;

use csched_machine::{FuId, ReadPortId, ReadStub, Resource, ResourceMap, WriteStub};

use crate::universe::SOpId;

/// How cycles map onto table rows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TableMode {
    /// Straight-line code: each cycle is its own row.
    Linear,
    /// Modulo scheduling with the given initiation interval.
    Modulo(u32),
}

/// What occupies a resource on a cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum Payload {
    /// Issue slot held by an operation.
    Op(SOpId),
    /// Write-side claim: the producing operation (result identity) and the
    /// bus used.
    Write { value: SOpId, bus: u32 },
    /// Write-side bus claim: the value on the bus.
    WriteBus { value: SOpId },
    /// Read-side bus claim: the read port driving the bus.
    ReadBus { port: ReadPortId },
    /// Read-side claim by a consumer operand.
    Read { op: SOpId, slot: u8 },
}

/// A claim journal entry for rollback.
#[derive(Clone, Copy, Debug)]
struct JournalEntry {
    key: (i64, u32),
    payload: Payload,
    /// `true` for claims added, `false` for claims released (rollback
    /// re-adds those).
    added: bool,
}

/// The per-block resource table.
#[derive(Clone, Debug)]
pub struct ResourceTable {
    mode: TableMode,
    map: ResourceMap,
    slots: HashMap<(i64, u32), Vec<(Payload, u32)>>,
    journal: Vec<JournalEntry>,
}

/// A savepoint for rollback (a journal length).
pub type Savepoint = usize;

impl ResourceTable {
    /// Creates an empty table for an architecture's resources.
    pub fn new(map: ResourceMap, mode: TableMode) -> Self {
        ResourceTable {
            mode,
            map,
            slots: HashMap::new(),
            journal: Vec::new(),
        }
    }

    /// The table's mode.
    pub fn mode(&self) -> TableMode {
        self.mode
    }

    fn key(&self, cycle: i64, resource: Resource) -> (i64, u32) {
        let c = match self.mode {
            TableMode::Linear => cycle,
            TableMode::Modulo(ii) => cycle.rem_euclid(ii as i64),
        };
        (c, self.map.index(resource) as u32)
    }

    /// Number of distinct claims on `resource` at `cycle` (0 = free).
    pub fn occupancy(&self, cycle: i64, resource: Resource) -> usize {
        self.slots
            .get(&self.key(cycle, resource))
            .map_or(0, Vec::len)
    }

    /// Per-row occupancy of `resource` over the first `rows` rows
    /// (`0..rows`): the table's occupancy histogram for one resource,
    /// used by the metrics layer. For a modulo table, `rows` is normally
    /// the II; rows past the fold repeat.
    pub fn occupancy_profile(&self, resource: Resource, rows: i64) -> Vec<usize> {
        (0..rows.max(0))
            .map(|c| self.occupancy(c, resource))
            .collect()
    }

    /// An order-independent digest of the table's current claims (used by
    /// tests to prove that rollback restores state exactly, and handy when
    /// debugging the scheduler).
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut entries: Vec<String> = Vec::new();
        for (key, list) in &self.slots {
            let mut items: Vec<String> = list.iter().map(|e| format!("{e:?}")).collect();
            items.sort();
            entries.push(format!("{key:?}:{items:?}"));
        }
        entries.sort();
        let mut h = std::collections::hash_map::DefaultHasher::new();
        entries.hash(&mut h);
        h.finish()
    }

    /// Marks the current journal position.
    pub fn savepoint(&self) -> Savepoint {
        self.journal.len()
    }

    /// Reverts every claim change (addition or release) made since `sp`.
    pub fn rollback(&mut self, sp: Savepoint) {
        while self.journal.len() > sp {
            let Some(entry) = self.journal.pop() else {
                break; // unreachable: the loop condition guarantees an entry
            };
            if entry.added {
                // A journalled addition always has a matching live claim;
                // tolerate its absence (skip) rather than panic, so a
                // corrupted table degrades into a failed schedule that
                // validation rejects instead of aborting the process.
                let Some(list) = self.slots.get_mut(&entry.key) else {
                    debug_assert!(false, "journalled claim missing on rollback");
                    continue;
                };
                let Some(pos) = list.iter().position(|(p, _)| *p == entry.payload) else {
                    debug_assert!(false, "journalled claim missing on rollback");
                    continue;
                };
                if list[pos].1 > 1 {
                    list[pos].1 -= 1;
                } else {
                    list.swap_remove(pos);
                }
                if list.is_empty() {
                    self.slots.remove(&entry.key);
                }
            } else {
                // Re-add a released claim.
                let list = self.slots.entry(entry.key).or_default();
                match list.iter_mut().find(|(p, _)| *p == entry.payload) {
                    Some((_, count)) => *count += 1,
                    None => list.push((entry.payload, 1)),
                }
            }
        }
    }

    fn release(&mut self, key: (i64, u32), payload: Payload) {
        // Releasing a claim that is not held indicates an engine bug; skip
        // (and trip debug builds) rather than panic — the resulting table
        // can only over-constrain later placements, never corrupt a
        // schedule that validation accepts.
        let Some(list) = self.slots.get_mut(&key) else {
            debug_assert!(false, "released claim missing");
            return;
        };
        let Some(pos) = list.iter().position(|(p, _)| *p == payload) else {
            debug_assert!(false, "released claim missing");
            return;
        };
        if list[pos].1 > 1 {
            list[pos].1 -= 1;
        } else {
            list.swap_remove(pos);
        }
        if list.is_empty() {
            self.slots.remove(&key);
        }
        self.journal.push(JournalEntry {
            key,
            payload,
            added: false,
        });
    }

    /// Releases one placement of a write stub made with
    /// [`ResourceTable::place_write_stub`] (used when the permutation
    /// search revises a tentative open-communication stub, paper §4.3
    /// step 2/3). The release itself is journalled, so a later rollback
    /// restores the claim. Releasing a stub that was never placed is an
    /// engine bug; it is skipped (debug builds trip an assertion).
    pub fn unplace_write_stub(&mut self, cycle: i64, stub: WriteStub, value: SOpId) {
        let bus_raw = stub.bus.index() as u32;
        let okey = self.key(cycle, Resource::FuOutput(stub.fu));
        self.release(
            okey,
            Payload::Write {
                value,
                bus: bus_raw,
            },
        );
        let bkey = self.key(cycle, Resource::Bus(stub.bus));
        self.release(bkey, Payload::WriteBus { value });
        let pkey = self.key(cycle, Resource::WritePort(stub.port));
        self.release(
            pkey,
            Payload::Write {
                value,
                bus: bus_raw,
            },
        );
    }

    /// Releases one placement of a read stub made with
    /// [`ResourceTable::place_read_stub`]. Releasing a stub that was never
    /// placed is an engine bug; it is skipped (debug builds trip an
    /// assertion).
    pub fn unplace_read_stub(&mut self, cycle: i64, stub: ReadStub, op: SOpId, slot: usize) {
        let payload = Payload::Read {
            op,
            slot: slot as u8,
        };
        let rkey = self.key(cycle, Resource::ReadPort(stub.port));
        self.release(rkey, payload);
        let bkey = self.key(cycle, Resource::Bus(stub.bus));
        self.release(bkey, Payload::ReadBus { port: stub.port });
        let ikey = self.key(cycle, Resource::FuInput(stub.input()));
        self.release(ikey, payload);
    }

    fn try_claim(
        &mut self,
        key: (i64, u32),
        payload: Payload,
        admit: impl Fn(&[(Payload, u32)], Payload) -> Admission,
    ) -> bool {
        let list = self.slots.entry(key).or_default();
        match admit(list, payload) {
            Admission::Conflict => {
                if list.is_empty() {
                    self.slots.remove(&key);
                }
                false
            }
            Admission::Identical(pos) => {
                list[pos].1 += 1;
                self.journal.push(JournalEntry {
                    key,
                    payload,
                    added: true,
                });
                true
            }
            Admission::Additional => {
                list.push((payload, 1));
                self.journal.push(JournalEntry {
                    key,
                    payload,
                    added: true,
                });
                true
            }
        }
    }

    /// Claims the issue slot of `fu` for `op` on cycles
    /// `cycle .. cycle + interval` (partially pipelined capabilities hold
    /// the unit for several cycles). Rolls itself back on failure.
    pub fn place_issue(&mut self, cycle: i64, fu: FuId, interval: u32, op: SOpId) -> bool {
        if let TableMode::Modulo(ii) = self.mode {
            if interval > ii {
                return false; // cannot re-issue fast enough
            }
        }
        let sp = self.savepoint();
        for i in 0..interval as i64 {
            let key = self.key(cycle + i, Resource::FuIssue(fu));
            let ok = self.try_claim(key, Payload::Op(op), |list, p| match list.first() {
                None => Admission::Additional,
                Some((existing, _)) if *existing == p => Admission::Identical(0),
                Some(_) => Admission::Conflict,
            });
            if !ok {
                self.rollback(sp);
                return false;
            }
        }
        true
    }

    /// Claims the resources of a write stub on `cycle` for the result of
    /// `value` (identified by its producing operation). `fanout` is the
    /// producing unit's maximum simultaneous bus drive count.
    pub fn place_write_stub(
        &mut self,
        cycle: i64,
        stub: WriteStub,
        value: SOpId,
        fanout: usize,
    ) -> bool {
        let sp = self.savepoint();
        let bus_raw = stub.bus.index() as u32;

        // Output: one value; up to `fanout` distinct buses.
        let okey = self.key(cycle, Resource::FuOutput(stub.fu));
        let ok = self.try_claim(
            okey,
            Payload::Write {
                value,
                bus: bus_raw,
            },
            |list, p| {
                let Payload::Write { value: nv, bus: nb } = p else {
                    unreachable!()
                };
                let mut distinct = std::collections::HashSet::new();
                for (e, _) in list {
                    match e {
                        Payload::Write { value: ev, bus: eb } => {
                            if *ev != nv {
                                return Admission::Conflict;
                            }
                            distinct.insert(*eb);
                        }
                        _ => return Admission::Conflict,
                    }
                }
                if let Some(pos) = list.iter().position(|(e, _)| *e == p) {
                    return Admission::Identical(pos);
                }
                distinct.insert(nb);
                if distinct.len() <= fanout {
                    Admission::Additional
                } else {
                    Admission::Conflict
                }
            },
        );
        if !ok {
            self.rollback(sp);
            return false;
        }

        // Bus: one value, broadcast allowed.
        let bkey = self.key(cycle, Resource::Bus(stub.bus));
        let ok = self.try_claim(bkey, Payload::WriteBus { value }, |list, p| {
            // A bus carries one value per cycle, so at most one distinct
            // payload can be present.
            match list.first() {
                Some((e, _)) if *e == p => Admission::Identical(0),
                Some(_) => Admission::Conflict,
                None => Admission::Additional,
            }
        });
        if !ok {
            self.rollback(sp);
            return false;
        }

        // Write port: one (value, bus) pair.
        let pkey = self.key(cycle, Resource::WritePort(stub.port));
        let ok = self.try_claim(
            pkey,
            Payload::Write {
                value,
                bus: bus_raw,
            },
            |list, p| match list.first() {
                Some((e, _)) if *e == p => Admission::Identical(0),
                Some(_) => Admission::Conflict,
                None => Admission::Additional,
            },
        );
        if !ok {
            self.rollback(sp);
            return false;
        }
        true
    }

    /// Claims the resources of a read stub on `cycle` for consumer operand
    /// `(op, slot)`.
    pub fn place_read_stub(&mut self, cycle: i64, stub: ReadStub, op: SOpId, slot: usize) -> bool {
        let sp = self.savepoint();
        let payload = Payload::Read {
            op,
            slot: slot as u8,
        };
        let exclusive = |list: &[(Payload, u32)], p: Payload| match list.first() {
            Some((e, _)) if *e == p => Admission::Identical(0),
            Some(_) => Admission::Conflict,
            None => Admission::Additional,
        };

        let rkey = self.key(cycle, Resource::ReadPort(stub.port));
        if !self.try_claim(rkey, payload, exclusive) {
            self.rollback(sp);
            return false;
        }
        // Bus: shareable between identical source ports (broadcast).
        let bkey = self.key(cycle, Resource::Bus(stub.bus));
        if !self.try_claim(
            bkey,
            Payload::ReadBus { port: stub.port },
            |list, p| match list.first() {
                Some((e, _)) if *e == p => Admission::Identical(0),
                Some(_) => Admission::Conflict,
                None => Admission::Additional,
            },
        ) {
            self.rollback(sp);
            return false;
        }
        let ikey = self.key(cycle, Resource::FuInput(stub.input()));
        if !self.try_claim(ikey, payload, exclusive) {
            self.rollback(sp);
            return false;
        }
        true
    }

    /// Whether a write stub could be placed (non-mutating probe).
    pub fn can_place_write_stub(
        &mut self,
        cycle: i64,
        stub: WriteStub,
        value: SOpId,
        fanout: usize,
    ) -> bool {
        let sp = self.savepoint();
        let ok = self.place_write_stub(cycle, stub, value, fanout);
        self.rollback(sp);
        ok
    }

    /// Whether a read stub could be placed (non-mutating probe).
    pub fn can_place_read_stub(
        &mut self,
        cycle: i64,
        stub: ReadStub,
        op: SOpId,
        slot: usize,
    ) -> bool {
        let sp = self.savepoint();
        let ok = self.place_read_stub(cycle, stub, op, slot);
        self.rollback(sp);
        ok
    }
}

enum Admission {
    /// Same claim already present: bump its refcount.
    Identical(usize),
    /// Compatible new claim.
    Additional,
    /// Incompatible.
    Conflict,
}

#[cfg(test)]
mod tests {
    use super::*;
    use csched_machine::{toy, Architecture};

    fn setup() -> (Architecture, ResourceTable) {
        let arch = toy::motivating_example();
        let table = ResourceTable::new(ResourceMap::new(&arch), TableMode::Linear);
        (arch, table)
    }

    fn op(i: usize) -> SOpId {
        SOpId::from_raw(i)
    }

    #[test]
    fn issue_slot_is_exclusive() {
        let (arch, mut t) = setup();
        let fu = arch.fu_by_name("ADD0").unwrap();
        assert!(t.place_issue(0, fu, 1, op(0)));
        assert!(!t.place_issue(0, fu, 1, op(1)));
        assert!(t.place_issue(1, fu, 1, op(1)));
    }

    #[test]
    fn issue_interval_occupies_multiple_cycles() {
        let (arch, mut t) = setup();
        let fu = arch.fu_by_name("ADD0").unwrap();
        assert!(t.place_issue(0, fu, 3, op(0)));
        assert!(!t.place_issue(2, fu, 1, op(1)));
        assert!(t.place_issue(3, fu, 1, op(1)));
    }

    #[test]
    fn bus_conflict_between_different_values() {
        let (arch, mut t) = setup();
        // ADD0 and LS both drive BUS0; two different results on the same
        // cycle conflict — the Figure 6 incorrect-schedule scenario.
        let add0 = arch.fu_by_name("ADD0").unwrap();
        let ls = arch.fu_by_name("LS").unwrap();
        let s_add = arch.write_stubs(add0)[0];
        let s_ls = arch
            .write_stubs(ls)
            .iter()
            .copied()
            .find(|s| s.bus == s_add.bus)
            .unwrap();
        assert!(t.place_write_stub(0, s_add, op(0), 1));
        assert!(!t.place_write_stub(0, s_ls, op(1), 2));
        // A different cycle is fine.
        assert!(t.place_write_stub(1, s_ls, op(1), 2));
    }

    #[test]
    fn bus_broadcast_of_same_value() {
        let (arch, mut t) = setup();
        // LS's BUS1 reaches RF1 and RFC: same value to both ports is legal.
        let ls = arch.fu_by_name("LS").unwrap();
        let stubs: Vec<_> = arch
            .write_stubs(ls)
            .iter()
            .copied()
            .filter(|s| arch.bus(s.bus).name() == "BUS1")
            .collect();
        assert_eq!(stubs.len(), 2);
        assert!(t.place_write_stub(0, stubs[0], op(0), 2));
        assert!(t.place_write_stub(0, stubs[1], op(0), 2));
    }

    #[test]
    fn output_fanout_limits_distinct_buses() {
        let (arch, mut t) = setup();
        let ls = arch.fu_by_name("LS").unwrap();
        let bus0_stub = arch
            .write_stubs(ls)
            .iter()
            .copied()
            .find(|s| arch.bus(s.bus).name() == "BUS0")
            .unwrap();
        let bus1_stub = arch
            .write_stubs(ls)
            .iter()
            .copied()
            .find(|s| arch.bus(s.bus).name() == "BUS1")
            .unwrap();
        // Fanout 1: one bus only.
        assert!(t.place_write_stub(0, bus0_stub, op(0), 1));
        assert!(!t.place_write_stub(0, bus1_stub, op(0), 1));
        // Fanout 2 (LS's real capability): both buses, same value.
        assert!(t.place_write_stub(1, bus0_stub, op(0), 2));
        assert!(t.place_write_stub(1, bus1_stub, op(0), 2));
    }

    #[test]
    fn output_single_value_per_cycle() {
        let (arch, mut t) = setup();
        let ls = arch.fu_by_name("LS").unwrap();
        let stubs = arch.write_stubs(ls);
        assert!(t.place_write_stub(0, stubs[0], op(0), 2));
        let other_bus = stubs
            .iter()
            .copied()
            .find(|s| s.bus != stubs[0].bus)
            .unwrap();
        assert!(!t.place_write_stub(0, other_bus, op(1), 2));
    }

    #[test]
    fn write_port_same_value_different_bus_conflicts() {
        let (arch, mut t) = setup();
        // RFC's shared port is reachable from BUS0 and BUS1. The same value
        // through different buses conflicts (paper §4.2).
        let ls = arch.fu_by_name("LS").unwrap();
        let rfc = arch.rf_by_name("RFC").unwrap();
        let to_rfc: Vec<_> = arch
            .write_stubs(ls)
            .iter()
            .copied()
            .filter(|s| s.rf == rfc)
            .collect();
        assert_eq!(to_rfc.len(), 2);
        assert!(t.place_write_stub(0, to_rfc[0], op(0), 2));
        assert!(!t.place_write_stub(0, to_rfc[1], op(0), 2));
    }

    #[test]
    fn read_stub_dedupe_and_conflict() {
        let (arch, mut t) = setup();
        let add0 = arch.fu_by_name("ADD0").unwrap();
        let stub = arch.read_stubs(add0, 0)[0];
        // Same operand twice (init + carried communications): dedupes.
        assert!(t.place_read_stub(0, stub, op(5), 0));
        assert!(t.place_read_stub(0, stub, op(5), 0));
        // A different operand on the same port conflicts.
        assert!(!t.place_read_stub(0, stub, op(6), 0));
    }

    #[test]
    fn rollback_restores_everything() {
        let (arch, mut t) = setup();
        let add0 = arch.fu_by_name("ADD0").unwrap();
        let stub = arch.write_stubs(add0)[0];
        assert!(t.place_write_stub(0, stub, op(0), 1));
        let sp = t.savepoint();
        assert!(t.place_issue(0, add0, 1, op(1)));
        let rstub = arch.read_stubs(add0, 0)[0];
        assert!(t.place_read_stub(0, rstub, op(1), 0));
        t.rollback(sp);
        // Issue and read slots are free again; the earlier write remains.
        assert!(t.place_issue(0, add0, 1, op(9)));
        assert!(t.place_read_stub(0, rstub, op(9), 0));
        let other = arch.fu_by_name("LS").unwrap();
        let conflicting = arch
            .write_stubs(other)
            .iter()
            .copied()
            .find(|s| s.bus == stub.bus)
            .unwrap();
        assert!(!t.place_write_stub(0, conflicting, op(9), 2));
    }

    #[test]
    fn refcounted_rollback_keeps_shared_claims() {
        let (arch, mut t) = setup();
        let add0 = arch.fu_by_name("ADD0").unwrap();
        let rstub = arch.read_stubs(add0, 0)[0];
        assert!(t.place_read_stub(0, rstub, op(5), 0));
        let sp = t.savepoint();
        assert!(t.place_read_stub(0, rstub, op(5), 0)); // second comm, same operand
        t.rollback(sp);
        // Operand claim is still held by the first communication.
        assert!(!t.place_read_stub(0, rstub, op(6), 0));
    }

    #[test]
    fn modulo_mode_folds_cycles() {
        let (arch, _) = setup();
        let mut t = ResourceTable::new(ResourceMap::new(&arch), TableMode::Modulo(4));
        let fu = arch.fu_by_name("ADD0").unwrap();
        assert!(t.place_issue(1, fu, 1, op(0)));
        // Cycle 5 maps to the same modulo slot.
        assert!(!t.place_issue(5, fu, 1, op(1)));
        assert!(t.place_issue(6, fu, 1, op(1)));
    }

    #[test]
    fn modulo_rejects_interval_beyond_ii() {
        let (arch, _) = setup();
        let mut t = ResourceTable::new(ResourceMap::new(&arch), TableMode::Modulo(3));
        let fu = arch.fu_by_name("ADD0").unwrap();
        assert!(!t.place_issue(0, fu, 4, op(0)));
        assert!(t.place_issue(0, fu, 3, op(0)));
    }

    #[test]
    fn probes_do_not_mutate() {
        let (arch, mut t) = setup();
        let add0 = arch.fu_by_name("ADD0").unwrap();
        let stub = arch.write_stubs(add0)[0];
        assert!(t.can_place_write_stub(0, stub, op(0), 1));
        assert!(t.can_place_write_stub(0, stub, op(1), 1)); // still free
        let rstub = arch.read_stubs(add0, 1)[0];
        assert!(t.can_place_read_stub(0, rstub, op(0), 1));
        assert!(t.can_place_read_stub(0, rstub, op(1), 1));
    }
}
