//! The scheduler's error taxonomy.
//!
//! Every failure of [`schedule_kernel`](crate::schedule_kernel) is a typed
//! [`SchedError`] — the pipeline never panics on well-formed inputs. Errors
//! carry resolved names (operation opcodes, block names, unit names), not
//! just opaque ids, so a diagnostic can be printed without the kernel and
//! architecture at hand.
//!
//! The variants split into three groups:
//!
//! - **Machine problems** ([`SchedError::NotCopyConnected`],
//!   [`SchedError::NoCapableUnit`]): the architecture cannot run this
//!   kernel at all. Degraded machines built with
//!   [`Architecture::with_faults`](csched_machine::Architecture::with_faults)
//!   commonly fail this way once a fault breaks the Appendix A guarantee.
//! - **Budget exhaustion** ([`SchedError::BlockFailed`],
//!   [`SchedError::IiExhausted`]): the search ran out of delay slack or
//!   initiation intervals. These are *retryable* — the
//!   [`RetryPolicy`](crate::RetryPolicy) ladder relaxes the budgets and
//!   tries again.
//! - **Internal invariant breaks** ([`SchedError::Internal`]): a bug in
//!   the scheduler itself, reported as an error instead of a panic so a
//!   long campaign (fault injection, design-space sweeps) survives it.
//! - **Deadline and cancellation** ([`SchedError::DeadlineExceeded`],
//!   [`SchedError::Cancelled`]): the caller's
//!   [`StepBudget`](crate::StepBudget) ran dry or its
//!   [`CancelToken`](crate::CancelToken) fired. *Not* retryable — the
//!   budget is shared across the whole retry ladder, so the ladder stops
//!   rather than relax its way past a hard bound.

use std::fmt;

use csched_ir::{BlockId, OpId};
use csched_machine::Opcode;

/// Errors from [`schedule_kernel`](crate::schedule_kernel).
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SchedError {
    /// The architecture violates the Appendix A copy-connectivity
    /// constraint, so communication scheduling cannot guarantee
    /// completion.
    NotCopyConnected {
        /// Human-readable descriptions of the unreachable unit pairs,
        /// worst first (at most a handful are kept).
        violations: Vec<String>,
    },
    /// No functional unit can execute `opcode`.
    NoCapableUnit {
        /// The unsupported opcode.
        opcode: Opcode,
    },
    /// A straight-line block operation could not be placed within the
    /// configured delay budget.
    BlockFailed {
        /// The block that failed.
        block: BlockId,
        /// The block's name in the kernel.
        block_name: String,
        /// The kernel operation that could not be placed.
        op: OpId,
        /// That operation's opcode.
        opcode: Opcode,
    },
    /// No initiation interval up to the configured maximum produced a
    /// valid loop schedule.
    IiExhausted {
        /// The minimum II the search started from (max of RecMII and
        /// ResMII).
        mii: u32,
        /// The maximum II tried.
        max_ii: u32,
    },
    /// The scheduling call's [`StepBudget`](crate::StepBudget) ran out of
    /// placement attempts before a schedule was found.
    ///
    /// Deterministic (the budget is denominated in placement attempts,
    /// not wall-clock time) and *non-retryable*: unlike
    /// [`SchedError::IiExhausted`] the budget is shared by every retry
    /// rung, so relaxing a per-attempt knob cannot buy more work.
    DeadlineExceeded {
        /// Placement attempts charged before the budget tripped.
        spent: u64,
        /// The configured limit.
        limit: u64,
        /// The pipeline phase that hit the limit (`"placement"`,
        /// `"regalloc"`).
        phase: &'static str,
    },
    /// The scheduling call's [`CancelToken`](crate::CancelToken) was
    /// cancelled; work stopped cooperatively within one placement
    /// attempt.
    Cancelled {
        /// The pipeline phase that observed the cancellation.
        phase: &'static str,
    },
    /// A scheduler invariant was violated. This is a bug in the scheduler,
    /// not in the kernel or machine description; it is reported as an
    /// error rather than a panic so long campaigns survive it.
    Internal {
        /// The pipeline stage that detected the broken invariant.
        stage: &'static str,
        /// What was violated.
        detail: String,
    },
}

impl SchedError {
    /// Builds an [`SchedError::Internal`] (used throughout the engine's
    /// invariant checks).
    pub(crate) fn internal(stage: &'static str, detail: impl Into<String>) -> Self {
        SchedError::Internal {
            stage,
            detail: detail.into(),
        }
    }

    /// Whether retrying with relaxed budgets could plausibly succeed.
    ///
    /// Budget exhaustion ([`SchedError::BlockFailed`],
    /// [`SchedError::IiExhausted`]) is retryable; a machine that cannot
    /// run the kernel at all, or a scheduler bug, is not.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            SchedError::BlockFailed { .. } | SchedError::IiExhausted { .. }
        )
    }

    /// Whether this error is a budget stop — the caller's
    /// [`StepBudget`](crate::StepBudget) ran dry
    /// ([`SchedError::DeadlineExceeded`]) or its
    /// [`CancelToken`](crate::CancelToken) fired
    /// ([`SchedError::Cancelled`]).
    ///
    /// Budget stops are the *caller's* bound, not a verdict on the
    /// kernel/machine pair: a service maps them to a typed deadline
    /// response (or a degraded best-so-far answer), a campaign records
    /// the cell as `TimedOut`, and neither treats them as a scheduling
    /// failure.
    pub fn is_budget_stop(&self) -> bool {
        matches!(
            self,
            SchedError::DeadlineExceeded { .. } | SchedError::Cancelled { .. }
        )
    }
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::NotCopyConnected { violations } => {
                write!(f, "architecture is not copy-connected (Appendix A)")?;
                if !violations.is_empty() {
                    write!(f, ": {}", violations.join("; "))?;
                }
                Ok(())
            }
            SchedError::NoCapableUnit { opcode } => {
                write!(f, "no functional unit can execute {opcode}")
            }
            SchedError::BlockFailed {
                block,
                block_name,
                op,
                opcode,
            } => {
                write!(
                    f,
                    "could not place {op} ({opcode}) in block \"{block_name}\" ({block})"
                )
            }
            SchedError::IiExhausted { mii, max_ii } => {
                write!(f, "no valid loop schedule in II range {mii}..={max_ii}")
            }
            SchedError::DeadlineExceeded {
                spent,
                limit,
                phase,
            } => {
                write!(
                    f,
                    "deadline exceeded in {phase}: {spent} of {limit} placement attempts spent"
                )
            }
            SchedError::Cancelled { phase } => {
                write!(f, "cancelled in {phase}")
            }
            SchedError::Internal { stage, detail } => {
                write!(
                    f,
                    "internal scheduler invariant violated in {stage}: {detail} \
                     (this is a scheduler bug)"
                )
            }
        }
    }
}

impl std::error::Error for SchedError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_resolves_names() {
        let e = SchedError::BlockFailed {
            block: BlockId::from_raw(1),
            block_name: "body".into(),
            op: OpId::from_raw(3),
            opcode: Opcode::IMul,
        };
        let s = e.to_string();
        assert!(s.contains("body"), "{s}");
        assert!(s.contains("imul"), "{s}");
        assert!(e.is_retryable());
    }

    #[test]
    fn display_shows_ii_range_and_violations() {
        let e = SchedError::IiExhausted { mii: 3, max_ii: 64 };
        assert_eq!(e.to_string(), "no valid loop schedule in II range 3..=64");
        assert!(e.is_retryable());

        let e = SchedError::NotCopyConnected {
            violations: vec!["ALU0 cannot reach MUL0 input 1".into()],
        };
        assert!(e.to_string().contains("ALU0 cannot reach MUL0"), "{e}");
        assert!(!e.is_retryable());
    }

    #[test]
    fn deadline_and_cancellation_are_not_retryable() {
        let e = SchedError::DeadlineExceeded {
            spent: 512,
            limit: 512,
            phase: "placement",
        };
        assert!(!e.is_retryable());
        assert!(e.is_budget_stop());
        assert!(SchedError::Cancelled { phase: "placement" }.is_budget_stop());
        assert!(!SchedError::IiExhausted { mii: 1, max_ii: 2 }.is_budget_stop());
        assert_eq!(
            e.to_string(),
            "deadline exceeded in placement: 512 of 512 placement attempts spent"
        );

        let e = SchedError::Cancelled { phase: "regalloc" };
        assert!(!e.is_retryable());
        assert_eq!(e.to_string(), "cancelled in regalloc");
    }

    #[test]
    fn internal_is_not_retryable() {
        let e = SchedError::internal("close_one", "write stub missing");
        assert!(!e.is_retryable());
        assert!(e.to_string().contains("scheduler bug"), "{e}");
    }
}
