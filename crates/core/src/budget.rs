//! Deterministic work budgets and cooperative cancellation.
//!
//! The scheduler explores an open-ended placement/routing space, and a
//! pathological kernel × architecture pair can keep a campaign binary
//! busy long past any useful deadline. [`StepBudget`] bounds that work
//! *deterministically*: it is denominated in placement attempts (the
//! engine's innermost unit of work), not wall-clock time, so a budgeted
//! run either succeeds identically on every machine or trips at exactly
//! the same attempt. Tripping surfaces as
//! [`SchedError::DeadlineExceeded`] — a typed, non-retryable error that
//! carries how much work was spent, what the limit was, and which
//! pipeline phase hit it.
//!
//! [`CancelToken`] is the wall-clock escape hatch: a cheap, thread-safe
//! flag that a supervisor (signal handler, watchdog thread, UI) can set
//! at any moment. The scheduler polls it cooperatively at every budget
//! step, so cancellation lands within one placement attempt.
//!
//! A budget is shared by everything downstream of one scheduling call:
//! the retry ladder hands the *same* budget to every rung, so the sum of
//! work over all relaxation attempts stays bounded — see
//! [`schedule_kernel_with_retry`].
//!
//! ```
//! use csched_core::{schedule_kernel_budgeted, SchedError, SchedulerConfig, StepBudget};
//! use csched_ir::KernelBuilder;
//! use csched_machine::{toy, Opcode};
//!
//! let mut kb = KernelBuilder::new("tiny");
//! let b = kb.straight_block("b");
//! let x = kb.push(b, Opcode::IAdd, [1i64.into(), 2i64.into()]);
//! kb.push(b, Opcode::IAdd, [x.into(), 3i64.into()]);
//! let kernel = kb.build()?;
//! let arch = toy::motivating_example();
//!
//! // A generous budget schedules normally ...
//! let budget = StepBudget::new(10_000);
//! assert!(schedule_kernel_budgeted(&arch, &kernel, SchedulerConfig::default(), &budget).is_ok());
//!
//! // ... a one-attempt budget trips with a typed error.
//! let budget = StepBudget::new(1);
//! match schedule_kernel_budgeted(&arch, &kernel, SchedulerConfig::default(), &budget) {
//!     Err(SchedError::DeadlineExceeded { spent, limit, .. }) => {
//!         assert_eq!((spent, limit), (1, 1));
//!     }
//!     other => panic!("expected DeadlineExceeded, got {other:?}"),
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! [`schedule_kernel_with_retry`]: crate::schedule_kernel_with_retry

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::error::SchedError;

/// A cooperative cancellation flag, cheaply cloneable across threads.
///
/// Cancelling is sticky: once [`cancel`](CancelToken::cancel) has been
/// called every clone observes it forever. The scheduler polls the token
/// at each [`StepBudget::step`], so a cancelled schedule aborts within
/// one placement attempt with [`SchedError::Cancelled`].
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates a token in the not-cancelled state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Why a [`StepBudget::step`] refused more work.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BudgetStop {
    /// The placement-attempt limit was reached.
    Deadline,
    /// The attached [`CancelToken`] was cancelled.
    Cancelled,
}

/// A deterministic work budget denominated in placement attempts.
///
/// The budget uses interior mutability so one `&StepBudget` can be
/// shared by the driver, the engine, the retry ladder, and the register
/// post-pass of a single scheduling call; it is intentionally *not*
/// `Sync` — cross-thread control goes through [`CancelToken`].
#[derive(Debug)]
pub struct StepBudget {
    limit: u64,
    spent: Cell<u64>,
    cancel: Option<CancelToken>,
}

impl StepBudget {
    /// A budget of `limit` placement attempts.
    pub fn new(limit: u64) -> Self {
        StepBudget {
            limit,
            spent: Cell::new(0),
            cancel: None,
        }
    }

    /// A budget that never trips on work (cancellation still applies if a
    /// token is attached with [`with_cancel`](Self::with_cancel)).
    pub fn unlimited() -> Self {
        Self::new(u64::MAX)
    }

    /// Attaches a cancellation token, polled at every [`step`](Self::step).
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// The configured limit.
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Placement attempts charged so far. Never exceeds the limit: the
    /// charge that would cross it is refused instead.
    pub fn spent(&self) -> u64 {
        self.spent.get()
    }

    /// Attempts remaining before the budget trips.
    pub fn remaining(&self) -> u64 {
        self.limit - self.spent.get()
    }

    /// Whether the budget can grant no further work.
    pub fn is_exhausted(&self) -> bool {
        self.spent.get() >= self.limit
    }

    /// Charges one placement attempt.
    ///
    /// Checks *before* spending: when the limit is already reached the
    /// charge is refused and `spent` stays at `limit`, so a budgeted
    /// scheduling call never overruns its budget.
    pub fn step(&self) -> Result<(), BudgetStop> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(BudgetStop::Cancelled);
            }
        }
        let spent = self.spent.get();
        if spent >= self.limit {
            return Err(BudgetStop::Deadline);
        }
        self.spent.set(spent + 1);
        Ok(())
    }

    /// The typed [`SchedError`] for a refusal from [`step`](Self::step),
    /// attributed to `phase` (`"placement"`, `"regalloc"`, ...).
    pub fn stop_error(&self, stop: BudgetStop, phase: &'static str) -> SchedError {
        match stop {
            BudgetStop::Deadline => SchedError::DeadlineExceeded {
                spent: self.spent.get(),
                limit: self.limit,
                phase,
            },
            BudgetStop::Cancelled => SchedError::Cancelled { phase },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_never_overruns() {
        let b = StepBudget::new(3);
        assert_eq!(b.remaining(), 3);
        assert!(b.step().is_ok());
        assert!(b.step().is_ok());
        assert!(b.step().is_ok());
        assert_eq!(b.step(), Err(BudgetStop::Deadline));
        // Refused charges do not advance `spent`.
        assert_eq!(b.step(), Err(BudgetStop::Deadline));
        assert_eq!(b.spent(), 3);
        assert!(b.is_exhausted());
        match b.stop_error(BudgetStop::Deadline, "placement") {
            SchedError::DeadlineExceeded {
                spent,
                limit,
                phase,
            } => {
                assert_eq!((spent, limit, phase), (3, 3, "placement"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn zero_budget_refuses_immediately() {
        let b = StepBudget::new(0);
        assert!(b.is_exhausted());
        assert_eq!(b.step(), Err(BudgetStop::Deadline));
        assert_eq!(b.spent(), 0);
    }

    #[test]
    fn cancellation_preempts_remaining_work() {
        let token = CancelToken::new();
        let b = StepBudget::new(100).with_cancel(token.clone());
        assert!(b.step().is_ok());
        assert!(!token.is_cancelled());
        token.cancel();
        assert_eq!(b.step(), Err(BudgetStop::Cancelled));
        // Sticky across clones.
        assert!(token.clone().is_cancelled());
        assert!(matches!(
            b.stop_error(BudgetStop::Cancelled, "placement"),
            SchedError::Cancelled { phase: "placement" }
        ));
    }

    #[test]
    fn unlimited_budget_only_trips_on_cancel() {
        let b = StepBudget::unlimited();
        for _ in 0..10_000 {
            assert!(b.step().is_ok());
        }
        assert_eq!(b.spent(), 10_000);
        assert!(!b.is_exhausted());
    }
}
