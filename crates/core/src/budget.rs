//! Deterministic work budgets and cooperative cancellation.
//!
//! The scheduler explores an open-ended placement/routing space, and a
//! pathological kernel × architecture pair can keep a campaign binary
//! busy long past any useful deadline. [`StepBudget`] bounds that work
//! *deterministically*: it is denominated in placement attempts (the
//! engine's innermost unit of work), not wall-clock time, so a budgeted
//! run either succeeds identically on every machine or trips at exactly
//! the same attempt. Tripping surfaces as
//! [`SchedError::DeadlineExceeded`] — a typed, non-retryable error that
//! carries how much work was spent, what the limit was, and which
//! pipeline phase hit it.
//!
//! [`CancelToken`] is the wall-clock escape hatch: a cheap, thread-safe
//! flag that a supervisor (signal handler, watchdog thread, UI) can set
//! at any moment. The scheduler polls it cooperatively at every budget
//! step, so cancellation lands within one placement attempt.
//!
//! A budget is shared by everything downstream of one scheduling call:
//! the retry ladder hands the *same* budget to every rung, so the sum of
//! work over all relaxation attempts stays bounded — see
//! [`schedule_kernel_with_retry`].
//!
//! ```
//! use csched_core::{schedule_kernel_budgeted, SchedError, SchedulerConfig, StepBudget};
//! use csched_ir::KernelBuilder;
//! use csched_machine::{toy, Opcode};
//!
//! let mut kb = KernelBuilder::new("tiny");
//! let b = kb.straight_block("b");
//! let x = kb.push(b, Opcode::IAdd, [1i64.into(), 2i64.into()]);
//! kb.push(b, Opcode::IAdd, [x.into(), 3i64.into()]);
//! let kernel = kb.build()?;
//! let arch = toy::motivating_example();
//!
//! // A generous budget schedules normally ...
//! let budget = StepBudget::new(10_000);
//! assert!(schedule_kernel_budgeted(&arch, &kernel, SchedulerConfig::default(), &budget).is_ok());
//!
//! // ... a one-attempt budget trips with a typed error.
//! let budget = StepBudget::new(1);
//! match schedule_kernel_budgeted(&arch, &kernel, SchedulerConfig::default(), &budget) {
//!     Err(SchedError::DeadlineExceeded { spent, limit, .. }) => {
//!         assert_eq!((spent, limit), (1, 1));
//!     }
//!     other => panic!("expected DeadlineExceeded, got {other:?}"),
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! [`schedule_kernel_with_retry`]: crate::schedule_kernel_with_retry

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use crate::error::SchedError;

/// A cooperative cancellation flag, cheaply cloneable across threads.
///
/// Cancelling is sticky: once [`cancel`](CancelToken::cancel) has been
/// called every clone observes it forever. The scheduler polls the token
/// at each [`StepBudget::step`], so a cancelled schedule aborts within
/// one placement attempt with [`SchedError::Cancelled`].
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates a token in the not-cancelled state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Why a [`StepBudget::step`] refused more work.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BudgetStop {
    /// The placement-attempt limit was reached.
    Deadline,
    /// The attached [`CancelToken`] was cancelled.
    Cancelled,
}

/// A deterministic work budget denominated in placement attempts.
///
/// The budget uses interior mutability so one `&StepBudget` can be
/// shared by the driver, the engine, the retry ladder, and the register
/// post-pass of a single scheduling call; it is intentionally *not*
/// `Sync` — cross-thread control goes through [`CancelToken`].
#[derive(Debug)]
pub struct StepBudget {
    limit: u64,
    spent: Cell<u64>,
    cancel: Option<CancelToken>,
}

impl StepBudget {
    /// A budget of `limit` placement attempts.
    pub fn new(limit: u64) -> Self {
        StepBudget {
            limit,
            spent: Cell::new(0),
            cancel: None,
        }
    }

    /// A budget that never trips on work (cancellation still applies if a
    /// token is attached with [`with_cancel`](Self::with_cancel)).
    pub fn unlimited() -> Self {
        Self::new(u64::MAX)
    }

    /// Attaches a cancellation token, polled at every [`step`](Self::step).
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// The configured limit.
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Placement attempts charged so far. Never exceeds the limit: the
    /// charge that would cross it is refused instead.
    pub fn spent(&self) -> u64 {
        self.spent.get()
    }

    /// Attempts remaining before the budget trips.
    pub fn remaining(&self) -> u64 {
        self.limit - self.spent.get()
    }

    /// Whether the budget can grant no further work.
    pub fn is_exhausted(&self) -> bool {
        self.spent.get() >= self.limit
    }

    /// Charges one placement attempt.
    ///
    /// Checks *before* spending: when the limit is already reached the
    /// charge is refused and `spent` stays at `limit`, so a budgeted
    /// scheduling call never overruns its budget.
    pub fn step(&self) -> Result<(), BudgetStop> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(BudgetStop::Cancelled);
            }
        }
        let spent = self.spent.get();
        if spent >= self.limit {
            return Err(BudgetStop::Deadline);
        }
        self.spent.set(spent + 1);
        Ok(())
    }

    /// The typed [`SchedError`] for a refusal from [`step`](Self::step),
    /// attributed to `phase` (`"placement"`, `"regalloc"`, ...).
    pub fn stop_error(&self, stop: BudgetStop, phase: &'static str) -> SchedError {
        match stop {
            BudgetStop::Deadline => SchedError::DeadlineExceeded {
                spent: self.spent.get(),
                limit: self.limit,
                phase,
            },
            BudgetStop::Cancelled => SchedError::Cancelled { phase },
        }
    }
}

/// Shared state between a [`Watchdog`] and its timer thread.
struct WatchdogState {
    /// Armed deadlines: `(registration id, deadline, token)`.
    entries: Vec<(u64, Instant, CancelToken)>,
    next_id: u64,
    shutdown: bool,
}

/// A wall-clock deadline service over [`CancelToken`]s.
///
/// [`StepBudget`] deadlines are denominated in placement attempts and
/// therefore deterministic — but a long-running service also needs a
/// *wall-clock* bound per request ("answer or degrade within 250 ms"),
/// which no attempt count can promise on a loaded machine. `Watchdog`
/// provides that bound without a sleeper thread per request: one shared
/// timer thread waits on the earliest armed deadline and
/// [`cancel`](CancelToken::cancel)s every token whose deadline has
/// passed. The scheduler already polls its token at each budget step, so
/// an expired request stops cooperatively within one placement attempt.
///
/// Arming returns a [`WatchGuard`]; dropping the guard (the request
/// finished in time) disarms the deadline without cancelling. Dropping
/// the watchdog itself stops the timer thread; already-armed tokens are
/// simply never cancelled by it.
#[derive(Debug)]
pub struct Watchdog {
    shared: Arc<(Mutex<WatchdogState>, Condvar)>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for WatchdogState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WatchdogState")
            .field("entries", &self.entries.len())
            .field("shutdown", &self.shutdown)
            .finish()
    }
}

impl Watchdog {
    /// Starts the shared timer thread.
    pub fn new() -> Self {
        let shared = Arc::new((
            Mutex::new(WatchdogState {
                entries: Vec::new(),
                next_id: 0,
                shutdown: false,
            }),
            Condvar::new(),
        ));
        let thread_shared = Arc::clone(&shared);
        let thread = std::thread::spawn(move || Self::run(&thread_shared));
        Watchdog {
            shared,
            thread: Some(thread),
        }
    }

    fn run(shared: &(Mutex<WatchdogState>, Condvar)) {
        let (lock, cvar) = shared;
        let Ok(mut state) = lock.lock() else {
            return; // a panicking registrar poisoned the lock; stand down
        };
        loop {
            if state.shutdown {
                return;
            }
            let now = Instant::now();
            // Cancel and drop every expired entry.
            state.entries.retain(|(_, deadline, token)| {
                if *deadline <= now {
                    token.cancel();
                    false
                } else {
                    true
                }
            });
            let earliest = state.entries.iter().map(|(_, d, _)| *d).min();
            let wait = match earliest {
                Some(deadline) => {
                    let timeout = deadline.saturating_duration_since(now);
                    match cvar.wait_timeout(state, timeout) {
                        Ok((guard, _)) => guard,
                        Err(_) => return,
                    }
                }
                None => match cvar.wait(state) {
                    Ok(guard) => guard,
                    Err(_) => return,
                },
            };
            state = wait;
        }
    }

    /// Arms `token` to be cancelled `timeout` from now — the common
    /// "answer or degrade within N milliseconds" form of
    /// [`watch`](Self::watch), so callers never compute the absolute
    /// deadline themselves.
    pub fn watch_for(&self, token: CancelToken, timeout: std::time::Duration) -> WatchGuard {
        self.watch(token, Instant::now() + timeout)
    }

    /// Arms `token` to be cancelled at `deadline`. The returned guard
    /// disarms on drop; keep it alive for the duration of the request.
    pub fn watch(&self, token: CancelToken, deadline: Instant) -> WatchGuard {
        let (lock, cvar) = &*self.shared;
        let id = match lock.lock() {
            Ok(mut state) => {
                let id = state.next_id;
                state.next_id += 1;
                state.entries.push((id, deadline, token));
                id
            }
            // A poisoned watchdog can no longer cancel anything; the
            // guard becomes a no-op rather than a panic.
            Err(_) => u64::MAX,
        };
        cvar.notify_one();
        WatchGuard {
            shared: Arc::clone(&self.shared),
            id,
        }
    }
}

impl Default for Watchdog {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        let (lock, cvar) = &*self.shared;
        if let Ok(mut state) = lock.lock() {
            state.shutdown = true;
        }
        cvar.notify_one();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// Disarms a [`Watchdog`] deadline on drop (the request finished before
/// its wall-clock deadline, so the token must not be cancelled).
#[derive(Debug)]
pub struct WatchGuard {
    shared: Arc<(Mutex<WatchdogState>, Condvar)>,
    id: u64,
}

impl Drop for WatchGuard {
    fn drop(&mut self) {
        let (lock, cvar) = &*self.shared;
        if let Ok(mut state) = lock.lock() {
            state.entries.retain(|(id, _, _)| *id != self.id);
        }
        cvar.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_never_overruns() {
        let b = StepBudget::new(3);
        assert_eq!(b.remaining(), 3);
        assert!(b.step().is_ok());
        assert!(b.step().is_ok());
        assert!(b.step().is_ok());
        assert_eq!(b.step(), Err(BudgetStop::Deadline));
        // Refused charges do not advance `spent`.
        assert_eq!(b.step(), Err(BudgetStop::Deadline));
        assert_eq!(b.spent(), 3);
        assert!(b.is_exhausted());
        match b.stop_error(BudgetStop::Deadline, "placement") {
            SchedError::DeadlineExceeded {
                spent,
                limit,
                phase,
            } => {
                assert_eq!((spent, limit, phase), (3, 3, "placement"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn zero_budget_refuses_immediately() {
        let b = StepBudget::new(0);
        assert!(b.is_exhausted());
        assert_eq!(b.step(), Err(BudgetStop::Deadline));
        assert_eq!(b.spent(), 0);
    }

    #[test]
    fn cancellation_preempts_remaining_work() {
        let token = CancelToken::new();
        let b = StepBudget::new(100).with_cancel(token.clone());
        assert!(b.step().is_ok());
        assert!(!token.is_cancelled());
        token.cancel();
        assert_eq!(b.step(), Err(BudgetStop::Cancelled));
        // Sticky across clones.
        assert!(token.clone().is_cancelled());
        assert!(matches!(
            b.stop_error(BudgetStop::Cancelled, "placement"),
            SchedError::Cancelled { phase: "placement" }
        ));
    }

    #[test]
    fn unlimited_budget_only_trips_on_cancel() {
        let b = StepBudget::unlimited();
        for _ in 0..10_000 {
            assert!(b.step().is_ok());
        }
        assert_eq!(b.spent(), 10_000);
        assert!(!b.is_exhausted());
    }

    #[test]
    fn watchdog_cancels_expired_deadlines() {
        let dog = Watchdog::new();
        let token = CancelToken::new();
        let _guard = dog.watch(
            token.clone(),
            Instant::now() + std::time::Duration::from_millis(20),
        );
        let start = Instant::now();
        while !token.is_cancelled() {
            assert!(
                start.elapsed() < std::time::Duration::from_secs(10),
                "watchdog never fired"
            );
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        // The budget sees the cancellation as usual.
        let b = StepBudget::new(100).with_cancel(token);
        assert_eq!(b.step(), Err(BudgetStop::Cancelled));
    }

    #[test]
    fn dropping_the_guard_disarms_the_deadline() {
        let dog = Watchdog::new();
        let token = CancelToken::new();
        let guard = dog.watch(
            token.clone(),
            Instant::now() + std::time::Duration::from_millis(30),
        );
        drop(guard);
        std::thread::sleep(std::time::Duration::from_millis(80));
        assert!(
            !token.is_cancelled(),
            "a disarmed deadline must not cancel its token"
        );
    }

    #[test]
    fn watchdog_handles_many_deadlines_in_any_order() {
        let dog = Watchdog::new();
        let soon = CancelToken::new();
        let later = CancelToken::new();
        // Register the *later* deadline first so the timer thread has to
        // re-sort on the second registration.
        let _g2 = dog.watch(
            later.clone(),
            Instant::now() + std::time::Duration::from_secs(600),
        );
        let _g1 = dog.watch(
            soon.clone(),
            Instant::now() + std::time::Duration::from_millis(20),
        );
        let start = Instant::now();
        while !soon.is_cancelled() {
            assert!(start.elapsed() < std::time::Duration::from_secs(10));
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert!(!later.is_cancelled());
        // Dropping the watchdog joins the timer thread promptly even with
        // a ten-minute deadline still armed.
        drop(dog);
        assert!(!later.is_cancelled());
    }
}
