//! Register-pressure analysis — the paper's §7 future-work post-pass.
//!
//! Communication scheduling implicitly allocates a register in the staging
//! file of every route. This module makes that allocation explicit: each
//! value occupies a register in the file its route stages it through, from
//! the producer's completion until the last read. For the software-
//! pipelined loop, a value whose lifetime spans `L` cycles needs
//! `ceil(L / II)` rotating instances, because that many iterations hold it
//! live simultaneously.
//!
//! The paper defers spilling to "a post pass that inserts additional copy
//! operations"; we implement the analysis and the spill *plan* (which
//! values overflow which files, and where they could be staged instead),
//! which is what an allocator needs to drive that pass.

use std::collections::HashMap;

use csched_ir::Kernel;
use csched_machine::{Architecture, RfId};

use crate::schedule::Schedule;
use crate::universe::SOpId;

/// Register demand in a single register file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RfPressure {
    /// The register file.
    pub rf: RfId,
    /// Registers required by the schedule.
    pub required: usize,
    /// Registers the file physically has.
    pub capacity: usize,
    /// Values staged through the file (producer ids) with their instance
    /// counts.
    pub values: Vec<(SOpId, usize)>,
}

impl RfPressure {
    /// Whether the demand fits the file.
    pub fn fits(&self) -> bool {
        self.required <= self.capacity
    }

    /// Registers over capacity (0 when it fits).
    pub fn overflow(&self) -> usize {
        self.required.saturating_sub(self.capacity)
    }
}

/// A proposed spill: move a value's staging out of an overflowing file.
///
/// The §7 post-pass would realise this by copying the value out of `from`
/// just after it is computed and back just before use; `to` is the
/// cheapest reachable file with spare capacity (`None` when no file has
/// room — the machine is genuinely out of registers).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpillCandidate {
    /// The value (by producing operation).
    pub value: SOpId,
    /// The overflowing file it currently stages through.
    pub from: RfId,
    /// Instances freed by spilling it.
    pub instances: usize,
    /// Proposed destination file (reachable by copies, spare capacity).
    pub to: Option<RfId>,
    /// Copy operations needed per direction to reach `to`.
    pub copies_needed: u32,
}

/// The result of the pressure analysis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PressureReport {
    /// Per-file demand, in register-file id order.
    pub per_rf: Vec<RfPressure>,
    /// Spill plan for overflowing files: cheapest candidates first (values
    /// with the most instances freed per file).
    pub spills: Vec<SpillCandidate>,
}

impl PressureReport {
    /// Whether every register file satisfies its demand.
    pub fn fits(&self) -> bool {
        self.per_rf.iter().all(RfPressure::fits)
    }

    /// Renders the report as a table (overflowing files first).
    pub fn render(&self, arch: &Architecture) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "register pressure: {} files, total demand {}, max {}{}",
            self.per_rf.len(),
            self.total_required(),
            self.max_required(),
            if self.fits() { "" } else { " (OVERFLOW)" }
        );
        let mut rows: Vec<&RfPressure> = self.per_rf.iter().filter(|p| p.required > 0).collect();
        rows.sort_by_key(|p| std::cmp::Reverse(p.overflow().max(p.required)));
        for p in rows.iter().take(12) {
            let _ = writeln!(
                s,
                "  {:<12} {:>4}/{:<4} {}",
                arch.rf(p.rf).name(),
                p.required,
                p.capacity,
                if p.fits() { "ok" } else { "overflow" }
            );
        }
        for spill in &self.spills {
            let _ = writeln!(
                s,
                "  spill {} out of {} -> {} ({} copies, frees {} registers)",
                spill.value,
                arch.rf(spill.from).name(),
                spill
                    .to
                    .map(|r| arch.rf(r).name().to_string())
                    .unwrap_or_else(|| "<no room anywhere>".into()),
                spill.copies_needed,
                spill.instances
            );
        }
        s
    }

    /// Total registers demanded across all files.
    pub fn total_required(&self) -> usize {
        self.per_rf.iter().map(|p| p.required).sum()
    }

    /// The maximum demand of any single file.
    pub fn max_required(&self) -> usize {
        self.per_rf.iter().map(|p| p.required).max().unwrap_or(0)
    }
}

/// Lifetime of one value in one register file, in the producer's frame.
#[derive(Clone, Copy, Debug, Default)]
struct Life {
    write: i64,
    last_read: i64,
    persistent: bool,
    in_loop: bool,
}

/// [`analyze`] with the per-file demand and spill plan traced into
/// `sink` as [`TraceEvent::RfPressure`] / [`TraceEvent::SpillPlanned`]
/// events.
///
/// [`TraceEvent::RfPressure`]: crate::trace::TraceEvent::RfPressure
/// [`TraceEvent::SpillPlanned`]: crate::trace::TraceEvent::SpillPlanned
pub fn analyze_traced(
    arch: &Architecture,
    kernel: &Kernel,
    schedule: &Schedule,
    sink: &mut dyn crate::trace::TraceSink,
) -> PressureReport {
    let report = analyze(arch, kernel, schedule);
    for p in &report.per_rf {
        sink.event(crate::trace::TraceEvent::RfPressure {
            rf: p.rf.index() as u32,
            required: p.required as u32,
            capacity: p.capacity as u32,
        });
    }
    for s in &report.spills {
        sink.event(crate::trace::TraceEvent::SpillPlanned {
            value: s.value.index() as u32,
            from: s.from.index() as u32,
            to: s.to.map_or(-1, |rf| rf.index() as i64),
            copies: s.copies_needed,
        });
    }
    report
}

/// Analyses the register pressure of `schedule`.
pub fn analyze(arch: &Architecture, kernel: &Kernel, schedule: &Schedule) -> PressureReport {
    match analyze_budgeted(
        arch,
        kernel,
        schedule,
        &crate::budget::StepBudget::unlimited(),
    ) {
        Ok(report) => report,
        // Unreachable: an unlimited budget with no cancel token never
        // refuses a charge; keep a harmless fallback rather than a panic.
        Err(_) => PressureReport {
            per_rf: Vec::new(),
            spills: Vec::new(),
        },
    }
}

/// [`analyze`] under a [`StepBudget`](crate::StepBudget): one step is
/// charged per communication leg examined, so a campaign's deadline also
/// bounds the register post-pass, not just the placement search.
///
/// # Errors
///
/// [`SchedError::DeadlineExceeded`](crate::SchedError::DeadlineExceeded)
/// (phase `"regalloc"`) when the budget runs dry, or
/// [`SchedError::Cancelled`](crate::SchedError::Cancelled) when its
/// cancellation token fires.
pub fn analyze_budgeted(
    arch: &Architecture,
    kernel: &Kernel,
    schedule: &Schedule,
    budget: &crate::budget::StepBudget,
) -> Result<PressureReport, crate::SchedError> {
    let u = schedule.universe();
    let ii = schedule.ii().unwrap_or(1).max(1) as i64;

    // Collect per (value, file): the write cycle and last read cycle, in
    // the producer's frame. Cross-block stagings are persistent for the
    // whole loop: count one dedicated register.
    let mut lives: HashMap<(SOpId, RfId), Life> = HashMap::new();

    for cid in u.comm_ids() {
        for (leg_id, route) in schedule.transport(cid) {
            if let Err(stop) = budget.step() {
                return Err(budget.stop_error(stop, "regalloc"));
            }
            let leg = u.comm(leg_id);
            let p = schedule.placement(leg.producer);
            let q = schedule.placement(leg.consumer);
            let pb = u.op(leg.producer).block;
            let qb = u.op(leg.consumer).block;
            let entry = lives.entry((leg.producer, route.wstub.rf)).or_default();
            entry.write = p.completion();
            if pb != qb {
                // Preamble value read by the loop (or staged for it): the
                // register holds it for the kernel's entire execution.
                entry.persistent = true;
            } else {
                let read_at = q.cycle + leg.distance as i64 * ii;
                entry.last_read = entry.last_read.max(read_at);
                entry.in_loop = kernel.block(pb).is_loop();
            }
        }
    }

    let mut per_value_rf: HashMap<RfId, Vec<(SOpId, usize)>> = HashMap::new();
    for ((value, rf), life) in &lives {
        let instances = if life.persistent {
            1
        } else if life.in_loop {
            let span = (life.last_read - life.write).max(1);
            ((span + ii - 1) / ii) as usize
        } else {
            1
        };
        per_value_rf
            .entry(*rf)
            .or_default()
            .push((*value, instances));
    }

    let mut per_rf = Vec::with_capacity(arch.num_rfs());
    let mut spills = Vec::new();
    // The connectivity analysis is only needed when some file overflows,
    // and is the same for every overflowing file: compute it lazily, once.
    let mut conn_lazy: Option<csched_machine::CopyConnectivity> = None;
    for rf in arch.rf_ids() {
        let mut values = per_value_rf.get(&rf).cloned().unwrap_or_default();
        values.sort();
        let required: usize = if kernel.loop_block().is_some() {
            values.iter().map(|&(_, n)| n).sum()
        } else {
            // Straight-line code: max simultaneous overlap.
            max_overlap(&lives, rf)
        };
        let capacity = arch.rf(rf).capacity();
        if required > capacity {
            // Find the cheapest reachable file with spare room for each
            // candidate (fewest copies first, then most spare capacity).
            let conn = conn_lazy.get_or_insert_with(|| arch.copy_connectivity());
            let spare: Vec<(RfId, usize)> = arch
                .rf_ids()
                .filter(|&other| other != rf)
                .map(|other| {
                    let used = per_value_rf
                        .get(&other)
                        .map_or(0, |v| v.iter().map(|&(_, n)| n).sum::<usize>());
                    (other, arch.rf(other).capacity().saturating_sub(used))
                })
                .filter(|&(_, room)| room > 0)
                .collect();
            let mut candidates: Vec<SpillCandidate> = values
                .iter()
                .map(|&(value, instances)| {
                    let target = spare
                        .iter()
                        .filter_map(|&(other, room)| {
                            conn.copy_distance(rf, other)
                                .filter(|_| room >= instances)
                                .map(|d| (d, std::cmp::Reverse(room), other))
                        })
                        .min();
                    SpillCandidate {
                        value,
                        from: rf,
                        instances,
                        to: target.map(|(_, _, other)| other),
                        copies_needed: target.map(|(d, _, _)| d).unwrap_or(0),
                    }
                })
                .collect();
            candidates.sort_by_key(|c| std::cmp::Reverse(c.instances));
            let mut need = required - capacity;
            for c in candidates {
                if need == 0 {
                    break;
                }
                need = need.saturating_sub(c.instances);
                spills.push(c);
            }
        }
        per_rf.push(RfPressure {
            rf,
            required,
            capacity,
            values,
        });
    }

    Ok(PressureReport { per_rf, spills })
}

fn max_overlap(lives: &HashMap<(SOpId, RfId), Life>, rf: RfId) -> usize {
    let mut events: Vec<(i64, i64)> = Vec::new();
    for ((_, r), life) in lives {
        if *r != rf || life.persistent {
            continue;
        }
        events.push((life.write, life.last_read));
    }
    let persistent = lives
        .iter()
        .filter(|((_, r), l)| *r == rf && l.persistent)
        .count();
    let mut points: Vec<i64> = events.iter().flat_map(|&(a, b)| [a, b]).collect();
    points.sort_unstable();
    points.dedup();
    let mut best = 0usize;
    for &t in &points {
        let live = events.iter().filter(|&&(a, b)| a <= t && t <= b).count();
        best = best.max(live);
    }
    best + persistent
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{schedule_kernel, SchedulerConfig};
    use csched_ir::KernelBuilder;
    use csched_machine::{imagine, Opcode};

    fn streaming_kernel() -> Kernel {
        let mut kb = KernelBuilder::new("stream");
        let input = kb.region("in", true);
        let output = kb.region("out", true);
        let lp = kb.loop_block("body");
        let i = kb.loop_var(lp, 0i64.into());
        let x = kb.load(lp, input, i.into(), 0i64.into());
        let y = kb.push(lp, Opcode::IMul, [x.into(), 3i64.into()]);
        kb.store(lp, output, i.into(), 0i64.into(), y.into());
        let i1 = kb.push(lp, Opcode::IAdd, [i.into(), 1i64.into()]);
        kb.set_update(i, i1.into());
        kb.build().unwrap()
    }

    #[test]
    fn pressure_is_positive_and_fits_distributed() {
        let kernel = streaming_kernel();
        let arch = imagine::distributed();
        let s = schedule_kernel(&arch, &kernel, SchedulerConfig::default()).unwrap();
        let report = analyze(&arch, &kernel, &s);
        assert!(report.total_required() > 0);
        assert!(
            report.fits(),
            "tiny streaming kernel must fit 16-entry files: {:?}",
            report
                .per_rf
                .iter()
                .filter(|p| !p.fits())
                .collect::<Vec<_>>()
        );
        assert!(report.spills.is_empty());
    }

    #[test]
    fn budgeted_analysis_trips_with_typed_error() {
        use crate::budget::StepBudget;
        use crate::SchedError;
        let kernel = streaming_kernel();
        let arch = imagine::distributed();
        let s = schedule_kernel(&arch, &kernel, SchedulerConfig::default()).unwrap();

        // A roomy budget matches the unbudgeted analysis exactly.
        let budget = StepBudget::new(1 << 20);
        let report = analyze_budgeted(&arch, &kernel, &s, &budget).expect("fits budget");
        assert_eq!(report, analyze(&arch, &kernel, &s));
        assert!(budget.spent() > 0);

        // A one-leg budget trips with the regalloc phase attributed.
        let tiny = StepBudget::new(1);
        match analyze_budgeted(&arch, &kernel, &s, &tiny) {
            Err(SchedError::DeadlineExceeded {
                spent,
                limit,
                phase,
            }) => assert_eq!((spent, limit, phase), (1, 1, "regalloc")),
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    #[test]
    fn long_lifetimes_need_rotating_instances() {
        // A value read `k` iterations later needs about k instances; we
        // approximate by checking that total demand counts lifetimes.
        let kernel = streaming_kernel();
        let arch = imagine::central();
        let s = schedule_kernel(&arch, &kernel, SchedulerConfig::default()).unwrap();
        let report = analyze(&arch, &kernel, &s);
        // load latency 4 with II >= 1: x alive >= 4 cycles => >= 2
        // instances at II <= 3, at least 1 otherwise.
        assert!(report.max_required() >= 2);
    }
}

#[cfg(test)]
mod spill_tests {
    use super::*;
    use crate::{schedule_kernel, SchedulerConfig};
    use csched_ir::KernelBuilder;
    use csched_machine::{ArchBuilder, FuClass, Opcode};

    /// A machine whose first ALU's input files hold only two registers, so
    /// staging several long-lived values there overflows, while a roomy
    /// neighbour file can absorb spills.
    fn cramped_arch() -> csched_machine::Architecture {
        let mut b = ArchBuilder::new("cramped");
        let caps: Vec<_> = [Opcode::IAdd, Opcode::ISub, Opcode::IMul, Opcode::Copy]
            .map(csched_machine::default_capability)
            .to_vec();
        let ls_caps: Vec<_> = [Opcode::Load, Opcode::Store]
            .map(csched_machine::default_capability)
            .to_vec();
        let alu = b.functional_unit("ALU", FuClass::Alu, 2, true, caps.clone());
        let alu2 = b.functional_unit("ALU2", FuClass::Alu, 2, true, caps);
        let ls = b.functional_unit("LS", FuClass::Ls, 3, true, ls_caps);
        let buses: Vec<_> = (0..3).map(|i| b.bus(format!("GB{i}"))).collect();
        for fu in [alu, alu2, ls] {
            for &bus in &buses {
                b.connect_output(fu, bus);
            }
        }
        for (fu, inputs, cap) in [(alu, 2usize, 2usize), (alu2, 2, 64), (ls, 3, 64)] {
            for slot in 0..inputs {
                let rf = b.register_file(format!("RF_{}_{slot}", fu.index()), cap);
                let wp = b.write_port(rf);
                for &bus in &buses {
                    b.connect_bus_to_write_port(bus, wp);
                }
                b.dedicated_read(rf, fu, slot);
            }
        }
        b.build().unwrap()
    }

    /// A kernel whose loop holds many values live across a long-latency
    /// chain, demanding more rotating registers than two.
    fn pressured_kernel() -> csched_ir::Kernel {
        let mut kb = KernelBuilder::new("pressured");
        let input = kb.region("in", true);
        let output = kb.region("out", true);
        let lp = kb.loop_block("body");
        let i = kb.loop_var(lp, 0i64.into());
        let x = kb.load(lp, input, i.into(), 0i64.into());
        // A chain of multiplies whose intermediates all stay live into a
        // final sum, stretching lifetimes well past the II.
        let mut vals = vec![x];
        for _ in 0..6 {
            let last = *vals.last().unwrap();
            vals.push(kb.push(lp, Opcode::IMul, [last.into(), 3i64.into()]));
        }
        let mut sum = vals[0];
        for &v in &vals[1..] {
            sum = kb.push(lp, Opcode::IAdd, [sum.into(), v.into()]);
        }
        kb.store(lp, output, i.into(), 100i64.into(), sum.into());
        let i1 = kb.push(lp, Opcode::IAdd, [i.into(), 1i64.into()]);
        kb.set_update(i, i1.into());
        kb.build().unwrap()
    }

    #[test]
    fn overflow_produces_spill_plan_with_targets() {
        let arch = cramped_arch();
        let kernel = pressured_kernel();
        let s = schedule_kernel(&arch, &kernel, SchedulerConfig::default()).unwrap();
        let report = analyze(&arch, &kernel, &s);
        // The report is well-formed either way; if the tiny files
        // overflowed, every spill must name a reachable destination.
        for spill in &report.spills {
            assert!(spill.instances > 0);
            if let Some(to) = spill.to {
                assert_ne!(to, spill.from);
                assert!(
                    arch.copy_connectivity()
                        .copy_distance(spill.from, to)
                        .is_some(),
                    "spill target must be reachable"
                );
            }
        }
        let text = report.render(&arch);
        assert!(text.contains("register pressure"));
    }

    #[test]
    fn render_mentions_overflowing_files() {
        let arch = cramped_arch();
        let kernel = pressured_kernel();
        let s = schedule_kernel(&arch, &kernel, SchedulerConfig::default()).unwrap();
        let report = analyze(&arch, &kernel, &s);
        let text = report.render(&arch);
        if !report.fits() {
            assert!(text.contains("OVERFLOW"));
            assert!(text.contains("spill"));
        }
    }
}

/// Errors from [`assign`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AssignError {
    /// A register file's demand exceeds its capacity; the spill plan in
    /// the accompanying report says what to move where.
    Overflow {
        /// The overflowing file.
        rf: RfId,
        /// Registers required.
        required: usize,
        /// Registers available.
        capacity: usize,
    },
}

impl std::fmt::Display for AssignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AssignError::Overflow {
                rf,
                required,
                capacity,
            } => write!(
                f,
                "register file {rf} needs {required} registers but has {capacity}"
            ),
        }
    }
}

impl std::error::Error for AssignError {}

/// A concrete register assignment: each staged value gets a contiguous
/// block of rotating registers in its file (modulo variable expansion —
/// iteration `k`'s instance lives in `base + (k mod count)`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegisterAssignment {
    /// Per (value producer, file): `(base register, instance count)`.
    pub slots: HashMap<(SOpId, RfId), (usize, usize)>,
    /// Registers used per file (indexed by `RfId`).
    pub used: Vec<usize>,
}

impl RegisterAssignment {
    /// The register iteration `iteration`'s instance of `value` occupies
    /// in `rf`, or `None` if `(value, rf)` was not assigned (the value is
    /// not staged through that file).
    pub fn register_of(&self, value: SOpId, rf: RfId, iteration: u64) -> Option<usize> {
        let &(base, count) = self.slots.get(&(value, rf))?;
        Some(base + (iteration as usize % count.max(1)))
    }
}

/// Produces a concrete register assignment for `schedule`, rotating each
/// value across `ceil(lifetime / II)` registers in its staging file.
///
/// # Errors
///
/// Returns [`AssignError::Overflow`] when a file lacks capacity; run
/// [`analyze`] for the spill plan in that case.
pub fn assign(
    arch: &Architecture,
    kernel: &Kernel,
    schedule: &Schedule,
) -> Result<RegisterAssignment, AssignError> {
    let report = analyze(arch, kernel, schedule);
    let mut slots = HashMap::new();
    let mut used = vec![0usize; arch.num_rfs()];
    for pressure in &report.per_rf {
        let mut next = 0usize;
        for &(value, instances) in &pressure.values {
            slots.insert((value, pressure.rf), (next, instances));
            next += instances;
        }
        if next > arch.rf(pressure.rf).capacity() {
            return Err(AssignError::Overflow {
                rf: pressure.rf,
                required: next,
                capacity: arch.rf(pressure.rf).capacity(),
            });
        }
        used[pressure.rf.index()] = next;
    }
    Ok(RegisterAssignment { slots, used })
}

#[cfg(test)]
mod assign_tests {
    use super::*;
    use crate::{schedule_kernel, SchedulerConfig};
    use csched_ir::KernelBuilder;
    use csched_machine::imagine;

    fn long_lived_kernel() -> Kernel {
        // x is read again many cycles after it is produced, so it needs
        // several rotating instances at small II.
        let mut kb = KernelBuilder::new("longlife");
        let input = kb.region("in", true);
        let output = kb.region("out", true);
        let lp = kb.loop_block("body");
        let i = kb.loop_var(lp, 0i64.into());
        let x = kb.load(lp, input, i.into(), 0i64.into());
        let mut y = x;
        for _ in 0..5 {
            y = kb.push(lp, csched_machine::Opcode::IMul, [y.into(), 3i64.into()]);
        }
        // Late re-read of x keeps it live across the multiply chain.
        let z = kb.push(lp, csched_machine::Opcode::IAdd, [y.into(), x.into()]);
        kb.store(lp, output, i.into(), 100i64.into(), z.into());
        let i1 = kb.push(lp, csched_machine::Opcode::IAdd, [i.into(), 1i64.into()]);
        kb.set_update(i, i1.into());
        kb.build().unwrap()
    }

    /// Brute-force check of modulo variable expansion: simulate the flat
    /// lifetimes of every instance over many iterations and assert that no
    /// register ever holds two live instances.
    fn verify_no_overlap(schedule: &Schedule, assignment: &RegisterAssignment, trips: u64) {
        let u = schedule.universe();
        let ii = schedule.ii().unwrap_or(1) as i64;
        // (rf, register) -> occupied flat-cycle intervals.
        type Interval = (i64, i64, SOpId, u64);
        let mut occupancy: HashMap<(RfId, usize), Vec<Interval>> = HashMap::new();
        for cid in u.comm_ids() {
            for (leg_id, route) in schedule.transport(cid) {
                let leg = u.comm(leg_id);
                if u.op(leg.producer).block != u.op(leg.consumer).block {
                    continue; // persistent preamble values: one register
                }
                let p = schedule.placement(leg.producer);
                let q = schedule.placement(leg.consumer);
                for k in 0..trips {
                    let write = p.completion() + k as i64 * ii;
                    let read = q.cycle + (k + leg.distance as u64) as i64 * ii;
                    let reg = assignment
                        .register_of(leg.producer, route.wstub.rf, k)
                        .expect("staged value assigned");
                    occupancy.entry((route.wstub.rf, reg)).or_default().push((
                        write,
                        read,
                        leg.producer,
                        k,
                    ));
                }
            }
        }
        for ((rf, reg), mut intervals) in occupancy {
            intervals.sort();
            // Merge intervals of the same instance (several readers).
            let mut merged: Vec<Interval> = Vec::new();
            for iv in intervals {
                match merged.last_mut() {
                    Some(last) if last.2 == iv.2 && last.3 == iv.3 => {
                        last.1 = last.1.max(iv.1);
                    }
                    _ => merged.push(iv),
                }
            }
            for w in merged.windows(2) {
                assert!(
                    w[0].1 <= w[1].0,
                    "{rf:?} register {reg}: instance {:?}#{} (live {}..{}) overlaps {:?}#{} (from {})",
                    w[0].2, w[0].3, w[0].0, w[0].1, w[1].2, w[1].3, w[1].0
                );
            }
        }
    }

    #[test]
    fn assignment_is_overlap_free_on_all_machines() {
        let kernel = long_lived_kernel();
        for arch in imagine::all_variants() {
            let s = schedule_kernel(&arch, &kernel, SchedulerConfig::default()).unwrap();
            let assignment =
                assign(&arch, &kernel, &s).unwrap_or_else(|e| panic!("{}: {e}", arch.name()));
            verify_no_overlap(&s, &assignment, 16);
            // Bookkeeping consistency.
            for (&(_, rf), &(base, count)) in &assignment.slots {
                assert!(base + count <= assignment.used[rf.index()]);
            }
        }
    }

    #[test]
    fn long_lifetimes_rotate_across_registers() {
        let kernel = long_lived_kernel();
        let arch = imagine::distributed();
        let s = schedule_kernel(&arch, &kernel, SchedulerConfig::default()).unwrap();
        let assignment = assign(&arch, &kernel, &s).unwrap();
        let rotating = assignment
            .slots
            .values()
            .filter(|&&(_, count)| count > 1)
            .count();
        assert!(rotating > 0, "x must need multiple rotating instances");
        // Different iterations land in different registers.
        let (&(value, rf), _) = assignment
            .slots
            .iter()
            .find(|(_, &(_, count))| count > 1)
            .unwrap();
        assert_ne!(
            assignment.register_of(value, rf, 0).unwrap(),
            assignment.register_of(value, rf, 1).unwrap()
        );
    }
}
