//! The communication-scheduling engine (paper §4).
//!
//! The engine owns the scheduling state for one kernel on one
//! architecture: operation placements, the per-block resource tables, and
//! the state of every communication. Its central entry point,
//! [`Engine::place`], implements the five steps of §4.3 for one tentative
//! operation placement:
//!
//! 1. determine the valid read/write stubs (precomputed per architecture);
//! 2. find a non-conflicting permutation of read stubs for all
//!    communications read on the issue row;
//! 3. find a non-conflicting permutation of write stubs for all
//!    communications written on the completion row;
//! 4. assign a route to each closing communication whose stubs meet in
//!    one register file;
//! 5. insert and recursively schedule copy operations for the rest.
//!
//! Every mutation — placements, stub choices, communication state, table
//! claims, even universe growth from copy insertion — is journalled, so a
//! failed placement rolls back exactly and the scheduler can retry on
//! another functional unit or cycle (the accept/reject protocol of
//! Figure 11).
//!
//! # Hot-path discipline (DESIGN.md §14)
//!
//! The attempt loop — [`Engine::place_ext`] down through stub permutation
//! and route search — is engineered for zero steady-state allocation and
//! O(1) probes:
//!
//! - resource claims go through the dense modulo tables of
//!   [`crate::table`];
//! - every copy-distance score is a flat-array read from the shared
//!   [`ConnCache`] (`Arc`-held, so the whole II search and retry ladder
//!   reuse one cache);
//! - candidate enumeration scores stubs per register-file *group* (all
//!   stubs targeting one file share a score) and keeps only the
//!   configured top-k by `select_nth_unstable` before sorting the
//!   surviving prefix — exact, because every sort key in this module is a
//!   total order (a `(port, bus)` pair identifies a stub uniquely);
//! - the permutation searches, closing lists, and revision scans run in
//!   reusable scratch buffers (`Scratch`) that keep their capacity across
//!   attempts.
//!
//! Any change here must preserve *schedule identity*: identical candidate
//! sets, identical orderings, identical tiebreaks — see the invariants in
//! DESIGN.md §14 and the byte-identity gates in `ci.sh`.

use std::sync::Arc;

use csched_ir::{BlockId, Kernel};
use csched_machine::{Architecture, Capability, FuId, Opcode, ReadStub, ResourceMap, WriteStub};

use crate::conn::ConnCache;

use crate::budget::{BudgetStop, StepBudget};
use crate::config::SchedulerConfig;
use crate::error::SchedError;
use crate::schedule::{CommDisposition, Route, SchedStats, Schedule, ScheduledOp};
use crate::table::{ResourceTable, TableMode};
use crate::trace::{RejectReason, TraceEvent, TraceSink};
use crate::universe::{Comm, CommId, SOpId, Universe};

/// Mutable per-communication scheduling state.
#[derive(Clone, Copy, Debug, Default)]
struct CommInfo {
    /// Tentative (or frozen) write stub once the producer is scheduled.
    wstub: Option<WriteStub>,
    /// Whether the write stub may no longer be revised.
    wstub_frozen: bool,
    /// Final disposition once closed.
    disposition: Option<CommDisposition>,
}

/// Journal entries for engine-state rollback.
#[derive(Clone, Debug)]
enum Undo {
    Comm(CommId, CommInfo),
    Operand(usize, Option<ReadStub>, bool),
    Place(SOpId),
    CopyAdded {
        ops: usize,
        comms: usize,
        operands: usize,
    },
    CommAdded,
}

/// Cached lookup of the `CSCHED_DEBUG{n}` environment flags.
///
/// Setting `CSCHED_DEBUG2=1` prints failed copy insertions and
/// `CSCHED_DEBUG3=1` prints every rejected copy placement with the phase
/// that rejected it; the driver prints per-II failures under
/// `CSCHED_DEBUG=1`. These exist for scheduler debugging and are
/// read once per process.
pub(crate) fn debug_env(n: usize) -> bool {
    use std::sync::OnceLock;
    static FLAGS: OnceLock<[bool; 4]> = OnceLock::new();
    FLAGS.get_or_init(|| {
        [0, 1, 2, 3].map(|i| std::env::var_os(format!("CSCHED_DEBUG{i}")).is_some())
    })[n]
}

/// An engine savepoint.
#[derive(Clone, Debug)]
pub struct EngineSavepoint {
    journal: usize,
    tables: Vec<crate::table::Savepoint>,
}

/// A memory-ordering constraint (from the kernel dependence graph): the
/// `to` operation of iteration `i` must issue after the `from` operation
/// of iteration `i - distance` completes.
#[derive(Clone, Copy, Debug)]
pub struct OrderEdge {
    /// Operation that must complete first.
    pub from: SOpId,
    /// Operation that must wait.
    pub to: SOpId,
    /// Iteration distance.
    pub distance: u32,
}

/// Reusable scratch buffers for the permutation searches of §4.3 steps
/// 2–3 and the closing machinery of steps 4–5. Buffers keep their
/// capacity across placement attempts, so the steady-state attempt loop
/// allocates nothing. None of them is live across a recursive
/// [`Engine::place`] (copy insertion): the permutation buffers are taken
/// and restored within one permutation call, and the closing list uses a
/// pop/push pool so each recursion depth gets its own vector.
#[derive(Default)]
struct Scratch {
    rperm: RPermBufs,
    wperm: WPermBufs,
    closing_pool: Vec<Vec<CommId>>,
    revise: Vec<(u32, WriteStub)>,
}

/// Buffers for one read-stub permutation (participants, §4.4 ordering,
/// flattened candidate lists, and the backtracking state).
#[derive(Default)]
struct RPermBufs {
    participants: Vec<(SOpId, usize, i64)>,
    keyed: Vec<(i64, usize, (SOpId, usize, i64))>,
    scored: Vec<(i64, ReadStub)>,
    cand: Vec<ReadStub>,
    ranges: Vec<(u32, u32)>,
    pos: Vec<usize>,
    chosen: Vec<Option<ReadStub>>,
}

/// A write-permutation participant: the communication, its completion
/// cycle, and the producing unit.
type WParticipant = (CommId, i64, FuId);

/// Buffers for one write-stub permutation.
#[derive(Default)]
struct WPermBufs {
    participants: Vec<WParticipant>,
    keyed: Vec<(i64, i64, u32, WParticipant)>,
    /// `(score, rotated port, port-run index)` per candidate port run.
    scored: Vec<(i64, u32, u32)>,
    cand: Vec<WriteStub>,
    ranges: Vec<(u32, u32)>,
    pos: Vec<usize>,
    chosen: Vec<Option<WriteStub>>,
}

/// The scheduling engine. See the module docs.
pub struct Engine<'a> {
    arch: &'a Architecture,
    kernel: &'a Kernel,
    /// Shared dense connectivity tables (see [`crate::conn`]).
    cache: Arc<ConnCache>,
    config: SchedulerConfig,
    /// Operations and communications (grows with copy insertion).
    pub(crate) universe: Universe,
    tables: Vec<ResourceTable>,
    placements: Vec<Option<ScheduledOp>>,
    comm_info: Vec<CommInfo>,
    /// Chosen read stub per consumer operand (shared by the operand's
    /// communications).
    operand_stub: Vec<Option<ReadStub>>,
    operand_frozen: Vec<bool>,
    /// Memory-ordering edges among kernel operations.
    order_edges: Vec<OrderEdge>,
    /// ASAP estimate per kernel op (for the copy-range term of eq 1).
    asap: Vec<i64>,
    /// Current loop initiation interval (1 when scheduling straight code).
    ii: u32,
    journal: Vec<Undo>,
    /// First internal invariant violation detected during this engine's
    /// run, if any. Invariant breaks surface as placement failure (so the
    /// current attempt unwinds via the normal rollback path) and the
    /// driver converts the recorded error into [`SchedError::Internal`]
    /// instead of retrying.
    internal_error: Option<SchedError>,
    /// Remaining copy-scheduling attempts within the current top-level
    /// placement (bounds the multiplicative cost of recursive copy
    /// insertion).
    copy_work: u32,
    pub(crate) stats: SchedStats,
    /// Number of placed operations per unit, maintained incrementally
    /// (placement increments, rollback decrements) — the driver's
    /// load tiebreak reads it in O(1) instead of scanning all ops.
    fu_load: Vec<i64>,
    /// Reusable hot-path buffers (see [`Scratch`]).
    scratch: Scratch,
    /// Optional event sink; `None` (the default) makes every emission a
    /// single never-taken branch.
    trace: Option<&'a mut dyn TraceSink>,
    /// Optional shared work budget, charged one step per placement
    /// attempt. `None` (the default) keeps the hot loop unbudgeted.
    budget: Option<&'a StepBudget>,
    /// First budget refusal observed, if any. Once set, every further
    /// placement attempt fails immediately without charging the budget,
    /// so a tripped engine unwinds within the contract's one-attempt
    /// overrun bound.
    budget_stop: Option<BudgetStop>,
    /// Step that failed the most recent [`Engine::place_inner`] run,
    /// reported by the rejection event.
    last_reject: RejectReason,
}

impl<'a> std::fmt::Debug for Engine<'a> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("arch", &self.arch.name())
            .field("kernel", &self.kernel.name())
            .field("ops", &self.universe.num_ops())
            .field("ii", &self.ii)
            .finish()
    }
}

impl<'a> Engine<'a> {
    /// Creates an engine for `kernel` on `arch`. `order_edges` carries the
    /// kernel's memory-ordering constraints; `asap` the per-kernel-op ASAP
    /// estimates used by the eq 1 heuristic. `ii` configures the loop
    /// block's modulo table (pass 1 when the kernel has no loop).
    ///
    /// Builds a private [`ConnCache`]; the driver's II search uses
    /// [`Engine::with_cache`] to share one cache across every engine it
    /// creates.
    pub fn new(
        arch: &'a Architecture,
        kernel: &'a Kernel,
        config: SchedulerConfig,
        order_edges: Vec<OrderEdge>,
        asap: Vec<i64>,
        ii: u32,
    ) -> Self {
        let cache = Arc::new(ConnCache::new(arch));
        Self::with_cache(arch, kernel, config, order_edges, asap, ii, cache)
    }

    /// [`Engine::new`] with a shared connectivity cache. The cache holds
    /// no scheduling state (see [`crate::conn`]), so sharing it across II
    /// attempts and retry rungs cannot change any placement decision.
    pub fn with_cache(
        arch: &'a Architecture,
        kernel: &'a Kernel,
        config: SchedulerConfig,
        order_edges: Vec<OrderEdge>,
        asap: Vec<i64>,
        ii: u32,
        cache: Arc<ConnCache>,
    ) -> Self {
        let universe = Universe::build(kernel);
        let map = ResourceMap::new(arch);
        let tables: Vec<ResourceTable> = kernel
            .blocks()
            .iter()
            .map(|b| {
                let mode = if b.is_loop() {
                    TableMode::Modulo(ii)
                } else {
                    TableMode::Linear
                };
                ResourceTable::new(map.clone(), mode)
            })
            .collect();
        let num_ops = universe.num_ops();
        let num_operands: usize = universe.ops.iter().map(|o| o.num_operands).sum();
        let num_comms = universe.num_comms();
        Engine {
            arch,
            kernel,
            cache,
            config,
            universe,
            tables,
            placements: vec![None; num_ops],
            comm_info: vec![CommInfo::default(); num_comms],
            operand_stub: vec![None; num_operands],
            operand_frozen: vec![false; num_operands],
            order_edges,
            asap,
            ii,
            journal: Vec::new(),
            internal_error: None,
            copy_work: 0,
            stats: SchedStats::default(),
            fu_load: vec![0; arch.num_fus()],
            scratch: Scratch::default(),
            trace: None,
            budget: None,
            budget_stop: None,
            last_reject: RejectReason::Timing,
        }
    }

    /// Attaches a trace sink: subsequent placement decisions emit
    /// [`TraceEvent`]s into it. Events are emitted as decisions are
    /// explored — an accepted placement inside a subtree that is later
    /// rolled back still appears in the stream.
    pub fn set_trace_sink(&mut self, sink: &'a mut dyn TraceSink) {
        self.trace = Some(sink);
    }

    /// Attaches a shared [`StepBudget`]: every subsequent placement
    /// attempt charges one step, and the first refused charge makes this
    /// engine fail all further placements (see
    /// [`take_budget_stop`](Self::take_budget_stop)).
    pub fn set_budget(&mut self, budget: &'a StepBudget) {
        self.budget = Some(budget);
    }

    /// Whether the attached budget has refused a charge: every further
    /// placement attempt on this engine fails immediately.
    pub fn budget_stopped(&self) -> bool {
        self.budget_stop.is_some()
    }

    /// Returns and clears the budget refusal that stopped this engine,
    /// if any. The driver converts it into the typed
    /// [`SchedError::DeadlineExceeded`] / [`SchedError::Cancelled`]
    /// instead of misreporting the failure as budget exhaustion of the
    /// II search.
    pub fn take_budget_stop(&mut self) -> Option<BudgetStop> {
        self.budget_stop.take()
    }

    #[inline]
    fn emit(&mut self, event: TraceEvent) {
        if let Some(sink) = self.trace.as_mut() {
            sink.event(event);
        }
    }

    /// The architecture being scheduled for.
    pub fn arch(&self) -> &Architecture {
        self.arch
    }

    /// The engine's scheduler configuration.
    pub fn config_ref(&self) -> &SchedulerConfig {
        &self.config
    }

    /// The shared connectivity cache.
    pub fn conn_cache(&self) -> &ConnCache {
        &self.cache
    }

    /// Number of operations currently placed on `fu` (maintained
    /// incrementally; the driver's unit-ordering tiebreak).
    pub fn fu_load(&self, fu: FuId) -> i64 {
        self.fu_load[fu.index()]
    }

    /// Number of buses already carrying a value on `cycle`'s row of
    /// `block`'s table — a congestion probe for diagnosing bus-bound
    /// schedules (the Table 1 FIR kernels saturate the distributed
    /// machine's ten global buses, for example).
    pub fn row_bus_pressure(&self, block: BlockId, cycle: i64) -> usize {
        let table = &self.tables[block.index()];
        self.arch
            .bus_ids()
            .filter(|&b| table.occupancy(cycle, csched_machine::Resource::Bus(b)) > 0)
            .count()
    }

    /// The configured initiation interval.
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// Placement of `op`, if scheduled.
    pub fn placement(&self, op: SOpId) -> Option<ScheduledOp> {
        self.placements[op.index()]
    }

    /// Records an internal invariant violation and reports failure.
    ///
    /// Returns `false` so call sites can unwind through the normal
    /// placement-rejection path (which rolls the tables back); only the
    /// first violation is kept.
    fn fail_internal(&mut self, stage: &'static str, detail: impl Into<String>) -> bool {
        if self.internal_error.is_none() {
            self.internal_error = Some(SchedError::internal(stage, detail));
        }
        false
    }

    /// Takes the first internal invariant violation recorded during this
    /// engine's run, if any. The driver checks this after a failed run and
    /// reports it instead of retrying at another II.
    pub fn take_internal_error(&mut self) -> Option<SchedError> {
        self.internal_error.take()
    }

    // ----- journalling -----

    fn savepoint(&self) -> EngineSavepoint {
        EngineSavepoint {
            journal: self.journal.len(),
            tables: self.tables.iter().map(|t| t.savepoint()).collect(),
        }
    }

    fn rollback(&mut self, sp: &EngineSavepoint) {
        while self.journal.len() > sp.journal {
            let Some(entry) = self.journal.pop() else {
                break; // unreachable: the loop condition guarantees an entry
            };
            match entry {
                Undo::Comm(id, info) => self.comm_info[id.index()] = info,
                Undo::Operand(idx, stub, frozen) => {
                    self.operand_stub[idx] = stub;
                    self.operand_frozen[idx] = frozen;
                }
                Undo::Place(op) => {
                    if let Some(p) = self.placements[op.index()] {
                        self.fu_load[p.fu.index()] -= 1;
                    }
                    self.placements[op.index()] = None;
                }
                Undo::CommAdded => {
                    self.universe.remove_last_comm();
                    self.comm_info.pop();
                }
                Undo::CopyAdded {
                    ops,
                    comms,
                    operands,
                } => {
                    self.universe.remove_last_copy();
                    debug_assert_eq!(self.universe.num_ops(), ops);
                    debug_assert_eq!(self.universe.num_comms(), comms);
                    debug_assert_eq!(
                        self.universe
                            .ops
                            .iter()
                            .map(|o| o.num_operands)
                            .sum::<usize>(),
                        operands
                    );
                    self.placements.truncate(ops);
                    self.comm_info.truncate(comms);
                    self.operand_stub.truncate(operands);
                    self.operand_frozen.truncate(operands);
                }
            }
        }
        for (t, &tsp) in self.tables.iter_mut().zip(&sp.tables) {
            t.rollback(tsp);
        }
    }

    fn set_comm_info(&mut self, comm: CommId, info: CommInfo) {
        self.journal
            .push(Undo::Comm(comm, self.comm_info[comm.index()]));
        self.comm_info[comm.index()] = info;
    }

    fn set_operand(&mut self, idx: usize, stub: Option<ReadStub>, frozen: bool) {
        self.journal.push(Undo::Operand(
            idx,
            self.operand_stub[idx],
            self.operand_frozen[idx],
        ));
        self.operand_stub[idx] = stub;
        self.operand_frozen[idx] = frozen;
    }

    // ----- small helpers -----

    fn capability(&self, op: SOpId, fu: FuId) -> Option<Capability> {
        self.arch.fu(fu).capability(self.universe.op(op).opcode)
    }

    fn block_of(&self, op: SOpId) -> BlockId {
        self.universe.op(op).block
    }

    fn is_loop_block(&self, block: BlockId) -> bool {
        self.kernel.block(block).is_loop()
    }

    fn same_row(&self, block: BlockId, a: i64, b: i64) -> bool {
        if self.is_loop_block(block) {
            a.rem_euclid(self.ii as i64) == b.rem_euclid(self.ii as i64)
        } else {
            a == b
        }
    }

    fn block_ii(&self, block: BlockId) -> i64 {
        if self.is_loop_block(block) {
            self.ii as i64
        } else {
            // Straight-line blocks never have distance > 0 communications.
            1
        }
    }

    fn comm_closed(&self, comm: CommId) -> bool {
        self.comm_info[comm.index()].disposition.is_some()
    }

    /// Whether `comm` is *closing*: both endpoints placed and not yet
    /// closed.
    fn comm_closing(&self, comm: CommId) -> bool {
        if self.comm_closed(comm) {
            return false;
        }
        let c = self.universe.comm(comm);
        self.placements[c.producer.index()].is_some()
            && self.placements[c.consumer.index()].is_some()
    }

    /// The flat cycle on which `comm`'s value is read, in the producer's
    /// iteration frame (consumer issue + distance × II).
    fn comm_read_cycle(&self, comm: &Comm) -> Option<i64> {
        let p = self.placements[comm.consumer.index()]?;
        let block = self.block_of(comm.consumer);
        Some(p.cycle + comm.distance as i64 * self.block_ii(block))
    }

    /// The copy range (in flat producer-frame cycles) available to connect
    /// `comm`'s stubs: `None` if an endpoint is unscheduled.
    fn copy_range(&self, comm_id: CommId) -> Option<(i64, i64)> {
        let comm = self.universe.comm(comm_id);
        let wp = self.placements[comm.producer.index()]?;
        let first = wp.completion() + 1;
        if self.block_of(comm.producer) != self.block_of(comm.consumer) {
            // Cross-block: the rest of the writer's block (paper Fig 23),
            // bounded by the configured slack.
            return Some((first, wp.completion() + self.config.cross_block_copy_slack));
        }
        let read = self.comm_read_cycle(comm)?;
        Some((first, read - 1))
    }

    // ----- the five steps -----

    /// Attempts to schedule `op` on `fu` at `cycle` (block-local). Returns
    /// `true` and keeps all state on success; rolls back everything on
    /// failure. `depth` guards copy-insertion recursion.
    pub fn place(&mut self, op: SOpId, fu: FuId, cycle: i64, depth: usize) -> bool {
        self.place_ext(op, fu, cycle, depth, true)
    }

    /// [`Engine::place`] with copy insertion optionally disabled: the
    /// driver first sweeps the placement window without copies (delaying
    /// an operation is usually cheaper than a copy's unit slot and
    /// latency), then retries allowing them. Reusing an existing copy is
    /// always allowed — it consumes no new resources.
    pub fn place_ext(
        &mut self,
        op: SOpId,
        fu: FuId,
        cycle: i64,
        depth: usize,
        allow_copies: bool,
    ) -> bool {
        if self.budget_stop.is_some() {
            return false;
        }
        let Some(cap) = self.capability(op, fu) else {
            return false;
        };
        if let Some(budget) = self.budget {
            if let Err(stop) = budget.step() {
                self.budget_stop = Some(stop);
                let phase = "placement";
                self.emit(TraceEvent::DeadlineExceeded {
                    spent: budget.spent(),
                    limit: budget.limit(),
                    phase: phase.to_string(),
                    cancelled: stop == BudgetStop::Cancelled,
                });
                return false;
            }
        }
        self.stats.attempts += 1;
        self.emit(TraceEvent::PlaceAttempt {
            op: op.index() as u32,
            fu: fu.index() as u32,
            cycle,
        });
        if depth == 0 {
            self.copy_work = self.config.max_copy_attempts as u32 * 4;
        }

        if !self.timing_feasible(op, cycle, cap.latency) {
            self.emit(TraceEvent::PlaceReject {
                op: op.index() as u32,
                fu: fu.index() as u32,
                cycle,
                reason: RejectReason::Timing,
            });
            return false;
        }

        let sp = self.savepoint();
        let ok = self.place_inner(op, fu, cycle, cap, depth, allow_copies);
        if !ok {
            self.stats.rejections += 1;
            self.rollback(&sp);
            let reason = self.last_reject;
            self.emit(TraceEvent::PlaceReject {
                op: op.index() as u32,
                fu: fu.index() as u32,
                cycle,
                reason,
            });
        } else {
            self.emit(TraceEvent::PlaceAccept {
                op: op.index() as u32,
                fu: fu.index() as u32,
                cycle,
            });
        }
        ok
    }

    /// Timing feasibility of issuing `op` at `cycle` against its
    /// already-scheduled communication partners and memory-order edges.
    fn timing_feasible(&self, op: SOpId, cycle: i64, latency: u32) -> bool {
        let block = self.block_of(op);
        let bii = self.block_ii(block);
        for slot in 0..self.universe.op(op).num_operands {
            for &cid in self.universe.comms_to_operand(op, slot) {
                let c = self.universe.comm(cid);
                if self.block_of(c.producer) != block {
                    continue; // blocks execute sequentially
                }
                if let Some(p) = self.placements[c.producer.index()] {
                    if cycle + c.distance as i64 * bii < p.completion() + 1 {
                        return false;
                    }
                }
            }
        }
        for &cid in self.universe.comms_from(op) {
            let c = self.universe.comm(cid);
            if self.block_of(c.consumer) != block {
                continue;
            }
            if let Some(p) = self.placements[c.consumer.index()] {
                if p.cycle + c.distance as i64 * bii < cycle + latency as i64 {
                    return false;
                }
            }
        }
        for e in &self.order_edges {
            if e.to == op {
                if let Some(p) = self.placements[e.from.index()] {
                    if cycle + e.distance as i64 * bii < p.completion() + 1 {
                        return false;
                    }
                }
            }
            if e.from == op {
                if let Some(p) = self.placements[e.to.index()] {
                    if p.cycle + e.distance as i64 * bii < cycle + latency as i64 {
                        return false;
                    }
                }
            }
        }
        true
    }

    fn place_inner(
        &mut self,
        op: SOpId,
        fu: FuId,
        cycle: i64,
        cap: Capability,
        depth: usize,
        allow_copies: bool,
    ) -> bool {
        let dbg = self.universe.op(op).opcode == Opcode::Copy && debug_env(3);
        let block = self.block_of(op);
        if !self.tables[block.index()].place_issue(cycle, fu, cap.issue_interval, op) {
            if dbg {
                eprintln!("[copyplace] {op} {fu}@{cycle}: issue slot busy");
            }
            self.last_reject = RejectReason::IssueSlot;
            return false;
        }
        self.journal.push(Undo::Place(op));
        self.placements[op.index()] = Some(ScheduledOp {
            fu,
            cycle,
            latency: cap.latency,
        });
        self.fu_load[fu.index()] += 1;

        // Fast path: choose stubs only for the new operation against the
        // existing claims. If any of steps 2-5 then fails, fall back to the
        // full §4.3 re-permutation of every open stub on the affected rows
        // (which may revise other open communications' stubs to make room).
        let sp_steps = self.savepoint();
        if self.steps_two_to_five(op, fu, cycle, cap, depth, true, allow_copies, dbg) {
            return true;
        }
        self.rollback(&sp_steps);
        self.steps_two_to_five(op, fu, cycle, cap, depth, false, allow_copies, dbg)
    }

    #[allow(clippy::too_many_arguments)]
    fn steps_two_to_five(
        &mut self,
        op: SOpId,
        fu: FuId,
        cycle: i64,
        cap: Capability,
        depth: usize,
        fast: bool,
        allow_copies: bool,
        dbg: bool,
    ) -> bool {
        let block = self.block_of(op);
        let only = fast.then_some(op);
        // Step 2: permutation of read stubs on the issue row.
        if !self.permute_reads(block, cycle, only) {
            if dbg {
                eprintln!("[copyplace] {op} {fu}@{cycle}: read permutation failed (fast={fast})");
            }
            self.last_reject = RejectReason::ReadPermutation;
            return false;
        }
        // Step 3: permutation of write stubs on the completion row.
        let completion = cycle + cap.latency as i64 - 1;
        if self.universe.op(op).has_result && !self.permute_writes(block, completion, only) {
            if dbg {
                eprintln!("[copyplace] {op} {fu}@{cycle}: write permutation failed (fast={fast})");
            }
            self.last_reject = RejectReason::WritePermutation;
            return false;
        }
        // Steps 4 + 5: assign routes / insert copies for closing comms.
        let r = self.close_comms(op, depth, allow_copies);
        if !r {
            if dbg {
                eprintln!("[copyplace] {op} {fu}@{cycle}: closing failed (fast={fast})");
            }
            self.last_reject = RejectReason::Closing;
        }
        r
    }

    // ----- step 2: read-stub permutation -----

    fn permute_reads(&mut self, block: BlockId, cycle: i64, only: Option<SOpId>) -> bool {
        // The scratch buffers are taken out of the engine for the duration
        // of the call (no `place` recursion crosses a permutation, so a
        // single set suffices) and restored on every exit path.
        let mut bufs = std::mem::take(&mut self.scratch.rperm);
        let ok = self.permute_reads_inner(block, cycle, only, &mut bufs);
        self.scratch.rperm = bufs;
        ok
    }

    /// Collects participants for [`Engine::permute_reads`]: non-frozen
    /// operands of `o` with at least one unclosed communication.
    fn read_participants_of(&self, o: SOpId, cycle: i64, out: &mut Vec<(SOpId, usize, i64)>) {
        for slot in 0..self.universe.op(o).num_operands {
            let idx = self.universe.operand_index(o, slot);
            if self.operand_frozen[idx] {
                continue;
            }
            let comms = self.universe.comms_to_operand(o, slot);
            if comms.is_empty() {
                continue;
            }
            if comms.iter().all(|&c| self.comm_closed(c)) {
                continue;
            }
            out.push((o, slot, cycle));
        }
    }

    fn permute_reads_inner(
        &mut self,
        block: BlockId,
        cycle: i64,
        only: Option<SOpId>,
        bufs: &mut RPermBufs,
    ) -> bool {
        // Participants: non-frozen operands of ops placed in `block` whose
        // issue shares this row, having at least one unclosed communication,
        // each carrying its operation's issue cycle. With `only`, restrict
        // to that operation's operands (fast path: skip the full op scan).
        bufs.participants.clear();
        match only {
            Some(o) => {
                if self.block_of(o) == block {
                    if let Some(p) = self.placements[o.index()] {
                        if self.same_row(block, p.cycle, cycle) {
                            self.read_participants_of(o, p.cycle, &mut bufs.participants);
                        }
                    }
                }
            }
            None => {
                for o in self.universe.op_ids() {
                    if self.block_of(o) != block {
                        continue;
                    }
                    let Some(p) = self.placements[o.index()] else {
                        continue;
                    };
                    if !self.same_row(block, p.cycle, cycle) {
                        continue;
                    }
                    self.read_participants_of(o, p.cycle, &mut bufs.participants);
                }
            }
        }
        if bufs.participants.is_empty() {
            return true;
        }

        // Release current tentative stubs.
        for &(o, slot, pcycle) in &bufs.participants {
            let idx = self.universe.operand_index(o, slot);
            if let Some(stub) = self.operand_stub[idx] {
                self.tables[block.index()].unplace_read_stub(pcycle, stub, o, slot);
                self.set_operand(idx, None, false);
            }
        }

        // Order: operands with closing communications first, smallest copy
        // range first (§4.4).
        if self.config.closing_first {
            bufs.keyed.clear();
            for (i, &(o, slot, pcycle)) in bufs.participants.iter().enumerate() {
                let key = self.operand_search_key(o, slot);
                bufs.keyed.push((key, i, (o, slot, pcycle)));
            }
            bufs.keyed.sort_unstable();
            bufs.participants.clear();
            bufs.participants
                .extend(bufs.keyed.iter().map(|&(_, _, p)| p));
        }

        // Candidate stubs per participant, scored, flattened into one
        // buffer with per-participant ranges.
        bufs.cand.clear();
        bufs.ranges.clear();
        for i in 0..bufs.participants.len() {
            let (o, slot, _) = bufs.participants[i];
            let start = bufs.cand.len() as u32;
            self.read_candidates_into(o, slot, &mut bufs.scored, &mut bufs.cand);
            bufs.ranges.push((start, bufs.cand.len() as u32));
        }

        // Backtracking assignment.
        let mut budget = self.config.search_budget;
        let n = bufs.participants.len();
        bufs.pos.clear();
        bufs.pos.resize(n, 0);
        bufs.chosen.clear();
        bufs.chosen.resize(n, None);
        let mut i = 0usize;
        while i < n {
            let (o, slot, pcycle) = bufs.participants[i];
            let (start, end) = bufs.ranges[i];
            let ncand = (end - start) as usize;
            let mut advanced = false;
            while bufs.pos[i] < ncand {
                if budget == 0 {
                    return false;
                }
                budget -= 1;
                let stub = bufs.cand[start as usize + bufs.pos[i]];
                if self.tables[block.index()].place_read_stub(pcycle, stub, o, slot) {
                    bufs.chosen[i] = Some(stub);
                    advanced = true;
                    break;
                }
                bufs.pos[i] += 1;
            }
            if advanced {
                i += 1;
                if i < n {
                    bufs.pos[i] = 0;
                }
            } else {
                if i == 0 {
                    return false;
                }
                i -= 1;
                let (po, pslot, ppcycle) = bufs.participants[i];
                let Some(stub) = bufs.chosen[i].take() else {
                    return self.fail_internal(
                        "permute_reads",
                        format!("backtracked to {po} slot {pslot} with no chosen stub"),
                    );
                };
                self.tables[block.index()].unplace_read_stub(ppcycle, stub, po, pslot);
                bufs.pos[i] += 1;
            }
        }
        for k in 0..n {
            let (o, slot, _) = bufs.participants[k];
            let idx = self.universe.operand_index(o, slot);
            self.set_operand(idx, bufs.chosen[k], false);
            if let Some(stub) = bufs.chosen[k] {
                self.emit(TraceEvent::ReadStubAllocated {
                    op: o.index() as u32,
                    slot: slot as u32,
                    rf: stub.rf.index() as u32,
                    bus: stub.bus.index() as u32,
                });
            }
        }
        true
    }

    /// Sort key for the §4.4 ordering: closing communications first
    /// (smaller key), by smallest copy range.
    fn operand_search_key(&self, o: SOpId, slot: usize) -> i64 {
        let mut best: i64 = i64::MAX / 2; // open-only operands go last
        for &cid in self.universe.comms_to_operand(o, slot) {
            if self.comm_closing(cid) {
                if let Some((lo, hi)) = self.copy_range(cid) {
                    best = best.min(hi - lo);
                }
            }
        }
        best
    }

    /// Scores and ranks the read stubs available to operand (`o`, `slot`),
    /// appending the best `max_stub_candidates` to `out`. `scored` is a
    /// scratch buffer; all scoring is O(1) reads of the shared
    /// [`ConnCache`]. The sort key `(score, port, bus)` is a total order
    /// ((port, bus) identifies a stub), so ranking is deterministic.
    fn read_candidates_into(
        &self,
        o: SOpId,
        slot: usize,
        scored: &mut Vec<(i64, ReadStub)>,
        out: &mut Vec<ReadStub>,
    ) {
        let fu = match self.placements[o.index()] {
            Some(p) => p.fu,
            None => return,
        };
        let arch = self.arch;
        let comms = self.universe.comms_to_operand(o, slot);
        scored.clear();
        for &stub in arch.read_stubs(fu, slot) {
            let mut score = 0i64;
            for &cid in comms {
                if self.comm_closed(cid) {
                    continue;
                }
                let c = self.universe.comm(cid);
                let info = self.comm_info[cid.index()];
                let d = if let (true, Some(w)) = (info.wstub_frozen, info.wstub) {
                    self.cache.copy_distance(w.rf, stub.rf)
                } else if let Some(p) = self.placements[c.producer.index()] {
                    self.cache.fu_to_rf(p.fu, stub.rf.index())
                } else {
                    // Unscheduled producer: optimistic minimum over all
                    // units able to run it.
                    let opcode = self.universe.op(c.producer).opcode;
                    self.cache.producer_to_rf(opcode, stub.rf.index())
                };
                score += match d {
                    Some(copies) => copies as i64 * 16,
                    None => 100_000,
                };
            }
            scored.push((score, stub));
        }
        let max = self.config.max_stub_candidates;
        if scored.len() > max {
            scored.select_nth_unstable_by_key(max - 1, |&(s, stub)| (s, stub.port, stub.bus));
            scored.truncate(max);
        }
        scored.sort_unstable_by_key(|&(s, stub)| (s, stub.port, stub.bus));
        out.extend(scored.iter().map(|&(_, s)| s));
    }

    // ----- step 3: write-stub permutation -----

    fn permute_writes(&mut self, block: BlockId, completion: i64, only: Option<SOpId>) -> bool {
        // Scratch buffers are taken/restored exactly as in
        // [`Engine::permute_reads`].
        let mut bufs = std::mem::take(&mut self.scratch.wperm);
        let ok = self.permute_writes_inner(block, completion, only, &mut bufs);
        self.scratch.wperm = bufs;
        ok
    }

    /// Whether `cid` participates in a write permutation on `completion`'s
    /// row of `block`; returns the producer's completion cycle and unit.
    fn write_participant(
        &self,
        cid: CommId,
        block: BlockId,
        completion: i64,
    ) -> Option<(CommId, i64, FuId)> {
        if self.comm_closed(cid) || self.comm_info[cid.index()].wstub_frozen {
            return None;
        }
        let c = self.universe.comm(cid);
        if self.block_of(c.producer) != block {
            return None;
        }
        let p = self.placements[c.producer.index()]?;
        if !self.same_row(block, p.completion(), completion) {
            return None;
        }
        Some((cid, p.completion(), p.fu))
    }

    fn permute_writes_inner(
        &mut self,
        block: BlockId,
        completion: i64,
        only: Option<SOpId>,
        bufs: &mut WPermBufs,
    ) -> bool {
        // Each participant carries its producer's completion cycle and unit
        // (captured while the placement is known to exist). With `only`,
        // walk just that producer's outgoing communications (fast path) —
        // `comms_from` lists them in ascending id order, matching the full
        // `comm_ids` scan.
        bufs.participants.clear();
        match only {
            Some(o) => {
                for &cid in self.universe.comms_from(o) {
                    if let Some(part) = self.write_participant(cid, block, completion) {
                        bufs.participants.push(part);
                    }
                }
            }
            None => {
                for cid in self.universe.comm_ids() {
                    if let Some(part) = self.write_participant(cid, block, completion) {
                        bufs.participants.push(part);
                    }
                }
            }
        }
        if bufs.participants.is_empty() {
            return true;
        }

        for &(cid, pcompl, _) in &bufs.participants {
            let info = self.comm_info[cid.index()];
            if let Some(stub) = info.wstub {
                let c = self.universe.comm(cid);
                let producer = c.producer;
                self.tables[block.index()].unplace_write_stub(pcompl, stub, producer);
                self.set_comm_info(
                    cid,
                    CommInfo {
                        wstub: None,
                        ..info
                    },
                );
            }
        }

        if self.config.closing_first {
            // Sort key: closing comms first, narrowest copy range first,
            // comm index as the tiebreak.
            bufs.keyed.clear();
            for &(cid, pcompl, pfu) in bufs.participants.iter() {
                let closing = self.comm_closing(cid);
                let range = if closing {
                    self.copy_range(cid).map(|(lo, hi)| hi - lo).unwrap_or(0)
                } else {
                    i64::MAX / 2
                };
                bufs.keyed.push((
                    if closing { 0 } else { 1 },
                    range,
                    cid.index() as u32,
                    (cid, pcompl, pfu),
                ));
            }
            bufs.keyed.sort_unstable();
            bufs.participants.clear();
            bufs.participants
                .extend(bufs.keyed.iter().map(|&(_, _, _, c)| c));
        }

        bufs.cand.clear();
        bufs.ranges.clear();
        for i in 0..bufs.participants.len() {
            let (cid, _, _) = bufs.participants[i];
            let start = bufs.cand.len() as u32;
            self.write_candidates_into(cid, &mut bufs.scored, &mut bufs.cand);
            bufs.ranges.push((start, bufs.cand.len() as u32));
        }
        let mut budget = self.config.search_budget;
        let n = bufs.participants.len();
        bufs.pos.clear();
        bufs.pos.resize(n, 0);
        bufs.chosen.clear();
        bufs.chosen.resize(n, None);
        let mut i = 0usize;
        while i < n {
            let (cid, pcompl, pfu) = bufs.participants[i];
            let producer = self.universe.comm(cid).producer;
            let fanout = self.arch.fu(pfu).output_fanout();
            let (start, end) = bufs.ranges[i];
            let ncand = (end - start) as usize;
            let mut advanced = false;
            while bufs.pos[i] < ncand {
                if budget == 0 {
                    return false;
                }
                budget -= 1;
                let stub = bufs.cand[start as usize + bufs.pos[i]];
                if self.tables[block.index()].place_write_stub(pcompl, stub, producer, fanout) {
                    bufs.chosen[i] = Some(stub);
                    advanced = true;
                    break;
                }
                bufs.pos[i] += 1;
            }
            if advanced {
                i += 1;
                if i < n {
                    bufs.pos[i] = 0;
                }
            } else {
                if i == 0 {
                    return false;
                }
                i -= 1;
                let (pc, ppcompl, _) = bufs.participants[i];
                let producer = self.universe.comm(pc).producer;
                let Some(stub) = bufs.chosen[i].take() else {
                    return self.fail_internal(
                        "permute_writes",
                        format!("backtracked to {pc:?} with no chosen stub"),
                    );
                };
                self.tables[block.index()].unplace_write_stub(ppcompl, stub, producer);
                bufs.pos[i] += 1;
            }
        }
        for k in 0..n {
            let (cid, _, _) = bufs.participants[k];
            let info = self.comm_info[cid.index()];
            self.set_comm_info(
                cid,
                CommInfo {
                    wstub: bufs.chosen[k],
                    ..info
                },
            );
            if let Some(stub) = bufs.chosen[k] {
                self.emit(TraceEvent::WriteStubAllocated {
                    comm: cid.index() as u32,
                    rf: stub.rf.index() as u32,
                    bus: stub.bus.index() as u32,
                });
            }
        }
        true
    }

    /// Scores and ranks the write stubs available to `cid`'s producer,
    /// appending the best `max_stub_candidates` to `out`. Scores depend
    /// only on a stub's register file, so the [`ConnCache`]'s per-RF stub
    /// groups let each file be scored once instead of once per stub.
    fn write_candidates_into(
        &self,
        cid: CommId,
        scored: &mut Vec<(i64, u32, u32)>,
        out: &mut Vec<WriteStub>,
    ) {
        let c = self.universe.comm(cid);
        let producer = c.producer;
        let consumer = c.consumer;
        let slot = c.slot;
        let fu = match self.placements[producer.index()] {
            Some(p) => p.fu,
            None => return,
        };
        // Equal-score candidates are rotated by a per-producer seed:
        // communications from different producers spread across ports and
        // buses (instead of competing for the first few once the list is
        // truncated), while sibling communications of one result keep the
        // same bus order, so broadcasts to several register files align on
        // a single bus and respect the output fanout.
        let seed = producer.index() as u32;
        let nports = self.arch.num_write_ports().max(1) as u32;
        let nbuses = self.arch.num_buses().max(1) as u32;
        let operand_idx = self.universe.operand_index(consumer, slot);
        let target_rf = self.operand_stub[operand_idx].map(|s| s.rf);
        let opcode = self.universe.op(consumer).opcode;
        let (stubs, groups) = self.cache.write_stub_groups(fu);
        let runs = self.cache.write_stub_port_runs(fu);
        scored.clear();
        for g in groups {
            // A stub whose register file has no copy path to the
            // consumer's (possible) read files can never close this
            // communication: the read side is fixed by the consumer's
            // unit and no copy can move the value out of a dead-end
            // file. Offering such stubs lets a placement be accepted
            // whose communication is permanently unroutable, which
            // violates the §4.3 accept/reject contract — so they are
            // excluded rather than merely sorted last.
            let score = match target_rf {
                Some(rf) => match self.cache.copy_distance(g.rf, rf) {
                    Some(copies) => copies as i64 * 16,
                    None => continue,
                },
                None => {
                    // Consumer unscheduled: minimum copies to any file
                    // readable by any unit able to run the consumer.
                    match self.cache.rf_to_consumer(g.rf.index(), opcode, slot) {
                        Some(copies) => copies as i64,
                        None => continue,
                    }
                }
            };
            for ri in g.runs_start..g.runs_end {
                let rot_port = runs[ri as usize].port.wrapping_add(seed.wrapping_mul(7));
                scored.push((score, rot_port % nports, ri));
            }
        }
        // The full ranking sorts stubs by `(score, rotated port, rotated
        // bus)`. That key factors over the per-`(file, port)` runs: the
        // score is constant per file and the rotated port per run, and a
        // write port belongs to exactly one file, so `(score, rotated
        // port)` is a total order over runs. Within a run the buses are
        // sorted ascending, and ascending *rotated* bus order is the same
        // array rotated at the wrap point `split` (the first bus whose
        // rotation folds to zero). Emitting runs in sorted order and each
        // run's bus ring from `split` therefore reproduces exactly the
        // stub order of sorting every `(score, port, bus)` key — without
        // materialising or sorting per-stub keys.
        scored.sort_unstable();
        let max = self.config.max_stub_candidates;
        let taken = out.len();
        let shift = seed.wrapping_mul(13) % nbuses;
        let split = (nbuses - shift) % nbuses;
        'runs: for &(_, _, ri) in scored.iter() {
            let run = &runs[ri as usize];
            let buses = &stubs[run.start as usize..run.end as usize];
            let pivot = buses.partition_point(|s| (s.bus.index() as u32) < split);
            for &stub in buses[pivot..].iter().chain(buses[..pivot].iter()) {
                out.push(stub);
                if out.len() - taken >= max {
                    break 'runs;
                }
            }
        }
    }

    // ----- steps 4 and 5: route assignment and copy insertion -----

    fn close_comms(&mut self, op: SOpId, depth: usize, allow_copies: bool) -> bool {
        // The closing list lives across the `place` recursion below (copy
        // insertion re-enters `close_comms`), so it is drawn from a pool of
        // reusable buffers rather than a single scratch slot.
        let mut closing = self.scratch.closing_pool.pop().unwrap_or_default();
        closing.clear();
        for slot in 0..self.universe.op(op).num_operands {
            for &c in self.universe.comms_to_operand(op, slot) {
                if self.comm_closing(c) {
                    closing.push(c);
                }
            }
        }
        for &c in self.universe.comms_from(op) {
            if self.comm_closing(c) {
                closing.push(c);
            }
        }
        closing.sort_unstable();
        closing.dedup();
        // Smallest copy range first, so tight communications claim routes
        // before flexible ones.
        closing.sort_by_key(|&c| self.copy_range(c).map(|(lo, hi)| hi - lo).unwrap_or(0));

        let mut ok = true;
        for &cid in &closing {
            if self.comm_closed(cid) {
                continue; // may have been split while closing another
            }
            if !self.close_one(cid, depth, allow_copies) {
                ok = false;
                break;
            }
        }
        self.scratch.closing_pool.push(closing);
        ok
    }

    fn close_one(&mut self, cid: CommId, depth: usize, allow_copies: bool) -> bool {
        let c = self.universe.comm(cid).clone();
        let operand_idx = self.universe.operand_index(c.consumer, c.slot);
        let Some(rstub) = self.operand_stub[operand_idx] else {
            return self.fail_internal(
                "close_one",
                format!(
                    "{cid:?} closing but consumer {} has no read stub",
                    c.consumer
                ),
            );
        };
        let info = self.comm_info[cid.index()];
        let Some(wstub) = info.wstub else {
            return self.fail_internal(
                "close_one",
                format!(
                    "{cid:?} closing but producer {} has no write stub",
                    c.producer
                ),
            );
        };

        if wstub.rf == rstub.rf {
            return self.close_direct(cid, Route { wstub, rstub });
        }
        // Revise the write stub toward the read stub (the nested write
        // permutation of §4.3 step 2, simplified to a per-comm revision):
        // the best reachable file is the read stub's own file (a route), or
        // failing that the file with the fewest copies to it.
        if !info.wstub_frozen {
            self.revise_wstub_toward(cid, rstub.rf);
            let Some(w) = self.comm_info[cid.index()].wstub else {
                return self.fail_internal(
                    "close_one",
                    format!("{cid:?} lost its write stub during revision"),
                );
            };
            if w.rf == rstub.rf {
                return self.close_direct(cid, Route { wstub: w, rstub });
            }
        }
        let Some(wstub) = self.comm_info[cid.index()].wstub else {
            return self.fail_internal(
                "close_one",
                format!("{cid:?} lost its write stub during revision"),
            );
        };
        // Try revising the read stub to meet the write stub.
        if !self.operand_frozen[operand_idx] && self.try_revise_rstub(cid, wstub.rf) {
            let Some(r) = self.operand_stub[operand_idx] else {
                return self.fail_internal(
                    "close_one",
                    format!("{cid:?} read-stub revision succeeded but left no stub"),
                );
            };
            return self.close_direct(cid, Route { wstub, rstub: r });
        }
        // Step 5: connect the stubs with a copy operation.
        if debug_env(2) {
            let info2 = self.comm_info[cid.index()];
            eprintln!(
                "[closeone] {cid:?} prod={:?} cons={:?} slot={} wstub_frozen={} op_frozen={} wrf={:?} rrf={:?}",
                c.producer, c.consumer, c.slot, info2.wstub_frozen,
                self.operand_frozen[operand_idx],
                info2.wstub.map(|w| w.rf), rstub.rf
            );
        }
        self.insert_copy(cid, depth, allow_copies)
    }

    /// Re-chooses `cid`'s tentative write stub to minimise the copy
    /// distance to `target` (0 = forms a route). Keeps the old stub if no
    /// strictly better placement is possible.
    fn revise_wstub_toward(&mut self, cid: CommId, target: csched_machine::RfId) {
        let c = self.universe.comm(cid).clone();
        // Revision is an optional improvement: on a broken precondition
        // (unplaced producer or missing stub) keep the current stub rather
        // than failing the placement.
        let Some(p) = self.placements[c.producer.index()] else {
            return;
        };
        let block = self.block_of(c.producer);
        let info = self.comm_info[cid.index()];
        let Some(old) = info.wstub else {
            return;
        };
        let current = self
            .cache
            .copy_distance(old.rf, target)
            .map_or(u32::MAX, |d| d);
        if current == 0 {
            return;
        }
        // Candidate stubs strictly closer to `target`, scored per register
        // file via the cache's stub groups and collected into a reusable
        // scratch buffer.
        let mut candidates = std::mem::take(&mut self.scratch.revise);
        candidates.clear();
        let (stubs, groups) = self.cache.write_stub_groups(p.fu);
        for g in groups {
            let d = self
                .cache
                .copy_distance(g.rf, target)
                .map_or(u32::MAX, |d| d);
            if d >= current {
                continue;
            }
            for &stub in &stubs[g.start as usize..g.end as usize] {
                candidates.push((d, stub));
            }
        }
        candidates.sort_unstable_by_key(|&(d, s)| (d, s.port, s.bus));
        if candidates.is_empty() {
            self.scratch.revise = candidates;
            return;
        }
        let fanout = self.arch.fu(p.fu).output_fanout();
        let sp = self.savepoint();
        self.tables[block.index()].unplace_write_stub(p.completion(), old, c.producer);
        let mut placed = None;
        for &(_, stub) in &candidates {
            if self.tables[block.index()].place_write_stub(p.completion(), stub, c.producer, fanout)
            {
                placed = Some(stub);
                break;
            }
        }
        self.scratch.revise = candidates;
        match placed {
            Some(stub) => {
                self.set_comm_info(
                    cid,
                    CommInfo {
                        wstub: Some(stub),
                        ..info
                    },
                );
                self.emit(TraceEvent::WriteStubRevised {
                    comm: cid.index() as u32,
                    rf: stub.rf.index() as u32,
                });
            }
            None => self.rollback(&sp),
        }
    }

    fn close_direct(&mut self, cid: CommId, route: Route) -> bool {
        let c = self.universe.comm(cid).clone();
        let operand_idx = self.universe.operand_index(c.consumer, c.slot);
        self.set_comm_info(
            cid,
            CommInfo {
                wstub: Some(route.wstub),
                wstub_frozen: true,
                disposition: Some(CommDisposition::Direct(route)),
            },
        );
        let stub = self.operand_stub[operand_idx];
        self.set_operand(operand_idx, stub, true);
        self.emit(TraceEvent::RouteClosed {
            comm: cid.index() as u32,
            rf: route.wstub.rf.index() as u32,
            direct: true,
        });
        true
    }

    fn try_revise_rstub(&mut self, cid: CommId, target: csched_machine::RfId) -> bool {
        let c = self.universe.comm(cid).clone();
        // Like write-stub revision, this is best-effort: broken
        // preconditions mean no revision, not a failed placement.
        let Some(q) = self.placements[c.consumer.index()] else {
            return false;
        };
        let block = self.block_of(c.consumer);
        let operand_idx = self.universe.operand_index(c.consumer, c.slot);
        let Some(old) = self.operand_stub[operand_idx] else {
            return false;
        };
        let sp = self.savepoint();
        self.tables[block.index()].unplace_read_stub(q.cycle, old, c.consumer, c.slot);
        let arch = self.arch;
        for &stub in arch.read_stubs(q.fu, c.slot) {
            if stub.rf != target {
                continue;
            }
            if self.tables[block.index()].place_read_stub(q.cycle, stub, c.consumer, c.slot) {
                self.set_operand(operand_idx, Some(stub), false);
                return true;
            }
        }
        self.rollback(&sp);
        false
    }

    /// Attaches `cid` to an already-scheduled copy that moves the same
    /// value into the read stub's register file, if one exists and
    /// completes before the consumer reads.
    fn try_reuse_copy(
        &mut self,
        cid: CommId,
        c: &Comm,
        rstub: ReadStub,
        cross_block: bool,
    ) -> bool {
        let producer_block = self.block_of(c.producer);
        let read_at = if cross_block {
            None
        } else {
            self.comm_read_cycle(c)
        };
        let mut found: Option<(SOpId, WriteStub)> = None;
        for cand_idx in self.universe.num_kernel_ops()..self.universe.num_ops() {
            let cand = SOpId::from_raw(cand_idx);
            if self.universe.op(cand).block != producer_block {
                continue;
            }
            let Some(cp) = self.placements[cand.index()] else {
                continue;
            };
            // Must carry this very value (a distance-0 communication from
            // the same producer into the copy's operand).
            let feeds = self.universe.comms_to_operand(cand, 0).iter().any(|&c1| {
                let k = self.universe.comm(c1);
                k.producer == c.producer && k.distance == 0
            });
            if !feeds {
                continue;
            }
            // Must already deliver into the target file.
            let wstub = self.universe.comms_from(cand).iter().find_map(|&c2| {
                match self.comm_info[c2.index()].disposition {
                    Some(CommDisposition::Direct(r)) if r.wstub.rf == rstub.rf => Some(r.wstub),
                    _ => None,
                }
            });
            let Some(wstub) = wstub else { continue };
            // Must complete before the consumer reads.
            if let Some(read_at) = read_at {
                if cp.completion() + 1 > read_at {
                    continue;
                }
            }
            found = Some((cand, wstub));
            break;
        }
        let Some((cop, wstub)) = found else {
            return false;
        };
        let Some(cp) = self.placements[cop.index()] else {
            return false; // unreachable: `found` requires a placement
        };
        // Bump the shared write-stub claim for the new communication (an
        // identical claim, so it can only dedupe).
        let fanout = self.arch.fu(cp.fu).output_fanout();
        if !self.tables[producer_block.index()].place_write_stub(
            cp.completion(),
            wstub,
            cop,
            fanout,
        ) {
            return false;
        }
        self.universe.add_comm(Comm {
            producer: cop,
            consumer: c.consumer,
            slot: c.slot,
            distance: c.distance,
        });
        self.comm_info.push(CommInfo {
            wstub: Some(wstub),
            wstub_frozen: true,
            disposition: Some(CommDisposition::Direct(Route { wstub, rstub })),
        });
        self.journal.push(Undo::CommAdded);
        // Freeze the consumer operand and close the original through the
        // reused copy.
        let operand_idx = self.universe.operand_index(c.consumer, c.slot);
        let stub = self.operand_stub[operand_idx];
        self.set_operand(operand_idx, stub, true);
        let info = self.comm_info[cid.index()];
        self.set_comm_info(
            cid,
            CommInfo {
                disposition: Some(CommDisposition::Via(cop)),
                ..info
            },
        );
        self.emit(TraceEvent::CopyReused {
            comm: cid.index() as u32,
            copy: cop.index() as u32,
        });
        self.emit(TraceEvent::RouteClosed {
            comm: cid.index() as u32,
            rf: rstub.rf.index() as u32,
            direct: false,
        });
        true
    }

    fn insert_copy(&mut self, cid: CommId, depth: usize, allow_copies: bool) -> bool {
        if depth >= self.config.max_copy_depth {
            return false;
        }
        let c = self.universe.comm(cid).clone();
        let operand_idx = self.universe.operand_index(c.consumer, c.slot);
        let info = self.comm_info[cid.index()];
        let Some(wstub) = info.wstub else {
            return self.fail_internal(
                "insert_copy",
                format!("{cid:?} needs a copy but has no write stub"),
            );
        };
        let Some(rstub) = self.operand_stub[operand_idx] else {
            return self.fail_internal(
                "insert_copy",
                format!("{cid:?} needs a copy but its consumer has no read stub"),
            );
        };
        let Some((range_lo, range_hi)) = self.copy_range(cid) else {
            return false;
        };
        if range_lo > range_hi {
            return false;
        }
        let cross_block = self.block_of(c.producer) != self.block_of(c.consumer);
        let copy_block = self.block_of(c.producer);

        // Prefer reusing an existing copy of the same value into the same
        // register file: one copy operation can serve every communication
        // that needs the value there (the hardware reads the register as
        // often as it likes).
        if self.try_reuse_copy(cid, &c, rstub, cross_block) {
            return true;
        }
        if !allow_copies {
            return false; // the driver retries this window allowing copies
        }

        // Freeze the endpoints: the copy connects exactly these stubs.
        self.set_comm_info(
            cid,
            CommInfo {
                wstub: Some(wstub),
                wstub_frozen: true,
                disposition: None, // set to Via after the copy schedules
            },
        );
        let rs = self.operand_stub[operand_idx];
        self.set_operand(operand_idx, rs, true);
        self.emit(TraceEvent::StubsFrozen {
            comm: cid.index() as u32,
        });

        let ops_before = self.universe.num_ops();
        let comms_before = self.universe.num_comms();
        let operands_before = self.operand_stub.len();
        let copy = self.universe.add_copy(copy_block);
        // First leg: producer -> copy (same iteration frame); second leg:
        // copy -> consumer, carrying the original distance.
        self.universe.add_comm(Comm {
            producer: c.producer,
            consumer: copy,
            slot: 0,
            distance: 0,
        });
        self.universe.add_comm(Comm {
            producer: copy,
            consumer: c.consumer,
            slot: c.slot,
            distance: c.distance,
        });
        self.placements.push(None);
        self.comm_info.push(CommInfo {
            wstub: Some(wstub),
            wstub_frozen: true,
            disposition: None,
        });
        self.comm_info.push(CommInfo::default());
        self.operand_stub.push(None);
        self.operand_frozen.push(false);
        self.journal.push(Undo::CopyAdded {
            ops: ops_before,
            comms: comms_before,
            operands: operands_before,
        });
        self.set_comm_info(
            cid,
            CommInfo {
                wstub: Some(wstub),
                wstub_frozen: true,
                disposition: Some(CommDisposition::Via(copy)),
            },
        );

        // Schedule the copy like any other operation, restricted to the
        // copy range. Only units that can read the staged file directly can
        // complete the route without further copies; a couple of indirect
        // units are tried as well while recursion depth remains. The
        // ranked unit list is precomputed per source file in the shared
        // [`ConnCache`] (cloned `Arc` so `self` stays borrowable below).
        let cache = Arc::clone(&self.cache);
        let rank = cache.copy_rank(wstub.rf);
        let keep = if depth + 1 < self.config.max_copy_depth {
            rank.direct_count() + 2
        } else {
            rank.direct_count()
        };
        let ranked = rank.fus();
        let fus = &ranked[..ranked.len().min(keep.max(1))];

        let mut tries = 0usize;
        'search: for cycle in range_lo..=range_hi {
            for &(score, f) in fus {
                if score >= 100_000 {
                    continue;
                }
                let lat = match self.capability(copy, f) {
                    Some(cap) => cap.latency as i64,
                    None => continue,
                };
                // The copy must complete within the range (completion =
                // cycle + lat - 1 <= range_hi).
                if !cross_block && cycle + lat > range_hi + 1 {
                    continue;
                }
                tries += 1;
                if tries > self.config.max_copy_attempts || self.copy_work == 0 {
                    break 'search;
                }
                self.copy_work -= 1;
                if self.place(copy, f, cycle, depth + 1) {
                    self.emit(TraceEvent::CopyInserted {
                        comm: cid.index() as u32,
                        copy: copy.index() as u32,
                    });
                    self.emit(TraceEvent::RouteClosed {
                        comm: cid.index() as u32,
                        rf: rstub.rf.index() as u32,
                        direct: false,
                    });
                    return true;
                }
            }
        }
        if cross_block {
            // A cross-block copy range cannot grow by delaying the reader;
            // the driver widens the writer-side slack instead (the paper's
            // §4.5 backtracking, expressed as range growth).
            self.stats.cross_block_copy_failures += 1;
        }
        if debug_env(2) {
            eprintln!(
                "[copyfail] comm {cid:?} range {range_lo}..={range_hi} wrf={:?} rrf={:?} fus={:?} tries={tries}",
                wstub.rf,
                rstub.rf,
                fus.iter().take(4).collect::<Vec<_>>()
            );
        }
        false
    }

    // ----- finishing -----

    /// Whether every communication has been closed.
    pub fn all_closed(&self) -> bool {
        self.universe
            .comm_ids()
            .all(|c| self.comm_info[c.index()].disposition.is_some())
    }

    /// Consumes the engine into a [`Schedule`].
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::Internal`] if any operation is unplaced, any
    /// communication is unclosed, or an internal invariant violation was
    /// recorded during the run — all states the driver never reaches on a
    /// successful run, reported as typed errors rather than panics.
    pub fn into_schedule(mut self, has_loop: bool) -> Result<Schedule, SchedError> {
        if let Some(e) = self.take_internal_error() {
            return Err(e);
        }
        let mut placements: Vec<ScheduledOp> = Vec::with_capacity(self.placements.len());
        for (i, p) in self.placements.iter().enumerate() {
            match p {
                Some(p) => placements.push(*p),
                None => {
                    return Err(SchedError::internal(
                        "into_schedule",
                        format!("{} is unplaced in a finished run", SOpId::from_raw(i)),
                    ));
                }
            }
        }
        let mut dispositions: Vec<CommDisposition> = Vec::with_capacity(self.comm_info.len());
        for (i, info) in self.comm_info.iter().enumerate() {
            match info.disposition {
                Some(d) => dispositions.push(d),
                None => {
                    return Err(SchedError::internal(
                        "into_schedule",
                        format!("{} is unclosed in a finished run", CommId::from_raw(i)),
                    ));
                }
            }
        }
        let mut block_len = vec![0i64; self.kernel.blocks().len()];
        for (i, p) in placements.iter().enumerate() {
            let b = self.universe.ops[i].block.index();
            block_len[b] = block_len[b].max(p.completion() + 1);
        }
        let mut stats = self.stats;
        stats.copies_inserted = (self.universe.num_ops() - self.universe.num_kernel_ops()) as u64;
        Ok(Schedule {
            arch_name: self.arch.name().to_string(),
            kernel_name: self.kernel.name().to_string(),
            universe: self.universe,
            placements,
            dispositions,
            block_len,
            ii: has_loop.then_some(self.ii),
            stats,
        })
    }

    /// The communication-cost heuristic of §4.6 (eq 1): estimated copies
    /// divided by (1 + copy range) summed over the open communications
    /// that assigning `op` to `fu` at `cycle` would affect.
    pub fn comm_cost(&self, op: SOpId, fu: FuId, cycle: i64) -> f64 {
        let mut cost = 0.0f64;
        let bii = self.block_ii(self.block_of(op));
        for slot in 0..self.universe.op(op).num_operands {
            for &cid in self.universe.comms_to_operand(op, slot) {
                let c = self.universe.comm(cid);
                if self.comm_closed(cid) {
                    continue;
                }
                let (copies, prod_done) = match self.placements[c.producer.index()] {
                    Some(p) => {
                        let best = self
                            .arch
                            .read_stubs(fu, c.slot)
                            .iter()
                            .filter_map(|rs| self.cache.fu_to_rf(p.fu, rs.rf.index()))
                            .min();
                        (best, p.completion())
                    }
                    None => {
                        let kop = self.universe.op(c.producer).kernel_op;
                        let est = kop.map(|k| self.asap[k.index()]).unwrap_or(0);
                        (Some(0), est)
                    }
                };
                let Some(copies) = copies else {
                    cost += 1000.0;
                    continue;
                };
                if copies == 0 {
                    continue;
                }
                let range = (cycle + c.distance as i64 * bii - 1 - prod_done).max(0);
                cost += copies as f64 / (1.0 + range as f64);
            }
        }
        for &cid in self.universe.comms_from(op) {
            let c = self.universe.comm(cid);
            if self.comm_closed(cid) {
                continue;
            }
            let cap = match self.capability(op, fu) {
                Some(cap) => cap,
                None => continue,
            };
            let completion = cycle + cap.latency as i64 - 1;
            let (copies, read_at) = match self.placements[c.consumer.index()] {
                Some(q) => {
                    let best = self.cache.min_route_copies(fu, q.fu, c.slot);
                    (best, q.cycle + c.distance as i64 * bii)
                }
                None => {
                    let opcode = self.universe.op(c.consumer).opcode;
                    let best = self.cache.fu_to_consumer(fu, opcode, c.slot);
                    let kop = self.universe.op(c.consumer).kernel_op;
                    let est = kop.map(|k| self.asap[k.index()]).unwrap_or(0);
                    (best, est + c.distance as i64 * bii)
                }
            };
            let Some(copies) = copies else {
                cost += 1000.0;
                continue;
            };
            if copies == 0 {
                continue;
            }
            let range = (read_at - 1 - completion).max(0);
            cost += copies as f64 / (1.0 + range as f64);
        }
        cost
    }
}
