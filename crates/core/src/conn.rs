//! Dense connectivity cache for the placement inner loop (DESIGN.md §14).
//!
//! Every placement attempt scores candidate stubs by *copy distance* —
//! how many copy operations it takes to move a value between register
//! files (paper §4.6, eq 1). Those distances derive purely from the
//! [`Architecture`]: which units write which files, which buses reach
//! which ports. The engine used to memoise them in per-engine hashmaps,
//! paying a hash probe per score and rebuilding the memo for every II
//! attempt; on the distributed Imagine machine (~370 write stubs per
//! unit) that was the dominant cost of scheduling.
//!
//! [`ConnCache`] precomputes the whole family once per architecture into
//! flat arrays indexed by dense ids, so the hot path is a bounds-checked
//! load. It is independent of the initiation interval and the scheduler
//! configuration, which makes it shareable across the entire II search
//! *and* every rung of the retry ladder (`Arc`-held by each
//! [`Engine`](crate::Engine)):
//!
//! - [`ConnCache::fus_for`]: units able to execute an opcode, in
//!   architecture order (replaces an allocation per query);
//! - [`ConnCache::fu_to_rf`] / [`ConnCache::producer_to_rf`] /
//!   [`ConnCache::min_route_copies`] / [`ConnCache::fu_to_consumer`] /
//!   [`ConnCache::rf_to_consumer`]: the five copy-distance families the
//!   engine's eq-1 scoring asks for, as O(1) table reads (`u32::MAX`
//!   encodes *unreachable*, so each table doubles as a reachability
//!   mask);
//! - [`ConnCache::write_stub_groups`]: each unit's write stubs regrouped
//!   by target register file, so per-(FU, RF) candidate enumeration and
//!   stub revision walk one short slice and compute one distance per
//!   *file* instead of one per *stub*;
//! - [`ConnCache::copy_rank`]: the copy-unit preference order used by
//!   copy insertion (paper §4.3 step 5), precomputed per staging file.
//!
//! Nothing in the cache depends on scheduling state, so sharing it across
//! attempts cannot change any placement decision — the schedule-identity
//! invariant that lets `bench-json --compare` gate the rebuild byte-for-
//! byte (see DESIGN.md §14).

use csched_machine::{Architecture, CopyConnectivity, FuId, Opcode, RfId, WriteStub};

const NONE: u32 = u32::MAX;

/// One unit's write stubs that target a single register file. `start..end`
/// indexes the regrouped stub array of [`ConnCache::write_stub_groups`].
#[derive(Clone, Copy, Debug)]
pub struct WstubGroup {
    /// The register file every stub in the group writes.
    pub rf: RfId,
    /// First stub of the group (inclusive).
    pub start: u32,
    /// One past the last stub of the group.
    pub end: u32,
    /// First port run of the group in [`ConnCache::write_stub_port_runs`].
    pub runs_start: u32,
    /// One past the group's last port run.
    pub runs_end: u32,
}

/// A maximal run of one unit's write stubs sharing a `(file, port)` pair,
/// with buses in ascending order. The engine's write-candidate ranking
/// sorts stubs by `(score, rotated port, rotated bus)`; the score is
/// constant per file and the rotated port per run, so ranking runs and
/// walking each run's bus ring in rotated order reproduces the full sort
/// without ever materialising per-stub keys.
#[derive(Clone, Copy, Debug)]
pub struct PortRun {
    /// Raw index of the write port every stub in the run uses.
    pub port: u32,
    /// First stub of the run (inclusive) in the regrouped stub array.
    pub start: u32,
    /// One past the last stub of the run.
    pub end: u32,
}

/// Copy-capable units ranked for staging a value out of one register
/// file: direct readers first (score 0), then reachable units by copy
/// distance (8 + d), unreachable last (100 000) — the exact scoring of
/// the engine's copy insertion, hoisted out of the attempt loop.
#[derive(Clone, Debug, Default)]
pub struct CopyRank {
    fus: Vec<(i64, FuId)>,
    direct: usize,
}

impl CopyRank {
    /// The ranked `(score, unit)` list, best first.
    pub fn fus(&self) -> &[(i64, FuId)] {
        &self.fus
    }

    /// How many leading entries read the staging file directly (score 0).
    pub fn direct_count(&self) -> usize {
        self.direct
    }
}

/// The precomputed connectivity tables. See the module docs.
#[derive(Clone, Debug)]
pub struct ConnCache {
    conn: CopyConnectivity,
    num_rfs: usize,
    num_fus: usize,
    /// Max operand slots of any unit (>= 1).
    max_slots: usize,
    num_opcodes: usize,
    fus_for: Vec<Vec<FuId>>,
    /// `[fu * num_rfs + rf]`: min copies from `fu`'s writable files to `rf`.
    fu_to_rf: Vec<u32>,
    /// `[(p * num_fus + q) * max_slots + slot]`: min copies on any route
    /// from `p`'s output to `q`'s operand `slot`.
    route: Vec<u32>,
    /// `[(fu * num_opcodes + op) * max_slots + slot]`: min copies from `fu`
    /// to any unit able to run `op`.
    fu_to_consumer: Vec<u32>,
    /// `[(rf * num_opcodes + op) * max_slots + slot]`: min copies from file
    /// `rf` to any file readable by a unit able to run `op`.
    rf_to_consumer: Vec<u32>,
    /// `[op * num_rfs + rf]`: min copies from any unit able to run `op`
    /// into file `rf`.
    producer_to_rf: Vec<u32>,
    /// Per unit: its write stubs regrouped by target file.
    wstubs: Vec<Vec<WriteStub>>,
    wstub_groups: Vec<Vec<WstubGroup>>,
    /// Per unit: the `(file, port)` runs of its regrouped write stubs.
    wstub_runs: Vec<Vec<PortRun>>,
    /// Per register file: ranked copy units for staging a value out of it.
    copy_rank: Vec<CopyRank>,
}

#[inline]
fn opx(op: Opcode) -> usize {
    op as usize
}

#[inline]
fn lift(d: u32) -> Option<u32> {
    (d != NONE).then_some(d)
}

#[inline]
fn fold(best: &mut u32, d: Option<u32>) {
    if let Some(d) = d {
        if d < *best {
            *best = d;
        }
    }
}

impl ConnCache {
    /// Builds every table for `arch`. Cost is a few hundred thousand
    /// integer operations (dominated by the Floyd–Warshall inside
    /// [`Architecture::copy_connectivity`]) — comparable to *one* engine
    /// construction under the old per-engine memoisation, after which
    /// every II attempt and retry rung reads for free.
    pub fn new(arch: &Architecture) -> Self {
        let conn = arch.copy_connectivity();
        let num_rfs = arch.num_rfs();
        let num_fus = arch.num_fus();
        let max_slots = arch
            .fu_ids()
            .map(|f| arch.fu(f).num_inputs())
            .max()
            .unwrap_or(0)
            .max(1);
        let num_opcodes = Opcode::ALL.len();
        debug_assert!(Opcode::ALL
            .iter()
            .enumerate()
            .all(|(i, &op)| op as usize == i));

        let fus_for: Vec<Vec<FuId>> = Opcode::ALL.iter().map(|&op| arch.fus_for(op)).collect();

        // Opcodes with identical capable-unit lists produce identical rows
        // in every per-opcode table below; map each opcode to the first
        // with the same list and compute each distinct row once.
        let mut class_rep: Vec<usize> = (0..num_opcodes).collect();
        for op in 0..num_opcodes {
            for prev in 0..op {
                if fus_for[prev] == fus_for[op] {
                    class_rep[op] = prev;
                    break;
                }
            }
        }

        // Distinct target files of each unit's write stubs (order of first
        // appearance; only the per-file distance minimum is consumed, so
        // order cannot affect results).
        let mut writable: Vec<Vec<RfId>> = vec![Vec::new(); num_fus];
        let mut writable_seen = vec![false; num_rfs];
        for fu in arch.fu_ids() {
            let list = &mut writable[fu.index()];
            writable_seen.iter_mut().for_each(|m| *m = false);
            for s in arch.write_stubs(fu) {
                if !writable_seen[s.rf.index()] {
                    writable_seen[s.rf.index()] = true;
                    list.push(s.rf);
                }
            }
        }

        // Units with identical writable-file sets share their `fu_to_rf`
        // row (on the distributed machine every unit writes every file, so
        // one row serves all sixteen units).
        let mut fu_rep: Vec<usize> = (0..num_fus).collect();
        for fu in 0..num_fus {
            for prev in 0..fu {
                if writable[prev] == writable[fu] {
                    fu_rep[fu] = prev;
                    break;
                }
            }
        }

        let mut fu_to_rf = vec![NONE; num_fus * num_rfs];
        for fu in 0..num_fus {
            if fu_rep[fu] != fu {
                let rep = fu_rep[fu];
                fu_to_rf.copy_within(rep * num_rfs..(rep + 1) * num_rfs, fu * num_rfs);
                continue;
            }
            for rf in 0..num_rfs {
                let target = RfId::from_raw(rf);
                let best = &mut fu_to_rf[fu * num_rfs + rf];
                for &src in &writable[fu] {
                    fold(best, conn.copy_distance(src, target));
                }
            }
        }

        // Slots past a unit's input count stay `NONE`: `read_stubs` is only
        // defined for `slot < num_inputs`, and no caller asks about a slot
        // a capable unit does not have.
        let mut route = vec![NONE; num_fus * num_fus * max_slots];
        for p in 0..num_fus {
            for q in 0..num_fus {
                let qid = FuId::from_raw(q);
                for slot in 0..arch.fu(qid).num_inputs().min(max_slots) {
                    let best = &mut route[(p * num_fus + q) * max_slots + slot];
                    for rs in arch.read_stubs(qid, slot) {
                        // min over p's writable files is already folded
                        // into `fu_to_rf`.
                        fold(best, lift(fu_to_rf[p * num_rfs + rs.rf.index()]));
                    }
                }
            }
        }

        let mut fu_to_consumer = vec![NONE; num_fus * num_opcodes * max_slots];
        for fu in 0..num_fus {
            for (op, fus) in fus_for.iter().enumerate() {
                let rep = class_rep[op];
                for slot in 0..max_slots {
                    let idx = (fu * num_opcodes + op) * max_slots + slot;
                    if rep != op {
                        fu_to_consumer[idx] =
                            fu_to_consumer[(fu * num_opcodes + rep) * max_slots + slot];
                        continue;
                    }
                    let best = &mut fu_to_consumer[idx];
                    for f in fus {
                        fold(
                            best,
                            lift(route[(fu * num_fus + f.index()) * max_slots + slot]),
                        );
                    }
                }
            }
        }

        // Readable-file mask per (opcode, slot), then a min-to-mask sweep
        // per source file.
        let mut rf_to_consumer = vec![NONE; num_rfs * num_opcodes * max_slots];
        let mut mask = vec![false; num_rfs];
        for (op, fus) in fus_for.iter().enumerate() {
            let rep = class_rep[op];
            if rep != op {
                for slot in 0..max_slots {
                    for rf in 0..num_rfs {
                        rf_to_consumer[(rf * num_opcodes + op) * max_slots + slot] =
                            rf_to_consumer[(rf * num_opcodes + rep) * max_slots + slot];
                    }
                }
                continue;
            }
            for slot in 0..max_slots {
                mask.iter_mut().for_each(|m| *m = false);
                for &f in fus {
                    if slot >= arch.fu(f).num_inputs() {
                        continue;
                    }
                    for rs in arch.read_stubs(f, slot) {
                        mask[rs.rf.index()] = true;
                    }
                }
                for rf in 0..num_rfs {
                    let from = RfId::from_raw(rf);
                    let best = &mut rf_to_consumer[(rf * num_opcodes + op) * max_slots + slot];
                    for (target, &in_mask) in mask.iter().enumerate() {
                        if in_mask {
                            fold(best, conn.copy_distance(from, RfId::from_raw(target)));
                        }
                    }
                }
            }
        }

        let mut producer_to_rf = vec![NONE; num_opcodes * num_rfs];
        for (op, fus) in fus_for.iter().enumerate() {
            let rep = class_rep[op];
            if rep != op {
                producer_to_rf.copy_within(rep * num_rfs..(rep + 1) * num_rfs, op * num_rfs);
                continue;
            }
            for rf in 0..num_rfs {
                let best = &mut producer_to_rf[op * num_rfs + rf];
                for f in fus {
                    fold(best, lift(fu_to_rf[f.index() * num_rfs + rf]));
                }
            }
        }

        // Regroup each unit's write stubs by target file. Group order and
        // intra-group order are canonical (file, then port, then bus); the
        // consumers sort by total orders in which (port, bus) is a unique
        // key, so the regrouping cannot change any candidate ranking.
        let mut wstubs: Vec<Vec<WriteStub>> = Vec::with_capacity(num_fus);
        let mut wstub_groups: Vec<Vec<WstubGroup>> = Vec::with_capacity(num_fus);
        let mut wstub_runs: Vec<Vec<PortRun>> = Vec::with_capacity(num_fus);
        let mut rf_buckets: Vec<Vec<WriteStub>> = vec![Vec::new(); num_rfs];
        for fu in arch.fu_ids() {
            // Bucket by target file, then sort each (small) bucket by
            // `(port, bus)`: equivalent to one sort by `(rf, port, bus)`
            // — a total order, stubs being unique — at near-linear cost.
            for &s in arch.write_stubs(fu) {
                rf_buckets[s.rf.index()].push(s);
            }
            let mut stubs: Vec<WriteStub> = Vec::with_capacity(arch.write_stubs(fu).len());
            for bucket in rf_buckets.iter_mut() {
                bucket.sort_unstable_by_key(|s| {
                    ((s.port.index() as u64) << 20) | s.bus.index() as u64
                });
                stubs.extend_from_slice(bucket);
                bucket.clear();
            }
            let mut groups: Vec<WstubGroup> = Vec::new();
            let mut runs: Vec<PortRun> = Vec::new();
            for (i, s) in stubs.iter().enumerate() {
                let idx = i as u32;
                let same_group = matches!(groups.last(), Some(g) if g.rf == s.rf);
                if let Some(g) = groups.last_mut().filter(|_| same_group) {
                    g.end = idx + 1;
                } else {
                    groups.push(WstubGroup {
                        rf: s.rf,
                        start: idx,
                        end: idx + 1,
                        runs_start: runs.len() as u32,
                        runs_end: runs.len() as u32,
                    });
                }
                let same_run =
                    same_group && matches!(runs.last(), Some(r) if r.port == s.port.index() as u32);
                if let Some(r) = runs.last_mut().filter(|_| same_run) {
                    r.end = idx + 1;
                } else {
                    runs.push(PortRun {
                        port: s.port.index() as u32,
                        start: idx,
                        end: idx + 1,
                    });
                    if let Some(g) = groups.last_mut() {
                        g.runs_end = runs.len() as u32;
                    }
                }
            }
            wstubs.push(stubs);
            wstub_groups.push(groups);
            wstub_runs.push(runs);
        }

        // Copy-unit ranking per staging file (the §4.3 step 5 order).
        let copy_fus = &fus_for[opx(Opcode::Copy)];
        let copy_rank: Vec<CopyRank> = (0..num_rfs)
            .map(|rf| {
                let from = RfId::from_raw(rf);
                let mut fus: Vec<(i64, FuId)> = copy_fus
                    .iter()
                    .map(|&f| {
                        let direct = arch.read_stubs(f, 0).iter().any(|s| s.rf == from);
                        let reach = arch
                            .read_stubs(f, 0)
                            .iter()
                            .filter_map(|s| conn.copy_distance(from, s.rf))
                            .min();
                        let base = if direct {
                            0
                        } else {
                            match reach {
                                Some(d) => 8 + d as i64,
                                None => 100_000,
                            }
                        };
                        (base, f)
                    })
                    .collect();
                // `(score, unit)` is a total order (units are distinct).
                fus.sort_unstable_by_key(|&(s, f)| (s, f));
                let direct = fus.iter().filter(|&&(s, _)| s == 0).count();
                CopyRank { fus, direct }
            })
            .collect();

        ConnCache {
            conn,
            num_rfs,
            num_fus,
            max_slots,
            num_opcodes,
            fus_for,
            fu_to_rf,
            route,
            fu_to_consumer,
            rf_to_consumer,
            producer_to_rf,
            wstubs,
            wstub_groups,
            wstub_runs,
            copy_rank,
        }
    }

    /// The underlying copy-connectivity analysis (Appendix A).
    pub fn connectivity(&self) -> &CopyConnectivity {
        &self.conn
    }

    /// Minimum copies to move a value from file `from` to file `to`.
    #[inline]
    pub fn copy_distance(&self, from: RfId, to: RfId) -> Option<u32> {
        self.conn.copy_distance(from, to)
    }

    /// Units able to execute `op`, in architecture order.
    #[inline]
    pub fn fus_for(&self, op: Opcode) -> &[FuId] {
        &self.fus_for[opx(op)]
    }

    /// Min copies from a file writable by `fu` into file `rf`.
    #[inline]
    pub fn fu_to_rf(&self, fu: FuId, rf: usize) -> Option<u32> {
        lift(self.fu_to_rf[fu.index() * self.num_rfs + rf])
    }

    /// Min copies on any route from `p`'s output to `q`'s operand `slot`.
    #[inline]
    pub fn min_route_copies(&self, p: FuId, q: FuId, slot: usize) -> Option<u32> {
        if slot >= self.max_slots {
            return None;
        }
        lift(self.route[(p.index() * self.num_fus + q.index()) * self.max_slots + slot])
    }

    /// Min copies from `fu` to operand `slot` of any unit able to run `op`.
    #[inline]
    pub fn fu_to_consumer(&self, fu: FuId, op: Opcode, slot: usize) -> Option<u32> {
        if slot >= self.max_slots {
            return None;
        }
        lift(self.fu_to_consumer[(fu.index() * self.num_opcodes + opx(op)) * self.max_slots + slot])
    }

    /// Min copies from file `rf` to a file readable by operand `slot` of
    /// any unit able to run `op`.
    #[inline]
    pub fn rf_to_consumer(&self, rf: usize, op: Opcode, slot: usize) -> Option<u32> {
        if slot >= self.max_slots {
            return None;
        }
        lift(self.rf_to_consumer[(rf * self.num_opcodes + opx(op)) * self.max_slots + slot])
    }

    /// Min copies from any unit able to run `op` into file `rf`.
    #[inline]
    pub fn producer_to_rf(&self, op: Opcode, rf: usize) -> Option<u32> {
        lift(self.producer_to_rf[opx(op) * self.num_rfs + rf])
    }

    /// `fu`'s write stubs regrouped by target file: the stub array and the
    /// per-file group ranges. The hot candidate scan computes one copy
    /// distance per *group* and applies it to every stub in the range.
    #[inline]
    pub fn write_stub_groups(&self, fu: FuId) -> (&[WriteStub], &[WstubGroup]) {
        (&self.wstubs[fu.index()], &self.wstub_groups[fu.index()])
    }

    /// The `(file, port)` runs of `fu`'s regrouped write stubs, indexed by
    /// the `runs_start..runs_end` range of each [`WstubGroup`]. See
    /// [`PortRun`] for how the engine uses them to rank candidates without
    /// sorting stubs.
    pub fn write_stub_port_runs(&self, fu: FuId) -> &[PortRun] {
        &self.wstub_runs[fu.index()]
    }

    /// Ranked copy units for staging a value out of `rf`.
    #[inline]
    pub fn copy_rank(&self, rf: RfId) -> &CopyRank {
        &self.copy_rank[rf.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csched_machine::imagine;

    /// Every dense table must agree with the brute-force formulas the
    /// engine used to memoise per instance.
    #[test]
    fn tables_match_brute_force() {
        for arch in [imagine::central(), imagine::distributed()] {
            let cache = ConnCache::new(&arch);
            let conn = arch.copy_connectivity();
            for fu in arch.fu_ids() {
                for rf in 0..arch.num_rfs() {
                    let target = RfId::from_raw(rf);
                    let brute = arch
                        .write_stubs(fu)
                        .iter()
                        .filter_map(|s| conn.copy_distance(s.rf, target))
                        .min();
                    assert_eq!(cache.fu_to_rf(fu, rf), brute, "fu_to_rf {fu:?} {rf}");
                }
                for q in arch.fu_ids() {
                    for slot in 0..3 {
                        assert_eq!(
                            cache.min_route_copies(fu, q, slot),
                            conn.min_route_copies(&arch, fu, q, slot),
                            "route {fu:?} {q:?} {slot}"
                        );
                    }
                }
            }
            for &op in Opcode::ALL {
                assert_eq!(cache.fus_for(op), arch.fus_for(op).as_slice());
                for rf in 0..arch.num_rfs() {
                    let brute = arch
                        .fus_for(op)
                        .into_iter()
                        .filter_map(|f| cache.fu_to_rf(f, rf))
                        .min();
                    assert_eq!(cache.producer_to_rf(op, rf), brute);
                    let from = RfId::from_raw(rf);
                    for slot in 0..2 {
                        let brute = arch
                            .fus_for(op)
                            .into_iter()
                            .flat_map(|f| arch.readable_rfs(f, slot))
                            .filter_map(|r| conn.copy_distance(from, r))
                            .min();
                        assert_eq!(cache.rf_to_consumer(rf, op, slot), brute);
                    }
                }
                for fu in arch.fu_ids() {
                    for slot in 0..2 {
                        let brute = arch
                            .fus_for(op)
                            .into_iter()
                            .filter_map(|f| conn.min_route_copies(&arch, fu, f, slot))
                            .min();
                        assert_eq!(cache.fu_to_consumer(fu, op, slot), brute);
                    }
                }
            }
        }
    }

    /// The regrouped stub arrays are a permutation of the architecture's
    /// stub lists, partitioned by target file.
    #[test]
    fn stub_groups_partition_the_stub_list() {
        let arch = imagine::distributed();
        let cache = ConnCache::new(&arch);
        for fu in arch.fu_ids() {
            let (stubs, groups) = cache.write_stub_groups(fu);
            assert_eq!(stubs.len(), arch.write_stubs(fu).len());
            let mut seen: Vec<WriteStub> = stubs.to_vec();
            let mut orig: Vec<WriteStub> = arch.write_stubs(fu).to_vec();
            let key = |s: &WriteStub| (s.rf, s.port, s.bus);
            seen.sort_by_key(key);
            orig.sort_by_key(key);
            assert_eq!(seen, orig);
            let mut covered = 0usize;
            for g in groups {
                assert_eq!(g.start as usize, covered);
                assert!(g.end > g.start);
                for s in &stubs[g.start as usize..g.end as usize] {
                    assert_eq!(s.rf, g.rf);
                }
                covered = g.end as usize;
            }
            assert_eq!(covered, stubs.len());
        }
    }

    /// Copy ranking matches the scoring the engine's copy insertion used
    /// to recompute per attempt.
    #[test]
    fn copy_rank_matches_insert_copy_scoring() {
        let arch = imagine::clustered(2);
        let cache = ConnCache::new(&arch);
        let conn = arch.copy_connectivity();
        for rf in arch.rf_ids() {
            let mut brute: Vec<(i64, FuId)> = arch
                .fus_for(Opcode::Copy)
                .into_iter()
                .map(|f| {
                    let direct = arch.read_stubs(f, 0).iter().any(|s| s.rf == rf);
                    let reach = arch
                        .read_stubs(f, 0)
                        .iter()
                        .filter_map(|s| conn.copy_distance(rf, s.rf))
                        .min();
                    let base = if direct {
                        0
                    } else {
                        match reach {
                            Some(d) => 8 + d as i64,
                            None => 100_000,
                        }
                    };
                    (base, f)
                })
                .collect();
            brute.sort_by_key(|&(s, f)| (s, f));
            let rank = cache.copy_rank(rf);
            assert_eq!(rank.fus(), brute.as_slice());
            assert_eq!(
                rank.direct_count(),
                brute.iter().filter(|&&(s, _)| s == 0).count()
            );
        }
    }
}
