//! # csched-core — communication scheduling
//!
//! The primary contribution of Mattson et al., *Communication Scheduling*
//! (ASPLOS 2000): a VLIW scheduler component that enables scheduling to
//! architectures in which functional units share buses and register-file
//! ports. Every producer→consumer *communication* is made explicit and
//! composed incrementally from a write stub, zero or more copy operations,
//! and a read stub; stubs are tentatively allocated as each endpoint
//! operation is scheduled and frozen into routes when the communication
//! closes.
//!
//! The crate provides:
//!
//! - [`schedule_kernel`]: the full scheduler (UAS-style list scheduling
//!   for straight-line blocks, modulo scheduling for the software-pipelined
//!   loop, both gated by communication scheduling);
//! - [`Engine`]: the placement accept/reject machinery (the five steps of
//!   paper §4.3), reusable inside other scheduling algorithms;
//! - [`validate`]: an independent checker that re-derives every resource
//!   and dependence constraint from a finished [`Schedule`];
//! - [`regalloc`]: the §7 register-pressure post-pass;
//! - [`exact`]: a branch-and-bound oracle that certifies the *minimum*
//!   initiation interval of small cells, turning the heuristic-vs-exact
//!   gap into a measurable quantity.
//!
//! ## Quick start
//!
//! ```
//! use csched_core::{schedule_kernel, SchedulerConfig};
//! use csched_ir::KernelBuilder;
//! use csched_machine::{imagine, Opcode};
//!
//! // out[i] = in[i] * 3 on the distributed register file machine.
//! let mut kb = KernelBuilder::new("scale3");
//! let input = kb.region("in", true);
//! let output = kb.region("out", true);
//! let lp = kb.loop_block("body");
//! let i = kb.loop_var(lp, 0i64.into());
//! let x = kb.load(lp, input, i.into(), 0i64.into());
//! let y = kb.push(lp, Opcode::IMul, [x.into(), 3i64.into()]);
//! kb.store(lp, output, i.into(), 0i64.into(), y.into());
//! let i1 = kb.push(lp, Opcode::IAdd, [i.into(), 1i64.into()]);
//! kb.set_update(i, i1.into());
//! let kernel = kb.build()?;
//!
//! let arch = imagine::distributed();
//! let schedule = schedule_kernel(&arch, &kernel, SchedulerConfig::default())?;
//! assert!(schedule.ii().unwrap() >= 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
// The scheduler must be panic-free on well-formed inputs: outside of test
// code, potential panics must be converted to `SchedError` (or a skipped
// degraded state) rather than unwrapped.
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

pub mod budget;
mod config;
pub mod conn;
mod driver;
mod engine;
mod error;
pub mod exact;
pub mod explain;
pub mod faultinject;
pub mod metrics;
pub mod regalloc;
mod retry;
mod schedule;
mod table;
pub mod trace;
mod universe;
pub mod validate;

pub use budget::{BudgetStop, CancelToken, StepBudget, WatchGuard, Watchdog};
pub use config::{ScheduleOrder, SchedulerConfig};
pub use conn::ConnCache;
pub use driver::{res_mii, schedule_kernel, schedule_kernel_budgeted, schedule_kernel_traced};
pub use engine::{Engine, OrderEdge};
pub use error::SchedError;
pub use exact::{certify_min_ii, certify_min_ii_traced, ExactConfig, ExactReport, ExactVerdict};
pub use explain::{explain, Binding, Counterfactual, Explanation, ResourceRank};
pub use metrics::ScheduleMetrics;
pub use retry::{
    schedule_kernel_anytime, schedule_kernel_anytime_traced, schedule_kernel_with_retry,
    schedule_kernel_with_retry_budgeted, schedule_kernel_with_retry_traced, AnytimeReport, Attempt,
    RetryPolicy, ScheduleReport,
};
pub use schedule::{CommDisposition, PipelineSlot, Route, SchedStats, Schedule, ScheduledOp};
pub use table::{ResourceTable, TableMode};
pub use trace::{decision_filter, CappingSink, JsonlSink, RingBufferSink, TraceEvent, TraceSink};
pub use universe::{Comm, CommId, SOp, SOpId, Universe};

// Compile-time Send/Sync audit of the scheduling pipeline's inputs and
// outputs. Parallel harnesses (`csched_eval::explore`, `table1 --jobs`)
// share architectures, kernels, and configurations across scoped worker
// threads by reference and move schedules/errors back across thread
// boundaries; these assertions pin that contract so an accidental
// `Rc`/`RefCell`/raw-pointer field turns into a compile error here, next
// to the scheduler, rather than a confusing one in a downstream crate.
// `StepBudget` is deliberately only `Send` (interior `Cell` mutability;
// cross-thread control goes through `CancelToken`), so it is asserted
// separately and must *not* appear in the `Sync` list.
const _: () = {
    const fn shared_across_threads<T: Send + Sync>() {}
    const fn moved_between_threads<T: Send>() {}
    shared_across_threads::<csched_machine::Architecture>();
    shared_across_threads::<csched_ir::Kernel>();
    shared_across_threads::<SchedulerConfig>();
    shared_across_threads::<Schedule>();
    shared_across_threads::<SchedError>();
    shared_across_threads::<ScheduleReport>();
    shared_across_threads::<ScheduleMetrics>();
    shared_across_threads::<CancelToken>();
    moved_between_threads::<StepBudget>();
};
