//! The scheduler driver: the outer loop of Figure 11.
//!
//! Straight-line blocks are list-scheduled; the loop block is modulo
//! scheduled with an initiation-interval search starting at
//! `max(RecMII, ResMII)`. Operations are visited in *operation order*
//! (decreasing critical-path height, §4.6) by default, or in cycle order
//! for the ablation configuration. Every tentative placement is accepted
//! or rejected by communication scheduling ([`Engine::place`]).

use std::sync::Arc;

use csched_ir::{BlockId, DepGraph, DepKind, Kernel, OpId};
use csched_machine::{Architecture, FuId, Opcode};

use crate::budget::StepBudget;
use crate::config::{ScheduleOrder, SchedulerConfig};
use crate::conn::ConnCache;
use crate::engine::{Engine, OrderEdge};
use crate::schedule::Schedule;
use crate::trace::{TraceEvent, TraceSink};
use crate::universe::SOpId;

pub use crate::error::SchedError;

/// Builds the [`SchedError::NotCopyConnected`] diagnostic from the
/// connectivity analysis, resolving unit names.
pub(crate) fn not_copy_connected(arch: &Architecture) -> SchedError {
    let conn = arch.copy_connectivity();
    let mut violations: Vec<String> = conn
        .violations()
        .iter()
        .take(4)
        .map(|&(p, q, slot)| {
            format!(
                "{} cannot reach {} input {slot} by copies",
                arch.fu(p).name(),
                arch.fu(q).name()
            )
        })
        .collect();
    let extra = conn.violations().len().saturating_sub(violations.len());
    if extra > 0 {
        violations.push(format!("... and {extra} more"));
    }
    SchedError::NotCopyConnected { violations }
}

/// Builds the [`SchedError::BlockFailed`] diagnostic, resolving the block
/// name and opcode.
fn block_failed(kernel: &Kernel, block: BlockId, op: OpId) -> SchedError {
    SchedError::BlockFailed {
        block,
        block_name: kernel.block(block).name().to_string(),
        op,
        opcode: kernel.op(op).opcode(),
    }
}

/// The resource-constrained minimum initiation interval: each operation
/// spreads its issue-occupancy over the units able to execute it.
pub fn res_mii(arch: &Architecture, kernel: &Kernel) -> u32 {
    let Some(lb) = kernel.loop_block() else {
        return 1;
    };
    let mut load = vec![0.0f64; arch.num_fus()];
    for &op in kernel.block(lb).ops() {
        let opcode = kernel.op(op).opcode();
        let fus = arch.fus_for(opcode);
        if fus.is_empty() {
            continue;
        }
        let share = 1.0 / fus.len() as f64;
        for fu in fus {
            let interval = arch
                .fu(fu)
                .capability(opcode)
                .map(|c| c.issue_interval)
                .unwrap_or(1);
            load[fu.index()] += share * interval as f64;
        }
    }
    load.iter().fold(1.0f64, |a, &b| a.max(b)).ceil() as u32
}

/// Minimum latency of `opcode` over all capable units.
pub(crate) fn min_latency(arch: &Architecture, opcode: Opcode) -> u32 {
    arch.fus_for(opcode)
        .into_iter()
        .filter_map(|f| arch.fu(f).capability(opcode))
        .map(|c| c.latency)
        .min()
        .unwrap_or(1)
}

/// Everything about an `(Architecture, Kernel)` pair that is independent
/// of the scheduler configuration and the initiation interval: the dense
/// connectivity cache, the dependence graph, memory-order edges, ASAP
/// levels, and the minimum II.
///
/// Building one of these is the expensive front half of
/// [`schedule_kernel`]; the II search inside a single call shares it
/// across every II attempt, and the retry ladder in [`crate::retry`]
/// builds one per `(arch, kernel)` and reuses it for the whole ladder
/// (every rung varies only the [`SchedulerConfig`], which no `Prepared`
/// field depends on).
pub(crate) struct Prepared {
    cache: Arc<ConnCache>,
    graph: DepGraph,
    order_edges: Vec<OrderEdge>,
    asap: Vec<i64>,
    mii: u32,
    has_loop: bool,
}

/// Runs the configuration-independent front half of [`schedule_kernel`]:
/// connectivity and capability checks, dependence analysis, and the dense
/// connectivity cache build.
///
/// # Errors
///
/// [`SchedError::NotCopyConnected`] / [`SchedError::NoCapableUnit`] when
/// `arch` cannot execute `kernel` at all.
pub(crate) fn prepare(arch: &Architecture, kernel: &Kernel) -> Result<Prepared, SchedError> {
    let cache = Arc::new(ConnCache::new(arch));
    if !cache.connectivity().is_copy_connected() {
        return Err(not_copy_connected(arch));
    }
    for op in kernel.op_ids() {
        if cache.fus_for(kernel.op(op).opcode()).is_empty() {
            return Err(SchedError::NoCapableUnit {
                opcode: kernel.op(op).opcode(),
            });
        }
    }

    let graph = DepGraph::build(kernel, |opcode| min_latency(arch, opcode));
    let order_edges: Vec<OrderEdge> = graph
        .edges()
        .iter()
        .filter(|e| e.kind == DepKind::Mem)
        .filter(|e| kernel.op(e.from).block() == kernel.op(e.to).block())
        .map(|e| OrderEdge {
            from: SOpId::from_raw(e.from.index()),
            to: SOpId::from_raw(e.to.index()),
            distance: e.distance,
        })
        .collect();
    let asap = graph.asap(kernel);

    let has_loop = kernel.loop_block().is_some();
    let mii = if has_loop {
        graph.rec_mii(kernel).max(res_mii(arch, kernel))
    } else {
        1
    };
    Ok(Prepared {
        cache,
        graph,
        order_edges,
        asap,
        mii,
        has_loop,
    })
}

/// Lazily-built, memoised [`Prepared`] for one `(arch, kernel)` pair.
///
/// The retry ladder and the anytime improvement loop call
/// [`PrepCache::get`] once per rung; only the first call pays for the
/// build, and a build *error* surfaces at exactly the point the
/// un-cached driver would have reported it (so rung records and error
/// taxonomy are unchanged by the caching).
pub(crate) struct PrepCache {
    inner: Option<Prepared>,
}

impl PrepCache {
    pub(crate) fn new() -> Self {
        PrepCache { inner: None }
    }

    /// The memoised [`Prepared`], building it on first use.
    ///
    /// # Errors
    ///
    /// Exactly those of [`prepare`].
    pub(crate) fn get(
        &mut self,
        arch: &Architecture,
        kernel: &Kernel,
    ) -> Result<&Prepared, SchedError> {
        if self.inner.is_none() {
            self.inner = Some(prepare(arch, kernel)?);
        }
        match self.inner.as_ref() {
            Some(p) => Ok(p),
            // Unreachable: just populated above.
            None => Err(SchedError::internal(
                "prepare",
                "preparation cache empty after fill".to_string(),
            )),
        }
    }
}

/// Schedules `kernel` on `arch` with the paper's algorithm.
///
/// # Errors
///
/// See [`SchedError`]. On copy-connected architectures with capable units,
/// failures only arise from exhausting the configured II or delay budgets.
///
/// # Examples
///
/// ```
/// use csched_core::{schedule_kernel, SchedulerConfig};
/// use csched_ir::KernelBuilder;
/// use csched_machine::{toy, Opcode};
///
/// let mut kb = KernelBuilder::new("tiny");
/// let b = kb.straight_block("b");
/// let x = kb.push(b, Opcode::IAdd, [1i64.into(), 2i64.into()]);
/// kb.push(b, Opcode::IAdd, [x.into(), 3i64.into()]);
/// let kernel = kb.build()?;
///
/// let arch = toy::motivating_example();
/// let schedule = schedule_kernel(&arch, &kernel, SchedulerConfig::default())?;
/// assert!(schedule.ii().is_none()); // no loop block
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn schedule_kernel(
    arch: &Architecture,
    kernel: &Kernel,
    config: SchedulerConfig,
) -> Result<Schedule, SchedError> {
    schedule_kernel_impl(arch, kernel, config, None, None, None)
}

/// [`schedule_kernel`] under a deterministic [`StepBudget`]: every
/// placement attempt charges one step of `budget`, and the schedule
/// either completes within the budget or fails with
/// [`SchedError::DeadlineExceeded`] (or [`SchedError::Cancelled`] when
/// the budget's [`CancelToken`](crate::CancelToken) fires).
///
/// The budget is denominated in placement attempts, not wall-clock time,
/// so budgeted runs are reproducible: the same inputs spend exactly the
/// same number of steps on every machine.
///
/// # Errors
///
/// [`SchedError::DeadlineExceeded`] / [`SchedError::Cancelled`] when the
/// budget stops the search; otherwise identical to [`schedule_kernel`].
pub fn schedule_kernel_budgeted(
    arch: &Architecture,
    kernel: &Kernel,
    config: SchedulerConfig,
    budget: &StepBudget,
) -> Result<Schedule, SchedError> {
    schedule_kernel_impl(arch, kernel, config, None, Some(budget), None)
}

/// [`schedule_kernel`] with every pipeline decision traced into `sink`.
///
/// Emits [`TraceEvent`]s for the driver's II search
/// ([`TraceEvent::IiStart`], [`TraceEvent::SlackWidened`]) and for every
/// engine decision (placement attempts/accepts/rejects, stub allocation
/// and revision, route closing, copy insertion). The untraced entry point
/// pays only a never-taken branch per emission site — see the
/// `trace_overhead` bench in `csched-bench`.
///
/// # Errors
///
/// Identical to [`schedule_kernel`].
pub fn schedule_kernel_traced(
    arch: &Architecture,
    kernel: &Kernel,
    config: SchedulerConfig,
    sink: &mut dyn TraceSink,
) -> Result<Schedule, SchedError> {
    schedule_kernel_impl(arch, kernel, config, Some(sink), None, None)
}

pub(crate) fn schedule_kernel_impl(
    arch: &Architecture,
    kernel: &Kernel,
    config: SchedulerConfig,
    mut sink: Option<&mut dyn TraceSink>,
    budget: Option<&StepBudget>,
    prep: Option<&Prepared>,
) -> Result<Schedule, SchedError> {
    let owned;
    let prep = match prep {
        Some(p) => p,
        None => {
            owned = prepare(arch, kernel)?;
            &owned
        }
    };
    let Prepared {
        cache,
        graph,
        order_edges,
        asap,
        mii,
        has_loop,
    } = prep;
    let (mii, has_loop) = (*mii, *has_loop);

    // Larger kernels legitimately need more placement attempts per II.
    let attempts_cap = config
        .max_attempts_per_ii
        .saturating_mul(1 + kernel.num_ops() as u64 / 48);
    let mut slack = config.cross_block_copy_slack;
    for slack_round in 0..2 {
        let mut ii = mii;
        let mut failures = 0u32;
        while ii <= config.max_ii {
            let mut cfg = config.clone();
            cfg.cross_block_copy_slack = slack;
            cfg.max_attempts_per_ii = attempts_cap;
            let mut engine = Engine::with_cache(
                arch,
                kernel,
                cfg,
                order_edges.clone(),
                asap.clone(),
                ii,
                Arc::clone(cache),
            );
            engine.stats.ii_tried = ii - mii + 1;
            if slack_round > 0 {
                engine.stats.backtracked = true;
            }
            if let Some(s) = sink.as_mut() {
                s.event(TraceEvent::IiStart { ii });
                engine.set_trace_sink(&mut **s);
            }
            if let Some(b) = budget {
                engine.set_budget(b);
            }
            match run_blocks(&mut engine, kernel, graph, &config) {
                Ok(()) => {
                    debug_assert!(engine.all_closed());
                    return engine.into_schedule(has_loop);
                }
                Err(RunError::Block(block, op)) if !kernel.block(block).is_loop() => {
                    if let Some(e) = engine.take_internal_error() {
                        return Err(e);
                    }
                    if let (Some(stop), Some(b)) = (engine.take_budget_stop(), budget) {
                        return Err(b.stop_error(stop, "placement"));
                    }
                    if engine.stats.cross_block_copy_failures > 0 && slack_round == 0 {
                        break; // grow slack and retry (§4.5 equivalent)
                    }
                    return Err(block_failed(kernel, block, op));
                }
                Err(RunError::Block(b, op)) => {
                    if let Some(e) = engine.take_internal_error() {
                        return Err(e);
                    }
                    if let (Some(stop), Some(bu)) = (engine.take_budget_stop(), budget) {
                        return Err(bu.stop_error(stop, "placement"));
                    }
                    if std::env::var_os("CSCHED_DEBUG").is_some() {
                        eprintln!(
                            "[csched] II={ii} failed at {op} ({:?}) in block {b}, attempts={}",
                            kernel.op(op).opcode(),
                            engine.stats.attempts
                        );
                    }
                    if engine.stats.cross_block_copy_failures > 0 && slack_round == 0 {
                        break; // §4.5: widen the writer-side copy range
                    }
                    // Escalating II steps keep the search near-linear in
                    // schedule quality while bounding its cost on kernels
                    // whose achievable II sits far above the MII.
                    failures += 1;
                    ii += match failures {
                        0..=4 => 1,
                        5..=10 => 2,
                        11..=16 => 4,
                        _ => 8,
                    };
                }
            }
        }
        if ii > config.max_ii {
            return Err(SchedError::IiExhausted {
                mii,
                max_ii: config.max_ii,
            });
        }
        slack *= 8;
        if let Some(s) = sink.as_mut() {
            s.event(TraceEvent::SlackWidened { slack });
        }
    }
    Err(SchedError::IiExhausted {
        mii,
        max_ii: config.max_ii,
    })
}

enum RunError {
    Block(BlockId, OpId),
}

fn run_blocks(
    engine: &mut Engine<'_>,
    kernel: &Kernel,
    graph: &DepGraph,
    config: &SchedulerConfig,
) -> Result<(), RunError> {
    let mut scratch = DriverScratch::default();
    for block in kernel.block_ids() {
        match config.order {
            ScheduleOrder::Operation => {
                for op in graph.operation_order(kernel, block) {
                    if !place_with_window(engine, kernel, op, config, &mut scratch) {
                        return Err(RunError::Block(block, op));
                    }
                }
            }
            ScheduleOrder::Recurrence => {
                for op in graph.recurrence_order(kernel, block) {
                    if !place_with_window(engine, kernel, op, config, &mut scratch) {
                        return Err(RunError::Block(block, op));
                    }
                }
            }
            ScheduleOrder::Cycle => {
                schedule_block_cycle_order(engine, kernel, graph, block, config, &mut scratch)
                    .map_err(|op| RunError::Block(block, op))?;
            }
        }
    }
    Ok(())
}

/// Window of feasible issue cycles for `op` given already-placed partners.
fn window(engine: &Engine<'_>, kernel: &Kernel, op: OpId) -> (i64, Option<i64>) {
    let sop = SOpId::from_raw(op.index());
    let block = kernel.op(op).block();
    let is_loop = kernel.block(block).is_loop();
    let bii = if is_loop { engine.ii() as i64 } else { 1 };
    let u = engine_universe(engine);
    let mut earliest = 0i64;
    let mut latest: Option<i64> = None;
    for slot in 0..u.op(sop).num_operands {
        for &cid in u.comms_to_operand(sop, slot) {
            let c = u.comm(cid);
            if engine_block(engine, c.producer) != block {
                continue;
            }
            if let Some(p) = engine.placement(c.producer) {
                earliest = earliest.max(p.completion() + 1 - c.distance as i64 * bii);
            }
        }
    }
    for &cid in u.comms_from(sop) {
        let c = u.comm(cid);
        if engine_block(engine, c.consumer) != block {
            continue;
        }
        if let Some(q) = engine.placement(c.consumer) {
            // op must complete before the consumer reads; conservative with
            // min latency 1.
            let bound = q.cycle + c.distance as i64 * bii - 1;
            latest = Some(latest.map_or(bound, |l: i64| l.min(bound)));
        }
    }
    (earliest, latest)
}

fn engine_universe<'e>(engine: &'e Engine<'_>) -> &'e crate::universe::Universe {
    &engine.universe
}

fn engine_block(engine: &Engine<'_>, op: SOpId) -> BlockId {
    engine.universe.op(op).block
}

/// Reusable buffers for [`ordered_fus_into`]: one set per driver run,
/// so the per-(op, cycle) unit ranking allocates nothing.
#[derive(Default)]
struct DriverScratch {
    scored: Vec<(i64, i64, usize, FuId)>,
    fus: Vec<FuId>,
}

/// Candidate functional units for `op` at `cycle`, best first, written
/// into `scratch.fus`. The sort key ends in the unit id, so the ranking
/// is a total order and deterministic.
fn ordered_fus_into(
    engine: &Engine<'_>,
    kernel: &Kernel,
    op: OpId,
    cycle: i64,
    use_cost: bool,
    scratch: &mut DriverScratch,
) {
    let sop = SOpId::from_raw(op.index());
    let opcode = kernel.op(op).opcode();
    scratch.scored.clear();
    for &fu in engine.conn_cache().fus_for(opcode) {
        let cost = if use_cost {
            (engine.comm_cost(sop, fu, cycle) * 1024.0) as i64
        } else {
            0
        };
        // Prefer less-capable units (save flexible ones) and lighter
        // load as tie-breakers.
        let load = engine.fu_load(fu);
        let caps = engine.arch().fu(fu).capabilities().len();
        scratch.scored.push((cost, load, caps, fu));
    }
    scratch.scored.sort_unstable();
    scratch
        .scored
        .truncate(engine.config_ref().max_fu_candidates);
    scratch.fus.clear();
    scratch
        .fus
        .extend(scratch.scored.iter().map(|&(_, _, _, f)| f));
}

fn place_with_window(
    engine: &mut Engine<'_>,
    kernel: &Kernel,
    op: OpId,
    config: &SchedulerConfig,
    scratch: &mut DriverScratch,
) -> bool {
    let (earliest, latest) = window(engine, kernel, op);
    let block = kernel.op(op).block();
    let is_loop = kernel.block(block).is_loop();
    let cap = if is_loop {
        // Beyond earliest + II the resource rows repeat, so further delay
        // only shifts pipeline stages; a little slack helps copy ranges.
        (engine.ii() as i64 + 8).min(config.max_delay)
    } else {
        config.max_delay
    };
    let hard_latest = latest.unwrap_or(i64::MAX).min(earliest + cap);
    let sop = SOpId::from_raw(op.index());
    // First sweep the window without copy insertion (a short delay is
    // usually cheaper than a copy's unit slot and latency), then allow
    // copies (Figure 11's "assign to a different unit / delay" loop with
    // §4.3 step 5 as the fallback).
    for allow_copies in [false, true] {
        let last = if allow_copies {
            hard_latest
        } else {
            hard_latest.min(earliest + config.no_copy_scan)
        };
        let mut cycle = earliest;
        while cycle <= last {
            if engine.stats.attempts > config.max_attempts_per_ii || engine.budget_stopped() {
                return false;
            }
            ordered_fus_into(
                engine,
                kernel,
                op,
                cycle,
                config.comm_cost_heuristic,
                scratch,
            );
            for i in 0..scratch.fus.len() {
                if engine.place_ext(sop, scratch.fus[i], cycle, 0, allow_copies) {
                    return true;
                }
            }
            cycle += 1;
        }
    }
    false
}

/// Cycle-order ablation: fill each cycle greedily before advancing.
fn schedule_block_cycle_order(
    engine: &mut Engine<'_>,
    kernel: &Kernel,
    graph: &DepGraph,
    block: BlockId,
    config: &SchedulerConfig,
    scratch: &mut DriverScratch,
) -> Result<(), OpId> {
    let mut remaining: Vec<OpId> = graph.operation_order(kernel, block);
    let mut cycle = 0i64;
    let limit = config.max_delay * 4 + 64;
    while !remaining.is_empty() {
        if cycle > limit || engine.budget_stopped() {
            return Err(remaining[0]);
        }
        let mut next_round = Vec::new();
        for op in remaining {
            let sop = SOpId::from_raw(op.index());
            // Ready: every same-block producer is placed.
            let ready = (0..engine.universe.op(sop).num_operands).all(|slot| {
                engine
                    .universe
                    .comms_to_operand(sop, slot)
                    .iter()
                    .all(|&cid| {
                        let c = engine.universe.comm(cid);
                        engine_block(engine, c.producer) != block
                            || c.distance > 0
                            || engine.placement(c.producer).is_some()
                    })
            });
            let mut placed = false;
            if ready {
                let (earliest, latest) = window(engine, kernel, op);
                if earliest <= cycle && latest.is_none_or(|l| cycle <= l) {
                    'fu: for allow_copies in [false, true] {
                        ordered_fus_into(
                            engine,
                            kernel,
                            op,
                            cycle,
                            config.comm_cost_heuristic,
                            scratch,
                        );
                        for i in 0..scratch.fus.len() {
                            if engine.place_ext(sop, scratch.fus[i], cycle, 0, allow_copies) {
                                placed = true;
                                break 'fu;
                            }
                        }
                    }
                } else if latest.is_some_and(|l| l < cycle) {
                    return Err(op);
                }
            }
            if !placed {
                next_round.push(op);
            }
        }
        remaining = next_round;
        cycle += 1;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use csched_ir::KernelBuilder;
    use csched_machine::toy;

    #[test]
    fn res_mii_counts_unit_pressure() {
        let arch = toy::motivating_example();
        // Loop with 3 adds and one induction increment: 4 add-class ops on
        // 2 adders -> ResMII >= 2.
        let mut kb = KernelBuilder::new("addy");
        let lp = kb.loop_block("body");
        let i = kb.loop_var(lp, 0i64.into());
        let a = kb.push(lp, Opcode::IAdd, [i.into(), 1i64.into()]);
        let b = kb.push(lp, Opcode::IAdd, [a.into(), 2i64.into()]);
        let _c = kb.push(lp, Opcode::IAdd, [b.into(), 3i64.into()]);
        let i1 = kb.push(lp, Opcode::IAdd, [i.into(), 1i64.into()]);
        kb.set_update(i, i1.into());
        let k = kb.build().unwrap();
        assert_eq!(res_mii(&arch, &k), 2);
    }

    #[test]
    fn rejects_unsupported_opcode() {
        let arch = toy::motivating_example();
        let mut kb = KernelBuilder::new("fp");
        let b = kb.straight_block("b");
        kb.push(b, Opcode::FMul, [1.0f64.into(), 2.0f64.into()]);
        let k = kb.build().unwrap();
        assert_eq!(
            schedule_kernel(&arch, &k, SchedulerConfig::default()).unwrap_err(),
            SchedError::NoCapableUnit {
                opcode: Opcode::FMul
            }
        );
    }
}
