//! Scheduler configuration.
//!
//! The defaults implement the paper's choices; the alternative settings
//! exist for the ablation studies in `csched-bench` (operation-order vs
//! cycle-order scheduling, the communication-cost heuristic, stub search
//! ordering, and the permutation-search budget).

/// How the scheduler iterates over unscheduled operations (paper §4.6).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScheduleOrder {
    /// The paper's choice: operations in decreasing critical-path height,
    /// so communications along the critical path are routed first.
    Operation,
    /// The ablation baseline: fill each cycle with as many operations as
    /// possible before moving to the next.
    Cycle,
    /// Recurrence members first, then decreasing height: an ordering
    /// mined from exact minimum-II schedules (the `csched_core::exact`
    /// oracle). Loop updates sit on the critical recurrence but have no
    /// same-iteration successors, so plain height order schedules them
    /// last — after the issue slots their modulo-wrapped windows need
    /// are taken. Placing recurrence ops first closes certified
    /// optimality gaps the plain order cannot.
    Recurrence,
}

/// Tunable parameters of the scheduler and communication scheduling.
#[derive(Clone, Debug, PartialEq)]
pub struct SchedulerConfig {
    /// Operation iteration order (§4.6).
    pub order: ScheduleOrder,
    /// Use the communication-cost heuristic (eq 1) to order candidate
    /// functional units; `false` falls back to round-robin by load.
    pub comm_cost_heuristic: bool,
    /// Order closing communications before open ones, smallest copy range
    /// first, in the stub permutation search (§4.4); `false` uses
    /// declaration order (ablation).
    pub closing_first: bool,
    /// Maximum partial permutations the stub search may try per placement
    /// (§4.4: "an arbitrary, relatively large, number").
    pub search_budget: usize,
    /// Maximum candidate stubs considered per communication in the
    /// permutation search (candidates are scored best-first, and stubs
    /// beyond this many are near-duplicates through other buses/ports).
    pub max_stub_candidates: usize,
    /// Maximum (unit, cycle) placements tried when scheduling one inserted
    /// copy operation.
    pub max_copy_attempts: usize,
    /// Cycles past the earliest feasible cycle the driver sweeps *without*
    /// copy insertion before allowing copies (a short delay is cheaper
    /// than a copy, but chasing copy-free placements too far causes the
    /// unit assignment to collapse onto one register file's units).
    pub no_copy_scan: i64,
    /// Maximum recursion depth of copy insertion (a copy whose own
    /// communication needs another copy).
    pub max_copy_depth: usize,
    /// How many cycles past the earliest feasible cycle an operation may be
    /// delayed before the placement attempt fails.
    pub max_delay: i64,
    /// Maximum cycles a cross-block copy may be placed after its producer
    /// completes (bounds preamble growth).
    pub cross_block_copy_slack: i64,
    /// Upper bound on the initiation interval searched by the modulo
    /// scheduler.
    pub max_ii: u32,
    /// Abort a single initiation-interval attempt after this many
    /// placement attempts and move to the next II (bounds worst-case
    /// scheduling time on congested machines).
    pub max_attempts_per_ii: u64,
    /// Maximum candidate functional units tried per (operation, cycle)
    /// before delaying to the next cycle.
    pub max_fu_candidates: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            order: ScheduleOrder::Operation,
            comm_cost_heuristic: true,
            closing_first: true,
            search_budget: 256,
            max_stub_candidates: 32,
            max_copy_attempts: 64,
            no_copy_scan: 6,
            max_copy_depth: 3,
            max_delay: 96,
            cross_block_copy_slack: 32,
            max_ii: 512,
            max_attempts_per_ii: 40_000,
            max_fu_candidates: 10,
        }
    }
}

impl SchedulerConfig {
    /// The paper's configuration (same as `Default`).
    pub fn paper() -> Self {
        Self::default()
    }

    /// Ablation: cycle-order scheduling (§4.6 discusses why this loses).
    pub fn cycle_order() -> Self {
        SchedulerConfig {
            order: ScheduleOrder::Cycle,
            ..Self::default()
        }
    }

    /// Ablation: disable the communication-cost FU heuristic (eq 1).
    pub fn without_comm_cost() -> Self {
        SchedulerConfig {
            comm_cost_heuristic: false,
            ..Self::default()
        }
    }

    /// Ablation: naive stub search order.
    pub fn without_closing_first() -> Self {
        SchedulerConfig {
            closing_first: false,
            ..Self::default()
        }
    }

    /// The exact-mined recurrence-first operation order (see
    /// [`ScheduleOrder::Recurrence`]).
    pub fn recurrence_order() -> Self {
        SchedulerConfig {
            order: ScheduleOrder::Recurrence,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = SchedulerConfig::default();
        assert_eq!(c.order, ScheduleOrder::Operation);
        assert!(c.comm_cost_heuristic);
        assert!(c.closing_first);
        assert_eq!(c, SchedulerConfig::paper());
    }

    #[test]
    fn ablations_flip_one_knob() {
        assert_eq!(SchedulerConfig::cycle_order().order, ScheduleOrder::Cycle);
        assert!(!SchedulerConfig::without_comm_cost().comm_cost_heuristic);
        assert!(!SchedulerConfig::without_closing_first().closing_first);
    }
}
