//! The scheduling universe: the set of operations and communications the
//! scheduler works on.
//!
//! The universe starts as a one-to-one image of the kernel's operations and
//! grows as communication scheduling inserts copy operations (paper §4.3
//! step 5, Figure 21). Communications are the paper's §3 abstraction: one
//! per (producer result, consumer operand) pair, including the two
//! communications a loop-carried variable induces (one from the preamble
//! init producer, one from the previous iteration's update producer) —
//! both of which must share the consumer operand's read stub.

use core::fmt;

use csched_ir::{resolve_producers, BlockId, Kernel, OpId, Operand};
use csched_machine::Opcode;

/// Identifies an operation in the scheduling universe (kernel operations
/// first, then inserted copies, in insertion order).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SOpId(pub(crate) u32);

impl SOpId {
    /// Creates an id from a raw dense index.
    pub fn from_raw(index: usize) -> Self {
        SOpId(index as u32)
    }

    /// The raw dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for SOpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl fmt::Display for SOpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Identifies a communication.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CommId(pub(crate) u32);

impl CommId {
    /// Creates an id from a raw dense index.
    pub fn from_raw(index: usize) -> Self {
        CommId(index as u32)
    }

    /// The raw dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for CommId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl fmt::Display for CommId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// An operation in the scheduling universe.
#[derive(Clone, Debug)]
pub struct SOp {
    /// The opcode.
    pub opcode: Opcode,
    /// The block the operation belongs to (copies inherit the block they
    /// were inserted into).
    pub block: BlockId,
    /// The kernel operation this mirrors, or `None` for inserted copies.
    pub kernel_op: Option<OpId>,
    /// Number of operand slots (equals `opcode.num_operands()`).
    pub num_operands: usize,
    /// Whether the operation produces a result.
    pub has_result: bool,
}

/// One communication: the use of one producer's result as one operand of
/// one consumer (paper §3).
#[derive(Clone, Debug)]
pub struct Comm {
    /// The operation producing the value.
    pub producer: SOpId,
    /// The consuming operation.
    pub consumer: SOpId,
    /// The consumer's operand slot.
    pub slot: usize,
    /// Iteration distance: the consumer of iteration `i` reads the
    /// producer's result from iteration `i - distance` (0 within an
    /// iteration or for cross-block/init communications).
    pub distance: u32,
}

/// The set of operations and communications being scheduled.
#[derive(Clone, Debug)]
pub struct Universe {
    pub(crate) ops: Vec<SOp>,
    pub(crate) comms: Vec<Comm>,
    /// Communications grouped by consumer operand `(consumer, slot)`;
    /// the groups sharing one read stub.
    pub(crate) operand_comms: Vec<Vec<CommId>>,
    /// Flattened index: for op `o`, `operand_base[o.index()] + slot` indexes
    /// `operand_comms`.
    pub(crate) operand_base: Vec<usize>,
    /// Communications grouped by producer.
    pub(crate) producer_comms: Vec<Vec<CommId>>,
    /// Number of operations that came from the kernel (a prefix of `ops`).
    pub(crate) num_kernel_ops: usize,
}

impl Universe {
    /// Builds the universe for `kernel`: one [`SOp`] per kernel operation
    /// and one [`Comm`] per (producer, consumer-operand) pair, resolving
    /// loop variables to their init and carried producers.
    pub fn build(kernel: &Kernel) -> Self {
        let mut ops = Vec::with_capacity(kernel.num_ops());
        for op_id in kernel.op_ids() {
            let op = kernel.op(op_id);
            ops.push(SOp {
                opcode: op.opcode(),
                block: op.block(),
                kernel_op: Some(op_id),
                num_operands: op.operands().len(),
                has_result: op.result().is_some(),
            });
        }
        let mut u = Universe {
            ops,
            comms: Vec::new(),
            operand_comms: Vec::new(),
            operand_base: Vec::new(),
            producer_comms: Vec::new(),
            num_kernel_ops: kernel.num_ops(),
        };
        u.rebuild_operand_index();

        for op_id in kernel.op_ids() {
            let op = kernel.op(op_id);
            for (slot, operand) in op.operands().iter().enumerate() {
                let Operand::Value(v) = *operand else {
                    continue;
                };
                for (producer, distance) in resolve_producers(kernel, v) {
                    u.add_comm(Comm {
                        producer: SOpId::from_raw(producer.index()),
                        consumer: SOpId::from_raw(op_id.index()),
                        slot,
                        distance,
                    });
                }
            }
        }
        u
    }

    fn rebuild_operand_index(&mut self) {
        self.operand_base.clear();
        let mut total = 0usize;
        for op in &self.ops {
            self.operand_base.push(total);
            total += op.num_operands;
        }
        self.operand_comms.resize(total, Vec::new());
        self.producer_comms.resize(self.ops.len(), Vec::new());
    }

    /// Adds a communication (used during construction and by copy
    /// insertion) and returns its id.
    pub fn add_comm(&mut self, comm: Comm) -> CommId {
        let id = CommId::from_raw(self.comms.len());
        let oi = self.operand_index(comm.consumer, comm.slot);
        self.operand_comms[oi].push(id);
        self.producer_comms[comm.producer.index()].push(id);
        self.comms.push(comm);
        id
    }

    /// Adds a copy operation in `block` and returns its id. The caller
    /// wires up its communications with [`Universe::add_comm`].
    pub fn add_copy(&mut self, block: BlockId) -> SOpId {
        let id = SOpId::from_raw(self.ops.len());
        self.ops.push(SOp {
            opcode: Opcode::Copy,
            block,
            kernel_op: None,
            num_operands: 1,
            has_result: true,
        });
        self.operand_base.push(self.operand_comms.len());
        self.operand_comms.push(Vec::new());
        self.producer_comms.push(Vec::new());
        id
    }

    /// Removes the most recently added communication (used to roll back a
    /// reused-copy attachment). Does nothing if there are none.
    pub fn remove_last_comm(&mut self) {
        let Some(last) = self.comms.last() else {
            return;
        };
        let cid = CommId::from_raw(self.comms.len() - 1);
        let oi = self.operand_index(last.consumer, last.slot);
        self.operand_comms[oi].retain(|&c| c != cid);
        self.producer_comms[last.producer.index()].retain(|&c| c != cid);
        self.comms.pop();
    }

    /// Removes the most recently added copy operation and any
    /// communications attached to it (used to roll back a failed copy
    /// insertion). The copy must be the last operation and its comms the
    /// last comms. Does nothing if the last operation is not an inserted
    /// copy (kernel operations are never removed).
    pub fn remove_last_copy(&mut self) {
        let Some(op) = self.ops.last() else {
            return;
        };
        if op.kernel_op.is_some() {
            return;
        }
        let id = SOpId::from_raw(self.ops.len() - 1);
        // Drop comms touching the copy; they are by construction the most
        // recently added ones, but scan defensively.
        while let Some(last) = self.comms.last() {
            if last.producer == id || last.consumer == id {
                let cid = CommId::from_raw(self.comms.len() - 1);
                let oi = self.operand_index(last.consumer, last.slot);
                self.operand_comms[oi].retain(|&c| c != cid);
                self.producer_comms[last.producer.index()].retain(|&c| c != cid);
                self.comms.pop();
            } else {
                break;
            }
        }
        self.ops.pop();
        self.operand_base.pop();
        self.operand_comms.pop();
        self.producer_comms.pop();
    }

    /// Dense index of the operand `(op, slot)`.
    pub fn operand_index(&self, op: SOpId, slot: usize) -> usize {
        self.operand_base[op.index()] + slot
    }

    /// The operation `op`.
    ///
    /// # Panics
    ///
    /// Panics if `op` is out of range.
    pub fn op(&self, op: SOpId) -> &SOp {
        &self.ops[op.index()]
    }

    /// The communication `comm`.
    ///
    /// # Panics
    ///
    /// Panics if `comm` is out of range.
    pub fn comm(&self, comm: CommId) -> &Comm {
        &self.comms[comm.index()]
    }

    /// Number of operations currently in the universe.
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Number of communications.
    pub fn num_comms(&self) -> usize {
        self.comms.len()
    }

    /// Number of operations that mirror kernel operations.
    pub fn num_kernel_ops(&self) -> usize {
        self.num_kernel_ops
    }

    /// Iterates over all operation ids.
    pub fn op_ids(&self) -> impl Iterator<Item = SOpId> + '_ {
        (0..self.ops.len()).map(SOpId::from_raw)
    }

    /// Iterates over all communication ids.
    pub fn comm_ids(&self) -> impl Iterator<Item = CommId> + '_ {
        (0..self.comms.len()).map(CommId::from_raw)
    }

    /// Communications whose consumer operand is `(op, slot)`.
    pub fn comms_to_operand(&self, op: SOpId, slot: usize) -> &[CommId] {
        &self.operand_comms[self.operand_index(op, slot)]
    }

    /// All communications into `op` across its operands.
    pub fn comms_to(&self, op: SOpId) -> Vec<CommId> {
        (0..self.op(op).num_operands)
            .flat_map(|s| self.comms_to_operand(op, s).iter().copied())
            .collect()
    }

    /// Communications out of `op`'s result.
    pub fn comms_from(&self, op: SOpId) -> &[CommId] {
        &self.producer_comms[op.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csched_ir::KernelBuilder;
    use csched_machine::Opcode;

    fn sample() -> Kernel {
        let mut kb = KernelBuilder::new("sample");
        let data = kb.region("data", true);
        let pre = kb.straight_block("pre");
        let base = kb.push(pre, Opcode::IAdd, [Operand::from(0i64), 0i64.into()]);
        let lp = kb.loop_block("body");
        let i = kb.loop_var(lp, base.into());
        let x = kb.load(lp, data, i.into(), 0i64.into());
        let y = kb.push(lp, Opcode::IAdd, [x.into(), x.into()]);
        kb.store(lp, data, i.into(), 0i64.into(), y.into());
        let i1 = kb.push(lp, Opcode::IAdd, [i.into(), 1i64.into()]);
        kb.set_update(i, i1.into());
        kb.build().unwrap()
    }

    #[test]
    fn comm_extraction() {
        let k = sample();
        let u = Universe::build(&k);
        assert_eq!(u.num_ops(), 5);
        // i used by: load addr, store addr, increment -> each has 2 comms
        // (init producer `base` + carried producer `i1`): 6
        // x used twice by y: 2 comms; y used by store: 1.
        assert_eq!(u.num_comms(), 9);
        // load is op index 1 in kernel order (pre op is 0).
        let load = SOpId::from_raw(1);
        let to_load = u.comms_to_operand(load, 0);
        assert_eq!(to_load.len(), 2);
        let dists: Vec<u32> = to_load.iter().map(|&c| u.comm(c).distance).collect();
        assert!(dists.contains(&0) && dists.contains(&1));
    }

    #[test]
    fn same_value_used_twice_gets_two_comms() {
        let k = sample();
        let u = Universe::build(&k);
        let y = SOpId::from_raw(2);
        assert_eq!(u.comms_to_operand(y, 0).len(), 1);
        assert_eq!(u.comms_to_operand(y, 1).len(), 1);
        assert_ne!(
            u.comms_to_operand(y, 0)[0],
            u.comms_to_operand(y, 1)[0],
            "each operand gets a separate communication (paper §3)"
        );
    }

    #[test]
    fn copy_add_remove_round_trip() {
        let k = sample();
        let mut u = Universe::build(&k);
        let before_ops = u.num_ops();
        let before_comms = u.num_comms();
        let copy = u.add_copy(BlockId::from_raw(1));
        u.add_comm(Comm {
            producer: SOpId::from_raw(1),
            consumer: copy,
            slot: 0,
            distance: 0,
        });
        u.add_comm(Comm {
            producer: copy,
            consumer: SOpId::from_raw(2),
            slot: 0,
            distance: 0,
        });
        assert_eq!(u.num_ops(), before_ops + 1);
        assert_eq!(u.num_comms(), before_comms + 2);
        assert_eq!(u.comms_from(copy).len(), 1);
        u.remove_last_copy();
        assert_eq!(u.num_ops(), before_ops);
        assert_eq!(u.num_comms(), before_comms);
        assert!(u
            .comm_ids()
            .all(|c| u.comm(c).producer.index() < before_ops));
    }

    #[test]
    fn comms_to_flattens_operands() {
        let k = sample();
        let u = Universe::build(&k);
        let store = SOpId::from_raw(3);
        assert_eq!(u.comms_to(store).len(), 3); // addr (2: init+carried) + value (1)
    }
}
