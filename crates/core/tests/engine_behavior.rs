//! Behavioural tests of the scheduling engine: copy sharing, broadcasts,
//! the delay-before-copy policy, and scheduler statistics.

use csched_core::{schedule_kernel, CommDisposition, SOpId, SchedulerConfig};
use csched_ir::{Kernel, KernelBuilder};
use csched_machine::{imagine, Opcode};

/// A value consumed by many operations in the *other* cluster: the engine
/// must reuse one copy per destination file rather than inserting one copy
/// per communication.
fn fanout_kernel(consumers: usize) -> Kernel {
    let mut kb = KernelBuilder::new("fanout");
    let input = kb.region("in", true);
    let output = kb.region("out", true);
    let lp = kb.loop_block("body");
    let i = kb.loop_var(lp, 0i64.into());
    let x = kb.load(lp, input, i.into(), 0i64.into());
    // Many independent consumers of x.
    for k in 0..consumers {
        let y = kb.push(lp, Opcode::IAdd, [x.into(), (k as i64).into()]);
        kb.store(lp, output, i.into(), (100 + 16 * k as i64).into(), y.into());
    }
    let i1 = kb.push(lp, Opcode::IAdd, [i.into(), 1i64.into()]);
    kb.set_update(i, i1.into());
    kb.build().unwrap()
}

#[test]
fn copies_are_shared_between_communications() {
    // On clustered(2), x lands in one cluster's file and the consumers
    // spread over both clusters: the cross-cluster consumers must share
    // copies. With 8 consumers and 2 clusters, a copy-per-communication
    // scheduler would insert ~4+; sharing needs at most 1 per foreign file
    // per iteration (a few more are tolerable when the scheduler re-stages,
    // but far fewer than the consumer count).
    let arch = imagine::clustered(2);
    let kernel = fanout_kernel(8);
    let s = schedule_kernel(&arch, &kernel, SchedulerConfig::default()).unwrap();
    // Sharing is bounded by timing: a consumer that reads before an
    // existing copy completes still needs its own. Half the consumer count
    // is a conservative ceiling; copy-per-communication would need one
    // each.
    assert!(
        s.num_copies() <= 4,
        "expected shared copies, got {}",
        s.num_copies()
    );
    csched_core::validate::validate(&arch, &kernel, &s).unwrap();
}

#[test]
fn broadcasts_reach_many_files_without_copies() {
    // On the distributed machine every consumer input has its own file,
    // but one bus can broadcast the value to all of their write ports: the
    // fanout kernel needs no copies at all.
    let arch = imagine::distributed();
    let kernel = fanout_kernel(6);
    let s = schedule_kernel(&arch, &kernel, SchedulerConfig::default()).unwrap();
    assert_eq!(s.num_copies(), 0, "broadcast should avoid copies");
    // And the induction variable's communications are all direct routes.
    let u = s.universe();
    let direct = u
        .comm_ids()
        .filter(|&c| matches!(s.disposition(c), CommDisposition::Direct(_)))
        .count();
    assert_eq!(direct, u.num_comms());
}

#[test]
fn central_never_needs_copies_or_rejections_for_tiny_kernels() {
    let arch = imagine::central();
    let kernel = fanout_kernel(4);
    let s = schedule_kernel(&arch, &kernel, SchedulerConfig::default()).unwrap();
    assert_eq!(s.num_copies(), 0);
    assert_eq!(s.stats().ii_tried, 1, "first II must fit");
}

#[test]
fn stats_reflect_rejections_on_congested_machines() {
    let arch = imagine::clustered(4);
    let w = csched_kernels::by_name("Sort").unwrap();
    let s = schedule_kernel(&arch, &w.kernel, SchedulerConfig::default()).unwrap();
    let stats = s.stats();
    assert!(stats.attempts > 0);
    assert!(
        stats.rejections > 0,
        "clustered Sort must reject placements"
    );
    assert_eq!(stats.copies_inserted as usize, s.num_copies());
}

#[test]
fn transport_chains_are_consistent() {
    // Every communication's transport chain starts at its producer's unit
    // and ends at its consumer's input, with adjacent legs linked by copies.
    let arch = imagine::clustered(4);
    let kernel = fanout_kernel(8);
    let s = schedule_kernel(&arch, &kernel, SchedulerConfig::default()).unwrap();
    let u = s.universe();
    for cid in u.comm_ids() {
        let c = u.comm(cid);
        // Only original (kernel-op to kernel-op) comms have full chains
        // rooted at dispositions; legs themselves are also comms, so just
        // check the endpoints line up for every comm's own transport.
        let legs = s.transport(cid);
        assert!(!legs.is_empty());
        let first = u.comm(legs[0].0);
        let last = u.comm(legs.last().unwrap().0);
        assert_eq!(first.producer, c.producer);
        assert_eq!(last.consumer, c.consumer);
        assert_eq!(last.slot, c.slot);
        for (leg_id, route) in &legs {
            let leg = u.comm(*leg_id);
            assert_eq!(route.wstub.fu, s.placement(leg.producer).fu);
            assert_eq!(route.rstub.fu, s.placement(leg.consumer).fu);
        }
    }
}

#[test]
fn renders_mention_copies() {
    let arch = imagine::clustered(2);
    let kernel = fanout_kernel(8);
    let s = schedule_kernel(&arch, &kernel, SchedulerConfig::default()).unwrap();
    if s.num_copies() > 0 {
        let grid = s.render(&arch, &kernel);
        assert!(grid.contains(":copy"), "copies appear in the grid:\n{grid}");
    }
    let line = s.to_string();
    assert!(line.contains("fanout"));
    assert!(line.contains("II="));
}

#[test]
fn schedules_are_deterministic() {
    let arch = imagine::distributed();
    let w = csched_kernels::by_name("FFT").unwrap();
    let a = schedule_kernel(&arch, &w.kernel, SchedulerConfig::default()).unwrap();
    let b = schedule_kernel(&arch, &w.kernel, SchedulerConfig::default()).unwrap();
    assert_eq!(a.ii(), b.ii());
    assert_eq!(a.num_copies(), b.num_copies());
    for op in a.universe().op_ids() {
        assert_eq!(a.placement(op), b.placement(op), "{op} placement differs");
    }
    let _ = SOpId::from_raw(0);
}
