//! Property tests for the exact-scheduling oracle: across random small
//! kernels and machines, a certified II never exceeds the heuristic's
//! (the oracle is sound as a lower bound), every exact witness passes
//! the independent validator, and certification is deterministic.

use csched_core::exact::{certify_min_ii, ExactConfig, ExactVerdict};
use csched_core::{schedule_kernel, validate, SchedulerConfig, StepBudget};
use csched_ir::{Kernel, KernelBuilder};
use csched_machine::{imagine, toy, Architecture, Opcode};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// A random small loop kernel (at most 6 operations): an optional
/// leading load, a chain of adds and multiplies, an optional store, and
/// the induction update.
fn small_kernel(adds: usize, muls: usize, loads: usize, store: bool) -> Kernel {
    let mut kb = KernelBuilder::new("prop");
    let input = kb.region("in", true);
    let output = kb.region("out", true);
    let lp = kb.loop_block("body");
    let i = kb.loop_var(lp, 0i64.into());
    let mut last = None;
    for k in 0..loads {
        let x = kb.load(lp, input, i.into(), (8 * k as i64).into());
        last = Some(x);
    }
    for k in 0..adds {
        let operand = last.map_or_else(|| i.into(), Into::into);
        let v = kb.push(lp, Opcode::IAdd, [operand, (k as i64 + 1).into()]);
        last = Some(v);
    }
    for _ in 0..muls {
        let operand = last.map_or_else(|| i.into(), Into::into);
        let v = kb.push(lp, Opcode::IMul, [operand, 3i64.into()]);
        last = Some(v);
    }
    if store {
        if let Some(v) = last {
            kb.store(lp, output, i.into(), 0i64.into(), v.into());
        }
    }
    let i1 = kb.push(lp, Opcode::IAdd, [i.into(), 1i64.into()]);
    kb.set_update(i, i1.into());
    kb.build().unwrap()
}

fn machine(which: usize) -> Architecture {
    match which {
        0 => toy::motivating_example(),
        1 => imagine::central(),
        _ => imagine::clustered(2),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The certified minimum II never exceeds a validated heuristic II,
    /// and the oracle's witness schedule passes the independent
    /// validator.
    #[test]
    fn exact_never_exceeds_heuristic_and_witnesses_validate(
        adds in 0usize..3,
        muls in 0usize..2,
        loads in 0usize..2,
        store in any::<bool>(),
        which in 0usize..3,
    ) {
        // The toy machine has no multiplier: keep its kernels mul-free.
        let muls = if which == 0 { 0 } else { muls };
        let kernel = small_kernel(adds, muls, loads, store);
        prop_assert!(kernel.num_ops() <= 8, "generator must stay small");
        let arch = machine(which);
        let budget = StepBudget::new(3_000_000);
        let report = certify_min_ii(&arch, &kernel, &ExactConfig::default(), &budget)
            .map_err(|e| TestCaseError::fail(format!("oracle: {e}")))?;
        if let Some(witness) = &report.schedule {
            prop_assert!(
                validate::validate(&arch, &kernel, witness).is_ok(),
                "exact witness must pass the validator"
            );
        }
        let heuristic_ii = schedule_kernel(&arch, &kernel, SchedulerConfig::default())
            .ok()
            .map(|s| s.ii().unwrap_or(0));
        match (report.verdict, heuristic_ii) {
            (ExactVerdict::Certified { ii }, Some(h)) => {
                prop_assert!(ii <= h, "certified {ii} > heuristic {h}: soundness bug");
            }
            // An infeasibility proof within the heuristic's reach is a
            // contradiction: the validator accepted a refuted II.
            (ExactVerdict::Infeasible { max_ii }, Some(h)) => {
                prop_assert!(
                    h > max_ii,
                    "oracle refuted II<={max_ii} but the validator accepted {h}"
                );
            }
            _ => {}
        }
    }

    /// Certification is deterministic: two runs agree on the verdict and
    /// on every per-II node count.
    #[test]
    fn certification_is_deterministic_across_runs(
        adds in 0usize..3,
        loads in 0usize..2,
        which in 0usize..3,
    ) {
        let kernel = small_kernel(adds, 0, loads, false);
        let arch = machine(which);
        let run = || {
            let budget = StepBudget::new(500_000);
            certify_min_ii(&arch, &kernel, &ExactConfig::default(), &budget)
        };
        let a = run().map_err(|e| TestCaseError::fail(format!("oracle: {e}")))?;
        let b = run().map_err(|e| TestCaseError::fail(format!("oracle: {e}")))?;
        prop_assert_eq!(&a.verdict, &b.verdict);
        prop_assert_eq!(a.per_ii.len(), b.per_ii.len());
        for (x, y) in a.per_ii.iter().zip(&b.per_ii) {
            prop_assert_eq!(x.ii, y.ii);
            prop_assert_eq!(x.nodes, y.nodes);
            prop_assert_eq!(x.feasible, y.feasible);
        }
    }
}
