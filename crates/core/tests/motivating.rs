//! End-to-end reproduction of the paper's motivating example (§2):
//! scheduling the Figure 4 code fragment onto the Figure 5 machine.

use csched_core::{schedule_kernel, SchedulerConfig};
use csched_ir::{Kernel, KernelBuilder};
use csched_machine::{toy, Opcode};

/// Figure 4: 1: a = load ...; 2: b = ...+...; 3: c = ...+...;
/// 4: ... = a + b; 5: ... = a + c.
fn figure4() -> Kernel {
    let mut kb = KernelBuilder::new("fig4");
    let mem = kb.region("mem", true);
    let b = kb.straight_block("b");
    let a = kb.load(b, mem, 0i64.into(), 0i64.into());
    let bv = kb.push(b, Opcode::IAdd, [1i64.into(), 2i64.into()]);
    let cv = kb.push(b, Opcode::IAdd, [3i64.into(), 4i64.into()]);
    let s4 = kb.push(b, Opcode::IAdd, [a.into(), bv.into()]);
    let s5 = kb.push(b, Opcode::IAdd, [a.into(), cv.into()]);
    kb.store(b, mem, 10i64.into(), 0i64.into(), s4.into());
    kb.store(b, mem, 11i64.into(), 0i64.into(), s5.into());
    kb.build().unwrap()
}

#[test]
fn motivating_example_schedules() {
    let arch = toy::motivating_example();
    let kernel = figure4();
    let schedule = schedule_kernel(&arch, &kernel, SchedulerConfig::default())
        .expect("communication scheduling handles the Figure 5 machine");
    println!("{}", schedule.render(&arch, &kernel));
    // All communications closed, every op placed.
    let u = schedule.universe();
    assert!(u.num_comms() >= 6);
    for c in u.comm_ids() {
        let legs = schedule.transport(c);
        assert!(!legs.is_empty());
        for (_, route) in &legs {
            assert_eq!(
                route.wstub.rf, route.rstub.rf,
                "stubs must meet in one file"
            );
        }
    }
}

#[test]
fn reproduces_figure7_schedule_shape() {
    use csched_core::SOpId;
    let arch = toy::motivating_example();
    let kernel = figure4();
    let schedule = schedule_kernel(&arch, &kernel, SchedulerConfig::default()).unwrap();

    // The five compute operations fit in three cycles (paper Figure 7).
    for i in 0..5 {
        let p = schedule.placement(SOpId::from_raw(i));
        assert!(p.completion() <= 2, "op{i} completes at {}", p.completion());
    }

    // Operation 3 (c = ... + ...) cannot issue on cycle 0: all buses are
    // taken by a and b (paper Figure 19).
    let c_op = schedule.placement(SOpId::from_raw(2));
    assert!(c_op.cycle >= 1, "op2 must be delayed by stub conflicts");

    // The communication of `a` (op0) to op3 (= a + b) routes through the
    // center register file with exactly one copy executed on the
    // load/store unit (paper Figures 13 and 24).
    let u = schedule.universe();
    let a_to_4 = u
        .comm_ids()
        .find(|&c| {
            u.comm(c).producer == SOpId::from_raw(0) && u.comm(c).consumer == SOpId::from_raw(3)
        })
        .expect("communication exists");
    let legs = schedule.transport(a_to_4);
    assert_eq!(legs.len(), 2, "one copy splits the communication in two");
    let rfc = arch.rf_by_name("RFC").unwrap();
    let rf0 = arch.rf_by_name("RF0").unwrap();
    let ls = arch.fu_by_name("LS").unwrap();
    assert_eq!(legs[0].1.wstub.rf, rfc, "a staged through the center file");
    assert_eq!(legs[1].1.rstub.rf, rf0, "read into ADD0's file");
    assert_eq!(
        legs[0].1.rstub.fu, ls,
        "the copy runs on the load/store unit"
    );

    // The communication of `a` to op4 (= a + c) needs no copy.
    let a_to_5 = u
        .comm_ids()
        .find(|&c| {
            u.comm(c).producer == SOpId::from_raw(0) && u.comm(c).consumer == SOpId::from_raw(4)
        })
        .expect("communication exists");
    assert_eq!(schedule.transport(a_to_5).len(), 1);
}

#[test]
fn copy_ranges_obey_figure23() {
    // Same-block case of Figure 23: every copy issues strictly after its
    // producer completes and completes strictly before its consumer reads.
    let arch = toy::motivating_example();
    let kernel = figure4();
    let s = schedule_kernel(&arch, &kernel, SchedulerConfig::default()).unwrap();
    let u = s.universe();
    for cid in u.comm_ids() {
        let legs = s.transport(cid);
        if legs.len() < 2 {
            continue;
        }
        let original = u.comm(cid);
        let reader = s.placement(original.consumer);
        for window in legs.windows(2) {
            let first = u.comm(window[0].0);
            let copy = s.placement(first.consumer);
            let producer = s.placement(first.producer);
            assert!(
                copy.cycle > producer.completion(),
                "copy issues after the write completes"
            );
            assert!(
                copy.completion() < reader.cycle,
                "copy completes before the read issues"
            );
        }
    }
}
