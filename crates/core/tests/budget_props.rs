//! Property tests for the placement-attempt budget: across random retry
//! policies and budget limits, `schedule_kernel_with_retry` never spends
//! more placement attempts than its policy's budget (summed over every
//! rung of the relaxation ladder), and a shared caller budget bounds the
//! whole call the same way.

use csched_core::{
    schedule_kernel_with_retry, schedule_kernel_with_retry_budgeted, RetryPolicy, SchedError,
    SchedulerConfig, StepBudget,
};
use csched_ir::{Kernel, KernelBuilder};
use csched_machine::{imagine, Opcode};
use proptest::prelude::*;

/// A loop kernel with `width` independent multiply/add chains: enough
/// placement work that small budgets genuinely trip mid-search.
fn chained_kernel(width: usize) -> Kernel {
    let mut kb = KernelBuilder::new("chains");
    let input = kb.region("in", true);
    let output = kb.region("out", true);
    let lp = kb.loop_block("body");
    let i = kb.loop_var(lp, 0i64.into());
    for k in 0..width {
        let x = kb.load(lp, input, i.into(), (8 * k as i64).into());
        let m = kb.push(lp, Opcode::IMul, [x.into(), 3i64.into()]);
        let s = kb.push(lp, Opcode::IAdd, [m.into(), (k as i64).into()]);
        kb.store(lp, output, i.into(), (8 * k as i64).into(), s.into());
    }
    let i1 = kb.push(lp, Opcode::IAdd, [i.into(), 1i64.into()]);
    kb.set_update(i, i1.into());
    kb.build().unwrap()
}

proptest! {
    /// The retry ladder never spends more than `RetryPolicy::budget`
    /// placement attempts in total (with the documented one-attempt floor
    /// for a zero budget), no matter how the policy is shaped.
    #[test]
    fn retry_never_exceeds_its_budget(
        budget in 0u64..400,
        max_attempts in 1usize..6,
        width in 1usize..4,
    ) {
        let arch = imagine::distributed();
        let kernel = chained_kernel(width);
        let policy = RetryPolicy { max_attempts, budget };
        let (result, report) =
            schedule_kernel_with_retry(&arch, &kernel, SchedulerConfig::default(), &policy);
        let ceiling = budget.max(1);
        prop_assert!(
            report.attempts_spent <= ceiling,
            "spent {} of budget {} (ceiling {})",
            report.attempts_spent, budget, ceiling
        );
        // Per-rung grants are each within the ceiling too.
        for a in &report.attempts {
            prop_assert!(a.attempts_granted <= ceiling);
        }
        // A tripped budget surfaces as the typed deadline error, never a
        // panic or a silent success.
        if let Err(SchedError::DeadlineExceeded { spent, limit, .. }) = &result {
            prop_assert_eq!(*limit, ceiling);
            prop_assert!(*spent <= *limit);
        }
    }

    /// A caller-supplied shared budget bounds the whole budgeted call:
    /// spend never exceeds the limit and the reported spend matches the
    /// budget's own counter.
    #[test]
    fn shared_budget_bounds_the_whole_call(limit in 1u64..300, width in 1usize..3) {
        let arch = imagine::distributed();
        let kernel = chained_kernel(width);
        let budget = StepBudget::new(limit);
        let policy = RetryPolicy::default();
        let (_result, report) = schedule_kernel_with_retry_budgeted(
            &arch, &kernel, SchedulerConfig::default(), &policy, &budget);
        prop_assert!(budget.spent() <= limit);
        prop_assert_eq!(report.attempts_spent, budget.spent());
    }
}
