//! Property tests for the transactional resource table: after any sequence
//! of placements, releases and nested savepoint/rollback pairs, rolling
//! back restores the table's claims exactly; and the sharing rules are
//! honoured under randomly colliding stubs.

use csched_core::{ResourceTable, SOpId, TableMode};
use csched_machine::{toy, Architecture, ResourceMap};
use proptest::prelude::*;

fn arch() -> Architecture {
    toy::motivating_example()
}

#[derive(Clone, Debug)]
enum Action {
    Issue {
        fu: usize,
        cycle: i64,
        op: usize,
    },
    WriteStub {
        fu: usize,
        stub: usize,
        cycle: i64,
        value: usize,
    },
    ReadStub {
        fu: usize,
        slot: usize,
        cycle: i64,
        op: usize,
    },
    Checkpoint,
    Rollback,
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        (0..3usize, 0..6i64, 0..8usize).prop_map(|(fu, cycle, op)| Action::Issue { fu, cycle, op }),
        (0..3usize, 0..4usize, 0..6i64, 0..8usize).prop_map(|(fu, stub, cycle, value)| {
            Action::WriteStub {
                fu,
                stub,
                cycle,
                value,
            }
        }),
        (0..3usize, 0..2usize, 0..6i64, 0..8usize).prop_map(|(fu, slot, cycle, op)| {
            Action::ReadStub {
                fu,
                slot,
                cycle,
                op,
            }
        }),
        Just(Action::Checkpoint),
        Just(Action::Rollback),
    ]
}

fn apply(table: &mut ResourceTable, arch: &Architecture, action: &Action) {
    match *action {
        Action::Issue { fu, cycle, op } => {
            let fu = csched_machine::FuId::from_raw(fu);
            let _ = table.place_issue(cycle, fu, 1, SOpId::from_raw(op));
        }
        Action::WriteStub {
            fu,
            stub,
            cycle,
            value,
        } => {
            let fu = csched_machine::FuId::from_raw(fu);
            let stubs = arch.write_stubs(fu);
            if stubs.is_empty() {
                return;
            }
            let stub = stubs[stub % stubs.len()];
            let fanout = arch.fu(fu).output_fanout();
            let _ = table.place_write_stub(cycle, stub, SOpId::from_raw(value), fanout);
        }
        Action::ReadStub {
            fu,
            slot,
            cycle,
            op,
        } => {
            let fu = csched_machine::FuId::from_raw(fu);
            let slot = slot % arch.fu(fu).num_inputs();
            let stubs = arch.read_stubs(fu, slot);
            if stubs.is_empty() {
                return;
            }
            let _ = table.place_read_stub(cycle, stubs[0], SOpId::from_raw(op), slot);
        }
        Action::Checkpoint | Action::Rollback => unreachable!("handled by caller"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Nested savepoint/rollback restores the exact claim state no matter
    /// what happened in between (including failed placements, which must
    /// clean up after themselves).
    #[test]
    fn rollback_is_exact(actions in prop::collection::vec(action_strategy(), 1..60),
                         modulo in prop::option::of(2u32..6)) {
        let arch = arch();
        let mode = match modulo {
            Some(ii) => TableMode::Modulo(ii),
            None => TableMode::Linear,
        };
        let mut table = ResourceTable::new(ResourceMap::new(&arch), mode);
        // Stack of (savepoint, fingerprint-at-savepoint).
        let mut stack = Vec::new();
        for action in &actions {
            match action {
                Action::Checkpoint => {
                    stack.push((table.savepoint(), table.fingerprint()));
                }
                Action::Rollback => {
                    if let Some((sp, fp)) = stack.pop() {
                        table.rollback(sp);
                        prop_assert_eq!(table.fingerprint(), fp, "rollback must be exact");
                    }
                }
                other => apply(&mut table, &arch, other),
            }
        }
        // Unwind everything that remains.
        while let Some((sp, fp)) = stack.pop() {
            table.rollback(sp);
            prop_assert_eq!(table.fingerprint(), fp);
        }
    }

    /// A failed placement leaves the table untouched.
    #[test]
    fn failed_placements_are_clean(actions in prop::collection::vec(action_strategy(), 1..40)) {
        let arch = arch();
        let mut table = ResourceTable::new(ResourceMap::new(&arch), TableMode::Linear);
        for action in &actions {
            if matches!(action, Action::Checkpoint | Action::Rollback) {
                continue;
            }
            let before = table.fingerprint();
            let changed = match *action {
                Action::Issue { fu, cycle, op } => table.place_issue(
                    cycle,
                    csched_machine::FuId::from_raw(fu),
                    1,
                    SOpId::from_raw(op),
                ),
                Action::WriteStub { fu, stub, cycle, value } => {
                    let fu = csched_machine::FuId::from_raw(fu);
                    let stubs = arch.write_stubs(fu);
                    let stub = stubs[stub % stubs.len()];
                    table.place_write_stub(
                        cycle,
                        stub,
                        SOpId::from_raw(value),
                        arch.fu(fu).output_fanout(),
                    )
                }
                Action::ReadStub { fu, slot, cycle, op } => {
                    let fu = csched_machine::FuId::from_raw(fu);
                    let slot = slot % arch.fu(fu).num_inputs();
                    table.place_read_stub(cycle, arch.read_stubs(fu, slot)[0], SOpId::from_raw(op), slot)
                }
                _ => unreachable!(),
            };
            if !changed {
                prop_assert_eq!(table.fingerprint(), before, "failed placement must not mutate");
            }
        }
    }
}
