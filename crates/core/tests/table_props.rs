//! Property tests for the transactional resource table: after any sequence
//! of placements, releases and nested savepoint/rollback pairs, rolling
//! back restores the table's claims exactly; and the sharing rules are
//! honoured under randomly colliding stubs.

use csched_core::{ResourceTable, SOpId, TableMode};
use csched_machine::{toy, Architecture, ResourceMap};
use proptest::prelude::*;

fn arch() -> Architecture {
    toy::motivating_example()
}

#[derive(Clone, Debug)]
enum Action {
    Issue {
        fu: usize,
        cycle: i64,
        op: usize,
    },
    WriteStub {
        fu: usize,
        stub: usize,
        cycle: i64,
        value: usize,
    },
    ReadStub {
        fu: usize,
        slot: usize,
        cycle: i64,
        op: usize,
    },
    Checkpoint,
    Rollback,
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        (0..3usize, 0..6i64, 0..8usize).prop_map(|(fu, cycle, op)| Action::Issue { fu, cycle, op }),
        (0..3usize, 0..4usize, 0..6i64, 0..8usize).prop_map(|(fu, stub, cycle, value)| {
            Action::WriteStub {
                fu,
                stub,
                cycle,
                value,
            }
        }),
        (0..3usize, 0..2usize, 0..6i64, 0..8usize).prop_map(|(fu, slot, cycle, op)| {
            Action::ReadStub {
                fu,
                slot,
                cycle,
                op,
            }
        }),
        Just(Action::Checkpoint),
        Just(Action::Rollback),
    ]
}

fn apply(table: &mut ResourceTable, arch: &Architecture, action: &Action) {
    match *action {
        Action::Issue { fu, cycle, op } => {
            let fu = csched_machine::FuId::from_raw(fu);
            let _ = table.place_issue(cycle, fu, 1, SOpId::from_raw(op));
        }
        Action::WriteStub {
            fu,
            stub,
            cycle,
            value,
        } => {
            let fu = csched_machine::FuId::from_raw(fu);
            let stubs = arch.write_stubs(fu);
            if stubs.is_empty() {
                return;
            }
            let stub = stubs[stub % stubs.len()];
            let fanout = arch.fu(fu).output_fanout();
            let _ = table.place_write_stub(cycle, stub, SOpId::from_raw(value), fanout);
        }
        Action::ReadStub {
            fu,
            slot,
            cycle,
            op,
        } => {
            let fu = csched_machine::FuId::from_raw(fu);
            let slot = slot % arch.fu(fu).num_inputs();
            let stubs = arch.read_stubs(fu, slot);
            if stubs.is_empty() {
                return;
            }
            let _ = table.place_read_stub(cycle, stubs[0], SOpId::from_raw(op), slot);
        }
        Action::Checkpoint | Action::Rollback => unreachable!("handled by caller"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Nested savepoint/rollback restores the exact claim state no matter
    /// what happened in between (including failed placements, which must
    /// clean up after themselves).
    #[test]
    fn rollback_is_exact(actions in prop::collection::vec(action_strategy(), 1..60),
                         modulo in prop::option::of(2u32..6)) {
        let arch = arch();
        let mode = match modulo {
            Some(ii) => TableMode::Modulo(ii),
            None => TableMode::Linear,
        };
        let mut table = ResourceTable::new(ResourceMap::new(&arch), mode);
        // Stack of (savepoint, fingerprint-at-savepoint).
        let mut stack = Vec::new();
        for action in &actions {
            match action {
                Action::Checkpoint => {
                    stack.push((table.savepoint(), table.fingerprint()));
                }
                Action::Rollback => {
                    if let Some((sp, fp)) = stack.pop() {
                        table.rollback(sp);
                        prop_assert_eq!(table.fingerprint(), fp, "rollback must be exact");
                    }
                }
                other => apply(&mut table, &arch, other),
            }
        }
        // Unwind everything that remains.
        while let Some((sp, fp)) = stack.pop() {
            table.rollback(sp);
            prop_assert_eq!(table.fingerprint(), fp);
        }
    }

    /// A failed placement leaves the table untouched.
    #[test]
    fn failed_placements_are_clean(actions in prop::collection::vec(action_strategy(), 1..40)) {
        let arch = arch();
        let mut table = ResourceTable::new(ResourceMap::new(&arch), TableMode::Linear);
        for action in &actions {
            if matches!(action, Action::Checkpoint | Action::Rollback) {
                continue;
            }
            let before = table.fingerprint();
            let changed = match *action {
                Action::Issue { fu, cycle, op } => table.place_issue(
                    cycle,
                    csched_machine::FuId::from_raw(fu),
                    1,
                    SOpId::from_raw(op),
                ),
                Action::WriteStub { fu, stub, cycle, value } => {
                    let fu = csched_machine::FuId::from_raw(fu);
                    let stubs = arch.write_stubs(fu);
                    let stub = stubs[stub % stubs.len()];
                    table.place_write_stub(
                        cycle,
                        stub,
                        SOpId::from_raw(value),
                        arch.fu(fu).output_fanout(),
                    )
                }
                Action::ReadStub { fu, slot, cycle, op } => {
                    let fu = csched_machine::FuId::from_raw(fu);
                    let slot = slot % arch.fu(fu).num_inputs();
                    table.place_read_stub(cycle, arch.read_stubs(fu, slot)[0], SOpId::from_raw(op), slot)
                }
                _ => unreachable!(),
            };
            if !changed {
                prop_assert_eq!(table.fingerprint(), before, "failed placement must not mutate");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Differential model: the dense modulo-indexed table against a reference
// hashmap implementation of the same admission rules (the design the dense
// layout replaced). Every placement decision and every observable occupancy
// count must agree, across savepoint/rollback and stub releases.
// ---------------------------------------------------------------------------

use csched_machine::{FuId, ReadPortId, ReadStub, Resource, WritePortId, WriteStub};
use std::collections::HashMap;

/// Reference mirror of the table's (private) claim payloads, built from
/// public ids only.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum RefClaim {
    Op(usize),
    Write { value: usize, bus: usize },
    WriteBus { value: usize },
    ReadBus { port: usize },
    Read { op: usize, slot: usize },
}

enum RefAdmission {
    Identical(usize),
    Additional,
    Conflict,
}

/// The reference table: a hashmap of claim lists keyed by (row, resource),
/// with savepoints implemented by cloning the whole map.
#[derive(Clone, Debug, Default)]
struct RefTable {
    cells: HashMap<(usize, Resource), Vec<(RefClaim, u32)>>,
}

fn ref_row(mode: TableMode, cycle: i64) -> Option<usize> {
    match mode {
        TableMode::Linear => (cycle >= 0).then_some(cycle as usize),
        TableMode::Modulo(ii) => Some(cycle.rem_euclid(ii as i64) as usize),
    }
}

fn ref_admit_exclusive(list: &[(RefClaim, u32)], p: RefClaim) -> RefAdmission {
    match list.first() {
        Some((e, _)) if *e == p => RefAdmission::Identical(0),
        Some(_) => RefAdmission::Conflict,
        None => RefAdmission::Additional,
    }
}

fn ref_admit_output(
    list: &[(RefClaim, u32)],
    value: usize,
    bus: usize,
    fanout: usize,
) -> RefAdmission {
    for (e, _) in list {
        match e {
            RefClaim::Write { value: ev, .. } if *ev == value => {}
            _ => return RefAdmission::Conflict,
        }
    }
    let p = RefClaim::Write { value, bus };
    if let Some(pos) = list.iter().position(|(e, _)| *e == p) {
        return RefAdmission::Identical(pos);
    }
    let mut buses: Vec<usize> = vec![bus];
    for (e, _) in list {
        if let RefClaim::Write { bus: eb, .. } = e {
            if !buses.contains(eb) {
                buses.push(*eb);
            }
        }
    }
    if buses.len() <= fanout {
        RefAdmission::Additional
    } else {
        RefAdmission::Conflict
    }
}

impl RefTable {
    fn list(&self, row: usize, r: Resource) -> &[(RefClaim, u32)] {
        self.cells.get(&(row, r)).map_or(&[], |v| v.as_slice())
    }

    fn apply(&mut self, row: usize, r: Resource, claim: RefClaim, adm: RefAdmission) {
        let list = self.cells.entry((row, r)).or_default();
        match adm {
            RefAdmission::Identical(pos) => list[pos].1 += 1,
            RefAdmission::Additional => list.push((claim, 1)),
            RefAdmission::Conflict => unreachable!("conflicting claim applied"),
        }
    }

    fn release(&mut self, row: usize, r: Resource, claim: RefClaim) {
        if let Some(list) = self.cells.get_mut(&(row, r)) {
            if let Some(pos) = list.iter().position(|(c, _)| *c == claim) {
                if list[pos].1 > 1 {
                    list[pos].1 -= 1;
                } else {
                    list.swap_remove(pos);
                }
            }
        }
    }

    fn occupancy(&self, mode: TableMode, cycle: i64, r: Resource) -> usize {
        ref_row(mode, cycle).map_or(0, |row| self.list(row, r).len())
    }

    fn place_issue(
        &mut self,
        mode: TableMode,
        cycle: i64,
        fu: FuId,
        interval: u32,
        op: usize,
    ) -> bool {
        if let TableMode::Modulo(ii) = mode {
            if interval > ii {
                return false;
            }
        }
        let claim = RefClaim::Op(op);
        let mut rows = Vec::new();
        for i in 0..interval as i64 {
            let Some(row) = ref_row(mode, cycle + i) else {
                return false;
            };
            rows.push(row);
        }
        for &row in &rows {
            if matches!(
                ref_admit_exclusive(self.list(row, Resource::FuIssue(fu)), claim),
                RefAdmission::Conflict
            ) {
                return false;
            }
        }
        for &row in &rows {
            let adm = ref_admit_exclusive(self.list(row, Resource::FuIssue(fu)), claim);
            self.apply(row, Resource::FuIssue(fu), claim, adm);
        }
        true
    }

    fn place_write_stub(
        &mut self,
        mode: TableMode,
        cycle: i64,
        stub: WriteStub,
        value: usize,
        fanout: usize,
    ) -> bool {
        let Some(row) = ref_row(mode, cycle) else {
            return false;
        };
        let bus = stub.bus.index();
        let wclaim = RefClaim::Write { value, bus };
        let o_adm = ref_admit_output(
            self.list(row, Resource::FuOutput(stub.fu)),
            value,
            bus,
            fanout,
        );
        if matches!(o_adm, RefAdmission::Conflict) {
            return false;
        }
        let b_adm = ref_admit_exclusive(
            self.list(row, Resource::Bus(stub.bus)),
            RefClaim::WriteBus { value },
        );
        if matches!(b_adm, RefAdmission::Conflict) {
            return false;
        }
        let p_adm = ref_admit_exclusive(self.list(row, Resource::WritePort(stub.port)), wclaim);
        if matches!(p_adm, RefAdmission::Conflict) {
            return false;
        }
        self.apply(row, Resource::FuOutput(stub.fu), wclaim, o_adm);
        self.apply(
            row,
            Resource::Bus(stub.bus),
            RefClaim::WriteBus { value },
            b_adm,
        );
        self.apply(row, Resource::WritePort(stub.port), wclaim, p_adm);
        true
    }

    fn place_read_stub(
        &mut self,
        mode: TableMode,
        cycle: i64,
        stub: ReadStub,
        op: usize,
        slot: usize,
    ) -> bool {
        let Some(row) = ref_row(mode, cycle) else {
            return false;
        };
        let claim = RefClaim::Read { op, slot };
        let r_adm = ref_admit_exclusive(self.list(row, Resource::ReadPort(stub.port)), claim);
        if matches!(r_adm, RefAdmission::Conflict) {
            return false;
        }
        let b_adm = ref_admit_exclusive(
            self.list(row, Resource::Bus(stub.bus)),
            RefClaim::ReadBus {
                port: stub.port.index(),
            },
        );
        if matches!(b_adm, RefAdmission::Conflict) {
            return false;
        }
        let i_adm = ref_admit_exclusive(self.list(row, Resource::FuInput(stub.input())), claim);
        if matches!(i_adm, RefAdmission::Conflict) {
            return false;
        }
        self.apply(row, Resource::ReadPort(stub.port), claim, r_adm);
        self.apply(
            row,
            Resource::Bus(stub.bus),
            RefClaim::ReadBus {
                port: stub.port.index(),
            },
            b_adm,
        );
        self.apply(row, Resource::FuInput(stub.input()), claim, i_adm);
        true
    }
}

/// Every resource of `arch`, for exhaustive occupancy comparison.
fn all_resources(arch: &Architecture) -> Vec<Resource> {
    let mut rs = Vec::new();
    for fu in arch.fu_ids() {
        rs.push(Resource::FuIssue(fu));
        rs.push(Resource::FuOutput(fu));
        for slot in 0..arch.fu(fu).num_inputs() {
            for stub in arch.read_stubs(fu, slot) {
                let r = Resource::FuInput(stub.input());
                if !rs.contains(&r) {
                    rs.push(r);
                }
            }
        }
    }
    for b in arch.bus_ids() {
        rs.push(Resource::Bus(b));
    }
    for i in 0..arch.num_write_ports() {
        rs.push(Resource::WritePort(WritePortId::from_raw(i)));
    }
    for i in 0..arch.num_read_ports() {
        rs.push(Resource::ReadPort(ReadPortId::from_raw(i)));
    }
    rs
}

#[derive(Clone, Debug)]
enum MAction {
    Issue {
        fu: usize,
        cycle: i64,
        interval: u32,
        op: usize,
    },
    WriteStub {
        fu: usize,
        stub: usize,
        cycle: i64,
        value: usize,
    },
    ReadStub {
        fu: usize,
        slot: usize,
        stub: usize,
        cycle: i64,
        op: usize,
    },
    UnplaceWrite(usize),
    UnplaceRead(usize),
    Checkpoint,
    Rollback,
}

fn model_action_strategy() -> impl Strategy<Value = MAction> {
    prop_oneof![
        (0..3usize, 0..6i64, 1..3u32, 0..8usize).prop_map(|(fu, cycle, interval, op)| {
            MAction::Issue {
                fu,
                cycle,
                interval,
                op,
            }
        }),
        (0..3usize, 0..8usize, 0..6i64, 0..8usize).prop_map(|(fu, stub, cycle, value)| {
            MAction::WriteStub {
                fu,
                stub,
                cycle,
                value,
            }
        }),
        (0..3usize, 0..2usize, 0..4usize, 0..6i64, 0..8usize).prop_map(
            |(fu, slot, stub, cycle, op)| MAction::ReadStub {
                fu,
                slot,
                stub,
                cycle,
                op,
            }
        ),
        (0..16usize).prop_map(MAction::UnplaceWrite),
        (0..16usize).prop_map(MAction::UnplaceRead),
        Just(MAction::Checkpoint),
        Just(MAction::Rollback),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The dense table and the reference hashmap accept/reject every
    /// placement identically and expose identical occupancy everywhere,
    /// through placements, releases, and nested savepoint/rollback.
    #[test]
    fn dense_table_matches_reference_hashmap(
        actions in prop::collection::vec(model_action_strategy(), 1..80),
        modulo in prop::option::of(2u32..6),
    ) {
        let arch = arch();
        let mode = match modulo {
            Some(ii) => TableMode::Modulo(ii),
            None => TableMode::Linear,
        };
        let mut table = ResourceTable::new(ResourceMap::new(&arch), mode);
        let mut model = RefTable::default();
        let resources = all_resources(&arch);
        // Successful placements eligible for release.
        let mut placed_w: Vec<(i64, WriteStub, usize)> = Vec::new();
        let mut placed_r: Vec<(i64, ReadStub, usize, usize)> = Vec::new();
        let mut stack = Vec::new();
        for action in &actions {
            match *action {
                MAction::Issue { fu, cycle, interval, op } => {
                    let fu = FuId::from_raw(fu);
                    let got = table.place_issue(cycle, fu, interval, SOpId::from_raw(op));
                    let want = model.place_issue(mode, cycle, fu, interval, op);
                    prop_assert_eq!(got, want, "issue decision diverged");
                }
                MAction::WriteStub { fu, stub, cycle, value } => {
                    let fu = FuId::from_raw(fu);
                    let stubs = arch.write_stubs(fu);
                    if stubs.is_empty() {
                        continue;
                    }
                    let stub = stubs[stub % stubs.len()];
                    let fanout = arch.fu(fu).output_fanout();
                    let got = table.place_write_stub(cycle, stub, SOpId::from_raw(value), fanout);
                    let want = model.place_write_stub(mode, cycle, stub, value, fanout);
                    prop_assert_eq!(got, want, "write-stub decision diverged");
                    if got {
                        placed_w.push((cycle, stub, value));
                    }
                }
                MAction::ReadStub { fu, slot, stub, cycle, op } => {
                    let fu = FuId::from_raw(fu);
                    let slot = slot % arch.fu(fu).num_inputs();
                    let stubs = arch.read_stubs(fu, slot);
                    if stubs.is_empty() {
                        continue;
                    }
                    let stub = stubs[stub % stubs.len()];
                    let got = table.place_read_stub(cycle, stub, SOpId::from_raw(op), slot);
                    let want = model.place_read_stub(mode, cycle, stub, op, slot);
                    prop_assert_eq!(got, want, "read-stub decision diverged");
                    if got {
                        placed_r.push((cycle, stub, op, slot));
                    }
                }
                MAction::UnplaceWrite(i) => {
                    if placed_w.is_empty() {
                        continue;
                    }
                    let (cycle, stub, value) = placed_w.swap_remove(i % placed_w.len());
                    table.unplace_write_stub(cycle, stub, SOpId::from_raw(value));
                    if let Some(row) = ref_row(mode, cycle) {
                        let bus = stub.bus.index();
                        let wclaim = RefClaim::Write { value, bus };
                        model.release(row, Resource::FuOutput(stub.fu), wclaim);
                        model.release(row, Resource::Bus(stub.bus), RefClaim::WriteBus { value });
                        model.release(row, Resource::WritePort(stub.port), wclaim);
                    }
                }
                MAction::UnplaceRead(i) => {
                    if placed_r.is_empty() {
                        continue;
                    }
                    let (cycle, stub, op, slot) = placed_r.swap_remove(i % placed_r.len());
                    table.unplace_read_stub(cycle, stub, SOpId::from_raw(op), slot);
                    if let Some(row) = ref_row(mode, cycle) {
                        let claim = RefClaim::Read { op, slot };
                        model.release(row, Resource::ReadPort(stub.port), claim);
                        model.release(
                            row,
                            Resource::Bus(stub.bus),
                            RefClaim::ReadBus { port: stub.port.index() },
                        );
                        model.release(row, Resource::FuInput(stub.input()), claim);
                    }
                }
                MAction::Checkpoint => {
                    stack.push((table.savepoint(), model.clone(), placed_w.clone(), placed_r.clone()));
                }
                MAction::Rollback => {
                    if let Some((sp, m, pw, pr)) = stack.pop() {
                        table.rollback(sp);
                        model = m;
                        placed_w = pw;
                        placed_r = pr;
                    }
                }
            }
            for &r in &resources {
                for cycle in 0..10i64 {
                    prop_assert_eq!(
                        table.occupancy(cycle, r),
                        model.occupancy(mode, cycle, r),
                        "occupancy diverged at cycle {} on {:?}",
                        cycle,
                        r
                    );
                }
            }
        }
    }
}
