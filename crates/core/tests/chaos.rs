//! Chaos harness watchdog tests: seeded multi-fault campaigns must hold
//! the robustness contract — every entry is a valid schedule, a typed
//! rejection, or an in-deadline stop; no entry ever spends more than its
//! placement-attempt budget; and the same seed reproduces the campaign
//! byte-for-byte.

use csched_core::faultinject::{
    chaos_campaign, render_chaos_campaign, schedule_degraded_budgeted, ChaosConfig, FaultVerdict,
};
use csched_core::{SchedulerConfig, StepBudget};
use csched_ir::{Kernel, KernelBuilder};
use csched_machine::{imagine, toy, Opcode};

/// out[i] = (in[i] * 3 + in[i+1]) — enough communications to make the
/// scheduler work for its answer on a degraded machine.
fn streaming_kernel() -> Kernel {
    let mut kb = KernelBuilder::new("stream");
    let input = kb.region("in", true);
    let output = kb.region("out", true);
    let lp = kb.loop_block("body");
    let i = kb.loop_var(lp, 0i64.into());
    let a = kb.load(lp, input, i.into(), 0i64.into());
    let b = kb.load(lp, input, i.into(), 8i64.into());
    let m = kb.push(lp, Opcode::IMul, [a.into(), 3i64.into()]);
    let s = kb.push(lp, Opcode::IAdd, [m.into(), b.into()]);
    kb.store(lp, output, i.into(), 0i64.into(), s.into());
    let i1 = kb.push(lp, Opcode::IAdd, [i.into(), 1i64.into()]);
    kb.set_update(i, i1.into());
    kb.build().unwrap()
}

fn tiny_loop() -> Kernel {
    let mut kb = KernelBuilder::new("tiny");
    let lp = kb.loop_block("body");
    let i = kb.loop_var(lp, 0i64.into());
    let a = kb.push(lp, Opcode::IAdd, [i.into(), 1i64.into()]);
    kb.set_update(i, a.into());
    kb.build().unwrap()
}

/// Watchdog: across a multi-fault campaign on two machines, every entry
/// holds the contract and never overruns its budget — the budget refuses
/// the attempt that would overrun, so `spent <= limit` exactly.
#[test]
fn chaos_campaign_never_panics_and_never_overruns() {
    let stream = streaming_kernel();
    let tiny = tiny_loop();
    let kernels: Vec<(&str, &Kernel)> = vec![("stream", &stream), ("tiny", &tiny)];
    let chaos = ChaosConfig {
        seed: 0xdecade,
        runs: 24,
        max_faults: 3,
        step_limit: 10_000,
    };
    for arch in [toy::motivating_example(), imagine::distributed()] {
        let entries = chaos_campaign(&arch, &kernels, &SchedulerConfig::default(), &chaos);
        assert_eq!(entries.len(), chaos.runs * kernels.len());
        for e in &entries {
            assert!(
                e.verdict.contract_held(),
                "contract violated: kernel {} faults {:?}: {:?}",
                e.kernel,
                e.fault_descs,
                e.verdict
            );
            assert!(
                e.attempts_spent <= e.step_limit,
                "budget overrun: spent {} of {}",
                e.attempts_spent,
                e.step_limit
            );
            if let FaultVerdict::TimedOut { spent, limit } = e.verdict {
                assert_eq!(limit, e.step_limit);
                assert!(spent <= limit);
            }
        }
    }
}

/// Reproducibility: the same seed renders the identical campaign digest,
/// byte for byte, across two independent runs.
#[test]
fn seeded_chaos_campaign_is_byte_for_byte_reproducible() {
    let arch = imagine::distributed();
    let stream = streaming_kernel();
    let kernels: Vec<(&str, &Kernel)> = vec![("stream", &stream)];
    let chaos = ChaosConfig {
        seed: 99,
        runs: 16,
        max_faults: 4,
        step_limit: 8_000,
    };
    let first = render_chaos_campaign(&chaos_campaign(
        &arch,
        &kernels,
        &SchedulerConfig::default(),
        &chaos,
    ));
    let second = render_chaos_campaign(&chaos_campaign(
        &arch,
        &kernels,
        &SchedulerConfig::default(),
        &chaos,
    ));
    assert!(!first.is_empty());
    assert_eq!(first, second, "same seed must reproduce the same campaign");
}

/// A starvation-level budget forces a typed in-deadline stop rather than
/// a panic or an unbounded search, and reports exact spend.
#[test]
fn starved_budget_times_out_with_exact_spend() {
    let arch = imagine::distributed();
    let kernel = streaming_kernel();
    let budget = StepBudget::new(3);
    let verdict =
        schedule_degraded_budgeted(&arch, &[], &kernel, SchedulerConfig::default(), &budget);
    match verdict {
        FaultVerdict::TimedOut { spent, limit } => {
            assert_eq!(limit, 3);
            assert_eq!(spent, 3, "budget must stop at exactly its limit");
        }
        other => panic!("expected TimedOut, got {other:?}"),
    }
    assert_eq!(budget.spent(), 3);
}
